"""Benchmarks regenerating the QSFP (Fig. 11) and peer-to-peer PCIe
(Fig. 12) performance sweeps."""

from repro.experiments import fig11, fig12
from repro.experiments.sweeps import fast_over_exact_speedup
from repro.fireripper import EXACT, FAST

_QUICK_WIDTHS = (128, 1024, 2200, 4500)
_QUICK_FREQS = (10.0, 50.0, 90.0)


def _grid(paper_scale):
    if paper_scale:
        return fig11.WIDTHS, fig11.FREQS_MHZ
    return _QUICK_WIDTHS, _QUICK_FREQS


def test_fig11_qsfp_sweep(benchmark, paper_scale):
    widths, freqs = _grid(paper_scale)
    points = benchmark.pedantic(
        fig11.run, kwargs={"widths": widths, "freqs_mhz": freqs,
                           "cycles": 80},
        rounds=1, iterations=1)
    print("\n" + fig11.format_table(points))
    # headline: ~1.6 MHz peak; fast-mode advantage fades with width
    assert 1.0 < fig11.peak_rate_mhz(points) < 2.2
    narrow = fast_over_exact_speedup(points, widths[0], freqs[-1])
    wide = fast_over_exact_speedup(points, widths[-1], freqs[-1])
    assert narrow > wide
    # exact-mode rate monotone in bitstream frequency
    for w in widths:
        series = [p.measured_hz for p in points
                  if p.mode == EXACT and p.width_bits == w]
        assert series == sorted(series)


def test_fig12_pcie_sweep(benchmark, paper_scale):
    widths, freqs = _grid(paper_scale)
    points = benchmark.pedantic(
        fig12.run, kwargs={"widths": widths, "freqs_mhz": freqs,
                           "cycles": 80},
        rounds=1, iterations=1)
    print("\n" + fig12.format_table(points))
    assert 0.7 < fig12.peak_rate_mhz(points) < 1.3  # paper: ~1 MHz


def test_fig11_vs_fig12_cloud_penalty(benchmark):
    """The paper: cloud rates are ~1.5x lower than on-prem QSFP."""
    def both():
        qsfp = fig11.run(widths=(512,), freqs_mhz=(90.0,), cycles=80)
        pcie = fig12.run(widths=(512,), freqs_mhz=(90.0,), cycles=80)
        return qsfp[0].measured_hz, pcie[0].measured_hz

    qsfp_hz, pcie_hz = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = qsfp_hz / pcie_hz
    print(f"\nQSFP/PCIe rate ratio: {ratio:.2f}x (paper: ~1.5x)")
    assert 1.2 < ratio < 2.2
