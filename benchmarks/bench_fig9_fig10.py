"""Benchmarks regenerating Fig. 9 (leaky-DMA) and Fig. 10 (Go GC)."""

from repro.experiments import fig9, fig10
from repro.uarch.ddio import RING, XBAR


def test_fig9_leaky_dma(benchmark, paper_scale):
    packets = 300 if paper_scale else 120
    counts = (1, 2, 4, 6, 8, 10, 12) if paper_scale else (1, 6, 12)
    results = benchmark.pedantic(
        fig9.run, kwargs={"core_counts": counts,
                          "packets_per_core": packets},
        rounds=1, iterations=1)
    print("\n" + fig9.format_table(results))
    by = {(r.topology, r.n_cores): r for r in results}
    # latencies rise with cores; xbar ends up worse than ring
    for topo in (XBAR, RING):
        first = by[(topo, counts[0])].nic_write_latency_ns
        last = by[(topo, counts[-1])].nic_write_latency_ns
        assert last > first
    assert by[(XBAR, counts[-1])].nic_write_latency_ns \
        > by[(RING, counts[-1])].nic_write_latency_ns


def test_fig10_go_gc_tails(benchmark, paper_scale):
    duration = 400.0 if paper_scale else 200.0
    results = benchmark.pedantic(
        fig10.run, kwargs={"duration_ms": duration},
        rounds=1, iterations=1)
    print("\n" + fig10.format_table(results))
    by = {(r.config.gomaxprocs, r.config.affinity_cores): r
          for r in results}
    assert by[(1, 1)].p99_ms > 3 * by[(2, 2)].p99_ms
    assert by[(2, 1)].p99_ms < by[(2, 2)].p99_ms  # pinned beats spread
    same, cross = fig10.xeon_numa_comparison(duration_ms=600.0)
    print(f"\nXeon NUMA check: same-node p99={same:.1f} ms, "
          f"cross-node p99={cross:.1f} ms (paper: 28 vs 42)")
    assert cross > same
