"""Benchmarks regenerating the Sec. V-A and V-B case studies."""

from repro.experiments import casestudy_24core, casestudy_gc40


def test_24core_case_study(benchmark, paper_scale):
    mini_tiles = 12 if paper_scale else 8
    result = benchmark.pedantic(
        casestudy_24core.run, kwargs={"mini_tiles": mini_tiles},
        rounds=1, iterations=1)
    print("\n" + casestudy_24core.format_table(result))
    assert 0.3e6 < result.modeled_rate_hz < 1.0e6   # paper: 0.58 MHz
    assert 300 < result.speedup < 700               # paper: 460x
    assert result.hours_to_bug_fireaxe < 2.0        # paper: < 2 hours
    assert result.bug_detected_buggy
    assert not result.bug_detected_fixed
    assert result.small_workload_ok_buggy


def test_gc40_case_study(benchmark):
    result = benchmark.pedantic(casestudy_gc40.run, rounds=1,
                                iterations=1)
    print("\n" + casestudy_gc40.format_table(result))
    assert not result.monolithic_fits
    assert result.boundary_bits > 7000
    assert 0.1e6 < result.modeled_rate_hz < 0.35e6  # paper: 0.2 MHz


def test_simulation_engine_throughput(benchmark):
    """Raw RTL-engine speed on a real SoC (host-simulator performance,
    not a paper figure — tracks the substrate itself)."""
    from repro.harness import MonolithicSimulation
    from repro.targets.soc import make_rocket_like_soc

    circuit = make_rocket_like_soc(20, 8)

    def run():
        mono = MonolithicSimulation(circuit)
        return mono.run_until("done", 1, max_cycles=20_000).target_cycles

    cycles = benchmark(run)
    assert cycles > 100
