"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they probe the knobs behind them:

* DDIO way count — how much LLC the NIC gets decides where the leak
  starts (the mechanism behind Fig. 9),
* LI-BDN channel credit — bounded-dataflow depth trades run-ahead
  pipelining against hardware buffering (the mechanism behind the
  fast-mode rates of Fig. 11),
* skid-buffer depth — the fast-mode correctness margin of Fig. 3c,
* compiled vs. interpreted RTL engine — the host-simulator speedup that
  makes the whole reproduction tractable.
"""

import pytest

from repro.errors import CompileError
from repro.fireripper import FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.fireripper.fastmode import make_skid_buffer
from repro.platform import QSFP_AURORA
from repro.rtl import Simulator
from repro.targets.soc import make_rocket_like_soc, make_wide_pair
from repro.uarch.ddio import LeakyDMAExperiment


def test_ablation_ddio_ways(benchmark):
    """More DDIO ways postpone the leak: CPU hit rate at 8 cores rises
    with the I/O way allocation."""
    def run():
        out = {}
        for ways in (1, 2, 4):
            result = LeakyDMAExperiment(
                8, topology="xbar", ddio_ways=ways,
                packets_per_core=120).run()
            out[ways] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nDDIO ways ablation (8 cores, xbar):")
    for ways, r in results.items():
        print(f"  {ways} ways: wr={r.nic_write_latency_ns:7.1f} ns  "
              f"cpu_hit={r.cpu_hit_rate:.2f}  "
              f"unread evictions={r.llc_stats['io_evictions_of_unread']}")
    assert results[4].llc_stats["io_evictions_of_unread"] \
        <= results[1].llc_stats["io_evictions_of_unread"]


def test_ablation_channel_credit(benchmark):
    """Deeper channel credit lets partitions run ahead, raising the
    fast-mode rate — the bounded-dataflow knob."""
    def run():
        rates = {}
        for capacity in (0, 1, 2):
            spec = PartitionSpec(mode=FAST, groups=[
                PartitionGroup.make("fpga1", ["right"])])
            design = FireRipper(spec).compile(
                make_wide_pair(256, comb_boundary=True))
            sim = design.build_simulation(
                QSFP_AURORA, channel_capacity=capacity)
            rates[capacity] = sim.run(120).rate_hz
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nchannel-credit ablation (fast mode, 256b boundary):")
    for cap, rate in rates.items():
        print(f"  credit {cap}: {rate / 1e6:.3f} MHz")
    assert rates[0] <= rates[1] <= rates[2]


def test_ablation_skid_depth(benchmark):
    """The minimum safe skid depth is ready_threshold + 3; shallower
    configurations are rejected at compile time."""
    def run():
        ok = []
        for depth in (4, 6, 8):
            module = make_skid_buffer(8, depth=depth)
            ok.append(module.name)
        return ok

    names = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbuilt skid buffers: {names}")
    with pytest.raises(CompileError):
        make_skid_buffer(8, depth=3)


def test_ablation_compiled_vs_interpreted_engine(benchmark):
    """The code-generating engine backend vs. the tree-walking
    interpreter on the Rocket-like SoC."""
    circuit = make_rocket_like_soc(20, 6)

    def run(compiled):
        sim = Simulator(circuit, compiled=compiled)
        sim.run_until("done", 1, max_cycles=20_000)
        return sim.cycle

    import time

    t0 = time.perf_counter()
    cycles = run(True)
    compiled_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert run(False) == cycles
    interp_s = time.perf_counter() - t0
    print(f"\nengine backends over {cycles} cycles: "
          f"compiled {compiled_s * 1e3:.0f} ms, "
          f"interpreted {interp_s * 1e3:.0f} ms "
          f"({interp_s / compiled_s:.1f}x speedup from codegen)")
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    assert interp_s > compiled_s  # codegen must actually pay off
