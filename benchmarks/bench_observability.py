"""Tracing/metrics-overhead benchmark: observability must be free when
off.

Every emit site in the harness/wrapper/link layers guards on the
tracer's (and telemetry's) ``enabled`` flag, so an untraced run
(``tracer=None``) and an explicit :class:`NullTracer` run execute the
identical guarded path — this bench pins that the guard itself stays
under a 5% overhead versus the untraced run, and reports the (real,
expected) cost of a recording tracer for comparison.  A second test
does the same for the telemetry layer: a null metrics registry must
stay under the bound (in-process *and* under the process backend,
where the guard also sits on the workers' hot path), with the real
cost of cycle-keyed sampling reported alongside.  Timings are
min-of-repeats to shed scheduler noise; the measured numbers merge
into ``results/BENCH_trace_overhead.json``.
"""

import json
import time
from pathlib import Path

from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.observability import NullTracer, RecordingTracer
from repro.parallel import fork_available
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit
from repro.telemetry import NullTelemetry, Telemetry

CYCLES = 400
REPEATS = 7
MAX_NULL_OVERHEAD = 0.05

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _merge_results(payload: dict) -> None:
    """Merge ``payload`` into the shared trace-overhead results file
    (the two tests each own a disjoint set of keys)."""
    path = RESULTS / "BENCH_trace_overhead.json"
    RESULTS.mkdir(parents=True, exist_ok=True)
    existing = {}
    if path.is_file():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2) + "\n")


def _compile_pair():
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    return FireRipper(spec).compile(make_comb_pair_circuit())


def _min_run_seconds(design, makers):
    """Best-of-N wall time of one full co-simulation run per variant.

    Variants are *interleaved* (one run of each per repeat) so clock
    drift and allocator state hit them equally — running each variant's
    repeats back to back biases whichever went first.
    """
    best = [float("inf")] * len(makers)
    for _ in range(REPEATS):
        for i, make_tracer in enumerate(makers):
            sim = design.build_simulation(QSFP_AURORA,
                                          tracer=make_tracer())
            t0 = time.perf_counter()
            sim.run(CYCLES)
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _min_telemetry_seconds(design, makers, backend):
    """Like :func:`_min_run_seconds`, varying the telemetry session
    (and the execution backend) instead of the tracer."""
    best = [float("inf")] * len(makers)
    for _ in range(REPEATS):
        for i, make_telemetry in enumerate(makers):
            sim = design.build_simulation(QSFP_AURORA,
                                          telemetry=make_telemetry())
            t0 = time.perf_counter()
            sim.run(CYCLES, backend=backend)
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_null_tracer_overhead_under_5pct():
    design = _compile_pair()
    untraced, null, recording = _min_run_seconds(
        design, [lambda: None, NullTracer, RecordingTracer])

    null_overhead = null / untraced - 1.0
    recording_overhead = recording / untraced - 1.0
    payload = {
        "cycles": CYCLES,
        "repeats": REPEATS,
        "untraced_s": untraced,
        "null_tracer_s": null,
        "recording_tracer_s": recording,
        "null_overhead_pct": null_overhead * 100.0,
        "recording_overhead_pct": recording_overhead * 100.0,
        "bound_pct": MAX_NULL_OVERHEAD * 100.0,
    }
    _merge_results(payload)
    print(f"\nnull-tracer overhead: {null_overhead * 100.0:+.2f}% "
          f"(bound {MAX_NULL_OVERHEAD * 100.0:.0f}%); "
          f"recording tracer: {recording_overhead * 100.0:+.2f}%")
    assert null_overhead < MAX_NULL_OVERHEAD, payload


def test_null_metrics_overhead_under_5pct():
    """A disabled telemetry session must be free on both backends; the
    real sampling cost is reported for context, not bounded."""
    design = _compile_pair()
    plain, null, sampling = _min_telemetry_seconds(
        design,
        [lambda: None, NullTelemetry,
         lambda: Telemetry(sample_every=50)],
        backend="inproc")
    null_overhead = null / plain - 1.0
    sampling_overhead = sampling / plain - 1.0

    payload = {
        "metrics_cycles": CYCLES,
        "metrics_repeats": REPEATS,
        "plain_s": plain,
        "null_metrics_s": null,
        "sampling_s": sampling,
        "null_metrics_overhead_pct": null_overhead * 100.0,
        "sampling_overhead_pct": sampling_overhead * 100.0,
    }
    if fork_available():
        proc_plain, proc_null = _min_telemetry_seconds(
            design, [lambda: None, NullTelemetry], backend="process")
        proc_overhead = proc_null / proc_plain - 1.0
        payload.update({
            "process_plain_s": proc_plain,
            "process_null_metrics_s": proc_null,
            "process_null_overhead_pct": proc_overhead * 100.0,
        })
    _merge_results(payload)
    print(f"\nnull-metrics overhead: {null_overhead * 100.0:+.2f}% "
          f"(bound {MAX_NULL_OVERHEAD * 100.0:.0f}%); "
          f"sampling every 50 cycles: "
          f"{sampling_overhead * 100.0:+.2f}%"
          + (f"; process-backend null: "
             f"{payload['process_null_overhead_pct']:+.2f}%"
             if "process_null_overhead_pct" in payload else ""))
    assert null_overhead < MAX_NULL_OVERHEAD, payload
    if "process_null_overhead_pct" in payload:
        assert payload["process_null_overhead_pct"] \
            < MAX_NULL_OVERHEAD * 100.0, payload
