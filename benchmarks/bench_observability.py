"""Tracing-overhead benchmark: the observability layer must be free
when off.

Every emit site in the harness/wrapper/link layers guards on the
tracer's ``enabled`` flag, so an untraced run (``tracer=None``) and an
explicit :class:`NullTracer` run execute the identical guarded path —
this bench pins that the guard itself stays under a 5% overhead versus
the untraced run, and reports the (real, expected) cost of a recording
tracer for comparison.  Timings are min-of-repeats to shed scheduler
noise; the measured numbers land in ``results/BENCH_trace_overhead.json``.
"""

import json
import time
from pathlib import Path

from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.observability import NullTracer, RecordingTracer
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit

CYCLES = 400
REPEATS = 7
MAX_NULL_OVERHEAD = 0.05

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _compile_pair():
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    return FireRipper(spec).compile(make_comb_pair_circuit())


def _min_run_seconds(design, makers):
    """Best-of-N wall time of one full co-simulation run per variant.

    Variants are *interleaved* (one run of each per repeat) so clock
    drift and allocator state hit them equally — running each variant's
    repeats back to back biases whichever went first.
    """
    best = [float("inf")] * len(makers)
    for _ in range(REPEATS):
        for i, make_tracer in enumerate(makers):
            sim = design.build_simulation(QSFP_AURORA,
                                          tracer=make_tracer())
            t0 = time.perf_counter()
            sim.run(CYCLES)
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_null_tracer_overhead_under_5pct():
    design = _compile_pair()
    untraced, null, recording = _min_run_seconds(
        design, [lambda: None, NullTracer, RecordingTracer])

    null_overhead = null / untraced - 1.0
    recording_overhead = recording / untraced - 1.0
    payload = {
        "cycles": CYCLES,
        "repeats": REPEATS,
        "untraced_s": untraced,
        "null_tracer_s": null,
        "recording_tracer_s": recording,
        "null_overhead_pct": null_overhead * 100.0,
        "recording_overhead_pct": recording_overhead * 100.0,
        "bound_pct": MAX_NULL_OVERHEAD * 100.0,
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "BENCH_trace_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\nnull-tracer overhead: {null_overhead * 100.0:+.2f}% "
          f"(bound {MAX_NULL_OVERHEAD * 100.0:.0f}%); "
          f"recording tracer: {recording_overhead * 100.0:+.2f}%")
    assert null_overhead < MAX_NULL_OVERHEAD, payload
