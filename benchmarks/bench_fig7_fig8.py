"""Benchmarks regenerating Fig. 7 (Embench runtimes) and Fig. 8 (CPI
stacks)."""

from repro.experiments import fig7, fig8


def test_fig7_embench_runtimes(benchmark, paper_scale):
    n_instr = 60_000 if paper_scale else 20_000
    rows = benchmark.pedantic(fig7.run, kwargs={"n_instr": n_instr},
                              rounds=1, iterations=1)
    print("\n" + fig7.format_table(rows))
    uplift = fig7.average_ipc_uplift_pct(rows)
    assert 10.0 < uplift < 30.0  # paper: 15.8%
    # per-benchmark headline shapes
    by_name = {r.workload: r for r in rows}
    assert by_name["nettle-aes"].uplift_pct() > 40.0
    assert by_name["nbody"].uplift_pct() < 10.0


def test_fig8_cpi_stacks(benchmark, paper_scale):
    n_instr = 60_000 if paper_scale else 20_000
    stacks = benchmark.pedantic(fig8.run, kwargs={"n_instr": n_instr},
                                rounds=1, iterations=1)
    print("\n" + fig8.format_table(stacks))
    # every stack sums to its CPI and both cores appear per benchmark
    cores = {s.core for s in stacks}
    assert cores == {"Large BOOM", "GC40 BOOM"}
