"""Benchmark-harness configuration.

Every paper table/figure has one bench module that regenerates its
rows/series through pytest-benchmark.  Benchmarks print their tables via
``--benchmark-only -s`` (the printed artefact is the point; timings show
how long each regeneration takes).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="run the sweeps at full paper scale (slower)")


@pytest.fixture
def paper_scale(request):
    return request.config.getoption("--paper-scale")
