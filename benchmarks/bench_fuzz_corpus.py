"""Generated-corpus scaling bench: how fast the scenario mill mills.

Sweeps corpus sizes and measures the mill's three cost tiers per
scenario — generate (parameter sampling only), compile (circuit build +
FireRipper partitioning), and execute (one inproc differential run) —
so mill overhead stays visible as the generator grows richer.  The
deterministic side of the measurement is gated by ``repro regress``:
every scenario in the largest corpus must compile (zero failures),
fingerprints must be collision-free, and the corpus must exercise every
shape the generator advertises.  The wall-clock rates are reported for
trend-watching, not gated (CI machines vary).

Results land in ``results/BENCH_fuzz_corpus.json``.
"""

import json
import time
from pathlib import Path

from repro.errors import ReproError
from repro.fuzz import (
    ALL_SHAPES,
    build_scenario_circuit,
    generate_scenario,
    make_design,
    make_sim,
)

SEED = 7
SIZES = (10, 20, 40)
PAPER_SIZES = (25, 50, 100, 200)

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _mill(size: int) -> dict:
    """Generate/compile/execute ``size`` scenarios; per-tier timings."""
    t0 = time.perf_counter()
    scenarios = [generate_scenario(SEED, i) for i in range(size)]
    t_gen = time.perf_counter() - t0

    compile_failures = 0
    t0 = time.perf_counter()
    for sc in scenarios:
        try:
            build_scenario_circuit(sc)
            make_design(sc)
        except ReproError:
            compile_failures += 1
    t_compile = time.perf_counter() - t0

    # execute a fixed slice so the execute tier stays comparable
    # across corpus sizes (run cost dwarfs generate+compile)
    runs = scenarios[:10]
    t0 = time.perf_counter()
    for sc in runs:
        make_sim(sc).run(sc.cycles)
    t_run = time.perf_counter() - t0

    return {
        "size": size,
        "generate_per_s": round(size / t_gen) if t_gen > 0 else None,
        "compile_per_s": round(size / t_compile, 1)
        if t_compile > 0 else None,
        "execute_per_s": round(len(runs) / t_run, 2)
        if t_run > 0 else None,
        "compile_failures": compile_failures,
        "fingerprints": [sc.fingerprint for sc in scenarios],
        "shapes": sorted({sc.shape for sc in scenarios}),
    }


def test_fuzz_corpus_scaling(paper_scale):
    sizes = PAPER_SIZES if paper_scale else SIZES
    sweeps = [_mill(size) for size in sizes]
    largest = sweeps[-1]

    payload = {
        "seed": SEED,
        "scenarios": largest["size"],
        "distinct_fingerprints": len(set(largest["fingerprints"])),
        "shapes_covered": len(largest["shapes"]),
        "shapes_total": len(ALL_SHAPES),
        "compile_failures": sum(s["compile_failures"] for s in sweeps),
        "scaling": [
            {key: sweep[key]
             for key in ("size", "generate_per_s", "compile_per_s",
                         "execute_per_s")}
            for sweep in sweeps
        ],
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / "BENCH_fuzz_corpus.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"scenario mill @ seed {SEED}:")
    print(f"  {'size':>6} {'gen/s':>8} {'compile/s':>10} {'run/s':>7}")
    for sweep in sweeps:
        print(f"  {sweep['size']:>6} {sweep['generate_per_s']:>8} "
              f"{sweep['compile_per_s']:>10} {sweep['execute_per_s']:>7}")
    print(f"  shapes covered: {payload['shapes_covered']}"
          f"/{payload['shapes_total']}; "
          f"compile failures: {payload['compile_failures']}; "
          f"fingerprint collisions: "
          f"{payload['scenarios'] - payload['distinct_fingerprints']}")

    assert payload["compile_failures"] == 0
    assert payload["distinct_fingerprints"] == payload["scenarios"]
    assert payload["shapes_covered"] == payload["shapes_total"]
