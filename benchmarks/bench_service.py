"""Simulation-service bench: cold vs cached latency, mixed-tenant
throughput.

Drives a real :class:`~repro.service.ServiceThread` (asyncio service +
JSON-over-HTTP endpoint) the way a fleet of tenants would:

* **cold vs cached** — the same config submitted twice; the first
  simulates and archives, the second must be served from
  ``results/runs`` at submit time.  The gated floor is a 10x latency
  drop (in practice it is orders of magnitude).
* **mixed-tenant workload** — three tenants submit a stream in which
  every config appears twice (50% repeats).  Repeats must never
  re-simulate: the execution counter may not exceed the number of
  distinct configs (repeats coalesce onto the in-flight leader or hit
  the archive).
* **bit-identity** — the record a cache hit serves equals, field for
  field, what a fresh execution of the same config produces; the
  deterministic timing overlay makes replaying redundant.

Results land in ``results/BENCH_service.json``; ``repro regress``
gates the speedup floor, the bit-identity flag and the
no-re-simulation invariant.  Wall-clock latencies are reported for
trend-watching.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.firrtl import print_circuit
from repro.service import (
    ServiceConfig,
    ServiceThread,
    execute_config,
    normalize_config,
)
from repro.targets import make_comb_pair_circuit
from repro.telemetry import RunRegistry, config_fingerprint
from repro.telemetry.runs import run_record

RESULTS = Path(__file__).resolve().parent.parent / "results"

SPEEDUP_FLOOR = 10.0
#: physics fields of a run record that must match bit-for-bit between
#: a cached record and a fresh execution of the same config
IDENTITY_KEYS = ("target_cycles", "wall_ns", "rate_hz",
                 "tokens_transferred", "per_partition_cycles",
                 "detail", "fingerprint", "config")


def _config(circuit_text: str, cycles: int) -> dict:
    return {"kind": "simulate", "circuit_text": circuit_text,
            "extract": ["right"], "cycles": cycles}


def _bit_identical(registry: RunRegistry, config: dict) -> bool:
    normalized = normalize_config(config)
    cached = registry.latest(config_fingerprint(normalized))
    # identical code path: the service always wires a stop hook
    outcome = execute_config(normalized, should_stop=lambda: False)
    fresh = json.loads(json.dumps(run_record(
        outcome.result, config=normalized)))
    return all(cached[key] == fresh[key] for key in IDENTITY_KEYS)


def test_service_cache_throughput(paper_scale):
    distinct = 12 if paper_scale else 6
    tenants = ("alice", "bob", "carol")
    circuit_text = print_circuit(make_comb_pair_circuit())

    with tempfile.TemporaryDirectory() as tmp:
        runs_dir = Path(tmp) / "runs"
        thread = ServiceThread(ServiceConfig(workers=2,
                                             runs_dir=runs_dir))
        try:
            client = thread.client()

            # cold vs cached latency on one probe config
            probe = _config(circuit_text, 2000)
            t0 = time.perf_counter()
            job = client.submit(probe, tenant="alice", name="probe")
            record = client.wait(job["job_id"], timeout=300)
            cold_s = time.perf_counter() - t0
            assert record["source"] == "execution"
            t0 = time.perf_counter()
            hit = client.submit(probe, tenant="bob")
            cached_s = time.perf_counter() - t0
            assert hit["source"] == "cache"
            assert hit["run_id"] == record["run_id"]

            # mixed-tenant stream: every config submitted twice
            configs = [_config(circuit_text, 2500 + i)
                       for i in range(distinct)]
            base = client.stats()["counters"]
            t0 = time.perf_counter()
            ids = [client.submit(configs[i % distinct],
                                 tenant=tenants[i % len(tenants)],
                                 priority=i % 3)["job_id"]
                   for i in range(distinct * 2)]
            for job_id in ids:
                terminal = client.wait(job_id, timeout=300)
                assert terminal["state"] == "done"
            elapsed = time.perf_counter() - t0
            counters = client.stats()["counters"]
            executions = counters["executions"] - base["executions"]
            served = (counters["cache_hits"] - base["cache_hits"]
                      + counters["coalesced"] - base["coalesced"])

            identical = _bit_identical(RunRegistry(runs_dir), probe)
        finally:
            thread.stop()

    speedup = cold_s / cached_s if cached_s > 0 else float("inf")
    payload = {
        "workers": 2,
        "cold_latency_ms": round(cold_s * 1e3, 3),
        "cached_latency_ms": round(cached_s * 1e3, 3),
        "cached_speedup": round(speedup, 1),
        "cached_speedup_floor": SPEEDUP_FLOOR,
        "jobs_submitted": distinct * 2,
        "distinct_configs": distinct,
        "repeat_fraction": 0.5,
        "tenants": len(tenants),
        "executions": executions,
        "repeats_served_without_executing": served,
        "jobs_per_s": round(distinct * 2 / elapsed, 1)
        if elapsed > 0 else None,
        "detail_bit_identical": identical,
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / "BENCH_service.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"service cache ({payload['workers']} workers):")
    print(f"  cold submit+wait: {payload['cold_latency_ms']:.1f} ms   "
          f"cached submit: {payload['cached_latency_ms']:.2f} ms   "
          f"speedup {payload['cached_speedup']:.0f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x)")
    print(f"  mixed workload: {payload['jobs_submitted']} jobs, "
          f"{distinct} distinct, {len(tenants)} tenants -> "
          f"{executions} execution(s), {served} served from "
          f"cache/flight at {payload['jobs_per_s']} jobs/s")
    print(f"  cached record bit-identical to fresh run: "
          f"{'yes' if identical else 'NO'}")

    assert speedup >= SPEEDUP_FLOOR
    assert executions <= distinct
    assert executions + served == distinct * 2
    assert identical
