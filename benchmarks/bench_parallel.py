"""Process-backend benchmarks: frame batching and sweep-level speedup.

Measured numbers land in ``results/BENCH_parallel_speedup.json``.  Two
claims are pinned:

* **Batched framing beats per-token messaging.**  At the wire layer a
  :class:`~repro.parallel.FrameConduit` with the default flush interval
  moves the same effect stream over a real fork+pipe several times
  faster than per-token messaging (one pipe message per effect, i.e.
  ``flush_interval=1``) — the pickle+syscall cost per message dominates,
  so shipping 16 frames per message wins outright.  The in-simulation
  message counters (``ProcessBackend.last_wire_stats``) are recorded
  alongside: the lock-step LI-BDN wavefront flushes at every blocking
  point, so the *achieved* batch size on a given topology is a
  property of its boundary width, not of the flush interval — the
  microbenchmark is the honest apples-to-apples comparison.

* **Independent sweep points scale with ``--jobs``.**  A 4-partition
  sweep through :func:`repro.parallel.fanout` must beat the sequential
  loop wall-clock on a multi-core host (>1x).  On a single-core runner
  the timings are still recorded but the speedup assertion is vacuous —
  there is nothing to overlap onto — so it is gated on the core count.
  The per-point in-process vs process-backend wall-clock is recorded
  too (on one core the process backend pays IPC for no gain; with one
  core per partition it is the paper's whole premise).

The backend's *correctness* under every configuration is pinned by
``tests/parallel`` (bit-identity with the in-process harness); this
module only measures.
"""

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.firrtl import ModuleBuilder, make_circuit
from repro.harness import FunctionSource
from repro.parallel import (
    EffectFrame,
    FrameConduit,
    ProcessBackend,
    fanout,
    fork_available,
)
from repro.platform import QSFP_AURORA

N_LEAVES = 4          # base + 4 FPGAs
CYCLES = 120
REPEATS = 3
SWEEP_POINTS = 4
JOBS = min(4, os.cpu_count() or 1)
WIRE_FRAMES = 20_000
BATCH = 16            # the backend's default flush interval

RESULTS = Path(__file__).resolve().parent.parent / "results"

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs fork")


def _write(payload):
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / "BENCH_parallel_speedup.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- wire layer ---------------------------------------------------------------

def _frame(k):
    """One realistic effect frame: a token delivery plus a credit."""
    return EffectFrame(
        "peer", k,
        [(0, ("base", "in"), (k & 0xFFFF) | (1 << 16),
          1000.0 * k, 64.0)],
        [(("base", "in"), 1000.0 * k)])


def _drain(conn, n):
    got = 0
    while got < n:
        _, frames, _ = conn.recv()
        got += len(frames)
    conn.send(("done", got))


def _ship(flush_interval):
    """Wall time to move WIRE_FRAMES frames to a child over a pipe."""
    ctx = mp.get_context("fork")
    ours, theirs = ctx.Pipe()
    child = ctx.Process(target=_drain, args=(theirs, WIRE_FRAMES),
                        daemon=True)
    child.start()
    theirs.close()
    conduit = FrameConduit(ours, "peer", flush_interval=flush_interval,
                           window=WIRE_FRAMES + 1)
    t0 = time.perf_counter()
    for k in range(1, WIRE_FRAMES + 1):
        conduit.push(_frame(k))
    conduit.flush()
    assert ours.recv()[1] == WIRE_FRAMES
    elapsed = time.perf_counter() - t0
    child.join(5.0)
    ours.close()
    return elapsed, conduit.messages_sent


def test_batched_framing_beats_per_token_messaging():
    per_token_s, per_token_msgs = min(
        (_ship(1) for _ in range(REPEATS)))
    batched_s, batched_msgs = min(
        (_ship(BATCH) for _ in range(REPEATS)))
    speedup = per_token_s / batched_s
    payload = {
        "wire_frames": WIRE_FRAMES,
        "wire_per_token_messages": per_token_msgs,
        "wire_batched_messages": batched_msgs,
        "wire_per_token_s": per_token_s,
        "wire_batched_s": batched_s,
        "wire_batching_speedup": speedup,
    }
    _write(payload)
    print(f"\nwire layer: {WIRE_FRAMES} frames as "
          f"{per_token_msgs} per-token messages in {per_token_s:.3f}s "
          f"vs {batched_msgs} batched messages in {batched_s:.3f}s "
          f"({speedup:.2f}x)")
    assert batched_msgs * (BATCH - 1) < per_token_msgs, payload
    assert speedup > 1.5, payload


# -- simulation layer ---------------------------------------------------------

def _star_circuit(n_leaves=N_LEAVES):
    """Base + ``n_leaves`` registered leaf partitions, each closing a
    cross-partition feedback loop through the top."""
    children = []
    for k in range(n_leaves):
        cb = ModuleBuilder(f"Leaf{k}")
        i0 = cb.input("i0", 16)
        reg = cb.reg("state", 16, init=(37 * (k + 1)) & 0xFFFF)
        cb.connect(cb.output("o0", 16), reg)
        cb.connect(reg, reg.read() + i0.read())
        children.append(cb.build())
    tb = ModuleBuilder("Top")
    stim = tb.input("stim", 8)
    for k in range(n_leaves):
        r = tb.reg(f"r{k}", 16, init=(k + 1) * 7)
        inst = tb.inst(f"leaf{k}", children[k])
        tb.connect(inst["i0"], r)
        tb.connect(r, inst["o0"].read() ^ stim.read())
        tb.connect(tb.output(f"obs{k}", 16), inst["o0"])
    return make_circuit(tb.build(), children)


def _design(n_leaves=N_LEAVES):
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make(f"fpga{k + 1}", [f"leaf{k}"])
        for k in range(n_leaves)])
    return FireRipper(spec).compile(_star_circuit(n_leaves))


def _build(design, seed=1):
    return design.build_simulation(
        QSFP_AURORA,
        sources={("base", "io_in"): FunctionSource(
            lambda c: {"stim": (seed * 31 + c) & 0xFF})})


def test_multi_partition_sweep_speedup_with_jobs():
    design = _design()

    # per-point wall-clock, both backends, plus achieved wire batching
    inproc_s = _timed(
        lambda: _build(design).run(CYCLES, backend="inproc"))
    backend = ProcessBackend()
    process_s = _timed(lambda: backend.run(_build(design), CYCLES))
    messages = sum(s["messages_sent"]
                   for s in backend.last_wire_stats.values())
    effects = sum(s["effects_sent"]
                  for s in backend.last_wire_stats.values())

    # the sweep: independent seeds fanned across --jobs workers
    def sweep(jobs):
        def point(seed):
            return _build(design, seed=seed).run(
                CYCLES, backend="inproc").tokens_transferred
        return fanout([lambda s=seed: point(s)
                       for seed in range(1, SWEEP_POINTS + 1)], jobs)

    assert sweep(JOBS) == sweep(1)  # same work at any job count
    sequential_s = _timed(lambda: sweep(1))
    parallel_s = _timed(lambda: sweep(JOBS))
    speedup = sequential_s / parallel_s
    cores = os.cpu_count() or 1
    payload = {
        "partitions": N_LEAVES + 1,
        "cycles": CYCLES,
        "host_cores": cores,
        "inproc_point_s": inproc_s,
        "process_point_s": process_s,
        "process_messages": messages,
        "process_effects_carried": effects,
        "sweep_points": SWEEP_POINTS,
        "jobs": JOBS,
        "sweep_sequential_s": sequential_s,
        "sweep_jobs_s": parallel_s,
        "jobs_speedup": speedup,
    }
    _write(payload)
    print(f"\n{N_LEAVES + 1}-partition point: {inproc_s:.3f}s inproc "
          f"vs {process_s:.3f}s process backend "
          f"({messages} messages carrying {effects} effects); "
          f"sweep of {SWEEP_POINTS}: {sequential_s:.3f}s sequential "
          f"vs {parallel_s:.3f}s with --jobs {JOBS} "
          f"({speedup:.2f}x on {cores} cores)")
    assert effects >= messages  # every message earns its syscall
    if cores >= 2 and JOBS >= 2:
        assert speedup > 1.0, payload
    assert mp.active_children() == []


# -- token plane --------------------------------------------------------------
#
# Measured numbers land in ``results/BENCH_token_plane.json``; the
# ``bench-tokenplane`` CI job feeds them to ``repro regress``.  Three
# claims are pinned:
#
# * the packed codec moves tokens >= 5x faster than dict tokens did,
# * the shared-memory ring moves wire records >= 2x faster than a pipe,
# * all three backends produce bit-identical ``SimulationResult.detail``.

import pickle
from collections import deque

from repro.libdn import ChannelSpec, codec_for
from repro.libdn.codec import repack, repack_plan
from repro.parallel import ShmRing, shm_available

TOKENS = 100_000
RECORDS = 20_000
RECORD_BYTES = 120


def _write_token_plane(payload):
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / "BENCH_token_plane.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def _hop_times(n_ports, width):
    """Seconds to move TOKENS tokens across one cross-partition hop —
    enqueue, the link's port rename, wire serialization, dequeue at the
    peer — on the dict plane vs the packed plane.  The consume-side
    env writes are excluded: both planes do identical per-port work
    there; the codec replaced the *movement*."""
    spec = ChannelSpec.make(
        "io", [(f"io_{i}", width) for i in range(n_ports)])
    dst_spec = ChannelSpec.make(
        "in", [(f"p_{i}", width) for i in range(n_ports)])
    codec, dst_codec = codec_for(spec), codec_for(dst_spec)
    rename = {f"io_{i}": f"p_{i}" for i in range(n_ports)}
    plan = repack_plan(codec, dst_codec, rename)
    token = {f"io_{i}": (0xABCD1234 * (i + 1)) & ((1 << width) - 1)
             for i in range(n_ports)}
    word = codec.encode(token)
    q1, q2 = deque(), deque()

    def dict_plane():
        for _ in range(TOKENS):
            q1.append(dict(token))
            t = q1.popleft()
            mapped = {rename.get(k, k): v for k, v in t.items()}
            wire = pickle.dumps(mapped)
            q2.append(dict(pickle.loads(wire)))
            q2.popleft()

    def packed_plane():
        nbytes = dst_codec.nbytes
        for _ in range(TOKENS):
            q1.append(word)
            w = q1.popleft()
            mapped = repack(w, plan)
            wire = mapped.to_bytes(nbytes, "little")
            q2.append(int.from_bytes(wire, "little"))
            q2.popleft()

    return _timed(dict_plane), _timed(packed_plane)


def test_token_plane_packed_codec_beats_dict_tokens():
    results = {}
    for n_ports, width in [(3, 32), (8, 32), (16, 32)]:
        dict_s, packed_s = _hop_times(n_ports, width)
        results[f"{n_ports}x{width}"] = {
            "dict_s": dict_s,
            "packed_s": packed_s,
            "speedup": dict_s / packed_s,
        }
    worst = min(r["speedup"] for r in results.values())
    payload = {
        "tokens_per_hop_run": TOKENS,
        "codec_hops": results,
        "packed_codec_speedup": worst,
    }
    _write_token_plane(payload)
    for name, r in results.items():
        print(f"\ncodec hop {name}: dict {r['dict_s']:.3f}s vs packed "
              f"{r['packed_s']:.3f}s ({r['speedup']:.1f}x)")
    assert worst >= 5.0, payload


def _drain_pipe_bytes(conn, n):
    for _ in range(n):
        conn.recv_bytes()
    conn.send(("done", n))


def _ship_pipe_bytes():
    ctx = mp.get_context("fork")
    ours, theirs = ctx.Pipe()
    child = ctx.Process(target=_drain_pipe_bytes,
                        args=(theirs, RECORDS), daemon=True)
    child.start()
    theirs.close()
    payload = bytes(RECORD_BYTES)
    t0 = time.perf_counter()
    for _ in range(RECORDS):
        ours.send_bytes(payload)
    assert ours.recv()[1] == RECORDS
    elapsed = time.perf_counter() - t0
    child.join(5.0)
    ours.close()
    return elapsed


def _drain_ring(ring, n, conn):
    got = 0
    while got < n:
        got += len(ring.read_all())
    conn.send(("done", got))


def _ship_ring():
    ctx = mp.get_context("fork")
    ring = ShmRing.create(1 << 20)
    ours, theirs = ctx.Pipe()
    child = ctx.Process(target=_drain_ring,
                        args=(ring, RECORDS, theirs), daemon=True)
    child.start()
    theirs.close()
    payload = bytes(RECORD_BYTES)
    t0 = time.perf_counter()
    wrote = 0
    while wrote < RECORDS:
        if ring.try_write(payload):
            wrote += 1
    assert ours.recv()[1] == RECORDS
    elapsed = time.perf_counter() - t0
    child.join(5.0)
    ours.close()
    ring.close()
    ring.unlink()
    return elapsed


@pytest.mark.skipif(not shm_available(),
                    reason="multiprocessing.shared_memory missing")
def test_token_plane_shm_ring_beats_pipe_wire():
    """Identical packed records, two carriers: an OS pipe pays two
    syscalls plus two kernel copies per record; the ring pays one
    user-space copy each side."""
    pipe_s = min(_ship_pipe_bytes() for _ in range(5))
    shm_s = min(_ship_ring() for _ in range(5))
    speedup = pipe_s / shm_s
    payload = {
        "wire_records": RECORDS,
        "wire_record_bytes": RECORD_BYTES,
        "wire_pipe_s": pipe_s,
        "wire_shm_s": shm_s,
        "shm_vs_pipe_speedup": speedup,
    }
    _write_token_plane(payload)
    print(f"\nwire records: pipe {pipe_s:.3f}s vs shm ring "
          f"{shm_s:.3f}s ({speedup:.2f}x)")
    assert speedup >= 2.0, payload


@pytest.mark.skipif(not shm_available(),
                    reason="multiprocessing.shared_memory missing")
def test_token_plane_three_way_bit_identity():
    design = _design(2)
    r_inproc = _build(design).run(CYCLES, backend="inproc")
    r_process = ProcessBackend().run(_build(design), CYCLES)
    r_shm = ProcessBackend(transport="shm").run(_build(design), CYCLES)
    identical = (r_inproc.detail == r_process.detail == r_shm.detail)
    payload = {
        "identity_partitions": 3,
        "identity_cycles": CYCLES,
        "detail_bit_identical": identical,
    }
    _write_token_plane(payload)
    print(f"\nthree-way detail bit-identity over {CYCLES} cycles: "
          f"{identical}")
    assert identical
    assert mp.active_children() == []


# -- socket tier --------------------------------------------------------------
#
# Measured numbers land in ``results/BENCH_socket_tier.json``; the
# ``repro regress`` gate checks them.  Two claims are pinned:
#
# * coalescing length-prefixed records into one socket send beats one
#   syscall per record (the reason SocketChannel stages into ``_tx``),
# * all four backends — inproc, process, process-shm, process-socket —
#   produce bit-identical ``SimulationResult.detail``.

import socket as _socket

from repro.parallel import SocketChannel, socket_available


def _write_socket_tier(payload):
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / "BENCH_socket_tier.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def _drain_socket_records(sock, n, conn):
    chan = SocketChannel(sock, peer="bench")
    got = 0
    while got < n and not chan.closed:
        got += len(chan.drain())
    conn.send(("done", got))


def _ship_socket(records_per_send):
    """Wall time to move RECORDS length-prefixed records over a local
    socket pair, ``records_per_send`` records per sendall; the child
    parses them back through SocketChannel.drain."""
    import struct

    ctx = mp.get_context("fork")
    ours, theirs = _socket.socketpair()
    parent_conn, child_conn = ctx.Pipe()
    child = ctx.Process(target=_drain_socket_records,
                        args=(theirs, RECORDS, child_conn),
                        daemon=True)
    child.start()
    theirs.close()
    child_conn.close()
    record = struct.pack("<I", RECORD_BYTES) + bytes(RECORD_BYTES)
    batch = record * records_per_send
    t0 = time.perf_counter()
    for _ in range(RECORDS // records_per_send):
        ours.sendall(batch)
    assert parent_conn.recv()[1] == RECORDS
    elapsed = time.perf_counter() - t0
    child.join(5.0)
    ours.close()
    parent_conn.close()
    return elapsed


@pytest.mark.skipif(not socket_available(),
                    reason="socket transport needs AF_UNIX/fork")
def test_socket_tier_batched_sends_beat_per_record_syscalls():
    per_record_s = min(_ship_socket(1) for _ in range(5))
    batched_s = min(_ship_socket(BATCH) for _ in range(5))
    speedup = per_record_s / batched_s
    payload = {
        "wire_records": RECORDS,
        "wire_record_bytes": RECORD_BYTES,
        "records_per_send": BATCH,
        "socket_per_record_s": per_record_s,
        "socket_batched_s": batched_s,
        "socket_batching_speedup": speedup,
    }
    _write_socket_tier(payload)
    print(f"\nsocket wire: {RECORDS} records, one send each "
          f"{per_record_s:.3f}s vs {BATCH}/send {batched_s:.3f}s "
          f"({speedup:.2f}x)")
    assert speedup > 1.0, payload


@pytest.mark.skipif(not socket_available(),
                    reason="socket transport needs AF_UNIX/fork")
def test_socket_tier_four_way_bit_identity():
    design = _design(2)
    r_inproc = _build(design).run(CYCLES, backend="inproc")
    r_process = ProcessBackend().run(_build(design), CYCLES)
    r_socket = ProcessBackend(transport="socket").run(
        _build(design), CYCLES)
    details = [r_inproc.detail, r_process.detail, r_socket.detail]
    if shm_available():
        details.append(ProcessBackend(transport="shm").run(
            _build(design), CYCLES).detail)
    identical = all(d == details[0] for d in details)
    payload = {
        "identity_partitions": 3,
        "identity_cycles": CYCLES,
        "identity_backends": len(details),
        "detail_bit_identical": identical,
    }
    _write_socket_tier(payload)
    print(f"\nfour-way detail bit-identity over {CYCLES} cycles: "
          f"{identical}")
    assert identical
    assert mp.active_children() == []
