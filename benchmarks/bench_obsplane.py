"""Observability-plane overhead benchmark: the plane must be cheap
when on and free when off.

The service hot path measured here is the *cache-hit submit* — the
request shape a saturated multi-tenant service serves most: fingerprint
probe, archived-record load, terminal job.  Every per-job observability
action (corr-id mint, counter increments, three histogram observes,
lifecycle event emits) sits on exactly this path, so it is where plane
overhead would surface.  Three variants run interleaved
(min-of-repeats, one timing of each per round so clock drift hits them
equally):

* ``bare`` — ``service_metrics=False``, no event log: every
  observability surface is the null object (the guard-only cost),
* ``metrics`` — the shipping default: wall-clock service metrics on,
  event log still the null sink,
* ``logged`` — metrics plus a real JSONL event log (three fsync-free
  appends per cache hit), the full operator configuration.

The gate is ``metrics`` vs ``bare`` — the always-on surface must stay
under 5% of the hot path; the ``logged`` cost is reported for context,
not bounded.  A second, untimed test pins that the full plane actually
*works* under the service (events logged, ``/metrics`` scrapes, corr
id joins job record to archived run) so the committed numbers can
never come from a silently disabled plane.  Measurements merge into
``results/BENCH_service_metrics.json``, gated by
``repro regress`` (:func:`repro.telemetry.regression.check_bench_files`).
"""

import asyncio
import json
import time
from pathlib import Path

from repro.firrtl import print_circuit
from repro.obsplane import read_events
from repro.service import ServiceConfig, ServiceThread, SimulationService
from repro.targets import make_comb_pair_circuit
from repro.telemetry import RunRegistry

SUBMITS = 40
REPEATS = 5
MAX_NULL_OVERHEAD = 0.05

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _merge_results(payload: dict) -> None:
    """Merge ``payload`` into the shared service-metrics results file
    (the two tests each own a disjoint set of keys)."""
    path = RESULTS / "BENCH_service_metrics.json"
    RESULTS.mkdir(parents=True, exist_ok=True)
    existing = {}
    if path.is_file():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2) + "\n")


def _job_config():
    return {"kind": "simulate",
            "circuit_text": print_circuit(make_comb_pair_circuit()),
            "extract": ["right"], "mode": "fast", "cycles": 60}


async def _time_cache_hits(config: ServiceConfig) -> float:
    """Seconds per cache-hit submit: one cold execution warms the
    cache, then ``SUBMITS`` identical submits ride the hit path."""
    service = SimulationService(config)
    await service.start()
    try:
        job_config = _job_config()
        job = await service.submit(job_config)
        if job.state != "done":
            await service.wait(job.job_id)
        t0 = time.perf_counter()
        for _ in range(SUBMITS):
            await service.submit(job_config)
        return (time.perf_counter() - t0) / SUBMITS
    finally:
        await service.shutdown()


def test_null_plane_overhead_under_5pct(tmp_path):
    def variants():
        return [
            ("bare", ServiceConfig(
                workers=1, runs_dir=tmp_path / "bare",
                service_metrics=False)),
            ("metrics", ServiceConfig(
                workers=1, runs_dir=tmp_path / "metrics")),
            ("logged", ServiceConfig(
                workers=1, runs_dir=tmp_path / "logged",
                event_log=tmp_path / "ev.jsonl")),
        ]

    names = [name for name, _ in variants()]
    best = {name: float("inf") for name in names}
    for _ in range(REPEATS):
        for name, config in variants():
            seconds = asyncio.run(_time_cache_hits(config))
            best[name] = min(best[name], seconds)

    null_overhead = best["metrics"] / best["bare"] - 1.0
    logged_overhead = best["logged"] / best["bare"] - 1.0
    payload = {
        "submits": SUBMITS,
        "repeats": REPEATS,
        "bare_submit_s": best["bare"],
        "metrics_submit_s": best["metrics"],
        "logged_submit_s": best["logged"],
        "null_plane_overhead_pct": null_overhead * 100.0,
        "logged_overhead_pct": logged_overhead * 100.0,
        "bound_pct": MAX_NULL_OVERHEAD * 100.0,
    }
    _merge_results(payload)
    print(f"\ncache-hit submit: bare {best['bare'] * 1e6:.1f}µs, "
          f"metrics {null_overhead * 100.0:+.2f}%, "
          f"event-logged {logged_overhead * 100.0:+.2f}%")
    assert null_overhead < MAX_NULL_OVERHEAD, payload


def test_full_plane_functions_under_service(tmp_path):
    """Untimed cross-check: the numbers above describe a plane that
    demonstrably works — events land, /metrics scrapes, the corr id
    joins the job to its archived run and trace spans."""
    config = ServiceConfig(workers=1, runs_dir=tmp_path / "runs",
                           event_log=tmp_path / "ev.jsonl",
                           trace_events=64)
    thread = ServiceThread(config)
    try:
        client = thread.client()
        record = client.wait(
            client.submit(_job_config())["job_id"])
        hit = client.wait(
            client.submit(_job_config(),
                          tenant="reader")["job_id"])
        metrics_text = client.metrics()
    finally:
        thread.stop()

    assert record["state"] == "done"
    assert hit["source"] == "cache"
    entries = list(read_events(tmp_path / "ev.jsonl"))
    run_record = RunRegistry(tmp_path / "runs").load(
        record["run_id"])
    obs = run_record["obs"]
    scrape_ok = (
        'repro_service_cache_hits_total{tenant="reader"} 1'
        in metrics_text
        and 'phase="execution"' in metrics_text)
    payload = {
        "events_logged": len(entries),
        "trace_spans_archived": len(obs.get("trace_events", [])),
        "metrics_scrape_ok": bool(scrape_ok),
        "corr_joined": bool(obs.get("corr_id")
                            == record["corr_id"]),
    }
    _merge_results(payload)
    print(f"\nfull plane: {payload['events_logged']} events, "
          f"{payload['trace_spans_archived']} archived spans, "
          f"scrape_ok={payload['metrics_scrape_ok']}, "
          f"corr_joined={payload['corr_joined']}")
    assert payload["events_logged"] >= 8
    assert payload["trace_spans_archived"] > 0
    assert payload["metrics_scrape_ok"]
    assert payload["corr_joined"]
