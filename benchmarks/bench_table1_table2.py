"""Benchmarks regenerating Table I (core parameters/areas) and Table II
(cycle-exactness validation)."""

from repro.experiments import table1, table2


def test_table1(benchmark):
    result = benchmark(table1.run)
    text = table1.format_table(result)
    print("\n" + text)
    assert "GC40 BOOM" in text


def test_table2(benchmark):
    rows = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    print("\n" + table2.format_table(rows))
    # the paper's headline: exact-mode is always "No Error"
    assert all(r.exact_error_pct == 0.0 for r in rows)
    by_name = {r.name: r for r in rows}
    sha3 = by_name["Sha3Accel (encryption)"]
    assert all(sha3.fast_error_pct >= r.fast_error_pct
               for r in rows)
