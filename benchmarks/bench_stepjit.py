"""Compiled step plane benchmark: JIT vs interpreter per-cycle rate.

Measures the wavefront hot loop with the compiled step functions
(`repro.harness.stepjit`) on and off, on the Sec. V-A 24-core ring-NoC
case study plus three mill-generated ring scenarios, and writes
``results/BENCH_stepjit.json``.  ``repro regress`` pins two claims from
the committed artifact:

* **speedup floor** — the 24-core case study must run at least
  ``speedup_floor`` (5x) faster per target cycle with the JIT on.  The
  measured margin is much larger: the fused RTL kernels evaluate only
  each output's live cone with locals end-to-end, and the quiescence
  tier skips the kernel call entirely while a partition's registers are
  at a fixed point under repeating inputs — both exact, neither
  available to the interpreter.
* **identity** — the JIT-on and JIT-off runs of every measured
  configuration produce bit-identical functional digests (tokens,
  per-partition cycles, the full FMR ``detail``, recorded outputs).

Methodology: for each configuration one JIT and one interpreter
simulation are built, both warmed past compile/caching effects
(``WARMUP`` cycles — kernel codegen is a one-time cost amortized over a
run, and the honest comparison is the steady-state rate), then timed
over ``REPS`` interleaved windows of ``WINDOW`` cycles so OS noise hits
both sides alike.  Per-side rate is the median window; digests compare
final cumulative state, so every timed cycle is also identity-checked.
"""

import json
import statistics
import time
from pathlib import Path

from repro.fireripper import FAST, FireRipper, NoCPartitionSpec, PartitionSpec
from repro.fuzz import GeneratorKnobs, functional_digest, generate_scenario, make_sim
from repro.platform import QSFP_AURORA

SEED = 7
WARMUP = 100
WINDOW = 700
REPS = 3
SPEEDUP_FLOOR = 5.0
MILL_TILES = ((2, "small"), (4, "medium"), (6, "large"))

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _build_24core():
    """The Sec. V-A mini case study: 24 TinyCore tiles on a ring NoC,
    split across 4 FPGAs + base (same recipe as
    ``repro.experiments.casestudy_24core``, fixed tiles)."""
    from repro.experiments.casestudy_24core import _make_ring_soc_with_bug
    from repro.targets.programs import sender_program, sink_program

    n_tiles, per_tile = 24, 2
    programs = [sender_program(per_tile) for _ in range(n_tiles)]
    circuit = _make_ring_soc_with_bug(
        n_tiles, programs, sink_program(n_tiles * per_tile), False)
    groups = [list(range(i * 6, (i + 1) * 6)) for i in range(4)]
    spec = PartitionSpec(mode=FAST, noc=NoCPartitionSpec.make(groups))
    return FireRipper(spec).compile(circuit).build_simulation(
        QSFP_AURORA, host_freq_mhz=30.0, record_outputs=True)


def _measure(build, warmup=WARMUP, window=WINDOW, reps=REPS):
    """Interleaved JIT/interpreter windows over one pair of sims."""
    sim_jit, sim_int = build(), build()
    sim_jit.stepjit, sim_int.stepjit = True, False
    cursor = warmup
    sim_jit.run(cursor)
    sim_int.run(cursor)
    jit_rates, int_rates = [], []
    for _ in range(reps):
        cursor += window
        t0 = time.perf_counter()
        r_jit = sim_jit.run(cursor)
        jit_rates.append(window / (time.perf_counter() - t0))
        t0 = time.perf_counter()
        r_int = sim_int.run(cursor)
        int_rates.append(window / (time.perf_counter() - t0))
    identical = functional_digest(sim_jit, r_jit) \
        == functional_digest(sim_int, r_int)
    jit_rate = statistics.median(jit_rates)
    int_rate = statistics.median(int_rates)
    return {
        "partitions": len(sim_jit.partitions),
        "cycles_timed": window * reps,
        "jit_cycles_per_s": round(jit_rate),
        "interp_cycles_per_s": round(int_rate),
        "speedup": round(jit_rate / int_rate, 2),
        "jit_rates": [round(r) for r in jit_rates],
        "interp_rates": [round(r) for r in int_rates],
        "fused_kernel_partitions": sum(
            "fused-kernel" in v and not v.startswith("interpreted")
            and "(0 fused-kernel)" not in v
            for v in sim_jit.last_jit_report.values()),
        "detail_bit_identical": identical,
    }


def _mill_case(tiles):
    knobs = GeneratorKnobs(shapes=("ring",), max_tiles=tiles,
                           min_cycles=60, max_cycles=60)
    scenario = generate_scenario(SEED, 0, knobs)
    return lambda: make_sim(scenario)


def test_stepjit_speedup(paper_scale):
    window = WINDOW * (3 if paper_scale else 1)
    case = _measure(_build_24core, window=window)

    mill = {}
    for tiles, tag in MILL_TILES:
        mill[tag] = _measure(_mill_case(tiles), window=window)

    payload = {
        "seed": SEED,
        "warmup_cycles": WARMUP,
        "window_cycles": window,
        "reps": REPS,
        "speedup_floor": SPEEDUP_FLOOR,
        "case_study_24core": case,
        "mill_sizes": mill,
        "speedup": case["speedup"],
        "detail_bit_identical": case["detail_bit_identical"] and all(
            m["detail_bit_identical"] for m in mill.values()),
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "BENCH_stepjit.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    print(f"\nstep-JIT 24-core: {case['jit_cycles_per_s']} cyc/s vs "
          f"{case['interp_cycles_per_s']} cyc/s interpreted "
          f"({case['speedup']}x)")
    for tag, m in mill.items():
        print(f"  mill {tag}: {m['speedup']}x "
              f"({m['partitions']} partitions)")

    assert payload["detail_bit_identical"]
    assert case["speedup"] >= SPEEDUP_FLOOR
    # the mill scenarios are trend-watching (smaller designs amortize
    # less per kernel call) but must never regress past the interpreter
    assert all(m["speedup"] > 1.0 for m in mill.values())
