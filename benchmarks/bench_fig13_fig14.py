"""Benchmarks regenerating Fig. 13 (FPGA-count sweep) and Fig. 14
(FAME-5 amortization)."""

from repro.experiments import fig13, fig14


def test_fig13_fpga_count(benchmark, paper_scale):
    counts = (2, 3, 4, 5)
    freqs = (30.0, 90.0) if paper_scale else (30.0,)
    points = benchmark.pedantic(
        fig13.run, kwargs={"fpga_counts": counts, "freqs_mhz": freqs,
                           "cycles": 80},
        rounds=1, iterations=1)
    print("\n" + fig13.format_table(points))
    for freq in freqs:
        series = [p.measured_hz for p in points
                  if p.host_freq_mhz == freq]
        # mild monotone degradation as the ring grows
        assert series[0] > series[-1]
        assert series[-1] > series[0] * 0.5  # "minor timing issues"


def test_fig14_fame5(benchmark, paper_scale):
    tiles = (1, 2, 3, 4, 5, 6) if paper_scale else (1, 2, 4, 6)
    freqs = fig14.SOC_FREQS_MHZ if paper_scale else (20.0,)
    points = benchmark.pedantic(
        fig14.run, kwargs={"tile_counts": tiles,
                           "soc_freqs_mhz": freqs, "cycles": 80},
        rounds=1, iterations=1)
    print("\n" + fig14.format_table(points))
    for freq in freqs:
        # sixfold duplication costs ~2x, not 6x: the amortization claim
        factor = fig14.degradation_factor(points, freq)
        assert factor < 2.3
        series = {p.n_tiles: p.measured_hz for p in points
                  if p.soc_freq_mhz == freq}
        # the marginal cost of extra threads shrinks (sub-linear)
        assert series[2] / series[max(tiles)] < max(tiles) / 2 / 2
