"""Socket transport tier: channel framing, rendezvous, backpressure,
backend selection, and bit-identity with every other backend.

The socket tier's correctness claim is the same as the pipe and shm
tiers': the carrier must be invisible.  These tests pin the invariants
that rests on — length-prefixed records surviving arbitrary
fragmentation, torn streams detected as peer death rather than
corrupt frames, the pre-bound listener rendezvous connecting every
linked pair exactly once, and ``max_pending`` backpressure feeding the
conduit's wait-step loop instead of deadlocking it.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    SimulationError,
    SocketSetupError,
    UnknownBackendError,
)
from repro.parallel import (
    ProcessBackend,
    SocketChannel,
    connect_with_backoff,
    establish_channels,
    fork_available,
    make_listeners,
    normalize_backend,
    socket_available,
)
from repro.parallel.socket_transport import socket_timeouts

from .conftest import build_star_sim

_LEN = struct.Struct("<I")


def _record(payload: bytes) -> bytes:
    return _LEN.pack(len(payload)) + payload


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestSocketChannel:
    def test_roundtrip_multiple_records(self, pair):
        a, b = pair
        tx, rx = SocketChannel(a, "rx"), SocketChannel(b, "tx")
        for payload in (b"alpha", b"", b"x" * 5000):
            assert tx.try_write(payload)
        got = []
        deadline = time.monotonic() + 5.0
        while len(got) < 3 and time.monotonic() < deadline:
            tx.try_flush()
            got += rx.drain()
        assert got == [b"alpha", b"", b"x" * 5000]
        assert rx.records_in == 3
        assert tx.records_out == 3

    def test_partial_reads_reassemble(self, pair):
        """A record delivered one byte at a time still comes out
        whole — the length prefix drives reassembly."""
        a, b = pair
        rx = SocketChannel(b, "tx")
        wire = _record(b"fragmented-token") + _record(b"second")
        got = []
        for i in range(len(wire)):
            a.sendall(wire[i:i + 1])
            got += rx.drain()
        assert got == [b"fragmented-token", b"second"]
        assert not rx.closed

    def test_disconnect_mid_record_sets_closed(self, pair):
        """A peer dying mid-record closes the channel; the torn tail
        is never surfaced as a (corrupt) record."""
        a, b = pair
        rx = SocketChannel(b, "tx")
        torn = _record(b"complete") + _record(b"never-finished")[:7]
        a.sendall(torn)
        a.close()
        got = []
        deadline = time.monotonic() + 5.0
        while not rx.closed and time.monotonic() < deadline:
            got += rx.drain()
        assert got == [b"complete"]
        assert rx.closed

    def test_drain_after_close_returns_nothing(self, pair):
        a, b = pair
        rx = SocketChannel(b, "tx")
        a.close()
        while not rx.closed:
            rx.drain()
        assert rx.drain() == []

    def test_backpressure_refuses_then_recovers(self, pair):
        """With the peer not draining, staged bytes hit max_pending
        and try_write refuses — the signal the conduit's wait-step
        loop spins on.  Draining the peer un-sticks it."""
        a, b = pair
        tx = SocketChannel(a, "rx", max_pending=1 << 12)
        payload = b"y" * 1024
        accepted = 0
        while tx.try_write(payload):
            accepted += 1
            assert accepted < 10_000, "backpressure never engaged"
        rx = SocketChannel(b, "tx")
        drained = []
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            drained += rx.drain()
            try:
                if tx.try_flush():
                    break
            except OSError:
                pytest.fail("peer is alive; flush must not raise")
        assert tx.try_write(payload)
        drained += rx.drain()
        assert set(drained) == {payload}

    def test_write_to_dead_peer_drops_silently(self, pair):
        """Writes to an already-closed channel are accepted and
        dropped — dead-peer accounting belongs to the worker, not the
        carrier."""
        a, b = pair
        tx = SocketChannel(a, "rx")
        b.close()
        deadline = time.monotonic() + 5.0
        while not tx.closed and time.monotonic() < deadline:
            try:
                tx.try_write(b"z" * 4096)
            except OSError:
                break
        tx.closed = True
        assert tx.try_write(b"after-death")


class TestConnectBackoff:
    def test_connect_failure_raises_setup_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            unused = probe.getsockname()
        with pytest.raises(SocketSetupError, match="cannot connect"):
            connect_with_backoff(socket.AF_INET, unused, timeout=0.3)

    def test_backoff_rides_out_late_listener(self):
        """The listener appearing after the first attempts still gets
        connected — setup-time reconnection with bounded backoff."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            address = probe.getsockname()
        ready = threading.Event()

        def listen_late():
            time.sleep(0.15)
            server = socket.socket()
            server.bind(address)
            server.listen(1)
            ready.set()
            conn, _ = server.accept()
            conn.close()
            server.close()

        t = threading.Thread(target=listen_late, daemon=True)
        t.start()
        sock = connect_with_backoff(socket.AF_INET, address,
                                    timeout=5.0)
        sock.close()
        t.join(5.0)
        assert ready.is_set()


@pytest.mark.skipif(not socket_available(),
                    reason="socket transport unavailable")
class TestRendezvous:
    def test_listeners_only_for_owners(self):
        listeners, addresses, tmpdir = make_listeners(
            {"a": 2, "c": 1}, "tcp")
        try:
            assert set(listeners) == {"a", "c"}
            assert set(addresses) == {"a", "c"}
            assert tmpdir is None
        finally:
            for sock in listeners.values():
                sock.close()

    @pytest.mark.skipif(not fork_available(),
                        reason="rendezvous needs forked workers")
    @pytest.mark.parametrize("family", ["tcp", "unix"])
    def test_three_way_rendezvous(self, family):
        """a<->b, a<->c, b<->c fully connected via forked processes
        standing in for workers (each fork gets its own listener
        copies, as in a real spawn); every pair ends up with exactly
        one channel and records flow both ways."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        order = ["a", "b", "c"]
        owners = {"a": 2, "b": 1}
        listeners, addresses, tmpdir = make_listeners(owners, family)
        connect_timeout, read_timeout = socket_timeouts()
        plan = {"family": family, "listeners": listeners,
                "addresses": addresses,
                "connect_timeout": connect_timeout,
                "read_timeout": read_timeout}

        def run(name, conn):
            i = order.index(name)
            chans = establish_channels(name, order[:i],
                                       order[i + 1:], plan)
            for peer, chan in chans.items():
                assert chan.try_write(f"{name}->{peer}".encode())
            got = {}
            deadline = time.monotonic() + read_timeout
            while len(got) < len(chans) \
                    and time.monotonic() < deadline:
                for peer, chan in chans.items():
                    chan.try_flush()
                    for rec in chan.drain():
                        got[peer] = rec.decode()
            conn.send((name, got))
            conn.recv()  # hold channels open until everyone reported
            for chan in chans.values():
                chan.close()

        pipes = {n: ctx.Pipe() for n in order}
        procs = [ctx.Process(target=run, args=(n, pipes[n][1]),
                             daemon=True) for n in order]
        for p in procs:
            p.start()
        for sock in listeners.values():
            sock.close()
        results = {}
        for name in order:
            got_name, got = pipes[name][0].recv()
            results[got_name] = got
        for name in order:
            pipes[name][0].send("done")
        for p in procs:
            p.join(30.0)
            assert p.exitcode == 0
        for name in order:
            peers = [p for p in order if p != name]
            assert sorted(results[name]) == peers
            for peer in peers:
                assert results[name][peer] == f"{peer}->{name}"


class TestBackendSelection:
    def test_unknown_backend_argument_raises(self):
        sim = build_star_sim()
        with pytest.raises(UnknownBackendError) as err:
            sim.run(20, backend="process-sock")
        assert "process-socket" in str(err.value)
        assert "valid backends" in str(err.value)

    def test_unknown_env_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        sim = build_star_sim()
        with pytest.raises(UnknownBackendError, match="REPRO_BACKEND"):
            sim.run(20)

    def test_aliases_normalize(self):
        assert normalize_backend("socket") == "process-socket"
        assert normalize_backend("shm") == "process-shm"
        assert normalize_backend(" Process ") == "process"
        with pytest.raises(UnknownBackendError):
            normalize_backend(None)


@pytest.mark.skipif(not (fork_available() and socket_available()),
                    reason="socket backend needs fork + sockets")
class TestSocketBackend:
    CYCLES = 300

    def test_four_way_detail_bit_identity(self):
        results = {}
        for backend in ("inproc", "process", "process-shm",
                        "process-socket"):
            sim = build_star_sim(3)
            results[backend] = sim.run(self.CYCLES, backend=backend)
            assert sim.last_run_backend == backend
        reference = results["inproc"].detail
        for backend, result in results.items():
            assert result.detail == reference, backend

    def test_unix_family_matches(self):
        reference = build_star_sim().run(self.CYCLES,
                                         backend="inproc")
        backend = ProcessBackend(transport="socket",
                                 socket_family="unix")
        result = backend.run(build_star_sim(), self.CYCLES)
        assert result.detail == reference.detail

    def test_env_selects_socket_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process-socket")
        sim = build_star_sim()
        sim.run(60)
        assert sim.last_run_backend == "process-socket"

    def test_killed_worker_surfaces_and_cleans_up(self):
        import multiprocessing as mp

        from repro.errors import WorkerError

        backend = ProcessBackend(transport="socket",
                                 worker_faults={"fpga1": ("kill", 3)})
        with pytest.raises(WorkerError) as err:
            backend.run(build_star_sim(), self.CYCLES)
        assert err.value.partition == "fpga1"
        assert mp.active_children() == []

    def test_stop_callback_rejected(self):
        sim = build_star_sim()
        with pytest.raises(SimulationError, match="stop callback"):
            sim.run(40, backend="process-socket",
                    stop=lambda s: False)
