"""Unit tests for the frame/credit message layer."""

import pytest

from repro.parallel import EffectFrame, FrameConduit, FrameInbox


class _FakeConn:
    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)


def _frame(k, deliveries=(), credits=()):
    return EffectFrame("peer", k, list(deliveries), list(credits))


class TestEffectFrame:
    def test_empty_detection(self):
        assert _frame(1).empty
        assert not _frame(1, deliveries=[(0, ("a", "in"), {}, 0.0, 0.0)]).empty
        assert not _frame(1, credits=[(("a", "in"), 5.0)]).empty


class TestFrameConduit:
    def test_batches_until_flush_interval(self):
        conn = _FakeConn()
        conduit = FrameConduit(conn, "peer", flush_interval=4)
        for k in range(1, 4):
            conduit.push(_frame(k))
        assert conn.sent == []          # 3 of 4 buffered
        conduit.push(_frame(4))
        assert len(conn.sent) == 1      # full batch flushed as ONE message
        kind, frames, ack = conn.sent[0]
        assert kind == "frames"
        assert [f.pass_no for f in frames] == [1, 2, 3, 4]
        assert conduit.messages_sent == 1

    def test_explicit_flush_drains_partial_batch(self):
        conn = _FakeConn()
        conduit = FrameConduit(conn, "peer", flush_interval=16)
        conduit.push(_frame(1))
        conduit.flush()
        assert len(conn.sent) == 1
        conduit.flush()                  # idempotent on empty buffer
        assert len(conn.sent) == 1

    def test_piggybacked_ack_uses_hook(self):
        conn = _FakeConn()
        conduit = FrameConduit(conn, "peer", flush_interval=1)
        conduit.ack_source = lambda: 42
        conduit.push(_frame(1))
        assert conn.sent[0][2] == 42

    def test_window_blocks_unacked_runahead(self):
        conduit = FrameConduit(_FakeConn(), "peer",
                               flush_interval=2, window=8)
        assert conduit.window_open(8)
        assert not conduit.window_open(9)
        conduit.note_ack(5)
        assert conduit.window_open(13)
        conduit.note_ack(3)              # stale acks never move backwards
        assert conduit.acked_through == 5

    def test_flush_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameConduit(_FakeConn(), "peer", flush_interval=0)


class TestFrameInbox:
    def test_offer_take_tracks_applied_watermark(self):
        inbox = FrameInbox("peer")
        inbox.offer([_frame(1), _frame(2)])
        assert inbox.has(1) and inbox.has(2) and not inbox.has(3)
        assert inbox.take(1).pass_no == 1
        assert inbox.applied_through == 1
        inbox.take(2)
        assert inbox.applied_through == 2
        assert not inbox.has(1)

    def test_standalone_ack_owed_when_reverse_idle(self):
        inbox = FrameInbox("peer", ack_every=3)
        inbox.offer([_frame(k) for k in range(1, 4)])
        inbox.take(1)
        inbox.take(2)
        assert inbox.standalone_ack_due() is None
        inbox.take(3)
        assert inbox.standalone_ack_due() == 3
        inbox.note_ack_sent(3)
        assert inbox.standalone_ack_due() is None
