"""Experiment-level fan-out pool."""

import os

import pytest

from repro.errors import DeadlockError, WorkerError
from repro.parallel import fanout
from repro.parallel import pool as pool_mod


class TestFanout:
    def test_results_in_input_order(self):
        thunks = [lambda i=i: i * i for i in range(7)]
        assert fanout(thunks, jobs=3) == [i * i for i in range(7)]

    def test_jobs_one_is_sequential(self):
        pids = []
        fanout([lambda: pids.append(os.getpid()) or 0] * 3, jobs=1)
        # ran in this process: the side effect is visible here
        assert pids == [os.getpid()] * 3

    def test_worker_error_rebuilt_with_task_label(self):
        def boom():
            raise ValueError("bad sweep point")
        with pytest.raises(WorkerError) as err:
            fanout([lambda: 1, boom, lambda: 3], jobs=2,
                   labels=["a", "b", "c"])
        assert err.value.partition == "b"
        assert "ValueError" in str(err.value)
        assert "bad sweep point" in str(err.value)

    def test_repro_errors_survive_the_fork_boundary(self):
        def sim_fails():
            raise DeadlockError("left waits on right", host_cycle=3)
        with pytest.raises(DeadlockError, match="waits on"):
            fanout([sim_fails, lambda: 2], jobs=2)

    def test_dead_pool_worker_is_reported(self):
        def die():
            os._exit(17)
        with pytest.raises(WorkerError, match="died|exited"):
            fanout([die, lambda: 2], jobs=2)

    def test_nested_fanout_degrades_to_sequential(self, monkeypatch):
        from repro.parallel import worker as worker_mod
        monkeypatch.setattr(worker_mod, "IN_WORKER", True)
        pid = os.getpid()
        pids = fanout([os.getpid, os.getpid], jobs=2)
        assert pids == [pid, pid]


class TestRunnerJobs:
    def test_runner_accepts_jobs_flag(self, capsys):
        from repro.experiments.runner import main
        rc = main(["table1", "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_cli_experiments_subcommand_delegates(self, capsys):
        from repro.cli import main
        rc = main(["experiments", "table1", "--jobs", "2"])
        assert rc == 0
        assert "table1" in capsys.readouterr().out
