"""RunSupervisor driving segments through the process backend."""

import multiprocessing as mp

import pytest

from repro.errors import WorkerError
from repro.parallel import ProcessBackend, fork_available
from repro.reliability import RunSupervisor, harden_links

from .conftest import build_star_sim

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs fork")


def _build():
    sim = build_star_sim(2)
    harden_links(sim)
    return sim


class _DieOnceBackend(ProcessBackend):
    """Kills one worker during the first segment only — models a
    transient host failure the supervisor must roll back across."""

    def __init__(self):
        super().__init__()
        self._armed = True

    def run(self, sim, target_cycles, **kwargs):
        self.worker_faults = \
            {"fpga1": ("kill", 4)} if self._armed else {}
        self._armed = False
        return super().run(sim, target_cycles, **kwargs)


class TestSupervisedParallelRuns:
    def test_backend_segments_bit_identical(self):
        ref = RunSupervisor(_build, checkpoint_every=6).run(20)
        par = RunSupervisor(_build, checkpoint_every=6,
                            backend=ProcessBackend()).run(20)
        assert par.result.detail == ref.result.detail
        assert par.output_log == ref.output_log
        assert par.rollbacks == 0
        assert mp.active_children() == []

    def test_worker_death_rolls_back_and_completes(self):
        ref = RunSupervisor(_build, checkpoint_every=6).run(20)
        par = RunSupervisor(_build, checkpoint_every=6,
                            backend=_DieOnceBackend()).run(20)
        assert par.rollbacks == 1
        kinds = par.event_kinds()
        assert "stall" in kinds and "rollback" in kinds
        stall = next(e for e in par.events if e.kind == "stall")
        assert "fpga1" in stall.note and "died" in stall.note
        assert par.result.detail == ref.result.detail
        assert par.output_log == ref.output_log
        assert mp.active_children() == []

    def test_persistent_worker_death_gives_up(self):
        sup = RunSupervisor(
            _build, checkpoint_every=6, max_rollbacks=1,
            backend=ProcessBackend(
                worker_faults={"fpga1": ("kill", 4)}))
        with pytest.raises(WorkerError):
            sup.run(20)
        assert mp.active_children() == []

    def test_crash_injection_through_backend(self):
        ref = RunSupervisor(_build, checkpoint_every=6,
                            crash_at_cycles=[9]).run(20)
        par = RunSupervisor(_build, checkpoint_every=6,
                            crash_at_cycles=[9],
                            backend=ProcessBackend()).run(20)
        assert par.event_kinds() == ref.event_kinds()
        assert par.result.detail == ref.result.detail
        assert par.output_log == ref.output_log
        assert mp.active_children() == []
