"""Shared-memory transport tier: rings, the binary frame codec, and the
ring-backed conduit's flow-control accounting.

The rings are SPSC and the packer is lossless by construction; these
tests pin the invariants the backend's bit-identity rests on —
record framing across wrap-around, exact float/word round trips, and
conduit semantics matching :class:`~repro.parallel.channels.FrameConduit`.
"""

from __future__ import annotations

import pytest

from repro.libdn import ChannelSpec, codec_for
from repro.parallel import shm_available
from repro.parallel.channels import EffectFrame
from repro.parallel.shm import FramePacker, RingFull, ShmConduit, ShmRing

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory missing")


@pytest.fixture
def ring():
    r = ShmRing.create(256)
    yield r
    r.close()
    r.unlink()


class TestShmRing:
    def test_fifo_order(self, ring):
        assert ring.read_all() == []
        assert ring.try_write(b"alpha")
        assert ring.try_write(b"beta")
        assert ring.read_all() == [b"alpha", b"beta"]
        assert ring.read_all() == []

    def test_empty_payload(self, ring):
        assert ring.try_write(b"")
        assert ring.read_all() == [b""]

    def test_full_ring_rejects_then_accepts_after_drain(self, ring):
        payload = b"x" * 60  # 64 bytes with the length prefix
        writes = 0
        while ring.try_write(payload):
            writes += 1
        assert writes == 4  # 256 // 64
        assert not ring.try_write(payload)
        assert ring.read_all() == [payload] * writes
        assert ring.try_write(payload)

    def test_wrap_around_preserves_records(self, ring):
        """Records larger than the space before the wrap point split
        across the boundary and reassemble exactly."""
        for step in range(64):
            payload = bytes([step]) * (40 + step % 17)
            assert ring.try_write(payload)
            assert ring.read_all() == [payload]

    def test_oversized_record_raises(self, ring):
        with pytest.raises(RingFull):
            ring.try_write(b"y" * 300)


def _packer():
    spec_a = ChannelSpec.make("in", [("x", 8), ("y", 16)])
    spec_b = ChannelSpec.make("in", [("v", 48)])

    class _Link:
        def __init__(self, dst):
            self.dst = dst

    class _Sim:
        links = [_Link(("P1", "in")), _Link(("P2", "in"))]
        _in_channel_by_key = {
            ("P1", "in"): type("C", (), {"codec": codec_for(spec_a)})(),
            ("P2", "in"): type("C", (), {"codec": codec_for(spec_b)})(),
        }

    return FramePacker.from_sim(_Sim())


class TestFramePacker:
    def test_frames_round_trip(self):
        packer = _packer()
        frames = [
            EffectFrame("P0", 7,
                        deliveries=[(0, ("P1", "in"), 0xABCDEF, 12.5,
                                     3.25),
                                    (1, ("P2", "in"),
                                     (1 << 48) - 1, 0.1, 0.0)],
                        credits=[(("P1", "in"), 99.75)]),
            EffectFrame("P0", 8),  # empty service frame
        ]
        kind, out, ack = packer.unpack(
            packer.pack_frames(frames, ack=41), "P0")
        assert kind == "frames" and ack == 41
        assert len(out) == 2
        assert out[0].sender == "P0" and out[0].pass_no == 7
        assert out[0].deliveries == frames[0].deliveries
        assert out[0].credits == frames[0].credits
        assert out[1].empty and out[1].pass_no == 8

    def test_floats_round_trip_exactly(self):
        packer = _packer()
        ns = 1234.000000000000227373675443232059478759765625
        frames = [EffectFrame("P0", 1,
                              deliveries=[(0, ("P1", "in"), 1, ns, ns)],
                              credits=[(("P2", "in"), ns)])]
        _, out, _ = packer.unpack(packer.pack_frames(frames, 0), "P0")
        _, _, word, arrive, rx = out[0].deliveries[0]
        assert (arrive, rx) == (ns, ns)
        assert out[0].credits[0] == (("P2", "in"), ns)

    def test_ack_record(self):
        packer = _packer()
        assert packer.unpack(packer.pack_ack(17), "P0") == ("ack", 17)


class TestShmConduit:
    def test_flush_and_window_accounting(self, ring):
        packer = _packer()
        conduit = ShmConduit(ring, "P1", packer, flush_interval=2)
        conduit.ack_source = lambda: 5
        frame = EffectFrame("P0", 1,
                            deliveries=[(0, ("P1", "in"), 7, 1.0, 0.5)])
        conduit.push(frame)
        assert ring.read_all() == []  # buffered below the batch size
        conduit.push(EffectFrame("P0", 2))
        records = ring.read_all()  # auto-flushed on a full batch
        assert len(records) == 1
        kind, frames, ack = packer.unpack(records[0], "P0")
        assert kind == "frames" and ack == 5
        assert [f.pass_no for f in frames] == [1, 2]
        assert conduit.messages_sent == 1
        assert conduit.effects_sent == 1
        assert conduit.pushed_through == 2
        assert conduit.window_open(2)
        assert not conduit.window_open(conduit.window + 1)
        conduit.note_ack(2)
        assert conduit.acked_through == 2
        assert conduit.window_open(conduit.window + 1)

    def test_full_ring_abandons_on_wait_step(self):
        ring = ShmRing.create(64)
        try:
            packer = _packer()
            steps = []
            conduit = ShmConduit(ring, "P1", packer, flush_interval=1,
                                 wait_step=lambda: steps.append(1)
                                 or len(steps) >= 3)
            assert ring.try_write(b"x" * 40)  # leave too little space
            frame = EffectFrame(
                "P0", 1,
                deliveries=[(1, ("P2", "in"), 0, 0.0, 0.0)])
            conduit.push(frame)  # flushes; does not fit the free space
            assert len(steps) == 3  # spun until told to abandon
            assert conduit.buffer == []
            assert conduit.messages_sent == 0
        finally:
            ring.close()
            ring.unlink()

    def test_send_ack_round_trips(self, ring):
        packer = _packer()
        conduit = ShmConduit(ring, "P1", packer)
        conduit.send_ack(9)
        (record,) = ring.read_all()
        assert packer.unpack(record, "P1") == ("ack", 9)
