"""Process backend: bit-identical results, failure surfacing, teardown.

Every test that runs both backends asserts *equality of the full result
detail* — the bar is bit-identity with the in-process harness, not
statistical agreement.
"""

import multiprocessing as mp
import os

import pytest

from repro.errors import (
    DeadlockError,
    SimulationError,
    UnsupportedTopologyError,
    WorkerError,
)
from repro.firrtl import make_circuit
from repro.fireripper import FAST
from repro.harness import Link, Partition, PartitionedSimulation
from repro.libdn import ChannelSpec, LIBDNHost
from repro.parallel import ProcessBackend, auto_backend, fork_available
from repro.platform import QSFP_AURORA
from repro.reliability import (
    FaultSpec,
    InjectedCrash,
    capture_state,
    harden_links,
    restore_state,
)
from repro.rtl import Simulator
from repro.targets.combo import WIDTH, make_comb_left, make_comb_right

from .conftest import build_star_sim

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs fork")


def _no_orphans():
    for child in mp.active_children():
        child.join(5.0)
    return mp.active_children() == []


def _deadlock_sim():
    """Fig. 2a aggregated comb boundary: stalls on the first pass."""
    left = LIBDNHost(
        Simulator(make_circuit(make_comb_left(), [])),
        [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
        [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                          deps=["in"])],
        name="left")
    right = LIBDNHost(
        Simulator(make_circuit(make_comb_right(), [])),
        [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])],
        [ChannelSpec.make("out", [("q", WIDTH), ("ya", WIDTH)],
                          deps=["in"])],
        name="right")
    links = [
        Link(("L", "out"), ("R", "in"), QSFP_AURORA,
             rename={"d": "f", "s": "c"}),
        Link(("R", "out"), ("L", "in"), QSFP_AURORA,
             rename={"q": "e", "ya": "a"}),
    ]
    return PartitionedSimulation(
        [Partition("L", left), Partition("R", right)], links)


class TestBitIdentity:
    @pytest.mark.parametrize("n_leaves", [1, 2, 3])
    def test_detail_matches_inproc(self, n_leaves):
        s1 = build_star_sim(n_leaves)
        r1 = s1.run(12, backend="inproc")
        s2 = build_star_sim(n_leaves)
        r2 = ProcessBackend().run(s2, 12)
        assert r2.detail == r1.detail
        assert r2.target_cycles == r1.target_cycles
        assert r2.tokens_transferred == r1.tokens_transferred
        assert r2.per_partition_cycles == r1.per_partition_cycles
        assert s2.output_log == s1.output_log
        assert s2.last_run_backend == "process"
        assert s1.last_run_backend == "inproc"

    def test_fast_mode_matches_inproc(self):
        s1 = build_star_sim(2, mode=FAST)
        r1 = s1.run(10, backend="inproc")
        s2 = build_star_sim(2, mode=FAST)
        r2 = ProcessBackend().run(s2, 10)
        assert r2.detail == r1.detail
        assert s2.output_log == s1.output_log

    def test_reliable_links_with_faults_match(self):
        fault = FaultSpec(drop_rate=0.2, corrupt_rate=0.1, seed=11)
        s1 = build_star_sim(2)
        harden_links(s1, fault)
        r1 = s1.run(12, backend="inproc")
        s2 = build_star_sim(2)
        harden_links(s2, fault)
        r2 = ProcessBackend().run(s2, 12)
        assert r2.detail == r1.detail
        assert s2.output_log == s1.output_log

    def test_tiny_flush_interval_same_results(self):
        """Per-token messaging (flush_interval=1) changes wire traffic
        only — never results."""
        s1 = build_star_sim(2)
        r1 = s1.run(8, backend="inproc")
        s2 = build_star_sim(2)
        r2 = ProcessBackend(flush_interval=1).run(s2, 8)
        assert r2.detail == r1.detail

    def test_run_backend_process_dispatches(self):
        s1 = build_star_sim(2)
        r1 = s1.run(8, backend="inproc")
        s2 = build_star_sim(2)
        r2 = s2.run(8, backend="process")
        assert s2.last_run_backend == "process"
        assert r2.detail == r1.detail


class TestCheckpointInterop:
    def test_parallel_checkpoint_restores_into_inproc(self):
        """A mid-run snapshot of a process-backed run continues in the
        in-process backend to the same final state, and vice versa."""
        ref = build_star_sim(2)
        ref.run(20, backend="inproc")

        first = build_star_sim(2)
        ProcessBackend().run(first, 10)
        state = capture_state(first)

        resumed = build_star_sim(2)
        restore_state(resumed, state)
        r = resumed.run(20, backend="inproc")
        assert r.detail == ref.result().detail
        assert resumed.output_log == ref.output_log

    def test_inproc_checkpoint_restores_into_parallel(self):
        ref = build_star_sim(2)
        ref.run(20, backend="inproc")

        first = build_star_sim(2)
        first.run(10, backend="inproc")
        state = capture_state(first)

        resumed = build_star_sim(2)
        restore_state(resumed, state)
        r = ProcessBackend().run(resumed, 20)
        assert r.detail == ref.result().detail
        assert resumed.output_log == ref.output_log


class TestFailureSurfacing:
    def test_killed_worker_surfaces_and_leaves_no_orphans(self):
        sim = build_star_sim(2)
        backend = ProcessBackend(
            worker_faults={"fpga1": ("kill", 4)})
        with pytest.raises(WorkerError) as err:
            backend.run(sim, 40)
        assert err.value.partition == "fpga1"
        assert "died" in str(err.value)
        assert _no_orphans()

    def test_worker_exception_rebuilt_in_parent(self):
        sim = build_star_sim(2)
        backend = ProcessBackend(
            worker_faults={"fpga2": ("raise", 3)})
        with pytest.raises(WorkerError) as err:
            backend.run(sim, 40)
        assert err.value.partition == "fpga2"
        assert "injected worker fault" in str(err.value)
        assert _no_orphans()

    def test_hung_worker_hits_heartbeat_timeout(self):
        sim = build_star_sim(2)
        backend = ProcessBackend(
            heartbeat_timeout=2.0,
            worker_faults={"fpga1": ("hang", 4)})
        with pytest.raises(WorkerError) as err:
            backend.run(sim, 40)
        assert "heartbeat-timeout" in str(err.value)
        assert _no_orphans()

    def test_crash_injection_matches_serial_semantics(self):
        sim = build_star_sim(2)
        with pytest.raises(InjectedCrash) as err:
            ProcessBackend().run(sim, 40, crash_cycle=6)
        assert err.value.cycle == 6
        assert _no_orphans()

    def test_pass_budget_matches_serial(self):
        s1 = build_star_sim(2)
        with pytest.raises(SimulationError, match="pass budget") as e1:
            s1.run(40, max_passes=3, backend="inproc")
        assert not isinstance(e1.value, DeadlockError)
        s2 = build_star_sim(2)
        with pytest.raises(SimulationError, match="pass budget") as e2:
            ProcessBackend().run(s2, 40, max_passes=3)
        assert not isinstance(e2.value, DeadlockError)
        assert _no_orphans()


class TestDeadlockParity:
    def test_postmortem_identical_to_inproc(self):
        s1 = _deadlock_sim()
        with pytest.raises(DeadlockError) as e1:
            s1.run(5, backend="inproc")
        s2 = _deadlock_sim()
        with pytest.raises(DeadlockError) as e2:
            ProcessBackend().run(s2, 5)
        assert str(e2.value) == str(e1.value)
        assert e2.value.detail == e1.value.detail
        assert e2.value.host_cycle == e1.value.host_cycle == 1
        pm1, pm2 = e1.value.postmortem, e2.value.postmortem
        assert pm2 is not None
        assert pm2.host_passes == pm1.host_passes
        assert pm2.frontier_cycle == pm1.frontier_cycle
        assert pm2.channels == pm1.channels
        assert _no_orphans()


class TestBackendSelection:
    def test_auto_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        sim = build_star_sim(2)
        sim.run(6)  # backend="auto" is the default
        assert sim.last_run_backend == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        sim2 = build_star_sim(2)
        sim2.run(6)
        assert sim2.last_run_backend == "inproc"

    def test_stop_callback_forces_inproc(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        sim = build_star_sim(2)
        sim.run(6, stop=lambda s: False)
        assert sim.last_run_backend == "inproc"

    def test_explicit_process_with_stop_callback_raises(self):
        sim = build_star_sim(2)
        with pytest.raises(SimulationError, match="stop callback"):
            sim.run(6, stop=lambda s: False, backend="process")

    def test_auto_backend_none_inside_worker(self, monkeypatch):
        from repro.parallel import worker as worker_mod
        monkeypatch.setattr(worker_mod, "IN_WORKER", True)
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert auto_backend(build_star_sim(2)) is None

    def test_shared_switch_topology_is_unsupported(self):
        """A switch fabric spanning links of different source
        partitions serializes backplane contention globally — the
        explicit process backend refuses it, auto falls back."""
        from repro.platform.ethernet import SwitchFabric
        sim = build_star_sim(2)
        shared = SwitchFabric()
        srcs = set()
        for link in sim.links:
            link.hooks.switch = shared
            srcs.add(link.src[0])
        assert len(srcs) > 1
        with pytest.raises(UnsupportedTopologyError):
            ProcessBackend().run(sim, 6)
        assert auto_backend(sim) is None

    def test_single_source_switch_is_supported(self):
        """Per-source fabrics (one switch per sending FPGA) partition
        cleanly and stay bit-identical."""
        from repro.platform.ethernet import SwitchFabric

        def with_fabrics(sim):
            fabrics = {}
            for link in sim.links:
                src = link.src[0]
                link.hooks.switch = \
                    fabrics.setdefault(src, SwitchFabric())
            return sim

        s1 = with_fabrics(build_star_sim(2))
        r1 = s1.run(10, backend="inproc")
        s2 = with_fabrics(build_star_sim(2))
        r2 = ProcessBackend().run(s2, 10)
        assert r2.detail == r1.detail
        assert s2.output_log == s1.output_log


class TestObservability:
    def test_recording_tracer_events_merge_back(self):
        from repro.observability import RecordingTracer
        t1 = RecordingTracer()
        s1 = build_star_sim(2, tracer=t1)
        r1 = s1.run(8, backend="inproc")
        t2 = RecordingTracer()
        s2 = build_star_sim(2, tracer=t2)
        r2 = ProcessBackend().run(s2, 8)
        assert r2.detail == r1.detail
        assert len(t2.events) == len(t1.events)
        assert sorted(e.kind for e in t2.events) == \
            sorted(e.kind for e in t1.events)
        # merged events are re-emitted in modelled-time order
        stamps = [e.ts_ns for e in t2.events]
        assert stamps == sorted(stamps)


class TestShmTransport:
    """The shared-memory data plane must be indistinguishable from the
    pipe data plane in everything except wire mechanics."""

    def test_three_way_detail_bit_identity(self):
        s1 = build_star_sim(2)
        r1 = s1.run(12, backend="inproc")
        s2 = build_star_sim(2)
        r2 = ProcessBackend().run(s2, 12)
        s3 = build_star_sim(2)
        r3 = ProcessBackend(transport="shm").run(s3, 12)
        assert r1.detail == r2.detail == r3.detail
        assert s1.output_log == s2.output_log == s3.output_log
        assert s3.last_run_backend == "process-shm"
        assert _no_orphans()

    def test_run_backend_process_shm_dispatches(self):
        s1 = build_star_sim(2)
        r1 = s1.run(8, backend="inproc")
        s2 = build_star_sim(2)
        r2 = s2.run(8, backend="process-shm")
        assert s2.last_run_backend == "process-shm"
        assert r2.detail == r1.detail

    def test_tiny_flush_interval_same_results(self):
        s1 = build_star_sim(2)
        r1 = s1.run(8, backend="inproc")
        s2 = build_star_sim(2)
        r2 = ProcessBackend(transport="shm",
                            flush_interval=1).run(s2, 8)
        assert r2.detail == r1.detail

    def test_reliable_links_with_faults_match(self):
        """Hooked links fall back to dict tokens inside the worker but
        still travel the rings as packed words."""
        fault = FaultSpec(drop_rate=0.2, corrupt_rate=0.1, seed=11)
        s1 = build_star_sim(2)
        harden_links(s1, fault)
        r1 = s1.run(12, backend="inproc")
        s2 = build_star_sim(2)
        harden_links(s2, fault)
        r2 = ProcessBackend(transport="shm").run(s2, 12)
        assert r2.detail == r1.detail
        assert s2.output_log == s1.output_log

    def test_fast_mode_matches_inproc(self):
        s1 = build_star_sim(2, mode=FAST)
        r1 = s1.run(10, backend="inproc")
        s2 = build_star_sim(2, mode=FAST)
        r2 = ProcessBackend(transport="shm").run(s2, 10)
        assert r2.detail == r1.detail

    def test_rings_torn_down_after_run(self):
        backend = ProcessBackend(transport="shm")
        backend.run(build_star_sim(2), 8)
        assert backend._rings == []
        assert _no_orphans()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessBackend(transport="tcp")

    def test_auto_honours_process_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process-shm")
        sim = build_star_sim(2)
        sim.run(6)  # backend="auto" is the default
        assert sim.last_run_backend == "process-shm"

    def test_deadlock_detected_over_shm(self):
        with pytest.raises(DeadlockError) as err:
            ProcessBackend(transport="shm").run(_deadlock_sim(), 5)
        assert err.value.host_cycle == 1
        assert _no_orphans()
