"""Shared designs for the process-backend tests."""

from __future__ import annotations

import pytest

from repro.firrtl import ModuleBuilder, make_circuit
from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.harness import FunctionSource
from repro.platform import QSFP_AURORA

STIM = [3, 9, 250, 0, 7, 8, 1, 2, 200, 17, 4, 99]


def make_star_circuit(n_leaves: int = 2):
    """Star topology: the top instantiates ``n_leaves`` registered leaf
    modules, each later extracted onto its own FPGA, with an external
    stimulus wired through the base's io_in bridge and every leaf
    closing a cross-partition feedback loop."""
    widths = [8, 4, 16]
    children = []
    for k in range(n_leaves):
        w = widths[k % len(widths)]
        cb = ModuleBuilder(f"Leaf{k}")
        i0 = cb.input("i0", w)
        reg = cb.reg("state", w, init=(37 * (k + 1)) % (1 << w))
        out = cb.output("o0", w)
        cb.connect(out, reg)
        cb.connect(reg, reg.read() + i0.read())
        children.append(cb.build())

    tb = ModuleBuilder("Top")
    stim = tb.input("stim", 8)
    for k in range(n_leaves):
        w = widths[k % len(widths)]
        r = tb.reg(f"r{k}", w, init=(k + 1) * 7)
        inst = tb.inst(f"leaf{k}", children[k])
        tb.connect(inst["i0"], r)
        tb.connect(r, inst["o0"].read() ^ stim.read())
        tb.connect(tb.output(f"obs{k}", w), inst["o0"])
    return make_circuit(tb.build(), children)


def star_design(n_leaves: int = 2, mode=EXACT):
    groups = [PartitionGroup.make(f"fpga{k + 1}", [f"leaf{k}"])
              for k in range(n_leaves)]
    spec = PartitionSpec(mode=mode, groups=groups)
    return FireRipper(spec).compile(make_star_circuit(n_leaves))


def stim_source():
    return FunctionSource(
        lambda c: {"stim": STIM[c] if c < len(STIM) else 0})


def build_star_sim(n_leaves: int = 2, mode=EXACT, **kwargs):
    kwargs.setdefault("record_outputs", True)
    kwargs.setdefault("sources", {("base", "io_in"): stim_source()})
    return star_design(n_leaves, mode).build_simulation(
        QSFP_AURORA, **kwargs)


@pytest.fixture
def star_sim_factory():
    return build_star_sim
