"""End-to-end FireRipper compiles and co-simulations."""

import pytest

from repro.errors import CompileError, SelectionError
from repro.fireripper import (
    EXACT,
    FAST,
    FireRipper,
    NoCPartitionSpec,
    PartitionGroup,
    PartitionSpec,
)
from repro.harness import MonolithicSimulation
from repro.platform import HOST_PCIE, QSFP_AURORA, XILINX_U250
from repro.targets import make_comb_pair_circuit
from repro.targets.soc import make_ring_noc_soc, make_rocket_like_soc


def _compile(circuit, mode=EXACT, paths=("right",), **kwargs):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", list(paths))])
    return FireRipper(spec).compile(circuit, **kwargs)


def _first_done_cycle(sim, max_cycles=60_000):
    def stop(s):
        log = s.output_log.get(("base", "io_out"), [])
        return bool(log) and log[-1]["done"] == 1

    sim.run(max_cycles, stop=stop)
    log = sim.output_log[("base", "io_out")]
    return next(i for i, t in enumerate(log) if t["done"]), log[-1]


class TestSpecValidation:
    def test_mode_checked(self):
        with pytest.raises(SelectionError):
            PartitionSpec(mode="turbo",
                          groups=[PartitionGroup.make("g", ["x"])])

    def test_groups_xor_noc(self):
        with pytest.raises(SelectionError):
            PartitionSpec(mode=EXACT)
        with pytest.raises(SelectionError):
            PartitionSpec(mode=EXACT,
                          groups=[PartitionGroup.make("g", ["x"])],
                          noc=NoCPartitionSpec.make([[0]]))

    def test_num_fpgas(self):
        spec = PartitionSpec(mode=EXACT, groups=[
            PartitionGroup.make("a", ["x"]),
            PartitionGroup.make("b", ["y"])])
        assert spec.num_fpgas == 3


class TestExactEquivalence:
    def test_comb_pair_trace_matches(self):
        circuit = make_comb_pair_circuit()
        mono = MonolithicSimulation(circuit)
        trace = [mono.sim.step({}) for _ in range(6)]

        design = _compile(circuit, EXACT)
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)
        sim.run(6)
        log = sim.output_log[("base", "io_out")]
        assert [t["x_obs"] for t in log] == [t["x_obs"] for t in trace]
        assert [t["y_obs"] for t in log] == [t["y_obs"] for t in trace]

    def test_rocket_soc_cycle_exact(self):
        circuit = make_rocket_like_soc(10, 4)
        mono = MonolithicSimulation(circuit)
        ref = mono.run_until("done", 1).target_cycles

        design = _compile(make_rocket_like_soc(10, 4), EXACT,
                          paths=("rockettile",))
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)
        done_cycle, last = _first_done_cycle(sim)
        assert done_cycle == ref
        assert last["result"] == sum(range(1, 5))


class TestFastMode:
    def test_rocket_soc_results_correct_cycles_approximate(self):
        circuit = make_rocket_like_soc(10, 4)
        mono = MonolithicSimulation(circuit)
        ref = mono.run_until("done", 1).target_cycles

        design = _compile(make_rocket_like_soc(10, 4), FAST,
                          paths=("rockettile",))
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)
        done_cycle, last = _first_done_cycle(sim)
        assert last["result"] == sum(range(1, 5))  # values exact
        assert done_cycle != ref                   # cycles approximate
        assert abs(done_cycle - ref) / ref < 0.10  # but close

    def test_fast_faster_than_exact(self):
        circuit = make_comb_pair_circuit()
        exact = _compile(circuit, EXACT).build_simulation(QSFP_AURORA)
        fast = _compile(circuit, FAST).build_simulation(QSFP_AURORA)
        r_exact = exact.run(60).rate_hz
        r_fast = fast.run(60).rate_hz
        # both directions of this boundary carry combinational
        # logic, so exact pays two full sequential crossings;
        # the paper's ~2x is the lower edge of this ratio
        assert 1.4 < r_fast / r_exact < 3.3

    def test_missing_rv_bundle_spec_rejected(self):
        spec = PartitionSpec(mode=FAST,
                             groups=[PartitionGroup.make("g", ["right"])],
                             rv_bundles=["no_such_bundle"])
        with pytest.raises(CompileError):
            FireRipper(spec).compile(make_comb_pair_circuit())


class TestNoCMode:
    def test_selection_and_equivalence(self):
        circuit = make_ring_noc_soc(4, messages_per_tile=3)
        mono = MonolithicSimulation(circuit)
        ref = mono.run_until("done", 1).target_cycles

        spec = PartitionSpec(mode=EXACT,
                             noc=NoCPartitionSpec.make([[0, 1], [2, 3]]))
        design = FireRipper(spec).compile(
            make_ring_noc_soc(4, messages_per_tile=3))
        members = design.extracted.group_members
        assert sorted(members["noc0"]) == [
            "conv0", "conv1", "router0", "router1", "tile0", "tile1"]
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)
        done_cycle, last = _first_done_cycle(sim)
        assert done_cycle == ref
        assert last["result"] == 4 * sum(range(1, 4))

    def test_bad_router_index(self):
        spec = PartitionSpec(mode=EXACT,
                             noc=NoCPartitionSpec.make([[99]]))
        with pytest.raises(SelectionError):
            FireRipper(spec).compile(make_ring_noc_soc(2))


class TestTransportsAndReport:
    def test_host_pcie_rate_capped(self):
        design = _compile(make_comb_pair_circuit(), FAST)
        sim = design.build_simulation(HOST_PCIE)
        result = sim.run(30)
        assert result.rate_hz <= 26_400.0

    def test_per_pair_transport_map(self):
        design = _compile(make_comb_pair_circuit(), EXACT)
        sim = design.build_simulation({("base", "fpga1"): QSFP_AURORA})
        assert sim.run(10).target_cycles == 10

    def test_missing_transport_in_map(self):
        design = _compile(make_comb_pair_circuit(), EXACT)
        with pytest.raises(CompileError):
            design.build_simulation({("base", "elsewhere"): QSFP_AURORA})

    def test_report_contents(self):
        design = _compile(make_comb_pair_circuit(), EXACT,
                          profile=XILINX_U250, transport=QSFP_AURORA,
                          host_freq_mhz=30.0)
        report = design.report
        assert report.interface_widths[("base", "fpga1")] == 64
        assert report.expected_rate_hz is not None
        text = report.to_text()
        assert "interface base <-> fpga1: 64 bits" in text
        assert "expected rate" in text
