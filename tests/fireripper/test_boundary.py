"""Boundary planning: roles, chain check, channels, widths."""

import pytest

from repro.errors import CombChainError
from repro.firrtl import ModuleBuilder, make_circuit
from repro.fireripper import EXACT, FAST
from repro.fireripper.boundary import SINK, SOURCE, plan_boundaries
from repro.fireripper.extract import extract_partitions
from repro.targets import make_comb_pair_circuit


def _plan(mode):
    design = extract_partitions(make_comb_pair_circuit(), {"g": ["right"]})
    return design, plan_boundaries(design, mode)


class TestRoles:
    def test_comb_pair_roles(self):
        _, plan = _plan(EXACT)
        roles = {n.name: (n.src_role, n.dst_role) for n in plan.nets}
        # right.q is comb-dependent on right.c -> sink out of g; it lands
        # in base logic feeding left.e (register-only) -> source in
        assert roles["right_q"] == (SINK, SOURCE)
        assert roles["right_ya"] == (SOURCE, SINK)
        assert roles["right_c"] == (SOURCE, SINK)
        assert roles["right_f"] == (SINK, SOURCE)

    def test_interface_width(self):
        _, plan = _plan(EXACT)
        assert plan.interface_width("base", "g") == 64  # 4 x 16 bits
        assert plan.total_boundary_width() == 64


class TestExactChannels:
    def test_channel_split_by_role_pairs(self):
        _, plan = _plan(EXACT)
        g = plan.channels["g"]
        out_names = {s.name for s in g.out_specs}
        in_names = {s.name for s in g.in_specs}
        assert out_names == {"to_base.sink_source", "to_base.source_sink"}
        assert in_names == {"from_base.sink_source",
                            "from_base.source_sink"}

    def test_sink_out_depends_on_sink_in(self):
        _, plan = _plan(EXACT)
        g = plan.channels["g"]
        by_name = {s.name: s for s in g.out_specs}
        # the sink-out channel (comb-dependent) needs the sink-in channel
        sink_out = by_name["to_base.sink_source"]
        assert sink_out.deps == frozenset({"from_base.source_sink"})
        source_out = by_name["to_base.source_sink"]
        assert source_out.deps == frozenset()

    def test_links_pair_matching_channels(self):
        _, plan = _plan(EXACT)
        for link in plan.links:
            assert link.src[0] != link.dst[0]
            assert link.width > 0


class TestFastChannels:
    def test_single_channel_per_direction(self):
        _, plan = _plan(FAST)
        g = plan.channels["g"]
        assert [s.name for s in g.out_specs] == ["to_base"]
        assert [s.name for s in g.in_specs] == ["from_base"]
        assert g.out_specs[0].width == 32

    def test_external_io_channel_on_base(self):
        _, plan = _plan(FAST)
        base = plan.channels["base"]
        assert base.external_out == ["io_out"]
        io_out = next(s for s in base.out_specs if s.name == "io_out")
        assert dict(io_out.ports) == {"x_obs": 16, "y_obs": 16}


class TestChainLengthCheck:
    def _long_chain_circuit(self):
        """The paper's illegal case: an output combinationally dependent
        on an input which is itself driven by another partition's
        combinationally dependent output (chain length > 2)."""
        def comb_module(name, op):
            mb = ModuleBuilder(name)
            i = mb.input("i", 8)
            o = mb.output("o", 8)
            mb.connect(o, op(i))
            return mb.build()

        mod_a = comb_module("ModA", lambda i: i + 1)
        mod_c = comb_module("ModC", lambda i: i ^ 3)

        tb = ModuleBuilder("ChainTop")
        tout = tb.output("tout", 8)
        r = tb.reg("r", 8)
        a = tb.inst("a", mod_a)
        c = tb.inst("c", mod_c)
        tb.connect(c["i"], r)           # registered seed into the chain
        tb.connect(a["i"], c["o"])      # comb crossing c -> a
        tb.connect(tout, a["o"])        # comb crossing a -> base
        tb.connect(r, r + 1)
        return make_circuit(tb.build(), [mod_a, mod_c])

    def test_sink_to_sink_rejected_in_exact(self):
        circuit = self._long_chain_circuit()
        design = extract_partitions(circuit, {"g1": ["a"], "g2": ["c"]})
        with pytest.raises(CombChainError) as err:
            plan_boundaries(design, EXACT)
        # the diagnostic names an alternating port chain of length 4
        assert len(err.value.chain) == 4
        assert any("g1" in p for p in err.value.chain)
        assert any("g2" in p for p in err.value.chain)

    def test_same_boundary_allowed_in_fast(self):
        circuit = self._long_chain_circuit()
        design = extract_partitions(circuit, {"g1": ["a"], "g2": ["c"]})
        plan = plan_boundaries(design, FAST)  # no exception
        assert plan.mode == FAST

    def test_single_crossing_chain_accepted_in_exact(self):
        # the comb-pair boundary has combinational logic but the chain
        # terminates in registers after one crossing: legal
        design = extract_partitions(make_comb_pair_circuit(),
                                    {"g": ["right"]})
        plan = plan_boundaries(design, EXACT)
        assert plan.mode == EXACT
