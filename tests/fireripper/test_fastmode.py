"""Fast-mode transforms: bundle detection, skid buffer, valid gating."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompileError
from repro.firrtl import ModuleBuilder, make_circuit
from repro.fireripper.extract import RawNet, extract_partitions
from repro.fireripper.fastmode import (
    apply_fast_mode_transforms,
    detect_rv_bundles,
    make_skid_buffer,
)
from repro.rtl import Simulator
from repro.targets import make_rv_consumer, make_rv_producer


def _nets(*triples):
    return [RawNet(name, width, src, dst)
            for name, width, src, dst in triples]


class TestBundleDetection:
    def test_detects_complete_bundle(self):
        nets = _nets(("c_in_valid", 1, "base", "g"),
                     ("c_in_bits", 16, "base", "g"),
                     ("c_in_ready", 1, "g", "base"))
        bundles = detect_rv_bundles(nets)
        assert len(bundles) == 1
        b = bundles[0]
        assert b.prefix == "c_in"
        assert b.src == "base" and b.dst == "g"
        assert b.width == 16

    def test_ignores_incomplete(self):
        nets = _nets(("c_in_valid", 1, "base", "g"),
                     ("c_in_bits", 16, "base", "g"))
        assert detect_rv_bundles(nets) == []

    def test_ignores_misdirected_ready(self):
        nets = _nets(("c_in_valid", 1, "base", "g"),
                     ("c_in_bits", 16, "base", "g"),
                     ("c_in_ready", 1, "base", "g"))
        assert detect_rv_bundles(nets) == []


class TestSkidBuffer:
    def test_too_shallow_rejected(self):
        with pytest.raises(CompileError):
            make_skid_buffer(8, depth=2, ready_threshold=1)

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255),
                              st.integers(0, 1)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_lossless_duplicate_free_fifo(self, stimulus):
        """The skid buffer behaves as a FIFO against a golden model,
        under arbitrary enq/deq patterns (arrivals always absorbed while
        not full, matching the protocol guarantee)."""
        sim = Simulator(make_circuit(make_skid_buffer(8), []))
        golden = []
        popped = []
        for enq_v, bits, deq_r in stimulus:
            sim.poke("enq_valid", enq_v)
            sim.poke("enq_bits", bits)
            sim.poke("deq_ready", deq_r)
            sim.eval()
            accepted = enq_v and len(golden) < 4
            fired = sim.peek("deq_valid") and deq_r
            if fired:
                popped.append(sim.peek("deq_bits"))
            sim.tick()
            if fired:
                golden.pop(0)
            if accepted:
                golden.append(bits)
        # drain the rest
        sim.poke("enq_valid", 0)
        for _ in range(6):
            sim.poke("deq_ready", 1)
            sim.eval()
            if sim.peek("deq_valid"):
                popped.append(sim.peek("deq_bits"))
                sim.tick()
                golden.pop(0)
            else:
                sim.tick()
        assert golden == []

    def test_conservative_ready(self):
        sim = Simulator(make_circuit(make_skid_buffer(8), []))
        sim.poke("deq_ready", 0)
        sim.eval()
        assert sim.peek("enq_ready") == 1
        # fill two entries: advertised ready must drop
        for v in (1, 2):
            sim.poke("enq_valid", 1)
            sim.poke("enq_bits", v)
            sim.eval()
            sim.tick()
        sim.poke("enq_valid", 0)
        sim.eval()
        assert sim.peek("enq_ready") == 0  # count=2 > threshold 1


class TestTargetTransforms:
    def _design(self):
        prod = make_rv_producer(16, count=5)
        cons = make_rv_consumer(16)
        b = ModuleBuilder("T")
        done = b.output("done", 1)
        total = b.output("sum", 32)
        p = b.inst("producer", prod)
        c = b.inst("consumer", cons)
        b.connect(c["in_valid"], p["out_valid"])
        b.connect(c["in_bits"], p["out_bits"])
        b.connect(p["out_ready"], c["in_ready"])
        b.connect(done, p["done"])
        b.connect(total, c["sum"])
        circuit = make_circuit(b.build(), [prod, cons])
        return extract_partitions(circuit, {"g": ["consumer"]})

    def test_transform_inserts_skid_on_sink(self):
        design = self._design()
        bundles = apply_fast_mode_transforms(design)
        assert [b.prefix for b in bundles] == ["consumer_in"]
        g_top = design.partitions["g"].top_module
        assert any(i.module.startswith("FireAxeSkidBuffer")
                   for i in g_top.instances())

    def test_transform_gates_source_valid(self):
        design = self._design()
        apply_fast_mode_transforms(design)
        base_top = design.partitions["base"].top_module
        driver = base_top.connect_map()["consumer_in_valid"]
        # valid is now gated: and(<original>, ready)
        refs = {str(r) for r in driver.expr.refs()}
        assert "consumer_in_ready" in refs

    def test_partitions_stay_well_formed(self):
        from repro.firrtl.passes import check_circuit

        design = self._design()
        apply_fast_mode_transforms(design)
        for part in design.partitions.values():
            check_circuit(part)
