"""Extraction transform: uniquify, reparent, grouping, removal."""

import pytest

from repro.errors import SelectionError
from repro.firrtl import ModuleBuilder, make_circuit
from repro.firrtl.passes import check_circuit
from repro.fireripper.extract import (
    ExtractedDesign,
    extract_partitions,
    remove_modules,
)
from repro.rtl import Simulator
from repro.targets import make_comb_pair_circuit


def _deep_circuit():
    """Top -> Wrapper -> Leaf, with the same Leaf also directly in Top
    (forces uniquification when extracting the nested one)."""
    lb = ModuleBuilder("Leaf")
    a = lb.input("a", 8)
    y = lb.output("y", 8)
    r = lb.reg("acc", 8)
    lb.connect(r, r + a)
    lb.connect(y, r)
    leaf = lb.build()

    wb = ModuleBuilder("Wrap")
    wa = wb.input("a", 8)
    wy = wb.output("y", 8)
    wi = wb.inst("inner", leaf)
    wb.connect(wi["a"], wa + 1)
    wb.connect(wy, wi["y"])
    wrap = wb.build()

    tb = ModuleBuilder("Deep")
    x = tb.input("x", 8)
    out1 = tb.output("o1", 8)
    out2 = tb.output("o2", 8)
    w = tb.inst("w", wrap)
    d = tb.inst("direct", leaf)
    tb.connect(w["a"], x)
    tb.connect(d["a"], x)
    tb.connect(out1, w["y"])
    tb.connect(out2, d["y"])
    return make_circuit(tb.build(), [wrap, leaf])


class TestValidation:
    def test_unknown_path(self):
        c = make_comb_pair_circuit()
        with pytest.raises(SelectionError):
            extract_partitions(c, {"g": ["ghost"]})

    def test_ancestor_conflict(self):
        c = _deep_circuit()
        with pytest.raises(SelectionError, match="ancestor"):
            extract_partitions(c, {"g": ["w", "w.inner"]})

    def test_duplicate_path(self):
        c = make_comb_pair_circuit()
        with pytest.raises(SelectionError):
            extract_partitions(c, {"g1": ["right"], "g2": ["right"]})

    def test_empty_group(self):
        c = make_comb_pair_circuit()
        with pytest.raises(SelectionError):
            extract_partitions(c, {"g": []})

    def test_base_name_collision(self):
        c = make_comb_pair_circuit()
        with pytest.raises(SelectionError):
            extract_partitions(c, {"base": ["right"]})


class TestTopLevelExtraction:
    def test_partitions_well_formed(self):
        c = make_comb_pair_circuit()
        design = extract_partitions(c, {"g": ["right"]})
        for part in design.partitions.values():
            check_circuit(part)

    def test_original_untouched(self):
        c = make_comb_pair_circuit()
        before = len(c.top_module.stmts)
        extract_partitions(c, {"g": ["right"]})
        assert len(c.top_module.stmts) == before

    def test_nets_have_matching_ports(self):
        c = make_comb_pair_circuit()
        design = extract_partitions(c, {"g": ["right"]})
        for net in design.nets:
            src_top = design.partitions[net.src].top_module
            dst_top = design.partitions[net.dst].top_module
            assert not src_top.port(net.name).is_input
            assert dst_top.port(net.name).is_input
            assert src_top.port(net.name).width == net.width

    def test_boundary_is_four_nets(self):
        c = make_comb_pair_circuit()
        design = extract_partitions(c, {"g": ["right"]})
        assert len(design.nets) == 4
        directions = {(n.src, n.dst) for n in design.nets}
        assert directions == {("base", "g"), ("g", "base")}


class TestDeepExtraction:
    def test_nested_instance_reparents(self):
        c = _deep_circuit()
        design = extract_partitions(c, {"g": ["w.inner"]})
        for part in design.partitions.values():
            check_circuit(part)
        # the extracted partition top holds the leaf
        g = design.partitions["g"]
        assert any(i.module == "Leaf" or i.module.startswith("Leaf")
                   for i in g.top_module.instances())

    def test_uniquify_leaves_sibling_leaf_alone(self):
        c = _deep_circuit()
        design = extract_partitions(c, {"g": ["w.inner"]})
        base = design.partitions["base"]
        # the direct Leaf instance must survive in the base
        assert any(i.module == "Leaf"
                   for i in base.top_module.instances())

    def test_extraction_preserves_behavior(self):
        """Base + extracted recombined (via direct token plumbing)
        behave like the original: check via a manual co-execution."""
        c = _deep_circuit()
        mono = Simulator(c)
        design = extract_partitions(c, {"g": ["w.inner"]})
        base = Simulator(design.partitions["base"])
        ext = Simulator(design.partitions["g"])

        in_nets = [n for n in design.nets if n.dst == "g"]
        out_nets = [n for n in design.nets if n.src == "g"]
        for cycle in range(6):
            expected = mono.step({"x": cycle + 1})
            # settle the combinational boundary (loop-free: two passes)
            base.poke("x", cycle + 1)
            for _ in range(3):
                base.eval()
                for n in in_nets:
                    ext.poke(n.name, base.peek(n.name))
                ext.eval()
                for n in out_nets:
                    base.poke(n.name, ext.peek(n.name))
            base.eval()
            got = {"o1": base.peek("o1"), "o2": base.peek("o2")}
            assert got == expected
            base.tick()
            ext.tick()


class TestMultiGroup:
    def test_two_groups_cross_nets(self):
        c = make_comb_pair_circuit()
        design = extract_partitions(c, {"g1": ["left"], "g2": ["right"]})
        assert set(design.partitions) == {"base", "g1", "g2"}
        pairs = {(n.src, n.dst) for n in design.nets}
        # left and right talk to each other directly
        assert ("g1", "g2") in pairs and ("g2", "g1") in pairs
        for part in design.partitions.values():
            check_circuit(part)

    def test_base_keeps_observation_logic(self):
        c = make_comb_pair_circuit()
        design = extract_partitions(c, {"g1": ["left"], "g2": ["right"]})
        base_top = design.partitions["base"].top_module
        assert base_top.has_port("x_obs")
        assert base_top.has_port("y_obs")


class TestRemoval:
    def test_remove_returns_base_with_punched_ports(self):
        c = make_comb_pair_circuit()
        removed = remove_modules(c, ["right"])
        check_circuit(removed)
        assert "CombRight" not in removed.modules
        # the punched boundary is now top-level I/O
        port_names = {p.name for p in removed.top_module.ports}
        assert any("right" in n for n in port_names)
