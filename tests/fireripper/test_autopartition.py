"""Automatic partition-point search (the Sec. VIII-B extension)."""

import pytest

from repro.errors import SelectionError
from repro.fireripper import EXACT, FAST, FireRipper, auto_partition
from repro.fireripper.autopartition import build_instance_graph
from repro.harness import MonolithicSimulation
from repro.platform import QSFP_AURORA, XILINX_U250
from repro.targets import make_comb_pair_circuit
from repro.targets.soc import make_ring_noc_soc, make_star_soc


class TestInstanceGraph:
    def test_nodes_and_weights(self):
        circuit = make_ring_noc_soc(2, messages_per_tile=2)
        graph = build_instance_graph(circuit)
        assert "tile0" in graph.nodes and "router1" in graph.nodes
        # tiles and routers have logic; converters are pure wiring
        assert graph.luts["tile0"] > 0
        assert graph.luts["router0"] > 0
        assert all(graph.luts[n] >= 0 for n in graph.nodes)
        # tile <-> converter wiring has nonzero width
        assert graph.edge("tile0", "conv0") > 0

    def test_cut_width(self):
        circuit = make_ring_noc_soc(2, messages_per_tile=2)
        graph = build_instance_graph(circuit)
        all_one = {n: 0 for n in graph.nodes}
        assert graph.cut_width(all_one) == 0
        split = dict(all_one)
        split["tile0"] = 1
        assert graph.cut_width(split) == graph.edge("tile0", "conv0")

    def test_comb_coupling_detected(self):
        circuit = make_comb_pair_circuit()
        graph = build_instance_graph(circuit, mode=EXACT)
        # left.d (comb out) feeds right.f which feeds... register only;
        # and right.q (comb out) feeds left.e (register only): no
        # sink->sink coupling in this legal design
        assert graph.comb_coupled == set()


class TestSearch:
    def test_balanced_groups_compile_and_run(self):
        circuit = make_ring_noc_soc(4, messages_per_tile=3)
        result = auto_partition(
            circuit, n_fpgas=3, mode=FAST,
            keep_in_base=["tile4", "conv4", "router4"])
        # groups are LUT-balanced within the slack
        group_sizes = [v for k, v in result.group_luts.items() if k != -1]
        assert max(group_sizes) / max(min(group_sizes), 1) < 1.6

        design = FireRipper(result.spec).compile(circuit)
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)

        def stop(s):
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1]["done"] == 1

        sim.run(20_000, stop=stop)
        log = sim.output_log[("base", "io_out")]
        assert log[-1]["result"] == 4 * sum(range(1, 4))

    def test_exact_mode_result_compiles(self):
        """Whatever the search returns in exact-mode must pass the
        chain-length check by construction."""
        circuit = make_star_soc(4, messages_per_tile=3)
        result = auto_partition(circuit, n_fpgas=3, mode=EXACT,
                                keep_in_base=["hub"])
        FireRipper(result.spec).compile(circuit)  # must not raise

    def test_exact_search_is_cycle_exact(self):
        circuit = make_star_soc(3, messages_per_tile=3)
        mono = MonolithicSimulation(circuit)
        ref = mono.run_until("done", 1).target_cycles

        result = auto_partition(circuit, n_fpgas=2, mode=EXACT,
                                keep_in_base=["hub"])
        design = FireRipper(result.spec).compile(circuit)
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)

        def stop(s):
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1]["done"] == 1

        sim.run(20_000, stop=stop)
        log = sim.output_log[("base", "io_out")]
        assert next(i for i, t in enumerate(log) if t["done"]) == ref

    def test_profile_capacity_respected(self):
        circuit = make_ring_noc_soc(4, messages_per_tile=3)
        result = auto_partition(circuit, n_fpgas=3, mode=FAST,
                                profile=XILINX_U250)
        limit = XILINX_U250.usable.luts * XILINX_U250.congestion_threshold
        for g, luts in result.group_luts.items():
            assert luts <= limit

    def test_too_many_fpgas_rejected(self):
        with pytest.raises(SelectionError):
            auto_partition(make_comb_pair_circuit(), n_fpgas=10)

    def test_minimum_two_fpgas(self):
        with pytest.raises(SelectionError):
            auto_partition(make_comb_pair_circuit(), n_fpgas=1)

    def test_report_text(self):
        circuit = make_star_soc(3, messages_per_tile=3)
        result = auto_partition(circuit, n_fpgas=2, mode=FAST,
                                keep_in_base=["hub"])
        text = result.to_text()
        assert "boundary cut" in text and "base" in text
