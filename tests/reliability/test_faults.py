"""Deterministic fault injection and its unprotected failure modes."""

import pytest

from repro.errors import DeadlockError
from repro.platform import QSFP_AURORA, SwitchedEthernetTransport
from repro.reliability import (
    FaultInjector,
    FaultSpec,
    FaultyTransport,
    corrupt_token,
    inject_faults,
    token_crc,
)

TOKEN = {"a": 5, "b": 0}


class TestSchedule:
    def test_same_seed_same_outcomes(self):
        spec = FaultSpec(seed=4, drop_rate=0.2, corrupt_rate=0.2,
                         spike_rate=0.2)
        a = FaultInjector(spec)
        b = FaultInjector(spec)
        outs_a = [a.outcome("l", seq, 0, 0.0, TOKEN)
                  for seq in range(50)]
        outs_b = [b.outcome("l", seq, 0, 0.0, TOKEN)
                  for seq in range(50)]
        assert outs_a == outs_b
        assert any(not o.clean for o in outs_a)

    def test_different_seed_differs(self):
        kinds = []
        for seed in (1, 2):
            inj = FaultInjector(FaultSpec(seed=seed, drop_rate=0.3,
                                          corrupt_rate=0.3))
            kinds.append([inj.outcome("l", s, 0, 0.0, TOKEN).dropped
                          for s in range(60)])
        assert kinds[0] != kinds[1]

    def test_links_see_independent_streams(self):
        inj = FaultInjector(FaultSpec(seed=9, drop_rate=0.5))
        a = [inj.outcome("linkA", s, 0, 0.0, TOKEN).dropped
             for s in range(60)]
        b = [inj.outcome("linkB", s, 0, 0.0, TOKEN).dropped
             for s in range(60)]
        assert a != b

    def test_retries_get_fresh_rolls(self):
        inj = FaultInjector(FaultSpec(seed=3, drop_rate=0.99))
        outcomes = [inj.outcome("l", 0, attempt, 0.0, TOKEN)
                    for attempt in range(200)]
        assert any(o.clean for o in outcomes)  # eventually goes through

    def test_flap_window_blocks_attempts(self):
        inj = FaultInjector(FaultSpec(flaps=((1000.0, 500.0),)))
        down = inj.outcome("l", 0, 0, 1200.0, TOKEN)
        assert down.link_down_until == 1500.0
        assert inj.outcome("l", 0, 0, 999.0, TOKEN).clean
        assert inj.outcome("l", 0, 0, 1500.0, TOKEN).clean

    def test_zero_rates_always_clean(self):
        inj = FaultInjector(FaultSpec(seed=1))
        assert all(inj.outcome("l", s, 0, 0.0, TOKEN).clean
                   for s in range(100))


class TestCrc:
    def test_single_bit_corruption_detected(self):
        token = {"x": 7, "y": 123456789}
        for port in token:
            assert token_crc(corrupt_token(token, port, 0)) \
                != token_crc(token)

    def test_corrupt_token_flips_one_bit(self):
        assert corrupt_token({"x": 0b100}, "x", 0) == {"x": 0b101}
        assert corrupt_token({"x": 0b101}, "x", 0) == {"x": 0b100}


class TestFaultyTransport:
    def test_delegates_timing_to_base(self):
        wrapped = FaultyTransport(QSFP_AURORA,
                                  FaultInjector(FaultSpec()))
        assert wrapped.wire_ns(128) == QSFP_AURORA.wire_ns(128)
        assert wrapped.serdes_cycles(128) == \
            QSFP_AURORA.serdes_cycles(128)
        assert wrapped.latency_ns == QSFP_AURORA.latency_ns
        assert wrapped.apply_rate_cap(5.0) == 5.0
        assert getattr(wrapped, "switch", None) is None
        assert wrapped.name == "faulty(qsfp_aurora)"

    def test_forwards_switch_attribute(self):
        base = SwitchedEthernetTransport(
            name="eth", latency_ns=1000.0, bandwidth_gbps=100.0,
            per_token_overhead_ns=100.0, flit_bits=256)
        wrapped = FaultyTransport(base, FaultInjector(FaultSpec()))
        assert wrapped.switch is None  # present, delegated


class TestUnprotectedFailureModes:
    def test_drops_without_recovery_deadlock(self, build_pair):
        sim = build_pair()
        inject_faults(sim, FaultSpec(seed=2, drop_rate=0.2))
        with pytest.raises(DeadlockError):
            sim.run(200)
        assert sim.dropped_tokens > 0

    def test_corruption_without_recovery_wrongs_results(self,
                                                        build_pair):
        clean = build_pair()
        clean.run(120)
        sim = build_pair()
        inject_faults(sim, FaultSpec(seed=2, corrupt_rate=0.1))
        sim.run(120)
        assert sim.output_log != clean.output_log
