"""The run supervisor: checkpoints, heartbeats, rollback/resume."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.reliability import (
    FaultSpec,
    InjectedCrash,
    RunSupervisor,
    harden_links,
    inject_faults,
)


class TestHappyPath:
    def test_plain_run_checkpoints_and_completes(self, build_pair):
        report = RunSupervisor(build_pair, checkpoint_every=40).run(120)
        assert report.result.target_cycles == 120
        assert report.rollbacks == 0
        # one checkpoint at cycle 0 plus one per completed segment
        assert report.checkpoints == 4
        assert report.event_kinds() == ["checkpoint"] * 4 + ["complete"]

    def test_matches_unsupervised_run(self, build_pair):
        plain = build_pair()
        expected = plain.run(120)
        report = RunSupervisor(build_pair, checkpoint_every=40).run(120)
        assert report.result == expected
        assert report.output_log == plain.output_log

    def test_heartbeats_record_per_partition_progress(self, build_pair):
        report = RunSupervisor(build_pair, checkpoint_every=50).run(100)
        assert [hb["base"] for hb in report.heartbeats] == [0, 50, 100]
        assert all(set(hb) == {"base", "fpga1"}
                   for hb in report.heartbeats)

    def test_on_disk_checkpoints(self, build_pair, tmp_path):
        RunSupervisor(build_pair, checkpoint_every=50,
                      checkpoint_dir=tmp_path).run(100)
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == ["checkpoint-0.json", "checkpoint-100.json",
                         "checkpoint-50.json"]

    def test_invalid_interval_rejected(self, build_pair):
        with pytest.raises(SimulationError):
            RunSupervisor(build_pair, checkpoint_every=0)


class TestCrashRecovery:
    def test_crash_rolls_back_and_result_is_unchanged(self, build_pair):
        plain = build_pair()
        expected = plain.run(120)
        report = RunSupervisor(build_pair, checkpoint_every=40,
                               crash_at_cycles=[75]).run(120)
        assert report.rollbacks == 1
        kinds = report.event_kinds()
        assert "crash" in kinds and "rollback" in kinds
        assert kinds.index("crash") < kinds.index("rollback")
        assert report.result == expected
        assert report.output_log == plain.output_log

    def test_multiple_crashes_recovered(self, build_pair):
        expected = build_pair().run(160)
        report = RunSupervisor(build_pair, checkpoint_every=40,
                               crash_at_cycles=[50, 90, 130]).run(160)
        assert report.rollbacks == 3
        assert report.result == expected

    def test_crash_during_faulty_reliable_run(self, build_fame5):
        spec = FaultSpec(seed=5, drop_rate=0.02, corrupt_rate=0.02)

        def build():
            sim = build_fame5()
            harden_links(sim, spec)
            return sim

        baseline = RunSupervisor(build, checkpoint_every=40).run(120)
        crashed = RunSupervisor(build, checkpoint_every=40,
                                crash_at_cycles=[75, 110]).run(120)
        assert crashed.result == baseline.result
        assert crashed.output_log == baseline.output_log
        assert crashed.rollbacks == 2

    def test_injected_crash_carries_cycle(self):
        exc = InjectedCrash(42)
        assert exc.cycle == 42
        assert "42" in str(exc)


class TestSupervisorTracing:
    def test_checkpoints_and_heartbeats_emit_events(self, build_pair):
        from repro.observability import RecordingTracer

        tracer = RecordingTracer()
        RunSupervisor(build_pair, checkpoint_every=40,
                      tracer=tracer).run(120)
        counts = tracer.counts()
        assert counts["checkpoint"] == counts["heartbeat"]
        assert counts["checkpoint"] >= 4  # initial + one per segment
        for event in tracer.events:
            assert event.scope == "supervisor"
            assert "cycle" in event.args

    def test_crash_and_rollback_emit_events(self, build_pair):
        from repro.observability import RecordingTracer

        tracer = RecordingTracer()
        RunSupervisor(build_pair, checkpoint_every=40,
                      crash_at_cycles=[75], tracer=tracer).run(120)
        crashes = tracer.of_kind("crash")
        rollbacks = tracer.of_kind("rollback")
        assert len(crashes) == 1 and len(rollbacks) == 1
        assert "injected crash" in crashes[0].args["error"]
        assert rollbacks[0].args["after"] == "crash"

    def test_untraced_supervisor_emits_nothing(self, build_pair):
        report = RunSupervisor(build_pair, checkpoint_every=40).run(80)
        assert report.checkpoints >= 2  # ran fine with the null tracer


class TestStallEscalation:
    def test_persistent_deadlock_gives_up_after_max_rollbacks(
            self, build_pair):
        def build():
            sim = build_pair()
            # heavy unrecovered drops: the run deterministically
            # deadlocks, so every rollback replays into the same stall
            inject_faults(sim, FaultSpec(seed=2, drop_rate=0.3))
            return sim

        supervisor = RunSupervisor(build, checkpoint_every=40,
                                   max_rollbacks=2)
        with pytest.raises(DeadlockError):
            supervisor.run(200)
