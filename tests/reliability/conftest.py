"""Builders shared by the reliability suite."""

from __future__ import annotations

import pytest

from repro.fireripper import (
    EXACT,
    FAST,
    FireRipper,
    PartitionGroup,
    PartitionSpec,
)
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit
from repro.targets.soc import make_star_soc


@pytest.fixture
def pair_design():
    """Two-FPGA comb pair in fast mode (single-unit partitions)."""
    spec = PartitionSpec(mode=FAST, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    return FireRipper(spec).compile(make_comb_pair_circuit())


@pytest.fixture
def build_pair(pair_design):
    def build():
        return pair_design.build_simulation(
            QSFP_AURORA, record_outputs=True)
    return build


@pytest.fixture
def build_fame5():
    """Star SoC with three tiles FAME-5 threaded onto one FPGA."""
    circuit = make_star_soc(3, messages_per_tile=5)
    groups = [PartitionGroup.make(f"g{i}", [f"tile{i}"])
              for i in range(3)]
    design = FireRipper(
        PartitionSpec(mode=EXACT, groups=groups)).compile(circuit)

    def build():
        return design.build_simulation(
            QSFP_AURORA,
            host_freq_mhz={"base": 25.0, "tilefpga": 15.0},
            fame5_merge={"tilefpga": [f"g{i}" for i in range(3)]},
            channel_capacity=1, record_outputs=True)
    return build
