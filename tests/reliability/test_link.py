"""The reliable link layer: recovery guarantees and timing cost."""

import pytest

from repro.errors import LinkGiveUpError
from repro.reliability import (
    FaultSpec,
    ReliableLinkConfig,
    ReliableLinkLayer,
    harden_links,
)

#: the acceptance scenario: drops + corruption + one link flap
MIXED_FAULTS = FaultSpec(seed=3, drop_rate=0.03, corrupt_rate=0.02,
                         spike_rate=0.02, flaps=((40_000.0, 60_000.0),))


class TestRecovery:
    def test_faulty_run_bit_identical_but_slower(self, build_pair):
        clean = build_pair()
        harden_links(clean)
        clean_result = clean.run(200)

        faulty = build_pair()
        harden_links(faulty, MIXED_FAULTS)
        faulty_result = faulty.run(200)

        assert faulty.output_log == clean.output_log
        assert faulty_result.target_cycles == clean_result.target_cycles
        assert faulty_result.tokens_transferred == \
            clean_result.tokens_transferred
        assert faulty_result.rate_hz < clean_result.rate_hz

    def test_every_fault_class_recovered_and_counted(self, build_pair):
        sim = build_pair()
        harden_links(sim, MIXED_FAULTS)
        result = sim.run(200)
        stats = result.detail["reliability"]
        totals = {key: sum(s[key] for s in stats.values())
                  for key in ("retries", "drops_recovered",
                              "crc_rejects", "flap_stalls", "spikes")}
        assert totals["drops_recovered"] > 0
        assert totals["crc_rejects"] > 0
        assert totals["flap_stalls"] > 0
        assert totals["spikes"] > 0
        assert totals["retries"] >= (totals["drops_recovered"]
                                     + totals["crc_rejects"]
                                     + totals["flap_stalls"])
        assert sim.dropped_tokens == 0  # nothing lost end-to-end

    def test_reliability_is_not_free(self, build_pair):
        bare = build_pair()
        bare_result = bare.run(120)
        hardened = build_pair()
        harden_links(hardened)
        hardened_result = hardened.run(120)
        # same results, but the ack/CRC framing costs a little rate
        assert hardened.output_log == bare.output_log
        assert hardened_result.rate_hz < bare_result.rate_hz
        assert hardened_result.rate_hz > 0.9 * bare_result.rate_hz

    def test_deeper_faults_cost_more(self, build_pair):
        rates = []
        for drop in (0.0, 0.05, 0.25):
            sim = build_pair()
            harden_links(sim, FaultSpec(seed=1, drop_rate=drop))
            rates.append(sim.run(150).rate_hz)
        assert rates[0] > rates[1] > rates[2]

    def test_retry_budget_exhaustion_raises(self, build_pair):
        sim = build_pair()
        harden_links(sim, FaultSpec(seed=1, drop_rate=1.0),
                     ReliableLinkConfig(max_retries=4))
        with pytest.raises(LinkGiveUpError) as err:
            sim.run(50)
        assert err.value.attempts == 5
        assert "undeliverable" in str(err.value)


class TestLayerState:
    def test_sequence_numbers_track_deliveries(self, build_pair):
        sim = build_pair()
        harden_links(sim, MIXED_FAULTS)
        sim.run(80)
        for link in sim.links:
            layer = link.reliability
            assert layer.tx_seq == layer.rx_seq == \
                layer.stats["delivered"]
            assert layer.tx_seq == link.tokens

    def test_state_dict_roundtrip(self):
        layer = ReliableLinkLayer()
        layer.tx_seq = layer.rx_seq = 17
        layer.stats["retries"] = 5
        clone = ReliableLinkLayer()
        clone.load_state_dict(layer.state_dict())
        assert clone.tx_seq == 17
        assert clone.rx_seq == 17
        assert clone.stats == layer.stats

    def test_backoff_grows_and_caps(self):
        layer = ReliableLinkLayer(ReliableLinkConfig(
            timeout_ns=100.0, backoff=2.0, max_backoff_ns=350.0))
        waits = [layer._retry_wait_ns(a) for a in range(4)]
        assert waits == [100.0, 200.0, 350.0, 350.0]
