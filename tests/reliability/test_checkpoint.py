"""Checkpoint/restore of partitioned runs."""

import json

import pytest

from repro.errors import CheckpointError
from repro.reliability import (
    CHECKPOINT_VERSION,
    FaultSpec,
    capture_state,
    harden_links,
    load_checkpoint,
    restore_checkpoint,
    restore_state,
    save_checkpoint,
)


def _json_roundtrip(state):
    """What an on-disk checkpoint goes through (tuples become lists,
    int keys become strings...)."""
    return json.loads(json.dumps(state))


class TestMidFlightRestore:
    def test_restored_run_matches_uninterrupted(self, build_pair):
        uninterrupted = build_pair()
        expected = uninterrupted.run(120)

        first = build_pair()
        first.run(47)
        state = _json_roundtrip(capture_state(first))

        resumed = build_pair()  # a fresh "process"
        restore_state(resumed, state)
        result = resumed.run(120)

        assert result == expected  # cycles, rate, tokens, per-part, fmr
        assert resumed.output_log == uninterrupted.output_log

    def test_restore_is_bit_exact_state(self, build_pair):
        sim = build_pair()
        sim.run(31)
        state = _json_roundtrip(capture_state(sim))
        clone = build_pair()
        restore_state(clone, state)
        assert capture_state(clone) == capture_state(sim)

    def test_fame5_restore_is_functionally_exact(self, build_fame5):
        """FAME-5 partitions share one busy_until cursor across threads,
        so the timing overlay depends on the stop/resume schedule — but
        the functional state (cycles, tokens, outputs) is exact."""
        uninterrupted = build_fame5()
        expected = uninterrupted.run(100)

        first = build_fame5()
        first.run(41)
        state = _json_roundtrip(capture_state(first))
        resumed = build_fame5()
        restore_state(resumed, state)
        result = resumed.run(100)

        assert result.target_cycles == expected.target_cycles
        assert result.tokens_transferred == expected.tokens_transferred
        assert result.per_partition_cycles == \
            expected.per_partition_cycles
        assert resumed.output_log == uninterrupted.output_log
        # timing is schedule-dependent but stays within one percent
        assert result.rate_hz == pytest.approx(expected.rate_hz,
                                               rel=0.01)

    def test_reliable_faulty_run_survives_checkpoint(self, build_pair):
        spec = FaultSpec(seed=11, drop_rate=0.03, corrupt_rate=0.02)

        def build():
            sim = build_pair()
            harden_links(sim, spec)
            return sim

        uninterrupted = build()
        expected = uninterrupted.run(120)

        first = build()
        first.run(59)
        state = _json_roundtrip(capture_state(first))
        resumed = build()
        restore_state(resumed, state)
        result = resumed.run(120)

        assert result == expected
        assert resumed.output_log == uninterrupted.output_log


class TestOnDiskFormat:
    def test_save_load_restore(self, build_pair, tmp_path):
        sim = build_pair()
        sim.run(40)
        path = save_checkpoint(sim, tmp_path / "run" / "ckpt.json")
        assert path.exists()

        fresh = build_pair()
        restore_checkpoint(fresh, path)
        assert fresh.run(90) == build_pair().run(90)

    def test_version_mismatch_rejected(self, build_pair):
        sim = build_pair()
        state = capture_state(sim)
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            restore_state(build_pair(), state)

    def test_format_mismatch_rejected(self, build_pair, tmp_path):
        path = tmp_path / "not-a-checkpoint.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(path)

    def test_topology_mismatch_rejected(self, build_pair, build_fame5):
        pair = build_pair()
        pair.run(10)
        state = capture_state(pair)
        with pytest.raises(CheckpointError, match="topology"):
            restore_state(build_fame5(), state)

    def test_missing_link_layer_rejected(self, build_pair):
        hardened = build_pair()
        harden_links(hardened)
        hardened.run(10)
        state = capture_state(hardened)
        bare = build_pair()
        with pytest.raises(CheckpointError, match="reliable link layer"):
            restore_state(bare, state)
