"""Result cache, single-flight table and config normalization."""

import pytest

from repro.errors import ServiceError
from repro.service import (
    ResultCache,
    SingleFlight,
    execute_config,
    normalize_config,
)
from repro.service.jobs import Job
from repro.telemetry import RunRegistry, config_fingerprint


class TestNormalize:
    def test_defaults_fill_before_fingerprint(self, make_config):
        explicit = normalize_config(make_config(
            transport="qsfp", freq=30.0, backend="auto"))
        implicit = normalize_config(make_config())
        assert config_fingerprint(explicit) \
            == config_fingerprint(implicit)

    def test_extract_strings_and_lists_are_equivalent(self,
                                                      make_config):
        a = normalize_config(make_config(extract=["right"]))
        b = normalize_config(make_config(extract=[["right"]]))
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_cycles_change_the_key(self, make_config):
        a = normalize_config(make_config(cycles=60))
        b = normalize_config(make_config(cycles=61))
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_rejects_unknown_keys(self, make_config):
        with pytest.raises(ServiceError):
            normalize_config(make_config(warp_factor=9))

    def test_rejects_unknown_kind_and_transport(self, make_config):
        with pytest.raises(ServiceError):
            normalize_config({"kind": "teleport"})
        with pytest.raises(ServiceError):
            normalize_config(make_config(transport="carrier-pigeon"))

    def test_simulate_wants_a_circuit(self):
        with pytest.raises(ServiceError):
            normalize_config({"kind": "simulate",
                              "extract": ["right"]})

    def test_experiment_config_is_minimal(self):
        normalized = normalize_config({"kind": "experiment",
                                       "experiment": "table1"})
        assert normalized == {"kind": "experiment",
                              "experiment": "table1"}
        with pytest.raises(ServiceError):
            normalize_config({"kind": "experiment"})


class TestSingleFlight:
    def test_begin_attach_finish(self):
        flight = SingleFlight()
        leader = Job(job_id="l", tenant="t", config={},
                     fingerprint="fp")
        follower = Job(job_id="f", tenant="t", config={},
                       fingerprint="fp")
        assert flight.leader_for("fp") is None
        flight.begin("fp", leader)
        entry = flight.attach("fp", follower)
        assert entry.leader is leader
        assert entry.followers == [follower]
        assert len(flight) == 1
        popped = flight.finish("fp")
        assert popped is entry
        assert flight.leader_for("fp") is None
        assert flight.finish("fp") is None


class TestResultCache:
    def test_miss_fill_hit(self, make_config, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        cache = ResultCache(registry)
        config = normalize_config(make_config(cycles=40))
        fingerprint = config_fingerprint(config)
        assert cache.lookup(fingerprint) is None
        outcome = execute_config(config)
        job = Job(job_id="j1", tenant="alice", config=config,
                  fingerprint=fingerprint, name="pair")
        stored = cache.store(outcome.result, job,
                             backend=outcome.backend)
        assert stored["fingerprint"] == fingerprint
        hit = cache.lookup(fingerprint)
        assert hit["run_id"] == stored["run_id"]
        assert cache.stats() == {"lookups": 2, "hits": 1,
                                 "misses": 1, "fills": 1,
                                 "in_flight": 0}

    def test_store_names_record_after_job(self, make_config, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        cache = ResultCache(registry)
        config = normalize_config(make_config(cycles=40))
        outcome = execute_config(config)
        job = Job(job_id="j1", tenant="acme", config=config,
                  fingerprint=config_fingerprint(config))
        stored = cache.store(outcome.result, job)
        # unnamed jobs archive under their tenant
        assert stored["name"] == "acme"
        assert stored["config"] == config
