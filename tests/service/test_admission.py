"""Admission control: per-tenant quotas over the priority queue."""

import pytest

from repro.errors import QuotaExceededError, ServiceError
from repro.service import AdmissionController, TenantQuota
from repro.service.jobs import Job


def make_job(job_id="j1", tenant="t", priority=0):
    return Job(job_id=job_id, tenant=tenant, config={},
               fingerprint="f" + job_id, priority=priority)


class TestQuotaParse:
    def test_parses_queued_and_active(self):
        quota = TenantQuota.parse("4:8")
        assert quota.max_queued == 4
        assert quota.max_active == 8

    @pytest.mark.parametrize("text", ["", "4", "4:8:12", "a:b"])
    def test_rejects_malformed(self, text):
        with pytest.raises(ServiceError):
            TenantQuota.parse(text)


class TestPriorityOrder:
    def test_higher_priority_pops_first(self):
        ctl = AdmissionController()
        low = make_job("low", priority=0)
        high = make_job("high", priority=5)
        ctl.admit(low)
        ctl.admit(high)
        assert ctl.pop() is high
        assert ctl.pop() is low

    def test_fifo_within_a_priority_level(self):
        ctl = AdmissionController()
        jobs = [make_job(f"j{i}") for i in range(4)]
        for job in jobs:
            ctl.admit(job)
        assert [ctl.pop() for _ in jobs] == jobs

    def test_pop_empty_returns_none(self):
        assert AdmissionController().pop() is None


class TestQuotas:
    def test_queued_quota_rejects_typed(self):
        ctl = AdmissionController(TenantQuota(max_queued=1,
                                              max_active=10))
        ctl.admit(make_job("a"))
        with pytest.raises(QuotaExceededError) as err:
            ctl.admit(make_job("b"))
        assert err.value.kind == "queued"
        assert err.value.tenant == "t"
        assert err.value.limit == 1
        # the rejected job never entered the heap
        assert ctl.queued_total == 1

    def test_active_quota_counts_running_jobs(self):
        ctl = AdmissionController(TenantQuota(max_queued=4,
                                              max_active=1))
        first = make_job("a")
        ctl.admit(first)
        ctl.pop()  # running now: queued 0, active 1
        with pytest.raises(QuotaExceededError) as err:
            ctl.admit(make_job("b"))
        assert err.value.kind == "active"
        ctl.release(first)
        ctl.admit(make_job("c"))

    def test_quotas_are_per_tenant(self):
        ctl = AdmissionController(
            TenantQuota(max_queued=1, max_active=1),
            quotas={"big": TenantQuota(max_queued=3, max_active=3)})
        ctl.admit(make_job("a", tenant="small"))
        with pytest.raises(QuotaExceededError):
            ctl.admit(make_job("b", tenant="small"))
        for i in range(3):
            ctl.admit(make_job(f"c{i}", tenant="big"))

    def test_requeue_bypasses_quota(self):
        ctl = AdmissionController(TenantQuota(max_queued=1,
                                              max_active=1))
        ctl.admit(make_job("a"))
        promoted = make_job("b")
        ctl.requeue(promoted)
        assert promoted.admitted
        assert ctl.queued_total == 2

    def test_snapshot_reports_per_tenant_state(self):
        ctl = AdmissionController(TenantQuota(max_queued=2,
                                              max_active=4))
        ctl.admit(make_job("a", tenant="alice"))
        ctl.admit(make_job("b", tenant="bob"))
        ctl.pop()
        snap = ctl.snapshot()
        assert snap["queued"] == 1
        assert snap["active"] == 2
        assert snap["tenants"]["alice"]["active"] == 1
        assert snap["tenants"]["alice"]["max_queued"] == 2
