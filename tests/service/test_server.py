"""The JSON-over-HTTP endpoint, its client, and the service CLI."""

import time

import pytest

from repro.cli import main
from repro.errors import JobNotFoundError, QuotaExceededError, ServiceError
from repro.service import (
    ServiceConfig,
    ServiceThread,
    TenantQuota,
    parse_server,
)


@pytest.fixture
def thread(tmp_path):
    thread = ServiceThread(ServiceConfig(
        workers=2, runs_dir=tmp_path / "runs",
        live_dir=tmp_path / "live",
        quotas={"capped": TenantQuota(max_queued=0, max_active=0)}))
    yield thread
    thread.stop()


@pytest.fixture
def client(thread):
    return thread.client()


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, \
            "condition never became true"
        time.sleep(0.02)


class TestParseServer:
    def test_host_and_port_forms(self):
        assert parse_server("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_server("10.0.0.1") == ("10.0.0.1", 8642)
        assert parse_server(":9000") == ("127.0.0.1", 9000)

    def test_rejects_bad_port(self):
        with pytest.raises(ServiceError):
            parse_server("host:nope")


class TestEndpoint:
    def test_health_and_stats(self, client):
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["counters"]["submitted"] == 0

    def test_submit_wait_then_cache_hit(self, client, make_config):
        cold = client.submit(make_config(cycles=70), tenant="alice",
                             name="pair")
        record = client.wait(cold["job_id"], timeout=60)
        assert record["state"] == "done"
        assert record["source"] == "execution"
        assert record["result"]["target_cycles"] == 70
        hit = client.submit(make_config(cycles=70), tenant="bob")
        assert hit["state"] == "done"
        assert hit["source"] == "cache"
        assert hit["run_id"] == record["run_id"]
        counters = client.stats()["counters"]
        assert counters["executions"] == 1
        assert counters["cache_hits"] == 1

    def test_jobs_listing_filters_by_tenant(self, client,
                                            make_config):
        client.submit(make_config(cycles=40), tenant="alice")
        client.submit(make_config(cycles=41), tenant="bob")
        assert len(client.jobs()) == 2
        mine = client.jobs(tenant="alice")
        assert [job["tenant"] for job in mine] == ["alice"]

    def test_quota_rejection_is_typed_over_the_wire(self, client,
                                                    make_config):
        with pytest.raises(QuotaExceededError) as err:
            client.submit(make_config(), tenant="capped")
        assert err.value.tenant == "capped"
        assert err.value.kind == "queued"

    def test_unknown_job_raises_not_found(self, client):
        with pytest.raises(JobNotFoundError):
            client.job("job-999999")
        with pytest.raises(JobNotFoundError):
            client.cancel("job-999999")

    def test_bad_config_raises_service_error(self, client):
        with pytest.raises(ServiceError):
            client.submit({"kind": "teleport"})

    def test_cancel_running_job_over_the_wire(self, client,
                                              make_config):
        job = client.submit(make_config(cycles=500_000))
        wait_until(
            lambda: client.job(job["job_id"])["state"] == "running")
        client.cancel(job["job_id"])
        record = client.wait(job["job_id"], timeout=60)
        assert record["state"] == "cancelled"
        assert record["result"]["partial"] is True

    def test_wait_timeout_reports_not_fails(self, client,
                                            make_config):
        job = client.submit(make_config(cycles=500_000))
        record = client.wait(job["job_id"], timeout=0.1)
        assert record["timed_out"] is True
        assert record["state"] in ("queued", "running")
        client.cancel(job["job_id"])

    def test_executed_job_keeps_a_live_status_file(self, client,
                                                   make_config):
        job = client.submit(make_config(cycles=90), tenant="alice")
        record = client.wait(job["job_id"], timeout=60)
        assert record["live_path"]
        import json
        payload = json.loads(open(record["live_path"]).read())
        assert payload["job"] == job["job_id"]
        assert payload["tenant"] == "alice"
        assert payload["status"] == "done"


class TestCLI:
    def test_submit_wait_jobs_watch_roundtrip(self, thread,
                                              make_config, tmp_path,
                                              capsys):
        circuit = tmp_path / "pair.fir"
        from repro.firrtl import print_circuit
        from repro.targets import make_comb_pair_circuit
        circuit.write_text(print_circuit(make_comb_pair_circuit()))
        server = f"127.0.0.1:{thread.port}"

        rc = main(["submit", str(circuit), "--extract", "right",
                   "--mode", "fast", "--cycles", "60",
                   "--server", server, "--tenant", "alice",
                   "--name", "pair", "--wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "source=execution" in out
        assert "run pair-" in out

        # the same submission again is a cache hit
        rc = main(["submit", str(circuit), "--extract", "right",
                   "--mode", "fast", "--cycles", "60",
                   "--server", server, "--wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "source=cache" in out

        rc = main(["jobs", "--server", server])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 job(s)" in out
        assert "executions=1 cache_hits=1" in out

        rc = main(["watch", "--job", "job-000001",
                   "--server", server, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job-000001: done" in out

    def test_cancel_and_error_paths(self, thread, make_config,
                                    tmp_path, capsys):
        circuit = tmp_path / "pair.fir"
        from repro.firrtl import print_circuit
        from repro.targets import make_comb_pair_circuit
        circuit.write_text(print_circuit(make_comb_pair_circuit()))
        server = f"127.0.0.1:{thread.port}"

        rc = main(["submit", str(circuit), "--extract", "right",
                   "--cycles", "500000", "--server", server])
        assert rc == 0
        capsys.readouterr()
        rc = main(["cancel", "job-000001", "--server", server])
        out = capsys.readouterr().out
        assert rc == 0
        rc = main(["watch", "--job", "job-000001", "--server", server,
                   "--timeout", "30"])
        assert rc == 1  # terminal but not done

        rc = main(["cancel", "job-424242", "--server", server])
        err = capsys.readouterr().err
        assert rc == 1
        assert "job-424242" in err

    def test_submit_without_target_errors(self, thread, capsys):
        rc = main(["submit", "--server",
                   f"127.0.0.1:{thread.port}"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "submit wants" in err
