"""The asyncio simulation service: cache hits, coalescing, quotas,
priorities, cancellation, and bit-identity of cached results."""

import asyncio
import json

import pytest

from repro.errors import QuotaExceededError
from repro.service import (
    ServiceConfig,
    SimulationService,
    TenantQuota,
    execute_config,
)
from repro.telemetry import RunRegistry
from repro.telemetry.runs import run_record


def run_scenario(scenario, config):
    """Drive one async scenario on a started service."""

    async def amain():
        service = SimulationService(config)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.shutdown()

    return asyncio.run(amain())


async def wait_for(predicate, timeout=30.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        assert asyncio.get_event_loop().time() < deadline, \
            "condition never became true"
        await asyncio.sleep(0.01)


@pytest.fixture
def service_config(tmp_path):
    return ServiceConfig(workers=1, runs_dir=tmp_path / "runs")


class TestCache:
    def test_hit_completes_at_submit_without_executing(
            self, make_config, service_config):
        async def scenario(service):
            cold = await service.submit(make_config(), tenant="alice")
            await service.wait(cold.job_id, timeout=60)
            hit = await service.submit(make_config(), tenant="bob")
            return cold, hit, service

        cold, hit, service = run_scenario(scenario, service_config)
        assert cold.state == "done"
        assert cold.source == "execution"
        assert hit.state == "done"
        assert hit.source == "cache"
        assert hit.run_id == cold.run_id
        # the hit never occupied a worker
        assert service.counters["executions"] == 1
        assert service.counters["cache_hits"] == 1
        assert service.execution_log == [cold.job_id]

    def test_distinct_configs_both_execute(self, make_config,
                                           service_config):
        async def scenario(service):
            a = await service.submit(make_config(cycles=40))
            b = await service.submit(make_config(cycles=41))
            await service.drain()
            return a, b, service

        a, b, service = run_scenario(scenario, service_config)
        assert a.state == b.state == "done"
        assert a.run_id != b.run_id
        assert service.counters["executions"] == 2

    def test_cached_record_bit_identical_to_fresh_run(
            self, make_config, service_config):
        """The acceptance check: what the cache serves equals what
        re-simulating would have produced, field for field."""

        async def scenario(service):
            job = await service.submit(make_config(cycles=80),
                                       name="pair")
            await service.wait(job.job_id, timeout=60)
            return job, service

        job, service = run_scenario(scenario, service_config)
        cached = service.registry.load(job.run_id)
        # identical code path: the service always wires a stop hook,
        # which disables wavefront batching
        outcome = execute_config(job.config,
                                 should_stop=lambda: False)
        fresh = run_record(outcome.result, name="pair",
                           backend=outcome.backend,
                           config=job.config)
        # the cache serves the archived (JSON) form of the record
        fresh = json.loads(json.dumps(fresh))
        for key in ("target_cycles", "wall_ns", "rate_hz",
                    "tokens_transferred", "per_partition_cycles",
                    "detail", "fingerprint", "config"):
            assert cached[key] == fresh[key], key


class TestSingleFlightService:
    def test_identical_inflight_configs_coalesce(self, make_config,
                                                 service_config):
        async def scenario(service):
            leader = await service.submit(make_config(cycles=5000))
            follower = await service.submit(make_config(cycles=5000))
            await service.drain()
            return leader, follower, service

        leader, follower, service = run_scenario(scenario,
                                                 service_config)
        assert leader.source == "execution"
        assert follower.source == "coalesced"
        assert follower.run_id == leader.run_id
        assert service.counters["executions"] == 1
        assert service.counters["coalesced"] == 1

    def test_cancelled_leader_promotes_follower(self, make_config,
                                                service_config):
        async def scenario(service):
            blocker = await service.submit(make_config(cycles=4000))
            await wait_for(lambda: blocker.state == "running")
            leader = await service.submit(make_config(cycles=90))
            follower = await service.submit(make_config(cycles=90))
            await service.cancel(leader.job_id)
            await service.drain()
            return leader, follower, service

        leader, follower, service = run_scenario(scenario,
                                                 service_config)
        assert leader.state == "cancelled"
        assert follower.state == "done"
        assert follower.source == "execution"
        assert service.counters["executions"] == 2

    def test_failed_leader_fails_followers(self, make_config,
                                           service_config):
        bad = {"kind": "simulate", "circuit_text": "not firrtl",
               "extract": ["right"], "cycles": 10}

        async def scenario(service):
            blocker = await service.submit(make_config(cycles=4000))
            await wait_for(lambda: blocker.state == "running")
            leader = await service.submit(dict(bad))
            follower = await service.submit(dict(bad))
            await service.drain()
            return leader, follower, service

        leader, follower, service = run_scenario(scenario,
                                                 service_config)
        assert leader.state == "failed"
        assert leader.error
        assert follower.state == "failed"
        assert leader.job_id in follower.error
        assert service.counters["failed"] == 2


class TestAdmissionService:
    def test_quota_rejection_never_creates_a_job(self, make_config,
                                                 tmp_path):
        config = ServiceConfig(
            workers=1, runs_dir=tmp_path / "runs",
            default_quota=TenantQuota(max_queued=1, max_active=1))

        async def scenario(service):
            first = await service.submit(make_config(cycles=40),
                                         tenant="greedy")
            with pytest.raises(QuotaExceededError) as err:
                await service.submit(make_config(cycles=41),
                                     tenant="greedy")
            # another tenant is unaffected
            other = await service.submit(make_config(cycles=42),
                                         tenant="patient")
            return first, err.value, other, service

        # the service is intentionally not started: jobs stay queued
        async def amain():
            service = SimulationService(config)
            return await scenario(service)

        first, err, other, service = asyncio.run(amain())
        assert err.kind == "queued"
        assert err.tenant == "greedy"
        assert service.counters["rejected"] == 1
        assert len(service.jobs) == 2
        assert first.state == other.state == "queued"

    def test_priority_orders_execution(self, make_config, tmp_path):
        config = ServiceConfig(workers=1,
                               runs_dir=tmp_path / "runs")

        async def scenario(service):
            blocker = await service.submit(make_config(cycles=4000))
            await wait_for(lambda: blocker.state == "running")
            low = await service.submit(make_config(cycles=50),
                                       priority=0)
            high = await service.submit(make_config(cycles=51),
                                        priority=5)
            await service.drain()
            return blocker, low, high, service

        blocker, low, high, service = run_scenario(scenario, config)
        assert service.execution_log == [blocker.job_id, high.job_id,
                                         low.job_id]


class TestCancellation:
    def test_cancel_queued_job(self, make_config, tmp_path):
        config = ServiceConfig(workers=1,
                               runs_dir=tmp_path / "runs")

        async def amain():
            service = SimulationService(config)  # not started
            job = await service.submit(make_config(cycles=40))
            await service.cancel(job.job_id)
            return job, service

        job, service = asyncio.run(amain())
        assert job.state == "cancelled"
        assert service.counters["cancelled"] == 1
        assert service.counters["executions"] == 0

    def test_cancel_mid_run_stops_within_a_pass(self, make_config,
                                                service_config):
        async def scenario(service):
            job = await service.submit(make_config(cycles=500_000))
            await wait_for(lambda: job.state == "running")
            await service.cancel(job.job_id)
            await service.wait(job.job_id, timeout=60)
            return job, service

        job, service = run_scenario(scenario, service_config)
        assert job.state == "cancelled"
        assert job.result["partial"] is True
        assert 0 < job.result["target_cycles"] < 500_000
        # nothing partial reaches the cache
        assert RunRegistry(service.registry.root).index() == {}

    def test_cancel_is_idempotent_and_wait_times_out(
            self, make_config, service_config):
        async def scenario(service):
            job = await service.submit(make_config(cycles=500_000))
            with pytest.raises(asyncio.TimeoutError):
                await service.wait(job.job_id, timeout=0.05)
            await service.cancel(job.job_id)
            await service.cancel(job.job_id)
            await service.wait(job.job_id, timeout=60)
            return job

        job = run_scenario(scenario, service_config)
        assert job.state == "cancelled"


class TestJobKinds:
    def test_unknown_experiment_fails_the_job(self, service_config):
        async def scenario(service):
            job = await service.submit({"kind": "experiment",
                                        "experiment": "fig99"})
            await service.wait(job.job_id, timeout=60)
            return job

        job = run_scenario(scenario, service_config)
        assert job.state == "failed"
        assert "unknown experiment" in job.error

    def test_stats_shape(self, make_config, service_config):
        async def scenario(service):
            job = await service.submit(make_config(cycles=40))
            await service.wait(job.job_id, timeout=60)
            return service.stats()

        stats = run_scenario(scenario, service_config)
        assert stats["jobs"]["total"] == 1
        assert stats["jobs"]["done"] == 1
        assert stats["counters"]["executions"] == 1
        assert stats["cache"]["fills"] == 1
        assert "admission" in stats
