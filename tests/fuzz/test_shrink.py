"""Shrinker: injected disagreements minimize to tiny repros,
deterministically."""

import pytest

from repro.errors import FuzzFailure, ReproError
from repro.fuzz import (
    GeneratorKnobs,
    generate_scenario,
    num_partitions,
    probe,
    run_oracles,
    shrink,
)
from repro.parallel.coordinator import fork_available

SEED = 7

#: knobs biased toward multi-partition pipelines so the shrinker has
#: real structure to strip
BIG_KNOBS = GeneratorKnobs(shapes=("pipeline",), max_lanes=3,
                           max_stages=3, max_cycles=120)


def multi_partition_scenario():
    for index in range(60):
        sc = generate_scenario(SEED, index, BIG_KNOBS)
        if num_partitions(sc) >= 3:
            return sc
    raise AssertionError("no >=3-partition pipeline scenario found")


def always_failing(sc):
    raise FuzzFailure("identity", "process", "planted disagreement",
                      scenario=sc.to_dict())


class TestProbe:
    def test_passing_checker_returns_none(self):
        sc = generate_scenario(SEED, 0, BIG_KNOBS)
        assert probe(lambda s: None, sc) is None

    def test_failure_is_returned(self):
        sc = generate_scenario(SEED, 0, BIG_KNOBS)
        exc = probe(always_failing, sc)
        assert isinstance(exc, FuzzFailure)

    def test_library_crash_is_not_a_repro(self):
        sc = generate_scenario(SEED, 0, BIG_KNOBS)

        def crashes(s):
            raise ReproError("harness exploded")

        assert probe(crashes, sc) is None


class TestShrink:
    def test_needs_a_failing_scenario(self):
        sc = generate_scenario(SEED, 0, BIG_KNOBS)
        with pytest.raises(ReproError):
            shrink(sc, lambda s: None)

    def test_always_failing_bottoms_out_minimal(self):
        sc = multi_partition_scenario()
        result = shrink(sc, always_failing)
        assert num_partitions(result.scenario) == 2
        assert result.scenario.cycles == 24
        assert len(result.scenario.params["lanes"]) == 1
        assert result.rounds >= 1
        assert result.trail[0].startswith(sc.fingerprint)

    def test_shrink_is_deterministic(self):
        sc = multi_partition_scenario()
        a = shrink(sc, always_failing)
        b = shrink(sc, always_failing)
        assert a.scenario == b.scenario
        assert a.trail == b.trail
        assert a.attempts == b.attempts

    def test_max_attempts_bounds_oracle_cost(self):
        sc = multi_partition_scenario()
        calls = []

        def counted(s):
            calls.append(s)
            raise FuzzFailure("identity", "", "planted",
                              scenario=s.to_dict())

        failure = FuzzFailure("identity", "", "planted",
                              scenario=sc.to_dict())
        result = shrink(sc, counted, failure=failure, max_attempts=5)
        assert result.attempts <= 5
        assert len(calls) <= 5

    def test_conditional_failure_keeps_trigger(self):
        """The shrinker must not 'fix' the bug away: a failure gated on
        a property survives minimization with that property intact."""
        sc = multi_partition_scenario()

        def fails_when_multi_lane(s):
            if len(s.params["lanes"]) >= 2:
                raise FuzzFailure("identity", "", "needs two lanes",
                                  scenario=s.to_dict())

        if len(sc.params["lanes"]) < 2:
            pytest.skip("picked scenario is single-lane")
        result = shrink(sc, fails_when_multi_lane)
        assert len(result.scenario.params["lanes"]) == 2


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_injected_backend_bug_minimizes_to_two_partitions():
    """The acceptance property: a real perturbed-backend miscompare
    found by the identity oracle shrinks to a <=2-partition repro."""

    def perturb(backend, sim, result):
        if backend == "process":
            result.tokens_transferred += 1

    def check(sc):
        return run_oracles(sc, oracles=("identity",),
                           backends=("inproc", "process"),
                           perturb=perturb)

    sc = multi_partition_scenario()
    failure = probe(check, sc)
    assert failure is not None, "perturbation did not trip the oracle"
    result = shrink(sc, check, failure=failure, max_attempts=64)
    assert num_partitions(result.scenario) <= 2
    assert result.failure.oracle == "identity"
    assert result.failure.backend == "process"
