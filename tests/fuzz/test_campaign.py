"""Campaign loop, repro files, replay, and the committed regression
corpus."""

import json
from pathlib import Path

import pytest

from repro.errors import FuzzFailure, ReproError
from repro.fuzz import (
    FuzzConfig,
    GeneratorKnobs,
    generate_scenario,
    list_corpus,
    load_repro,
    num_partitions,
    replay,
    run_campaign,
    save_repro,
)
from repro.fuzz.shrink import ShrinkResult
from repro.parallel.coordinator import fork_available
from repro.telemetry import RunRegistry

COMMITTED_CORPUS = Path(__file__).parent / "corpus"

FAST_KNOBS = GeneratorKnobs(shapes=("pipeline",), max_lanes=2,
                            max_stages=2, max_cycles=80)


def fast_config(tmp_path, **overrides):
    defaults = dict(seed=7, budget=3, oracles=("identity",),
                    backends=("inproc",),
                    corpus_dir=tmp_path / "corpus", knobs=FAST_KNOBS)
    defaults.update(overrides)
    return FuzzConfig(**defaults)


class TestCampaign:
    def test_clean_campaign_reports_ok(self, tmp_path):
        lines = []
        report = run_campaign(fast_config(tmp_path), progress=lines.append)
        assert report.ok
        assert len(report.outcomes) == 3
        assert not report.stopped_early
        assert all(o.status == "ok" for o in report.outcomes)
        assert len(lines) == 3
        assert list_corpus(tmp_path / "corpus") == []

    def test_summary_counts_shapes(self, tmp_path):
        report = run_campaign(fast_config(tmp_path))
        summary = report.summary()
        assert summary["scenarios"] == 3
        assert summary["failed"] == 0
        assert sum(summary["shapes"].values()) == 3

    def test_campaign_archives_to_registry(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        run_campaign(fast_config(tmp_path), registry=registry)
        records = registry.list_runs()
        assert len(records) == 1
        assert records[0]["name"] == "fuzz"
        assert records[0]["fuzz"]["scenarios"] == 3

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_perturbed_campaign_writes_minimized_repro(self, tmp_path):
        def perturb(backend, sim, result):
            if backend == "process":
                result.tokens_transferred += 1

        config = fast_config(tmp_path, budget=2,
                             backends=("inproc", "process"),
                             max_failures=1, max_shrink_attempts=48)
        report = run_campaign(config, perturb=perturb)
        assert not report.ok
        assert report.stopped_early
        failed = report.failures[0]
        assert failed.repro_path is not None
        scenario, payload = load_repro(failed.repro_path)
        assert payload["failure"]["oracle"] == "identity"
        assert payload["failure"]["backend"] == "process"
        assert payload["num_partitions"] <= 2
        assert "shrink" in payload
        # the planted bug lives in the perturbation, not the repo:
        # replaying without it comes back clean
        notes = replay(failed.repro_path, backends=("inproc", "process"))
        assert "identity" in notes


class TestReproFiles:
    def test_save_load_roundtrip(self, tmp_path):
        sc = generate_scenario(7, 0, FAST_KNOBS)
        failure = FuzzFailure("identity", "process-shm", "planted",
                              scenario=sc.to_dict())
        original = generate_scenario(7, 1, FAST_KNOBS)
        result = ShrinkResult(scenario=sc, failure=failure, rounds=2,
                              attempts=7, trail=["abc:3p", "def:2p"])
        path = save_repro(tmp_path, sc, failure, original=original,
                          shrink_result=result)
        loaded, payload = load_repro(path)
        assert loaded == sc
        assert payload["original_scenario"] == original.to_dict()
        assert payload["shrink"]["attempts"] == 7
        assert payload["spec"] is not None

    def test_list_corpus_summarizes(self, tmp_path):
        assert list_corpus(tmp_path / "missing") == []
        sc = generate_scenario(7, 2, FAST_KNOBS)
        save_repro(tmp_path, sc,
                   FuzzFailure("faults", "", "planted",
                               scenario=sc.to_dict()))
        entries = list_corpus(tmp_path)
        assert len(entries) == 1
        assert entries[0]["oracle"] == "faults"
        assert entries[0]["num_partitions"] == num_partitions(sc)

    def test_load_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            load_repro(bad)
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError):
            load_repro(bad)
        sc = generate_scenario(7, 0, FAST_KNOBS)
        path = save_repro(tmp_path, sc,
                          FuzzFailure("identity", "", "x",
                                      scenario=sc.to_dict()))
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError):
            load_repro(path)


@pytest.mark.fuzz
def test_forty_scenario_campaign_is_clean(tmp_path):
    """The CI smoke campaign as a pytest entry: 40 fixed-seed
    scenarios through every oracle and every available backend must
    produce zero disagreements (deselected by default; run with
    ``pytest -m fuzz``)."""
    config = FuzzConfig(seed=7, budget=40,
                        corpus_dir=tmp_path / "corpus")
    report = run_campaign(config)
    assert report.ok, report.summary()
    assert len(report.outcomes) == 40


def corpus_paths():
    return sorted(COMMITTED_CORPUS.glob("*.json"))


@pytest.mark.parametrize("path", corpus_paths(),
                         ids=lambda p: p.stem)
def test_committed_corpus_replays_clean(path):
    """Regression pins: every repro in tests/fuzz/corpus once exposed a
    real disagreement (or a seam the oracles had to learn about) and
    must now replay clean through its own oracle."""
    notes = replay(path, backends=("inproc", "process")
                   if fork_available() else ("inproc",))
    assert notes  # the oracle ran and did not raise
