"""Differential oracles on fixed scenarios: clean passes, injected
disagreements caught, digests stable."""

import pytest

from repro.errors import FuzzFailure, ReproError
from repro.fuzz import (
    GeneratorKnobs,
    check_checkpoint,
    check_fastmode,
    check_faults,
    check_identity,
    functional_digest,
    generate_scenario,
    make_sim,
    run_oracles,
)
from repro.fuzz.oracle import _first_diff
from repro.parallel.coordinator import fork_available

SEED = 7

PIPE_KNOBS = GeneratorKnobs(shapes=("pipeline",), max_lanes=2,
                            max_stages=2, max_cycles=96)


def find_scenario(pred, knobs=None, limit=40):
    for index in range(limit):
        sc = generate_scenario(SEED, index, knobs)
        if pred(sc):
            return sc
    raise AssertionError("no scenario in range matches the predicate")


@pytest.fixture(scope="module")
def pipeline_scenario():
    return find_scenario(lambda sc: True, knobs=PIPE_KNOBS)


@pytest.fixture(scope="module")
def faulty_scenario():
    return find_scenario(
        lambda sc: sum((sc.params.get("fault") or {}).values()) > 0,
        knobs=PIPE_KNOBS)


class TestDigest:
    def test_digest_is_repeatable(self, pipeline_scenario):
        digests = []
        for _ in range(2):
            sim = make_sim(pipeline_scenario)
            digests.append(
                functional_digest(sim, sim.run(pipeline_scenario.cycles)))
        assert digests[0] == digests[1]

    def test_first_diff_points_at_leaf(self):
        ref = {"a": 1, "b": {"c": [1, 2], "d": 3}}
        assert "b.c" in _first_diff(ref, {"a": 1, "b": {"c": [1], "d": 3}})
        assert _first_diff(ref, {"a": 1}).startswith("b missing")
        assert "unexpected" in _first_diff(
            ref, {**ref, "z": 0})


class TestIdentity:
    def test_inproc_only_agrees_trivially(self, pipeline_scenario):
        notes = check_identity(pipeline_scenario, backends=("inproc",))
        assert notes["compared"] == ["inproc"]
        assert notes["tokens"] > 0

    def test_missing_reference_fails(self, pipeline_scenario):
        with pytest.raises(FuzzFailure) as info:
            check_identity(pipeline_scenario, backends=("process",)
                           if fork_available() else ())
        assert info.value.oracle == "identity"
        assert info.value.backend == "inproc"

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_agrees(self, pipeline_scenario):
        notes = check_identity(pipeline_scenario,
                               backends=("inproc", "process"))
        assert "process" in notes["compared"]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_perturbation_is_caught(self, pipeline_scenario):
        def perturb(backend, sim, result):
            if backend == "process":
                result.tokens_transferred += 1

        with pytest.raises(FuzzFailure) as info:
            check_identity(pipeline_scenario,
                           backends=("inproc", "process"),
                           perturb=perturb)
        assert info.value.oracle == "identity"
        assert info.value.backend == "process"
        assert "tokens" in str(info.value)
        assert info.value.scenario == pipeline_scenario.to_dict()


class TestFastmode:
    def test_pipeline_relationship_holds(self, pipeline_scenario):
        notes = check_fastmode(pipeline_scenario)
        assert notes["status"] in ("ok", "skipped")
        if notes["status"] == "ok":
            assert notes["exact_cycles"] == notes["mono_cycles"]
            assert notes["fast_cycles"] >= notes["exact_cycles"]

    def test_no_done_output_is_skipped(self):
        sc = find_scenario(lambda s: s.shape == "widepair", limit=200)
        notes = check_fastmode(sc)
        assert notes["status"] == "skipped"


class TestCheckpoint:
    def test_roundtrip_lands_on_straight_run(self, pipeline_scenario):
        notes = check_checkpoint(pipeline_scenario)
        assert notes["status"] == "ok"
        assert 0 < notes["capture_cycle"] < pipeline_scenario.cycles

    def test_state_corruption_is_caught(self, pipeline_scenario):
        def corrupt(state):
            state["total_tokens"] += 5
            return state

        with pytest.raises(FuzzFailure) as info:
            check_checkpoint(pipeline_scenario, perturb_state=corrupt)
        assert info.value.oracle == "checkpoint"
        assert "tokens" in str(info.value)


class TestFaults:
    def test_hardened_run_survives_and_agrees(self, faulty_scenario):
        notes = check_faults(faulty_scenario)
        assert notes["status"] == "ok"
        assert notes["fault_rate"] > 0

    def test_fault_free_schedule_skipped(self, pipeline_scenario):
        clean = pipeline_scenario.clone(
            fault={"drop_rate": 0.0, "corrupt_rate": 0.0,
                   "spike_rate": 0.0})
        assert check_faults(clean)["status"] == "skipped"


class TestDispatch:
    def test_unknown_oracle_rejected(self, pipeline_scenario):
        with pytest.raises(ReproError):
            run_oracles(pipeline_scenario, oracles=("identity", "nope"))

    def test_selected_oracles_run_in_order(self, pipeline_scenario):
        notes = run_oracles(pipeline_scenario,
                            oracles=("checkpoint", "fastmode"),
                            backends=("inproc",))
        assert list(notes) == ["checkpoint", "fastmode"]
