"""Step-JIT differential replay of the committed regression corpus.

Every repro in ``tests/fuzz/corpus/`` is replayed twice — compiled step
functions on and off — and the full functional digest (tokens, per-
partition cycles, the complete FMR ``detail`` breakdown, and the
recorded output stream) must match bit for bit.  The same holds on
every process backend, which exercises the worker-side compile path
(`only=` restriction) and the shm/socket transports under the JIT.

These are the tests the bit-exactness contract in
``repro.harness.stepjit`` points at: the generated code may reorder
nothing observable, on any backend.
"""

from pathlib import Path

import pytest

from repro.fuzz import functional_digest, load_repro, make_sim
from repro.parallel.coordinator import fork_available

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))
PROCESS_BACKENDS = ("process", "process-shm", "process-socket")

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backends need os.fork")


def _replay(path, backend, stepjit):
    scenario, _ = load_repro(path)
    sim = make_sim(scenario)
    sim.stepjit = stepjit
    result = sim.run(scenario.cycles, backend=backend)
    return sim, result, functional_digest(sim, result)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_exists_and_jit_matches_interpreter(path):
    sim_jit, _, dig_jit = _replay(path, "inproc", True)
    sim_int, _, dig_int = _replay(path, "inproc", False)
    assert dig_jit == dig_int
    # the off-side really ran interpreted, and the on-side really
    # compiled at least one partition (otherwise this differential
    # would be vacuous)
    assert all(v.startswith("disabled")
               for v in sim_int.last_jit_report.values())
    assert any(v.startswith("compiled")
               for v in sim_jit.last_jit_report.values())


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_detail_bit_identical(path):
    """`detail` (the FMR span breakdown) compared field by field, so a
    drift names the partition and component instead of a dict diff."""
    _, r_jit, _ = _replay(path, "inproc", True)
    _, r_int, _ = _replay(path, "inproc", False)
    assert r_jit.detail.keys() == r_int.detail.keys()
    for pname in r_int.detail:
        assert r_jit.detail[pname] == r_int.detail[pname], pname
    assert r_jit.wall_ns == r_int.wall_ns
    assert r_jit.tokens_transferred == r_int.tokens_transferred


@needs_fork
@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_jit_matches_across_process_backends(path, backend):
    _, _, dig_jit = _replay(path, backend, True)
    _, _, dig_int = _replay(path, backend, False)
    assert dig_jit == dig_int


@needs_fork
def test_backend_digests_agree_under_jit():
    """All four backends produce one digest with the JIT on — the
    compiled plans are transport-independent."""
    path = CORPUS[0]
    _, _, reference = _replay(path, "inproc", True)
    for backend in PROCESS_BACKENDS:
        _, _, dig = _replay(path, backend, True)
        assert dig == reference, backend
