"""The scenario mill's generator: determinism, validity, shrinkability.

Includes the determinism audit the mill depends on: scenario circuits
(and the library SoC builders they compose) must print byte-identically
across processes and ``PYTHONHASHSEED`` values — any set/dict
iteration-order leak in a builder shows up here as a fingerprint
mismatch.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.firrtl import circuit_fingerprint
from repro.firrtl.passes.check import check_circuit
from repro.fuzz import (
    ALL_SHAPES,
    GeneratorKnobs,
    Scenario,
    build_scenario_circuit,
    derive_spec,
    generate_scenario,
    make_design,
    num_partitions,
    partition_spec,
    shrink_candidates,
)

SEED = 11


class TestScenario:
    def test_json_roundtrip(self):
        sc = generate_scenario(SEED, 3)
        again = Scenario.from_dict(json.loads(json.dumps(sc.to_dict())))
        assert again == sc
        assert again.fingerprint == sc.fingerprint

    def test_fingerprint_tracks_params(self):
        sc = generate_scenario(SEED, 3)
        assert sc.clone().fingerprint == sc.fingerprint
        assert sc.clone(max_groups=1).fingerprint != sc.fingerprint

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ReproError):
            Scenario.from_dict({"format": "something-else"})
        good = generate_scenario(SEED, 0).to_dict()
        with pytest.raises(ReproError):
            Scenario.from_dict({**good, "version": 99})

    def test_unknown_shape_knobs_rejected(self):
        with pytest.raises(ReproError):
            GeneratorKnobs(shapes=("pipeline", "mesh"))
        with pytest.raises(ReproError):
            GeneratorKnobs(shapes=())


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        for index in range(10):
            a = generate_scenario(SEED, index)
            b = generate_scenario(SEED, index)
            assert a == b
            assert circuit_fingerprint(build_scenario_circuit(a)) \
                == circuit_fingerprint(build_scenario_circuit(b))
            assert derive_spec(a) == derive_spec(b)

    def test_different_indices_differ(self):
        prints = {generate_scenario(SEED, i).fingerprint
                  for i in range(20)}
        assert len(prints) > 10

    def test_shapes_all_reachable(self):
        shapes = {generate_scenario(SEED, i).shape for i in range(60)}
        assert shapes == set(ALL_SHAPES)

    def test_fingerprints_stable_across_hash_seeds(self):
        """The audit: builders must not leak set/dict iteration order.

        A child interpreter with a different PYTHONHASHSEED must
        fingerprint the same scenarios (and the library SoC builders)
        identically to this process.
        """
        script = (
            "import json, sys\n"
            "from repro.fuzz import generate_scenario, "
            "build_scenario_circuit\n"
            "from repro.firrtl import circuit_fingerprint\n"
            "from repro.targets.soc import make_ring_noc_soc, "
            "make_torus_noc_soc, make_star_soc\n"
            "prints = [circuit_fingerprint(build_scenario_circuit("
            f"generate_scenario({SEED}, i))) for i in range(8)]\n"
            "prints.append(circuit_fingerprint(make_ring_noc_soc(3)))\n"
            "prints.append(circuit_fingerprint(make_torus_noc_soc(3)))\n"
            "prints.append(circuit_fingerprint(make_star_soc(3)))\n"
            "print(json.dumps(prints))\n")

        def child(hash_seed: str):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            return json.loads(out.stdout)

        assert child("1") == child("4242")

    def test_spec_rederives_after_param_edit(self):
        """Shrinking edits params; the re-derived spec must stay legal
        (clamped), never referencing dropped structure."""
        sc = generate_scenario(SEED, 5)
        shrunk = sc.clone(max_groups=1)
        spec = derive_spec(shrunk)
        n = len(spec.get("noc", ()) or spec.get("groups", ()))
        assert n == 1


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       index=st.integers(min_value=0, max_value=10_000))
def test_every_generated_circuit_is_valid(seed, index):
    """Property: any (seed, index) yields a circuit that passes the IR
    checker and has at least one legal partition spec — FireRipper
    compiles it without error."""
    scenario = generate_scenario(seed, index)
    circuit = build_scenario_circuit(scenario)
    check_circuit(circuit)
    spec = partition_spec(scenario)
    assert spec.num_fpgas == num_partitions(scenario)
    design = make_design(scenario)
    assert len(design.partitions) >= 2


class TestShrinkCandidates:
    def test_candidates_are_valid_scenarios(self):
        for index in range(12):
            sc = generate_scenario(SEED, index)
            for cand in shrink_candidates(sc):
                assert cand.shape == sc.shape
                check_circuit(build_scenario_circuit(cand))
                make_design(cand)

    def test_candidates_get_no_bigger(self):
        for index in range(12):
            sc = generate_scenario(SEED, index)
            base_parts = num_partitions(sc)
            for cand in shrink_candidates(sc):
                assert num_partitions(cand) <= base_parts
                assert cand.cycles <= sc.cycles

    def test_every_shape_eventually_bottoms_out(self):
        """Repeated greedy shrinking terminates at a fixpoint."""
        for index in range(8):
            sc = generate_scenario(SEED, index)
            for _ in range(60):
                nxt = next(iter(shrink_candidates(sc)), None)
                if nxt is None:
                    break
                sc = nxt
            else:
                pytest.fail(f"shrink did not bottom out for {sc.shape}")
