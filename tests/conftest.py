"""Shared fixtures: small circuits used across the suite.

The opt-in ``REPRO_TEST_TIMEOUT`` per-test watchdog lives in the
repo-root ``conftest.py`` so the benchmarks get it too.
"""

from __future__ import annotations

import pytest

from repro.firrtl import ModuleBuilder, build_circuit, make_circuit, mux


@pytest.fixture
def counter_circuit():
    """8-bit free-running counter with an enable."""
    b = ModuleBuilder("Counter")
    en = b.input("en", 1)
    out = b.output("count", 8)
    r = b.reg("r", 8)
    b.connect(r, mux(en.read(), r + 1, r))
    b.connect(out, r)
    return build_circuit(b)


@pytest.fixture
def adder_pair_circuit():
    """Two-level hierarchy: top instantiates an adder child twice."""
    child = ModuleBuilder("AddOne")
    a = child.input("a", 8)
    y = child.output("y", 8)
    child.connect(y, a + 1)
    add_one = child.build()

    b = ModuleBuilder("Top")
    x = b.input("x", 8)
    z = b.output("z", 8)
    i0 = b.inst("first", add_one)
    i1 = b.inst("second", add_one)
    b.connect(i0["a"], x)
    b.connect(i1["a"], i0["y"])
    b.connect(z, i1["y"])
    return make_circuit(b.build(), [add_one])
