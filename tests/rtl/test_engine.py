"""Cycle engine: semantics, reset, memories, compiled/interpreted parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CombLoopError, SimulationError
from repro.firrtl import ModuleBuilder, build_circuit, make_circuit, mux
from repro.rtl import Simulator, elaborate
from repro.targets import make_queue


class TestBasics:
    def test_counter_counts(self, counter_circuit):
        sim = Simulator(counter_circuit)
        sim.run(5, {"en": 1})
        assert sim.peek("count") == 5
        sim.run(3, {"en": 0})
        assert sim.peek("count") == 5

    def test_reset_restores_init(self, counter_circuit):
        sim = Simulator(counter_circuit)
        sim.run(5, {"en": 1})
        sim.reset()
        sim.eval()
        assert sim.peek("count") == 0
        assert sim.cycle == 0

    def test_register_init_value(self):
        b = ModuleBuilder("T")
        out = b.output("o", 8)
        r = b.reg("r", 8, init=42)
        b.connect(r, r)
        b.connect(out, r)
        sim = Simulator(build_circuit(b))
        sim.eval()
        assert sim.peek("o") == 42

    def test_poke_masks_to_width(self, counter_circuit):
        sim = Simulator(counter_circuit)
        sim.poke("en", 0xFF)
        assert sim.env["en"] == 1

    def test_poke_unknown_port(self, counter_circuit):
        sim = Simulator(counter_circuit)
        with pytest.raises(SimulationError):
            sim.poke("ghost", 1)

    def test_peek_unknown(self, counter_circuit):
        sim = Simulator(counter_circuit)
        with pytest.raises(SimulationError):
            sim.peek("ghost")

    def test_run_until(self, counter_circuit):
        sim = Simulator(counter_circuit)
        sim.poke("en", 1)
        cycles = sim.run_until("count", 7, max_cycles=100)
        assert cycles == 7

    def test_run_until_timeout(self, counter_circuit):
        sim = Simulator(counter_circuit)
        sim.poke("en", 0)
        with pytest.raises(SimulationError):
            sim.run_until("count", 7, max_cycles=10)

    def test_hierarchical_peek(self, adder_pair_circuit):
        sim = Simulator(adder_pair_circuit)
        sim.step({"x": 5})
        assert sim.peek("first.y") == 6
        assert sim.peek("second.y") == 7


class TestMemory:
    def _mem_circuit(self):
        b = ModuleBuilder("M")
        addr = b.input("addr", 3)
        we = b.input("we", 1)
        din = b.input("din", 8)
        dout = b.output("dout", 8)
        m = b.mem("m", 8, 8, init=[10, 20, 30])
        rd = b.mem_read(m, "rd", addr)
        b.mem_write(m, addr, din, we)
        b.connect(dout, rd)
        return build_circuit(b)

    def test_init_and_comb_read(self):
        sim = Simulator(self._mem_circuit())
        assert sim.step({"addr": 1})["dout"] == 20

    def test_write_visible_next_cycle(self):
        sim = Simulator(self._mem_circuit())
        out_during_write = sim.step({"addr": 5, "we": 1, "din": 99})
        assert out_during_write["dout"] == 0  # old value
        assert sim.step({"addr": 5, "we": 0})["dout"] == 99

    def test_write_disabled(self):
        sim = Simulator(self._mem_circuit())
        sim.step({"addr": 2, "we": 0, "din": 77})
        assert sim.step({"addr": 2})["dout"] == 30


class TestCombLoop:
    def test_loop_detected_with_names(self):
        b = ModuleBuilder("Loopy")
        out = b.output("o", 1)
        w1 = b.wire("w1", 1)
        w2 = b.wire("w2", 1)
        b.connect(w1, w2)
        b.connect(w2, w1)
        b.connect(out, w1)
        with pytest.raises(CombLoopError) as err:
            Simulator(build_circuit(b))
        assert set(err.value.cycle) == {"w1", "w2"}

    def test_register_breaks_loop(self):
        b = ModuleBuilder("Ok")
        out = b.output("o", 8)
        r = b.reg("r", 8)
        b.connect(r, r + 1)  # through-register feedback is fine
        b.connect(out, r)
        Simulator(build_circuit(b))  # should not raise


class TestCompiledInterpreterParity:
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255),
                              st.integers(0, 1)),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_queue_parity(self, stimulus):
        circuit = make_circuit(make_queue(8, depth=4), [])
        compiled = Simulator(circuit, compiled=True)
        interp = Simulator(circuit, compiled=False)
        for enq_v, bits, deq_r in stimulus:
            ins = {"enq_valid": enq_v, "enq_bits": bits,
                   "deq_ready": deq_r}
            assert compiled.step(ins) == interp.step(ins)
        assert compiled.env == interp.env

    def test_comb_pair_parity(self):
        from repro.targets import make_comb_pair_circuit

        circuit = make_comb_pair_circuit()
        compiled = Simulator(circuit, compiled=True)
        interp = Simulator(circuit, compiled=False)
        for _ in range(12):
            assert compiled.step({}) == interp.step({})


class TestElaboration:
    def test_flat_names(self, adder_pair_circuit):
        elab = elaborate(adder_pair_circuit)
        assert "first.y" in {a.name for a in elab.assigns}
        assert elab.inputs == {"x": 8}
        assert elab.outputs == {"z": 8}

    def test_register_next_captured(self, counter_circuit):
        elab = elaborate(counter_circuit)
        reg = elab.regs["r"]
        assert reg.next is not None
        assert reg.init == 0


class TestSnapshotRestore:
    def test_resume_is_exact(self):
        from repro.firrtl import make_circuit
        from repro.targets.tinycore import make_tiny_core
        from repro.targets.programs import boot_program

        sim = Simulator(make_circuit(make_tiny_core(boot_program(20)),
                                     []))
        sim.run(15)
        snap = sim.snapshot()
        sim.run_until("done", 1, max_cycles=1000)
        final_result, final_cycle = sim.peek("result"), sim.cycle
        sim.restore(snap)
        assert sim.cycle == 15
        sim.run_until("done", 1, max_cycles=1000)
        assert sim.peek("result") == final_result
        assert sim.cycle == final_cycle

    def test_snapshot_is_deep(self, counter_circuit):
        sim = Simulator(counter_circuit)
        snap = sim.snapshot()
        sim.run(5, {"en": 1})
        assert snap["env"]["r"] == 0  # untouched by later simulation
