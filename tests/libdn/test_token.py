"""Channels and tokens."""

import pytest

from repro.errors import SimulationError
from repro.libdn import Channel, ChannelSpec, zeros_token


def _spec(deps=()):
    return ChannelSpec.make("ch", [("a", 4), ("b", 8)], deps)


class TestChannelSpec:
    def test_width_sums_ports(self):
        assert _spec().width == 12

    def test_port_names(self):
        assert _spec().port_names == ("a", "b")

    def test_deps_frozen(self):
        spec = _spec(deps=["x"])
        assert spec.deps == frozenset({"x"})

    def test_zeros_token(self):
        assert zeros_token(_spec()) == {"a": 0, "b": 0}


class TestChannel:
    def test_fifo_order(self):
        ch = Channel(_spec())
        ch.put({"a": 1, "b": 2})
        ch.put({"a": 3, "b": 4})
        assert ch.head() == {"a": 1, "b": 2}
        assert ch.get() == {"a": 1, "b": 2}
        assert ch.get() == {"a": 3, "b": 4}

    def test_empty_get(self):
        ch = Channel(_spec())
        with pytest.raises(SimulationError):
            ch.get()
        with pytest.raises(SimulationError):
            ch.head()

    def test_missing_port_rejected(self):
        ch = Channel(_spec())
        with pytest.raises(SimulationError):
            ch.put({"a": 1})

    def test_capacity_enforced(self):
        ch = Channel(_spec(), capacity=1)
        ch.put({"a": 0, "b": 0})
        assert not ch.can_put()
        with pytest.raises(SimulationError):
            ch.put({"a": 0, "b": 0})

    def test_enqueue_counter(self):
        ch = Channel(_spec())
        ch.put({"a": 0, "b": 0})
        ch.get()
        ch.put({"a": 0, "b": 0})
        assert ch.total_enqueued == 2
