"""FAME-5 multithreaded host: per-thread equivalence to independent
monolithic simulations."""

import pytest

from repro.errors import SimulationError
from repro.firrtl import make_circuit
from repro.libdn import ChannelSpec, FAME5Host, LIBDNHost
from repro.rtl import Simulator
from repro.targets import make_rv_consumer


def _consumer_specs():
    ins = [ChannelSpec.make("in", [("in_valid", 1), ("in_bits", 16)])]
    outs = [ChannelSpec.make(
        "out", [("in_ready", 1), ("sum", 32), ("received", 32)],
        deps=["in"])]
    return ins, outs


def _make_host(n_threads):
    module = make_rv_consumer(16)
    circuit = make_circuit(module, [])
    sims = [Simulator(circuit) for _ in range(n_threads)]
    ins, outs = _consumer_specs()
    return FAME5Host(sims, ins, outs, name="f5")


class TestFAME5:
    def test_thread_isolation(self):
        """Each thread consumes its own stream; checksums are
        per-thread, identical to running N separate hosts."""
        n = 3
        host = _make_host(n)
        streams = [[(t + 1) * 10 + i for i in range(4)] for t in range(n)]
        sent = [0] * n
        sums = [0] * n
        for _ in range(30):
            for t in range(n):
                chan = f"t{t}:in"
                # keep each thread's channel fed
                thread = host.threads[t]
                if not thread.in_channels["in"].has_token():
                    if sent[t] < len(streams[t]):
                        host.deliver(chan, {"in_valid": 1,
                                            "in_bits": streams[t][sent[t]]})
                        sent[t] += 1
                    else:
                        host.deliver(chan, {"in_valid": 0, "in_bits": 0})
            host.host_step()
        for t in range(n):
            thread = host.threads[t]
            assert thread.sim.peek("sum") == sum(streams[t])
            assert thread.sim.peek("received") == 4

    def test_cycles_per_target(self):
        assert _make_host(4).cycles_per_target == 4

    def test_target_cycle_is_frontier(self):
        host = _make_host(2)
        host.deliver("t0:in", {"in_valid": 0, "in_bits": 0})
        host.threads[0].try_fire_outputs()
        host.threads[0].advance()
        assert host.threads[0].target_cycle == 1
        assert host.target_cycle == 0  # thread 1 has not advanced

    def test_channel_namespacing(self):
        host = _make_host(2)
        names = host.channel_names()
        assert "t0:in" in names and "t1:out" in names
        with pytest.raises(SimulationError):
            host.deliver("bogus", {})
        with pytest.raises(SimulationError):
            host.deliver("x3:in", {})

    def test_outbox_thread_prefixes(self):
        host = _make_host(2)
        for t in range(2):
            host.deliver(f"t{t}:in", {"in_valid": 0, "in_bits": 0})
        host.host_step()
        names = [name for name, _ in host.drain_outbox()]
        assert names == ["t0:out", "t1:out"]

    def test_empty_host_rejected(self):
        with pytest.raises(SimulationError):
            FAME5Host([], [], [])
        with pytest.raises(SimulationError):
            FAME5Host.from_hosts([])

    def test_from_hosts_wraps_existing(self):
        module = make_rv_consumer(16)
        circuit = make_circuit(module, [])
        ins, outs = _consumer_specs()
        hosts = [LIBDNHost(Simulator(circuit), ins, outs, name=f"h{i}")
                 for i in range(2)]
        fame5 = FAME5Host.from_hosts(hosts, name="merged")
        assert fame5.n_threads == 2
        assert fame5.threads[0] is hosts[0]
