"""LI-BDN host semantics, including the paper's Fig. 2 walkthrough.

The exact-mode example of Sec. III-A1 is replayed token by token: with
separated source/sink channels the step-1/2/3 values (source tokens 1 and
2; sink tokens 3 and 7; registers updating to 7 and 9) reproduce; with
everything aggregated into one channel pair (Fig. 2a) the network
deadlocks.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.firrtl import make_circuit
from repro.libdn import ChannelSpec, LIBDNHost
from repro.rtl import Simulator
from repro.targets.combo import (
    COMB_PAIR_REGS,
    WIDTH,
    make_comb_left,
    make_comb_right,
)


def _left_host(separated: bool) -> LIBDNHost:
    sim = Simulator(make_circuit(make_comb_left(), []))
    if separated:
        in_specs = [ChannelSpec.make("sink_in", [("a", WIDTH)]),
                    ChannelSpec.make("source_in", [("e", WIDTH)])]
        out_specs = [
            ChannelSpec.make("sink_out", [("d", WIDTH)],
                             deps=["sink_in"]),
            ChannelSpec.make("source_out", [("s", WIDTH)]),
        ]
    else:  # Fig. 2a: aggregated channels
        in_specs = [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])]
        out_specs = [ChannelSpec.make(
            "out", [("d", WIDTH), ("s", WIDTH)], deps=["in"])]
    return LIBDNHost(sim, in_specs, out_specs, name="libdn1")


def _right_host(separated: bool) -> LIBDNHost:
    sim = Simulator(make_circuit(make_comb_right(), []))
    if separated:
        in_specs = [ChannelSpec.make("sink_in", [("c", WIDTH)]),
                    ChannelSpec.make("source_in", [("f", WIDTH)])]
        out_specs = [
            ChannelSpec.make("sink_out", [("q", WIDTH)],
                             deps=["sink_in"]),
            ChannelSpec.make("source_out", [("ya", WIDTH)]),
        ]
    else:
        in_specs = [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])]
        out_specs = [ChannelSpec.make(
            "out", [("q", WIDTH), ("ya", WIDTH)], deps=["in"])]
    return LIBDNHost(sim, in_specs, out_specs, name="libdn2")


def _route_separated(left, right, fired, side):
    """Deliver fired tokens across the Fig. 2b wiring."""
    for name, token in side.drain_outbox():
        if side is left:
            if name == "source_out":   # s -> right sink_in (port c)
                right.deliver("sink_in", {"c": token["s"]})
            else:                      # d -> right source_in (port f)
                right.deliver("source_in", {"f": token["d"]})
        else:
            if name == "source_out":   # ya -> left sink_in (port a)
                left.deliver("sink_in", {"a": token["ya"]})
            else:                      # q -> left source_in (port e)
                left.deliver("source_in", {"e": token["q"]})


class TestFig2bExactSequence:
    def test_step_by_step_token_values(self):
        left = _left_host(separated=True)
        right = _right_host(separated=True)

        # step 1: only the source channels can fire (registers X=1, Y=2)
        fired_left = left.try_fire_outputs()
        fired_right = right.try_fire_outputs()
        assert fired_left == ["source_out"]
        assert fired_right == ["source_out"]
        out_l = dict(left.drain_outbox())
        out_r = dict(right.drain_outbox())
        assert out_l["source_out"]["s"] == 1    # register X
        assert out_r["source_out"]["ya"] == 2   # register Y
        left.deliver("sink_in", {"a": out_r["source_out"]["ya"]})
        right.deliver("sink_in", {"c": out_l["source_out"]["s"]})

        # step 2: sink channels fire with the combinational results
        assert left.try_fire_outputs() == ["sink_out"]
        assert right.try_fire_outputs() == ["sink_out"]
        out_l = dict(left.drain_outbox())
        out_r = dict(right.drain_outbox())
        assert out_l["sink_out"]["d"] == 3      # A + X = 2 + 1
        assert out_r["sink_out"]["q"] == 7      # C + Y + 4 = 1 + 2 + 4
        left.deliver("source_in", {"e": out_r["sink_out"]["q"]})
        right.deliver("source_in", {"f": out_l["sink_out"]["d"]})

        # step 3: both LI-BDNs can advance; registers update to 7 and 9
        assert left.can_advance() and right.can_advance()
        left.advance()
        right.advance()
        assert left.sim.peek("x") == 7
        assert right.sim.peek("y") == 9
        assert left.target_cycle == right.target_cycle == 1

    def test_runs_many_cycles_matching_monolithic(self):
        from repro.targets import make_comb_pair_circuit

        cycles = 8
        mono = Simulator(make_comb_pair_circuit())
        mono_trace = [mono.step({})["x_obs"] for _ in range(cycles)]

        left = _left_host(separated=True)
        right = _right_host(separated=True)
        libdn_trace = []
        while left.target_cycle < cycles:
            left.try_fire_outputs()
            right.try_fire_outputs()
            for name, token in left.drain_outbox():
                if name == "source_out":
                    libdn_trace.append(token["s"])
                    right.deliver("sink_in", {"c": token["s"]})
                else:
                    right.deliver("source_in", {"f": token["d"]})
            for name, token in right.drain_outbox():
                if name == "source_out":
                    left.deliver("sink_in", {"a": token["ya"]})
                else:
                    left.deliver("source_in", {"e": token["q"]})
            if left.can_advance():
                left.advance()
            if right.can_advance():
                right.advance()
        assert libdn_trace[:cycles] == mono_trace


class TestFig2aDeadlock:
    def test_aggregated_channels_deadlock(self):
        left = _left_host(separated=False)
        right = _right_host(separated=False)
        # neither side can fire: each output channel waits on the other's
        # token, the circular dependency of Fig. 2a
        assert left.try_fire_outputs() == []
        assert right.try_fire_outputs() == []
        assert not left.can_advance()
        assert not right.can_advance()
        detail = left.stuck_detail()
        assert "out waits on" in detail

    def test_seed_token_breaks_deadlock(self):
        # fast-mode rescue: seed each input channel once
        left = _left_host(separated=False)
        right = _right_host(separated=False)
        left.seed_inputs()
        right.seed_inputs()
        assert left.try_fire_outputs() == ["out"]
        assert right.try_fire_outputs() == ["out"]
        assert left.can_advance()


class TestHostValidation:
    def test_port_mismatch_rejected(self):
        sim = Simulator(make_circuit(make_comb_left(), []))
        with pytest.raises(SimulationError):
            LIBDNHost(sim, [ChannelSpec.make("in", [("ghost", 4)])], [])

    def test_unknown_dep_rejected(self):
        sim = Simulator(make_circuit(make_comb_left(), []))
        with pytest.raises(SimulationError):
            LIBDNHost(
                sim,
                [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
                [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                                  deps=["nope"])])

    def test_advance_without_tokens_raises(self):
        host = _left_host(separated=True)
        with pytest.raises(SimulationError):
            host.advance()
