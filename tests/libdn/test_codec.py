"""Packed token codec: round trips, repack plans, channel integration.

Hypothesis drives arbitrary port layouts (names, widths — including
zero-width ports) through encode/decode/repack; the codec is the
foundation of the packed token plane, so the bar is exact value
preservation, not spot checks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.libdn import (
    INCOMPATIBLE,
    Channel,
    ChannelSpec,
    TokenCodec,
    codec_for,
    repack,
    repack_plan,
)

# -- strategies ---------------------------------------------------------------

port_names = st.lists(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=4),
    min_size=1, max_size=6, unique=True)


@st.composite
def layouts(draw):
    """An arbitrary channel spec: unique port names, widths 0..64."""
    names = draw(port_names)
    widths = draw(st.lists(st.integers(0, 64), min_size=len(names),
                           max_size=len(names)))
    return ChannelSpec.make("ch", list(zip(names, widths)))


@st.composite
def layout_and_token(draw):
    spec = draw(layouts())
    token = {name: draw(st.integers(0, (1 << width) - 1 if width else 0))
             for name, width in spec.ports}
    return spec, token


# -- round trips --------------------------------------------------------------

class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(layout_and_token())
    def test_token_word_token(self, case):
        spec, token = case
        codec = codec_for(spec)
        assert codec.decode(codec.encode(token)) == token

    @settings(max_examples=200, deadline=None)
    @given(layouts(), st.data())
    def test_word_token_word(self, spec, data):
        codec = codec_for(spec)
        word = data.draw(st.integers(0, (1 << codec.width) - 1
                                     if codec.width else 0))
        assert codec.encode(codec.decode(word)) == word

    @settings(max_examples=100, deadline=None)
    @given(layout_and_token(), st.integers(1, 1 << 70))
    def test_encode_masks_oversized_values(self, case, extra):
        spec, token = case
        codec = codec_for(spec)
        loose = {name: value + (extra << width)
                 for (name, width), value
                 in zip(spec.ports, token.values())}
        # values beyond the port width never leak into neighbours
        assert codec.decode(codec.encode(loose)) == token

    def test_missing_port_raises_with_names(self):
        spec = ChannelSpec.make("ch", [("a", 4), ("b", 4), ("c", 4)])
        with pytest.raises(SimulationError, match=r"\['b', 'c'\]"):
            codec_for(spec).encode({"a": 1})

    def test_zero_width_channel_is_one_byte(self):
        spec = ChannelSpec.make("ch", [("a", 0)])
        codec = codec_for(spec)
        assert codec.width == 0
        assert codec.nbytes == 1
        assert codec.encode({"a": 0}) == 0
        assert codec.decode(0) == {"a": 0}

    def test_codec_is_shared_per_spec(self):
        spec = ChannelSpec.make("ch", [("a", 8)])
        assert codec_for(spec) is codec_for(
            ChannelSpec.make("ch", [("a", 8)]))


# -- repack -------------------------------------------------------------------

class TestRepack:
    def test_identity_plan_is_none(self):
        spec = ChannelSpec.make("ch", [("a", 8), ("b", 3)])
        src = codec_for(spec)
        dst = codec_for(ChannelSpec.make("peer", [("a", 8), ("b", 3)]))
        assert repack_plan(src, dst) is None

    @settings(max_examples=200, deadline=None)
    @given(layout_and_token(), st.randoms(use_true_random=False))
    def test_shuffled_rename_matches_dict_path(self, case, rng):
        """repack == decode -> rename -> encode, for any permutation of
        the destination layout under any rename map."""
        spec, token = case
        src = codec_for(spec)
        ports = list(spec.ports)
        rng.shuffle(ports)
        rename = {name: f"{name}x" for name, _ in ports}
        dst_spec = ChannelSpec.make(
            "peer", [(rename[name], width) for name, width in ports])
        dst = codec_for(dst_spec)
        plan = repack_plan(src, dst, rename)
        expected = dst.encode(
            {rename[k]: v for k, v in token.items()})
        assert repack(src.encode(token), plan) == expected

    def test_unfed_destination_port_is_incompatible(self):
        src = codec_for(ChannelSpec.make("ch", [("a", 8)]))
        dst = codec_for(ChannelSpec.make("peer", [("a", 8), ("b", 8)]))
        assert repack_plan(src, dst) is INCOMPATIBLE

    def test_dropped_source_port_still_repacks(self):
        src = codec_for(ChannelSpec.make("ch", [("a", 8), ("b", 8)]))
        dst = codec_for(ChannelSpec.make("peer", [("b", 8)]))
        plan = repack_plan(src, dst)
        word = src.encode({"a": 0xAA, "b": 0xBB})
        assert repack(word, plan) == 0xBB

    def test_narrowing_rename_masks(self):
        src = codec_for(ChannelSpec.make("ch", [("a", 8)]))
        dst = codec_for(ChannelSpec.make("peer", [("n", 4)]))
        plan = repack_plan(src, dst, {"a": "n"})
        assert repack(src.encode({"a": 0xFF}), plan) == 0x0F


# -- channel integration ------------------------------------------------------

class TestChannelWords:
    @settings(max_examples=100, deadline=None)
    @given(layout_and_token(), st.integers(1, 4))
    def test_capacity_bounds_word_queue(self, case, capacity):
        spec, token = case
        ch = Channel(spec, capacity=capacity)
        for _ in range(capacity):
            ch.put(token)
        with pytest.raises(SimulationError, match="overflow"):
            ch.put(token)
        with pytest.raises(SimulationError, match="overflow"):
            ch.put_word(0)
        assert len(ch) == capacity
        assert ch.head() == token
        assert ch.head_word() == ch.codec.encode(token)
        for _ in range(capacity):
            assert ch.get() == token
        assert ch.total_enqueued == capacity

    def test_word_api_round_trips_through_dict_api(self):
        spec = ChannelSpec.make("ch", [("lo", 4), ("hi", 4)])
        ch = Channel(spec)
        ch.put_word(0xA5)
        assert ch.head() == {"lo": 5, "hi": 0xA}
        assert ch.get_word() == 0xA5
        assert not ch.has_token()

    def test_overflow_raises_before_encoding(self):
        """Capacity errors take precedence over malformed tokens, as
        they did when queues held dicts."""
        spec = ChannelSpec.make("ch", [("a", 4)])
        ch = Channel(spec, capacity=1)
        ch.put({"a": 1})
        with pytest.raises(SimulationError, match="overflow"):
            ch.put({"wrong": 1})
