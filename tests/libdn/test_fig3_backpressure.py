"""Fig. 3: seed tokens break ready-valid backpressure — and the
fast-mode target modifications repair it.

The paper's Fig. 3a/3b shows a sink queue receiving two valid beats for
one source beat once a seed token sits between the LI-BDNs.  We
reproduce the failure by compiling fast-mode with the ready-valid
transforms *disabled* (``rv_bundles=[]``), and then show that the
default compile (skid buffer + ``valid & ready`` gating, Fig. 3c)
delivers exactly the right transaction stream.
"""

import pytest

from repro.firrtl import ModuleBuilder, make_circuit
from repro.fireripper import FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.harness import MonolithicSimulation
from repro.platform import QSFP_AURORA
from repro.targets import make_rv_consumer, make_rv_producer

N_VALUES = 12


def _circuit(stall_mask):
    producer = make_rv_producer(16, count=N_VALUES)
    consumer = make_rv_consumer(16, stall_mask=stall_mask)
    b = ModuleBuilder("BackpressureTop")
    done = b.output("done", 1)
    total = b.output("sum", 32)
    received = b.output("received", 32)
    p = b.inst("producer", producer)
    c = b.inst("consumer", consumer)
    b.connect(c["in_valid"], p["out_valid"])
    b.connect(c["in_bits"], p["out_bits"])
    b.connect(p["out_ready"], c["in_ready"])
    b.connect(done, p["done"])
    b.connect(total, c["sum"])
    b.connect(received, c["received"])
    return make_circuit(b.build(), [producer, consumer])


def _run_partitioned(stall_mask, rv_bundles):
    spec = PartitionSpec(mode=FAST,
                         groups=[PartitionGroup.make(
                             "fpga1", ["consumer"])],
                         rv_bundles=rv_bundles)
    design = FireRipper(spec).compile(_circuit(stall_mask))
    sim = design.build_simulation(QSFP_AURORA, record_outputs=True)

    def stop(s):
        log = s.output_log.get(("base", "io_out"), [])
        return bool(log) and log[-1]["done"] == 1

    sim.run(3_000, stop=stop)
    sim.run(sim.frontier_cycle() + 30)  # drain the tail
    last = sim.output_log[("base", "io_out")][-1]
    return last["received"], last["sum"]


EXPECTED_SUM = sum(range(1, N_VALUES + 1))


class TestBackpressureBreaks:
    @pytest.mark.parametrize("stall_mask", [2, 3])
    def test_seeding_without_transforms_corrupts_the_stream(self,
                                                            stall_mask):
        """Fig. 3b step 6: without the target modifications, the stale
        ready/valid handshake duplicates or drops beats whenever the
        consumer exerts backpressure.  (stall_mask=1 happens to realign
        with the two-cycle boundary delay, so masks 2 and 3 — whose
        ready patterns do not — exhibit the break.)"""
        received, total = _run_partitioned(stall_mask, rv_bundles=[])
        assert (received, total) != (N_VALUES, EXPECTED_SUM)

    @pytest.mark.parametrize("stall_mask", [0, 1, 3])
    def test_transforms_restore_exact_transactions(self, stall_mask):
        """Fig. 3c: the skid buffer + valid & ready gating deliver each
        beat exactly once, under any backpressure pattern."""
        received, total = _run_partitioned(stall_mask, rv_bundles=None)
        assert received == N_VALUES
        assert total == EXPECTED_SUM

    def test_monolithic_reference(self):
        mono = MonolithicSimulation(_circuit(1))
        mono.run_until("done", 1, max_cycles=3_000)
        mono.run(30)
        mono.sim.eval()
        assert mono.sim.peek("received") == N_VALUES
        assert mono.sim.peek("sum") == EXPECTED_SUM
