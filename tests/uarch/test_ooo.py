"""OoO pipeline model: invariants and Table-I/Fig-7 expectations."""

import pytest

from repro.uarch import (
    EMBENCH,
    GC40_BOOM,
    GC_XEON,
    LARGE_BOOM,
    CoreParams,
    OoOCoreModel,
)
from repro.uarch.cpistack import CPIStack, cpi_stacks
from repro.uarch.ooo import CATEGORIES
from repro.uarch.workloads import EMBENCH_BY_NAME

N = 12_000


def _ipc(core, workload):
    return OoOCoreModel(core).run(workload, n_instr=N).ipc


class TestInvariants:
    def test_deterministic(self):
        wl = EMBENCH_BY_NAME["edn"]
        a = OoOCoreModel(LARGE_BOOM).run(wl, n_instr=N)
        b = OoOCoreModel(LARGE_BOOM).run(wl, n_instr=N)
        assert a.cycles == b.cycles
        assert a.stack_cycles == b.stack_cycles

    def test_ipc_bounded_by_width(self):
        for wl in EMBENCH[:4]:
            assert _ipc(LARGE_BOOM, wl) <= LARGE_BOOM.issue_width

    def test_stack_sums_to_cpi(self):
        wl = EMBENCH_BY_NAME["huffbench"]
        result = OoOCoreModel(LARGE_BOOM).run(wl, n_instr=N)
        assert sum(result.cpi_stack().values()) \
            == pytest.approx(result.cpi, rel=1e-6)

    def test_wider_core_never_slower(self):
        for wl in EMBENCH:
            assert _ipc(GC40_BOOM, wl) >= _ipc(LARGE_BOOM, wl) * 0.99

    def test_runtime_extrapolation(self):
        wl = EMBENCH_BY_NAME["crc32"]
        res = OoOCoreModel(LARGE_BOOM).run(wl, n_instr=N)
        runtime = res.runtime_seconds(wl.instructions, 3.4)
        assert runtime == pytest.approx(
            wl.instructions * res.cpi / 3.4e9)


class TestPaperShapes:
    def test_nettle_aes_large_uplift(self):
        wl = EMBENCH_BY_NAME["nettle-aes"]
        uplift = _ipc(GC40_BOOM, wl) / _ipc(LARGE_BOOM, wl) - 1
        assert uplift > 0.40  # paper: ~56%

    def test_nbody_small_uplift(self):
        wl = EMBENCH_BY_NAME["nbody"]
        uplift = _ipc(GC40_BOOM, wl) / _ipc(LARGE_BOOM, wl) - 1
        assert uplift < 0.10  # paper: ~2%

    def test_average_uplift_band(self):
        uplifts = [
            _ipc(GC40_BOOM, wl) / _ipc(LARGE_BOOM, wl) - 1
            for wl in EMBENCH
        ]
        avg = sum(uplifts) / len(uplifts)
        assert 0.10 < avg < 0.30  # paper: 15.8%

    def test_xeon_fastest(self):
        for wl in EMBENCH:
            assert _ipc(GC_XEON, wl) >= _ipc(GC40_BOOM, wl) * 0.99


class TestCPIStacks:
    def test_categories_complete(self):
        stacks = cpi_stacks([LARGE_BOOM],
                            [EMBENCH_BY_NAME["nettle-aes"]], n_instr=N)
        assert set(stacks[0].components) == set(CATEGORIES)

    def test_nbody_execution_bound(self):
        stacks = cpi_stacks([LARGE_BOOM], [EMBENCH_BY_NAME["nbody"]],
                            n_instr=N)
        comp = stacks[0].components
        assert comp["execution"] == max(comp.values())

    def test_normalized_sums_to_one(self):
        stacks = cpi_stacks([LARGE_BOOM], [EMBENCH_BY_NAME["st"]],
                            n_instr=N)
        assert sum(stacks[0].normalized().values()) == pytest.approx(1.0)

    def test_render_contains_rows(self):
        from repro.uarch.cpistack import render_stacks

        stacks = cpi_stacks([LARGE_BOOM, GC40_BOOM],
                            [EMBENCH_BY_NAME["crc32"]], n_instr=N)
        text = render_stacks(stacks)
        assert "crc32" in text and "GC40 BOOM" in text


class TestWorkloadTraces:
    def test_trace_shapes_and_determinism(self):
        wl = EMBENCH_BY_NAME["edn"]
        t1 = wl.trace(5000)
        t2 = wl.trace(5000)
        for key in t1:
            assert (t1[key] == t2[key]).all()
        assert t1["kind"].shape == (5000,)

    def test_dep_distances_causal(self):
        wl = EMBENCH_BY_NAME["matmult-int"]
        t = wl.trace(5000)
        import numpy as np

        idx = np.arange(5000)
        assert (t["dep1"] <= idx).all()
        assert (t["dep2"] <= idx).all()

    def test_mix_fractions_sane(self):
        for wl in EMBENCH:
            assert wl.frac_alu > 0
            total = (wl.frac_alu + wl.frac_mul + wl.frac_load
                     + wl.frac_store + wl.frac_branch)
            assert total == pytest.approx(1.0)
