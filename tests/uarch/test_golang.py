"""Go GC tail-latency model: the Fig. 10 orderings."""

import pytest

from repro.uarch.golang import GoGCConfig, fig10_grid, run_benchmark
from repro.uarch.sched import AffinityCostModel


@pytest.fixture(scope="module")
def grid():
    return {(r.config.gomaxprocs, r.config.affinity_cores): r
            for r in fig10_grid(duration_ms=300.0)}


class TestFig10Ordering:
    def test_single_p_has_worst_tail(self, grid):
        single = grid[(1, 1)]
        for key, r in grid.items():
            if key != (1, 1):
                assert single.p99_ms > 3 * r.p99_ms

    def test_pinned_beats_spread(self, grid):
        """The paper's surprising result: pinning to one core gives a
        lower tail than spreading across GOMAXPROCS cores."""
        for procs in (2, 4):
            pinned = grid[(procs, 1)]
            spread = grid[(procs, procs)]
            assert pinned.p99_ms < spread.p99_ms
            assert pinned.p95_ms < spread.p95_ms

    def test_millisecond_scale(self, grid):
        assert grid[(1, 1)].p99_ms > 1.0
        for r in grid.values():
            assert r.p99_ms < 100.0

    def test_p95_below_p99(self, grid):
        for r in grid.values():
            assert r.p50_ms <= r.p95_ms <= r.p99_ms <= r.max_ms


class TestModelBehaviour:
    def test_deterministic(self):
        cfg = GoGCConfig(gomaxprocs=2, affinity_cores=2,
                         duration_ms=100.0)
        a = run_benchmark(cfg)
        b = run_benchmark(cfg)
        assert a.p99_ms == b.p99_ms

    def test_shorter_gc_lowers_tail(self):
        heavy = run_benchmark(GoGCConfig(gomaxprocs=1, affinity_cores=1,
                                         duration_ms=200.0))
        light = run_benchmark(GoGCConfig(gomaxprocs=1, affinity_cores=1,
                                         duration_ms=200.0,
                                         gc_cpu_us=4_000.0,
                                         gc_chunk_us=2_000.0))
        assert light.p99_ms < heavy.p99_ms

    def test_costlier_coherence_raises_spread_tail(self):
        cfg = GoGCConfig(gomaxprocs=2, affinity_cores=2,
                         duration_ms=200.0)
        cheap = run_benchmark(cfg, AffinityCostModel(
            coherence_inflation=1.2, migration_window_us=200.0))
        costly = run_benchmark(cfg, AffinityCostModel(
            coherence_inflation=6.0, migration_window_us=4_000.0))
        assert costly.p99_ms > cheap.p99_ms

    def test_xeon_numa_comparison(self):
        from repro.experiments.fig10 import xeon_numa_comparison

        same, cross = xeon_numa_comparison(duration_ms=800.0)
        assert cross > same  # cross-NUMA coherence hurts (28 vs 42 ms)
