"""DDIO cache semantics and the leaky-DMA experiment engine."""

import pytest

from repro.uarch.cache import CacheModel
from repro.uarch.ddio import RING, XBAR, LeakyDMAExperiment, sweep
from repro.uarch.dram import DRAMModel
from repro.uarch.interconnect import RingFabric, XbarFabric


class TestCacheModel:
    def _cache(self):
        # 4 KiB, 4 ways, 2 DDIO ways, 64B lines -> 16 sets
        return CacheModel(4, 4, 2)

    def test_geometry(self):
        c = self._cache()
        assert c.n_sets == 16

    def test_ddio_exceeding_ways_rejected(self):
        with pytest.raises(ValueError):
            CacheModel(4, 4, 5)

    def test_cpu_miss_then_hit(self):
        c = self._cache()
        assert not c.cpu_access(0x1000, 1.0)
        assert c.cpu_access(0x1000, 2.0)

    def test_io_writes_confined_to_ddio_ways(self):
        """Three I/O lines mapping to one set can only keep two resident
        (the 2 DDIO ways); a third evicts the LRU one."""
        c = self._cache()
        set_stride = c.n_sets * 64
        addrs = [i * set_stride for i in range(3)]  # same set
        for i, a in enumerate(addrs):
            c.io_write(a, float(i))
        assert c.stats["io_evictions_of_unread"] == 1
        # oldest line is gone
        assert not c.io_read(addrs[0], 10.0)
        assert c.io_read(addrs[1], 11.0)
        assert c.io_read(addrs[2], 12.0)

    def test_cpu_uses_full_associativity(self):
        c = self._cache()
        set_stride = c.n_sets * 64
        for i in range(4):
            c.cpu_access(i * set_stride, float(i))
        # all four ways hold cpu lines
        for i in range(4):
            assert c.cpu_access(i * set_stride, 10.0 + i)

    def test_io_read_does_not_allocate(self):
        c = self._cache()
        assert not c.io_read(0x2000, 1.0)
        assert not c.io_read(0x2000, 2.0)  # still a miss

    def test_hit_rate_accounting(self):
        c = self._cache()
        c.cpu_access(0, 1.0)
        c.cpu_access(0, 2.0)
        assert c.hit_rate("cpu") == 0.5


class TestFabrics:
    def test_xbar_serializes_port(self):
        f = XbarFabric(n_ports=4)
        t1, _ = f.traverse(0, 0.0, 0)
        t2, _ = f.traverse(1, 0.0, 64)
        assert t2 > t1  # second request queues behind the first

    def test_ring_banks_parallel(self):
        f = RingFabric(n_stops=8)
        t1, b1 = f.traverse(0, 0.0, 0)
        t2, b2 = f.traverse(0, 0.0, 64)
        assert b1 != b2  # consecutive lines hit different banks

    def test_ring_hop_latency(self):
        f = RingFabric(n_stops=8)
        near, _ = f.traverse(0, 0.0, 0)        # bank 0 at stop 0
        fresh = RingFabric(n_stops=8)
        far, _ = fresh.traverse(4, 0.0, 0)     # several hops away
        assert far > near


class TestDRAM:
    def test_latency_plus_queueing(self):
        d = DRAMModel(latency_ns=100.0, service_ns=10.0)
        first = d.access(0.0)
        second = d.access(0.0)
        assert first == 100.0
        assert second == 110.0


class TestLeakyDMA:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep([1, 6, 12], packets_per_core=120)

    def test_latency_grows_with_cores(self, small_sweep):
        for topo in (XBAR, RING):
            series = [r for r in small_sweep if r.topology == topo]
            wr = [r.nic_write_latency_ns for r in series]
            assert wr[0] < wr[1] < wr[2]

    def test_xbar_worse_at_scale(self, small_sweep):
        by = {(r.topology, r.n_cores): r for r in small_sweep}
        assert by[(XBAR, 12)].nic_write_latency_ns \
            > by[(RING, 12)].nic_write_latency_ns

    def test_xbar_cheaper_at_low_load(self, small_sweep):
        by = {(r.topology, r.n_cores): r for r in small_sweep}
        assert by[(XBAR, 1)].nic_write_latency_ns \
            < by[(RING, 1)].nic_write_latency_ns

    def test_cache_leak_visible(self, small_sweep):
        series = [r for r in small_sweep if r.topology == XBAR]
        assert series[0].cpu_hit_rate > series[-1].cpu_hit_rate

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            LeakyDMAExperiment(2, topology="mesh")

    def test_packets_conserved(self):
        result = LeakyDMAExperiment(2, packets_per_core=50).run()
        assert result.packets_forwarded + result.rx_drops \
            == 2 * 50
