"""Coverage for smaller public surfaces: FMR metrics, NIC counters,
derived core parameters, the one-outstanding memory, sweep utilities,
and the pass framework."""

import pytest

from repro.firrtl import make_circuit
from repro.firrtl.passes.base import FnPass, PassManager
from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.platform import QSFP_AURORA
from repro.rtl import Simulator
from repro.targets import make_comb_pair_circuit
from repro.targets.accel import make_simple_memory
from repro.uarch.nic import LatencyCounter, NICModel
from repro.uarch.params import GC40_BOOM, LARGE_BOOM


class TestFMRMetric:
    def test_partitioned_fmr_reported(self):
        spec = PartitionSpec(mode=EXACT, groups=[
            PartitionGroup.make("g", ["right"])])
        design = FireRipper(spec).compile(make_comb_pair_circuit())
        result = design.build_simulation(QSFP_AURORA).run(40)
        fmr = result.detail["fmr"]
        assert set(fmr) == {"base", "g"}
        # partitioned FMR is far above the monolithic ~1: the token
        # exchange dominates (the paper's whole motivation for fast-mode)
        assert all(v > 5 for v in fmr.values())

    def test_fast_mode_lowers_fmr(self):
        def fmr_for(mode):
            spec = PartitionSpec(mode=mode, groups=[
                PartitionGroup.make("g", ["right"])])
            design = FireRipper(spec).compile(make_comb_pair_circuit())
            result = design.build_simulation(QSFP_AURORA).run(40)
            return max(result.detail["fmr"].values())

        assert fmr_for(FAST) < fmr_for(EXACT)


class TestNICModel:
    def test_latency_counter(self):
        c = LatencyCounter()
        assert c.average_ns == 0.0
        c.record(10.0)
        c.record(30.0)
        assert c.average_ns == 20.0

    def test_queue_capacity(self):
        nic = NICModel(2, descriptors_per_core=3)
        for slot in range(3):
            nic.post_rx(0, slot)
        assert nic.rx_queue_full(0)
        assert not nic.rx_queue_full(1)
        assert nic.pop_rx(0) == 0  # FIFO

    def test_dma_engines_independent(self):
        nic = NICModel(1)
        t_rx = nic.issue_rx_write(0.0)
        t_tx = nic.issue_tx_read(0.0)
        assert t_rx == t_tx == 0.0  # separate cursors
        assert nic.issue_rx_write(0.0) > 0.0  # same engine serializes


class TestCoreParamsDerived:
    def test_widths_track_issue_width(self):
        assert GC40_BOOM.fetch_width == 6
        assert GC40_BOOM.commit_width == 6
        assert LARGE_BOOM.mem_ports == 1
        assert GC40_BOOM.mem_ports == 3

    def test_mispredict_penalty_grows_with_width(self):
        assert GC40_BOOM.mispredict_penalty \
            > LARGE_BOOM.mispredict_penalty

    def test_area_monotone_with_config(self):
        assert GC40_BOOM.area_mm2() > LARGE_BOOM.area_mm2()
        assert GC40_BOOM.fpga_luts() > LARGE_BOOM.fpga_luts()


class TestSimpleMemory:
    def test_single_outstanding_latency(self):
        sim = Simulator(make_circuit(make_simple_memory(latency=3), []))
        sim.poke("resp_ready", 1)
        sim.poke("req_valid", 1)
        sim.poke("req_bits", 2)
        responses = []
        for cycle in range(12):
            sim.eval()
            if cycle > 0:
                sim.poke("req_valid", 0)
            if sim.peek("resp_valid"):
                responses.append((cycle, sim.peek("resp_bits")))
            sim.tick()
        assert responses
        first_cycle, value = responses[0]
        assert value == 3 * 2 + 1
        assert first_cycle >= 3

    def test_blocks_second_request_until_drained(self):
        sim = Simulator(make_circuit(make_simple_memory(latency=2), []))
        sim.poke("resp_ready", 0)  # never drain
        sim.poke("req_valid", 1)
        sim.poke("req_bits", 0)
        accepted = 0
        for _ in range(10):
            sim.eval()
            accepted += sim.peek("req_ready") and sim.peek("req_valid")
            sim.tick()
        assert accepted == 1


class TestPassFramework:
    def test_pipeline_runs_in_order(self, counter_circuit):
        trace = []

        def mk(name):
            def fn(c):
                trace.append(name)
                return c
            return FnPass(name, fn)

        pm = PassManager([mk("a"), mk("b")]).add(mk("c"))
        out = pm.run(counter_circuit)
        assert out is counter_circuit
        assert trace == ["a", "b", "c"]
        assert pm.trace == ["a", "b", "c"]


class TestSweepUtilities:
    def test_sweep_point_units(self):
        from repro.experiments.sweeps import SweepPoint

        p = SweepPoint(EXACT, 128, 30.0, "qsfp", 1.5e6, 1.4e6)
        assert p.measured_mhz == pytest.approx(1.5)

    def test_fast_over_exact_requires_both_points(self):
        from repro.experiments.sweeps import (
            fast_over_exact_speedup,
            sweep_grid,
        )

        points = sweep_grid(QSFP_AURORA, widths=(128,),
                            freqs_mhz=(30.0,), cycles=40)
        ratio = fast_over_exact_speedup(points, 128, 30.0)
        assert ratio > 1.0
