"""FPGA profiles, resource estimation, transport models."""

import pytest

from repro.errors import ResourceError
from repro.firrtl import ModuleBuilder, build_circuit, make_circuit
from repro.platform import (
    AWS_VU9P,
    HOST_PCIE,
    PCIE_P2P,
    QSFP_AURORA,
    XILINX_U250,
    FPGAResources,
    estimate_circuit_resources,
    estimate_core_area_mm2,
)
from repro.platform.estimate import core_area_to_luts
from repro.targets.tinycore import make_tiny_core
from repro.targets.programs import boot_program
from repro.uarch.params import GC40_BOOM, LARGE_BOOM


class TestProfiles:
    def test_u250_has_more_usable_luts_than_vu9p(self):
        ratio = XILINX_U250.usable.luts / AWS_VU9P.usable.luts
        assert 1.4 < ratio < 1.6  # paper: "50% more LUTs"

    def test_fit_ok(self):
        util = XILINX_U250.check_fit(FPGAResources(luts=100_000))
        assert util["luts"] < 0.1

    def test_overflow_rejected(self):
        with pytest.raises(ResourceError):
            XILINX_U250.check_fit(FPGAResources(luts=3e6))

    def test_congestion_threshold(self):
        luts = XILINX_U250.usable.luts * 0.8
        with pytest.raises(ResourceError, match="congestion"):
            XILINX_U250.check_fit(FPGAResources(luts=luts))

    def test_resource_arithmetic(self):
        a = FPGAResources(luts=10, ffs=20)
        b = FPGAResources(luts=5, bram36=2)
        total = a + b
        assert total.luts == 15 and total.ffs == 20 and total.bram36 == 2
        assert total.scale(2).luts == 30


class TestCircuitEstimation:
    def test_register_costs_ffs(self, counter_circuit):
        res = estimate_circuit_resources(counter_circuit)
        assert res.ffs == 8
        assert res.luts > 0

    def test_small_memory_is_lutram(self):
        b = ModuleBuilder("M")
        addr = b.input("a", 3)
        out = b.output("o", 8)
        m = b.mem("m", 8, 8)
        rd = b.mem_read(m, "r", addr)
        b.connect(out, rd)
        res = estimate_circuit_resources(build_circuit(b))
        assert res.bram36 == 0
        assert res.luts >= 1

    def test_large_memory_uses_bram(self):
        b = ModuleBuilder("M")
        addr = b.input("a", 12)
        out = b.output("o", 32)
        m = b.mem("m", 4096, 32)
        rd = b.mem_read(m, "r", addr)
        b.connect(out, rd)
        res = estimate_circuit_resources(build_circuit(b))
        assert res.bram36 >= 4

    def test_fame5_shares_combinational(self):
        core = make_tiny_core(boot_program(5))
        b = ModuleBuilder("Quad")
        done = b.output("done", 1)
        cores = [b.inst(f"c{i}", core) for i in range(4)]
        acc = cores[0]["done"].read()
        for c in cores[1:]:
            acc = acc & c["done"].read()
        b.connect(done, acc)
        for c in cores:
            b.connect(c["in_valid"], 0)
            b.connect(c["in_bits"], 0)
            b.connect(c["out_ready"], 0)
        circuit = make_circuit(b.build(), [core])
        plain = estimate_circuit_resources(circuit)
        threaded = estimate_circuit_resources(
            circuit, fame5_threads={core.name: 4})
        assert threaded.luts < plain.luts * 0.5  # comb shared
        assert threaded.ffs == plain.ffs         # state replicated


class TestCoreAreaModel:
    def test_anchors_near_paper(self):
        large = LARGE_BOOM.area_mm2()
        gc40 = GC40_BOOM.area_mm2()
        assert abs(large - 0.79) / 0.79 < 0.05
        assert abs(gc40 - 1.56) / 1.56 < 0.05

    def test_monotonic_in_issue_width(self):
        small = estimate_core_area_mm2(2, 64, 80, 80, 16, 16, 16, 32, 32)
        big = estimate_core_area_mm2(8, 64, 80, 80, 16, 16, 16, 32, 32)
        assert big > small

    def test_gc40_exceeds_congestion_on_u250(self):
        luts = core_area_to_luts(GC40_BOOM.area_mm2())
        with pytest.raises(ResourceError):
            XILINX_U250.check_fit(FPGAResources(luts=luts))


class TestTransports:
    def test_latency_ordering(self):
        assert QSFP_AURORA.wire_ns(500) < PCIE_P2P.wire_ns(500) \
            < HOST_PCIE.wire_ns(500)

    def test_serdes_scales_with_width(self):
        assert QSFP_AURORA.serdes_cycles(128) == 1
        assert QSFP_AURORA.serdes_cycles(1280) == 10

    def test_transfer_time_shrinks_with_host_freq(self):
        slow = QSFP_AURORA.token_transfer_ns(1000, 10.0)
        fast = QSFP_AURORA.token_transfer_ns(1000, 90.0)
        assert fast < slow

    def test_rate_cap(self):
        assert HOST_PCIE.apply_rate_cap(1e6) == 26_400.0
        assert QSFP_AURORA.apply_rate_cap(1e6) == 1e6
