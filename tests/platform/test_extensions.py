"""Sec. VIII extensions: switched Ethernet, hybrid planner, VCD dump."""

import io

import pytest

from repro.errors import SimulationError
from repro.firrtl import make_circuit
from repro.fireripper import FAST, FireRipper, NoCPartitionSpec, PartitionSpec
from repro.harness import ConstantSource
from repro.harness.partitioned import Partition, PartitionedSimulation
from repro.libdn import LIBDNHost
from repro.platform import (
    Campaign,
    ETHERNET_100G,
    QSFP_AURORA,
    SwitchFabric,
    format_plan,
    make_switched_links,
    plan_hybrid,
)
from repro.rtl import Simulator, VCDWriter, dump_vcd
from repro.targets.soc import make_ring_noc_soc


def _ethernet_sim(design):
    links, fabric = make_switched_links(design.plan.links)
    partitions = []
    sources = {}
    for name, circuit in design.partitions.items():
        chans = design.plan.channels[name]
        host = LIBDNHost(Simulator(circuit), chans.in_specs,
                         chans.out_specs, name=name)
        partitions.append(Partition(name, host, 30.0))
        for chan_name in chans.external_in:
            spec = next(s for s in chans.in_specs
                        if s.name == chan_name)
            sources[(name, chan_name)] = ConstantSource(
                {p: 0 for p in spec.port_names})
    return PartitionedSimulation(partitions, links, sources=sources,
                                 seed_boundary=True), fabric


class TestSwitchedEthernet:
    @pytest.fixture(scope="class")
    def design(self):
        circuit = make_ring_noc_soc(4, messages_per_tile=3)
        spec = PartitionSpec(mode=FAST,
                             noc=NoCPartitionSpec.make([[0, 1], [2, 3]]))
        return FireRipper(spec).compile(circuit)

    def test_functionally_correct(self, design):
        sim, _ = _ethernet_sim(design)
        sim.record_outputs = True

        def stop(s):
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1]["done"] == 1

        sim.run(20_000, stop=stop)
        log = sim.output_log[("base", "io_out")]
        assert log[-1]["result"] == 4 * sum(range(1, 4))

    def test_slower_than_direct_qsfp(self, design):
        eth_sim, fabric = _ethernet_sim(design)
        eth = eth_sim.run(300)
        qsfp = design.build_simulation(QSFP_AURORA).run(300)
        assert eth.rate_hz < qsfp.rate_hz
        assert fabric.tokens > 0

    def test_switch_backplane_serializes(self):
        fabric = SwitchFabric()
        t1 = fabric.traverse(0.0, 1024)
        t2 = fabric.traverse(0.0, 1024)
        assert t2 > t1

    def test_with_switch_preserves_link_constants(self):
        fabric = SwitchFabric()
        attached = ETHERNET_100G.with_switch(fabric)
        assert attached.latency_ns == ETHERNET_100G.latency_ns
        assert attached.switch is fabric


class TestHybridPlanner:
    def test_cloud_wins_small_campaigns(self):
        rec, _ = plan_hybrid(Campaign(2, dev_hours=40,
                                      bench_sim_hours=200))
        assert rec.name == "pure cloud"

    def test_onprem_wins_sustained_load(self):
        rec, _ = plan_hybrid(Campaign(2, dev_hours=500,
                                      bench_sim_hours=60_000,
                                      bench_parallelism=2))
        assert rec.name == "pure on-prem"

    def test_hybrid_wins_dev_heavy_bursty(self):
        rec, _ = plan_hybrid(Campaign(2, dev_hours=4_000,
                                      bench_sim_hours=3_000,
                                      bench_parallelism=8))
        assert rec.name.startswith("hybrid")

    def test_onprem_is_faster_per_sim(self):
        _, strategies = plan_hybrid(Campaign(2, 100, 100))
        by_name = {s.name: s for s in strategies}
        assert by_name["pure on-prem"].bench_rate_mhz \
            > by_name["pure cloud"].bench_rate_mhz

    def test_format(self):
        text = format_plan(Campaign(2, 100, 1000))
        assert "usable LUT advantage" in text
        assert "->" in text


class TestVCD:
    def test_dump_structure(self, counter_circuit):
        sim = Simulator(counter_circuit)
        text = dump_vcd(sim, 5, inputs={"en": 1})
        assert "$enddefinitions $end" in text
        assert "$var wire 8" in text      # count/r are 8-bit
        assert "#0" in text and "#4" in text

    def test_only_changes_emitted(self, counter_circuit):
        sim = Simulator(counter_circuit)
        text = dump_vcd(sim, 4, inputs={"en": 0})
        # with the counter disabled, values appear once and never again
        body = text.split("$enddefinitions $end")[1]
        assert body.count("b0 ") <= len(sim.elab.widths)

    def test_selected_signals_only(self, counter_circuit):
        sim = Simulator(counter_circuit)
        buffer = io.StringIO()
        writer = VCDWriter(sim, buffer, signals=["count"])
        writer.run(3, inputs={"en": 1})
        text = buffer.getvalue()
        assert "count" in text and " en " not in text

    def test_unknown_signal_rejected(self, counter_circuit):
        sim = Simulator(counter_circuit)
        with pytest.raises(SimulationError):
            VCDWriter(sim, io.StringIO(), signals=["ghost"])

    def test_values_match_simulation(self, counter_circuit):
        sim = Simulator(counter_circuit)
        text = dump_vcd(sim, 6, inputs={"en": 1})
        # the counter's value at timestep 5 must appear as b101
        assert "b101 " in text
