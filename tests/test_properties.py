"""Property-based system tests.

The central invariant of the whole reproduction, stated by the paper's
Table II: *exact-mode partitioned simulation produces identical cycle
behaviour to monolithic simulation*.  Here hypothesis generates random
two-module circuits (random combinational functions, random register
feedback), FireRipper extracts the child onto its own "FPGA", and the
token-level co-simulation must produce the same per-cycle output trace as
the monolithic RTL simulation — for every generated circuit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.firrtl import ModuleBuilder, make_circuit, mux
from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.harness import MonolithicSimulation
from repro.platform import QSFP_AURORA

WIDTH = 8

# a small algebra of two-operand combinational functions
_FUNCS = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a ^ b,
    lambda a, b: a & b,
    lambda a, b: (a | b) + 1,
    lambda a, b: mux(a.bits(0, 0) if hasattr(a, "bits") else a, a, b),
]

child_spec = st.fixed_dictionaries({
    # per child output: (is_registered, func index, operand selectors)
    "outs": st.lists(
        st.tuples(st.booleans(), st.integers(0, len(_FUNCS) - 1),
                  st.integers(0, 1), st.integers(0, 1)),
        min_size=1, max_size=3),
    # register update function
    "reg_func": st.integers(0, len(_FUNCS) - 1),
    "reg_init": st.integers(0, 255),
})

top_spec = st.fixed_dictionaries({
    # how the top's registers mix the child outputs back in
    "mix_func": st.integers(0, len(_FUNCS) - 1),
    "top_init": st.integers(0, 255),
    "n_child_ins": st.integers(1, 2),
})


def _apply(idx, a, b):
    fn = _FUNCS[idx]
    try:
        return fn(a, b)
    except AttributeError:
        return a + b


def _build(child_cfg, top_cfg):
    n_ins = top_cfg["n_child_ins"]
    cb = ModuleBuilder("Child")
    ins = [cb.input(f"i{k}", WIDTH) for k in range(n_ins)]
    reg = cb.reg("state", WIDTH, init=child_cfg["reg_init"])
    operands = ins + [reg]
    for k, (registered, f, s0, s1) in enumerate(child_cfg["outs"]):
        out = cb.output(f"o{k}", WIDTH)
        a = operands[s0 % len(operands)]
        b = operands[(s1 + 1) % len(operands)]
        if registered:
            cb.connect(out, reg)
        else:
            cb.connect(out, _apply(f, a.read(), b.read()))
    cb.connect(reg, _apply(child_cfg["reg_func"], reg.read(),
                           ins[0].read()))
    child = cb.build()

    tb = ModuleBuilder("Top")
    n_outs = len(child_cfg["outs"])
    obs = [tb.output(f"obs{k}", WIDTH) for k in range(n_outs)]
    r = tb.reg("r", WIDTH, init=top_cfg["top_init"])
    inst = tb.inst("child", child)
    # child inputs come from top registers only (keeps the boundary's
    # combinational chain within exact-mode's legal length)
    for k in range(n_ins):
        tb.connect(inst[f"i{k}"], r + k)
    mixed = r.read()
    for k in range(n_outs):
        mixed = _apply(top_cfg["mix_func"], mixed,
                       inst[f"o{k}"].read())
        tb.connect(obs[k], inst[f"o{k}"])
    tb.connect(r, mixed)
    return make_circuit(tb.build(), [child])


def _mono_trace(circuit, cycles):
    mono = MonolithicSimulation(circuit)
    return [mono.sim.step({}) for _ in range(cycles)]


def _partitioned_trace(circuit, mode, cycles):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["child"])])
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(QSFP_AURORA, record_outputs=True)
    sim.run(cycles)
    return sim.output_log[("base", "io_out")]


@given(child_cfg=child_spec, top_cfg=top_spec)
@settings(max_examples=60, deadline=None)
def test_exact_mode_partition_is_cycle_exact(child_cfg, top_cfg):
    circuit = _build(child_cfg, top_cfg)
    cycles = 8
    mono = _mono_trace(circuit, cycles)
    part = _partitioned_trace(circuit, EXACT, cycles)
    assert len(part) >= cycles
    for c in range(cycles):
        assert part[c] == mono[c], f"cycle {c} diverged"


def _build_pipeline(child_cfg, top_cfg):
    """Acyclic variant: the top never feeds child outputs back into the
    child's inputs, so fast-mode's injected boundary latency is a pure
    delay rather than a dynamics change."""
    n_ins = top_cfg["n_child_ins"]
    cb = ModuleBuilder("Child")
    ins = [cb.input(f"i{k}", WIDTH) for k in range(n_ins)]
    reg = cb.reg("state", WIDTH, init=child_cfg["reg_init"])
    for k, (_, f, s0, s1) in enumerate(child_cfg["outs"]):
        out = cb.output(f"o{k}", WIDTH)
        cb.connect(out, reg)  # registered boundary outputs
    cb.connect(reg, _apply(child_cfg["reg_func"], reg.read(),
                           ins[0].read()))
    child = cb.build()

    tb = ModuleBuilder("Top")
    n_outs = len(child_cfg["outs"])
    obs = [tb.output(f"obs{k}", WIDTH) for k in range(n_outs)]
    r = tb.reg("r", WIDTH, init=top_cfg["top_init"])
    inst = tb.inst("child", child)
    for k in range(n_ins):
        tb.connect(inst[f"i{k}"], r + k)
    tb.connect(r, r + 3)  # evolves independently of the child
    for k in range(n_outs):
        tb.connect(obs[k], inst[f"o{k}"])
    return make_circuit(tb.build(), [child])


def _build_pipeline_reference(child_cfg, top_cfg):
    """The paper's *modified target*: the same pipeline with one
    zero-initialized register stage inserted on each boundary crossing —
    exactly what fast-mode's seed tokens inject (Sec. III-A2)."""
    n_ins = top_cfg["n_child_ins"]
    cb = ModuleBuilder("ChildRef")
    ins = [cb.input(f"i{k}", WIDTH) for k in range(n_ins)]
    reg = cb.reg("state", WIDTH, init=child_cfg["reg_init"])
    for k in range(len(child_cfg["outs"])):
        out = cb.output(f"o{k}", WIDTH)
        cb.connect(out, reg)
    cb.connect(reg, _apply(child_cfg["reg_func"], reg.read(),
                           ins[0].read()))
    child = cb.build()

    tb = ModuleBuilder("TopRef")
    n_outs = len(child_cfg["outs"])
    obs = [tb.output(f"obs{k}", WIDTH) for k in range(n_outs)]
    r = tb.reg("r", WIDTH, init=top_cfg["top_init"])
    inst = tb.inst("child", child)
    for k in range(n_ins):
        stage = tb.reg(f"in_delay{k}", WIDTH)   # seed: zero-init
        tb.connect(stage, r + k)
        tb.connect(inst[f"i{k}"], stage)
    tb.connect(r, r + 3)
    for k in range(n_outs):
        stage = tb.reg(f"out_delay{k}", WIDTH)  # seed: zero-init
        tb.connect(stage, inst[f"o{k}"])
        tb.connect(obs[k], stage)
    return make_circuit(tb.build(), [child])


# -- randomized multi-partition topologies ------------------------------------

multi_spec = st.fixed_dictionaries({
    # 2 or 3 partitions total: base plus one FPGA per extracted leaf
    "n_children": st.integers(1, 2),
    # per leaf: channel width, register init, update function
    "widths": st.lists(st.sampled_from([4, 8, 16]),
                       min_size=2, max_size=2),
    "inits": st.lists(st.integers(0, 2 ** 16 - 1),
                      min_size=2, max_size=2),
    "funcs": st.lists(st.integers(0, len(_FUNCS) - 1),
                      min_size=2, max_size=2),
    "mix_func": st.integers(0, len(_FUNCS) - 1),
    # seeded external stimulus driven through the base's io_in bridge
    "stim": st.lists(st.integers(0, 255), min_size=10, max_size=10),
})


def _build_multi(cfg):
    """Random star topology: the top instantiates 1-2 distinct leaf
    modules (random widths/functions), each later extracted onto its own
    FPGA, with an external ``stim`` input exercising the io_in bridge."""
    n = cfg["n_children"]
    children = []
    for k in range(n):
        w = cfg["widths"][k]
        cb = ModuleBuilder(f"Leaf{k}")
        i0 = cb.input("i0", w)
        reg = cb.reg("state", w, init=cfg["inits"][k] % (1 << w))
        out = cb.output("o0", w)
        cb.connect(out, reg)  # registered boundary output
        cb.connect(reg, _apply(cfg["funcs"][k], reg.read(), i0.read()))
        children.append(cb.build())

    tb = ModuleBuilder("Top")
    stim = tb.input("stim", 8)
    for k in range(n):
        r = tb.reg(f"r{k}", cfg["widths"][k], init=(k + 1) * 7)
        inst = tb.inst(f"leaf{k}", children[k])
        # leaf inputs come from top registers (legal exact boundary);
        # leaf outputs feed back through those registers, closing a
        # cross-partition loop the token exchange must get right
        tb.connect(inst["i0"], r)
        tb.connect(r, _apply(cfg["mix_func"], inst["o0"].read(),
                             stim.read()))
        tb.connect(tb.output(f"obs{k}", cfg["widths"][k]), inst["o0"])
    return make_circuit(tb.build(), children)


def _multi_design(cfg):
    groups = [PartitionGroup.make(f"fpga{k + 1}", [f"leaf{k}"])
              for k in range(cfg["n_children"])]
    spec = PartitionSpec(mode=EXACT, groups=groups)
    return FireRipper(spec).compile(_build_multi(cfg))


def _stim_source(cfg):
    from repro.harness import FunctionSource
    stim = cfg["stim"]
    return FunctionSource(
        lambda c: {"stim": stim[c] if c < len(stim) else 0})


@given(cfg=multi_spec)
@settings(max_examples=40, deadline=None)
def test_random_multi_partition_exact_equivalence(cfg):
    """Randomized 2-3 partition topologies with seeded stimulus: the
    exact-mode co-simulation is bit-identical, cycle for cycle, to the
    monolithic simulation of the unpartitioned design."""
    cycles = 8
    mono = MonolithicSimulation(_build_multi(cfg))
    reference = [mono.sim.step({"stim": cfg["stim"][c]})
                 for c in range(cycles)]
    sim = _multi_design(cfg).build_simulation(
        QSFP_AURORA, record_outputs=True,
        sources={("base", "io_in"): _stim_source(cfg)})
    result = sim.run(cycles)
    assert result.target_cycles == cycles
    trace = sim.output_log[("base", "io_out")]
    assert len(trace) >= cycles
    for c in range(cycles):
        assert trace[c] == reference[c], f"cycle {c} diverged"


@given(cfg=multi_spec)
@settings(max_examples=20, deadline=None)
def test_recording_tracer_never_changes_results(cfg):
    """Tracing is pure observation: an untraced run, a null-traced run
    and a fully recorded run produce identical results (timing, token
    counts, FMR accounting, outputs) on random topologies."""
    from repro.observability import NullTracer, RecordingTracer

    design = _multi_design(cfg)
    cycles = 8

    def run(tracer):
        sim = design.build_simulation(
            QSFP_AURORA, record_outputs=True,
            sources={("base", "io_in"): _stim_source(cfg)},
            tracer=tracer)
        return sim.run(cycles), sim.output_log

    recording = RecordingTracer()
    baseline, base_log = run(None)
    for tracer in (NullTracer(), recording):
        result, log = run(tracer)
        assert result.target_cycles == baseline.target_cycles
        assert result.wall_ns == baseline.wall_ns
        assert result.rate_hz == baseline.rate_hz
        assert result.tokens_transferred == baseline.tokens_transferred
        assert result.per_partition_cycles == \
            baseline.per_partition_cycles
        assert result.detail["fmr"] == baseline.detail["fmr"]
        assert result.detail["fmr_breakdown"] == \
            baseline.detail["fmr_breakdown"]
        assert result.detail["links"] == baseline.detail["links"]
        assert log == base_log
    assert recording.total_emitted > 0


@given(child_cfg=child_spec, top_cfg=top_spec)
@settings(max_examples=30, deadline=None)
def test_fast_mode_cycle_exact_wrt_modified_target(child_cfg, top_cfg):
    """The paper's fast-mode fidelity contract: results are cycle-exact
    with respect to the *modified* target — the original RTL with one
    zero-initialized register stage per boundary crossing (the seed
    tokens).  The partitioned fast-mode trace must equal the monolithic
    trace of that modified design, cycle for cycle."""
    circuit = _build_pipeline(child_cfg, top_cfg)
    reference = _build_pipeline_reference(child_cfg, top_cfg)
    cycles = 10
    ref = _mono_trace(reference, cycles)
    part = _partitioned_trace(circuit, FAST, cycles)
    for c in range(cycles):
        assert part[c] == ref[c], f"cycle {c} diverged from modified RTL"


def _multi_design_mode(cfg, mode):
    groups = [PartitionGroup.make(f"fpga{k + 1}", [f"leaf{k}"])
              for k in range(cfg["n_children"])]
    spec = PartitionSpec(mode=mode, groups=groups)
    return FireRipper(spec).compile(_build_multi(cfg))


def _multi_sim(cfg, mode):
    return _multi_design_mode(cfg, mode).build_simulation(
        QSFP_AURORA, record_outputs=True,
        sources={("base", "io_in"): _stim_source(cfg)})


@given(cfg=multi_spec, mode=st.sampled_from([EXACT, FAST]))
@settings(max_examples=25, deadline=None)
def test_process_backend_bit_identical_to_inproc(cfg, mode):
    """The distributed backend's contract: running every partition in
    its own OS process over real pipes produces the *same bits* as the
    cooperative in-process loop — the full result detail (FMR split,
    link accounting, reliability stats), token counts, per-partition
    cycles and the recorded output trace, on random 2-3 partition
    topologies in both exact and fast mode."""
    from repro.parallel import ProcessBackend, fork_available
    if not fork_available():  # pragma: no cover - linux CI always has fork
        return
    cycles = 8
    s1 = _multi_sim(cfg, mode)
    r1 = s1.run(cycles, backend="inproc")
    s2 = _multi_sim(cfg, mode)
    r2 = ProcessBackend().run(s2, cycles)
    assert r2.detail == r1.detail
    assert r2.target_cycles == r1.target_cycles
    assert r2.tokens_transferred == r1.tokens_transferred
    assert r2.per_partition_cycles == r1.per_partition_cycles
    assert s2.output_log == s1.output_log


@given(cfg=multi_spec)
@settings(max_examples=10, deadline=None)
def test_parallel_checkpoint_resumes_in_process(cfg):
    """Backends are interchangeable mid-run: a checkpoint captured from
    a process-backed run is byte-identical to one captured from the
    in-process loop at the same cycle, and restoring it into the
    in-process backend continues to exactly the state a serial
    checkpoint-resume reaches."""
    from repro.parallel import ProcessBackend, fork_available
    from repro.reliability import capture_state, restore_state
    if not fork_available():  # pragma: no cover - linux CI always has fork
        return
    serial = _multi_sim(cfg, EXACT)
    serial.run(7, backend="inproc")
    serial_state = capture_state(serial)

    parallel = _multi_sim(cfg, EXACT)
    ProcessBackend().run(parallel, 7)
    parallel_state = capture_state(parallel)
    assert parallel_state == serial_state

    def resume(state):
        sim = _multi_sim(cfg, EXACT)
        restore_state(sim, state)
        return sim.run(14, backend="inproc"), sim.output_log

    r1, log1 = resume(serial_state)
    r2, log2 = resume(parallel_state)
    assert r2.detail == r1.detail
    assert log2 == log1


def _multi_sim_telemetry(cfg, sample_every=4):
    from repro.telemetry import Telemetry
    return _multi_design_mode(cfg, EXACT).build_simulation(
        QSFP_AURORA, record_outputs=True,
        sources={("base", "io_in"): _stim_source(cfg)},
        telemetry=Telemetry(sample_every=sample_every))


@given(cfg=multi_spec)
@settings(max_examples=10, deadline=None)
def test_telemetry_series_bit_identical_across_backends(cfg):
    """The telemetry contract: with sampling on, the metric series the
    process backend's workers ship home merges into the *same bits* as
    the in-process loop's — every sample point, every instrument, and
    therefore the whole result detail, on random topologies."""
    import json

    from repro.parallel import ProcessBackend, fork_available
    if not fork_available():  # pragma: no cover - linux CI always has fork
        return
    cycles = 12
    s1 = _multi_sim_telemetry(cfg)
    r1 = s1.run(cycles, backend="inproc")
    s2 = _multi_sim_telemetry(cfg)
    r2 = ProcessBackend().run(s2, cycles)
    assert r1.detail["telemetry"]["series"]  # sampling actually fired
    assert json.dumps(r2.detail, sort_keys=True) \
        == json.dumps(r1.detail, sort_keys=True)


@given(cfg=multi_spec)
@settings(max_examples=10, deadline=None)
def test_telemetry_survives_checkpoint_roundtrip(cfg):
    """Telemetry is part of simulation state: a checkpoint carries the
    sampled series through a JSON serialization round trip losslessly —
    a resume keeps the pre-checkpoint prefix bit-for-bit, continues
    sampling past it, and two independent resumes from the serialized
    state agree on everything."""
    import copy
    import json

    from repro.reliability import capture_state, restore_state
    first = _multi_sim_telemetry(cfg)
    first.run(7, backend="inproc")
    prefix = copy.deepcopy(first.telemetry.sampler.series)
    raw_state = capture_state(first)
    state = json.loads(json.dumps(raw_state))
    assert state == raw_state  # nothing in a checkpoint defies JSON
    assert "telemetry" in state

    def resume(snapshot):
        sim = _multi_sim_telemetry(cfg)
        restore_state(sim, snapshot)
        return sim.run(14, backend="inproc")

    r1, r2 = resume(state), resume(json.loads(json.dumps(state)))
    assert r1.detail == r2.detail
    series = r1.detail["telemetry"]["series"]
    for part, points in prefix.items():
        # restored series keeps the pre-checkpoint samples bit-for-bit
        assert [list(p) for p in points] \
            == series[part][:len(points)], part
    # and sampling resumed after the restore
    assert any(points[-1][0] > 7 for points in series.values())
