"""Monolithic harness + software-sim baseline + metrics."""

import pytest

from repro.errors import SimulationError
from repro.harness import (
    MonolithicSimulation,
    cycle_count_error_pct,
    software_rtl_sim_rate_hz,
)
from repro.harness.software_sim import luts_to_gate_equivalents
from repro.targets.accel import make_gemmini_soc, gemmini_reference_checksum


class TestMonolithic:
    def test_run_until_done(self):
        mono = MonolithicSimulation(make_gemmini_soc(4))
        result = mono.run_until("done", 1)
        assert result.target_cycles > 0
        assert mono.sim.peek("checksum") == gemmini_reference_checksum(4)

    def test_rate_is_host_frequency(self):
        mono = MonolithicSimulation(make_gemmini_soc(4),
                                    host_freq_mhz=42.0)
        result = mono.run(10)
        assert result.rate_hz == 42.0e6

    def test_driver_validation(self):
        with pytest.raises(SimulationError):
            MonolithicSimulation(make_gemmini_soc(4),
                                 drivers={"ghost": 1})

    def test_callable_driver(self, counter_circuit):
        mono = MonolithicSimulation(counter_circuit,
                                    drivers={"en": lambda c: c % 2})
        mono.run(10)
        mono.sim.eval()
        assert mono.sim.peek("count") == 5


class TestMetrics:
    def test_error_pct(self):
        assert cycle_count_error_pct(100, 100) == 0.0
        assert cycle_count_error_pct(100, 101) == pytest.approx(1.0)
        assert cycle_count_error_pct(100, 99) == pytest.approx(1.0)

    def test_zero_reference(self):
        assert cycle_count_error_pct(0, 0) == 0.0
        assert cycle_count_error_pct(0, 5) == float("inf")


class TestSoftwareSimModel:
    def test_bigger_design_slower(self):
        assert software_rtl_sim_rate_hz(1e6) > software_rtl_sim_rate_hz(1e8)

    def test_calibration_anchor(self):
        """The paper's 24-core SoC runs at ~1.26 kHz commercially."""
        from repro.experiments.casestudy_24core import (
            software_baseline_rate_hz,
        )

        rate = software_baseline_rate_hz()
        assert 1_000 <= rate <= 1_600

    def test_parallel_speedup_scales(self):
        base = software_rtl_sim_rate_hz(1e8)
        assert software_rtl_sim_rate_hz(1e8, parallel_speedup=4.0) \
            == pytest.approx(4 * base)

    def test_lut_conversion(self):
        assert luts_to_gate_equivalents(1000) == 25_000
