"""Partitioned co-simulation harness: wiring, timing overlay, deadlock."""

import pytest

from repro.errors import DeadlockError, SimulationError, TransportError
from repro.firrtl import make_circuit
from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.harness import (
    ConstantSource,
    FunctionSource,
    Link,
    Partition,
    PartitionedSimulation,
)
from repro.libdn import ChannelSpec, LIBDNHost
from repro.platform import PCIE_P2P, QSFP_AURORA
from repro.rtl import Simulator
from repro.targets import make_comb_pair_circuit, make_rv_consumer
from repro.targets.combo import WIDTH, make_comb_left, make_comb_right


def _compile_pair(mode=EXACT):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    return FireRipper(spec).compile(make_comb_pair_circuit())


class TestWiringValidation:
    def _consumer_partition(self, name="p"):
        host = LIBDNHost(
            Simulator(make_circuit(make_rv_consumer(16), [])),
            [ChannelSpec.make("in", [("in_valid", 1), ("in_bits", 16)])],
            [ChannelSpec.make("out", [("in_ready", 1), ("sum", 32),
                                      ("received", 32)], deps=["in"])],
            name=name)
        return Partition(name, host)

    def test_unfed_input_rejected(self):
        part = self._consumer_partition()
        with pytest.raises(TransportError, match="no link and no source"):
            PartitionedSimulation([part], [])

    def test_unknown_link_endpoint(self):
        part = self._consumer_partition()
        link = Link(("p", "out"), ("ghost", "in"), QSFP_AURORA)
        with pytest.raises(TransportError):
            PartitionedSimulation([part], [link])

    def test_duplicate_partition_names(self):
        with pytest.raises(SimulationError):
            PartitionedSimulation([self._consumer_partition("p"),
                                   self._consumer_partition("p")], [])

    def test_function_source_drives_tokens(self):
        part = self._consumer_partition()
        values = [5, 6, 7]
        src = FunctionSource(lambda cycle: {
            "in_valid": 1 if cycle < 3 else 0,
            "in_bits": values[cycle] if cycle < 3 else 0})
        sim = PartitionedSimulation(
            [part], [], sources={("p", "in"): src}, record_outputs=True)
        sim.run(6)
        assert part.host.sim.peek("sum") == sum(values)


class TestTimingOverlay:
    def test_rate_positive_and_cycles_counted(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        result = sim.run(25)
        assert result.target_cycles == 25
        assert result.wall_ns > 0
        assert result.rate_hz > 0
        assert result.tokens_transferred > 0

    def test_faster_transport_faster_sim(self):
        r_qsfp = _compile_pair().build_simulation(QSFP_AURORA).run(40)
        r_pcie = _compile_pair().build_simulation(PCIE_P2P).run(40)
        assert r_qsfp.rate_hz > r_pcie.rate_hz

    def test_higher_bitstream_freq_faster(self):
        slow = _compile_pair().build_simulation(
            QSFP_AURORA, host_freq_mhz=10.0).run(40)
        fastr = _compile_pair().build_simulation(
            QSFP_AURORA, host_freq_mhz=90.0).run(40)
        assert fastr.rate_hz > slow.rate_hz

    def test_advance_overhead_slows(self):
        base = _compile_pair().build_simulation(QSFP_AURORA).run(40)
        loaded = _compile_pair().build_simulation(
            QSFP_AURORA, advance_overhead_ns=500.0).run(40)
        assert loaded.rate_hz < base.rate_hz

    def test_per_partition_cycles_reported(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        result = sim.run(10)
        assert result.per_partition_cycles == {"base": 10, "fpga1": 10}


class TestChannelCapacity:
    """The credit-stall path: a sender with no remaining credit waits
    for the receiver's consume timestamp before transmitting."""

    def test_tighter_credit_never_faster(self):
        walls = []
        for capacity in (None, 4, 0):
            result = _compile_pair(FAST).build_simulation(
                QSFP_AURORA, channel_capacity=capacity).run(60)
            walls.append(result.wall_ns)
        assert walls[0] <= walls[1] <= walls[2]

    def test_credit_stall_slows_but_stays_correct(self):
        free = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=None, record_outputs=True)
        free_result = free.run(60)
        credited = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=0, record_outputs=True)
        credited_result = credited.run(60)
        assert credited.output_log == free.output_log
        assert credited_result.target_cycles == \
            free_result.target_cycles
        assert credited_result.wall_ns >= free_result.wall_ns

    def test_consume_queues_stay_bounded(self):
        """The trim keeps credit bookkeeping O(in-flight), not O(run)."""
        sim = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=0)
        sim.run(300)
        for queue in sim._consume_times.values():
            assert len(queue) <= 8

    def test_uncredited_run_records_no_consume_times(self):
        sim = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=None)
        sim.run(300)
        assert sim._consume_times == {}

    def test_source_fed_channels_not_recorded(self):
        """Only link-fed channels are read back by the credit logic;
        recording source-fed ones would grow without bound."""
        host = LIBDNHost(
            Simulator(make_circuit(make_rv_consumer(16), [])),
            [ChannelSpec.make("in", [("in_valid", 1), ("in_bits", 16)])],
            [ChannelSpec.make("out", [("in_ready", 1), ("sum", 32),
                                      ("received", 32)], deps=["in"])],
            name="p")
        sim = PartitionedSimulation(
            [Partition("p", host)], [],
            sources={("p", "in"): ConstantSource(
                {"in_valid": 0, "in_bits": 0})},
            channel_capacity=0)
        sim.run(200)
        assert sim._consume_times == {}

    def test_arrival_queues_stay_bounded(self):
        sim = _compile_pair(FAST).build_simulation(QSFP_AURORA)
        sim.run(300)
        for queue in sim._arrivals.values():
            assert len(queue) <= 8


class TestRunEdgePaths:
    def test_record_outputs_logs_bridge_taps(self):
        """External output channels (bridge taps) land in the output
        log, one token per simulated cycle, only when asked for."""
        sim = _compile_pair().build_simulation(
            QSFP_AURORA, record_outputs=True)
        sim.run(12)
        log = sim.output_log[("base", "io_out")]
        assert len(log) == 12
        assert all(isinstance(t, dict) and t for t in log)

    def test_outputs_not_recorded_by_default(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        sim.run(12)
        assert sim.output_log == {}

    def test_max_passes_exhaustion_raises(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        with pytest.raises(SimulationError, match="pass budget"):
            sim.run(40, max_passes=1)

    def test_max_passes_error_is_not_a_deadlock(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        with pytest.raises(SimulationError) as err:
            sim.run(40, max_passes=1)
        assert not isinstance(err.value, DeadlockError)

    def test_stop_callback_early_exit_partial_result(self):
        sim = _compile_pair().build_simulation(
            QSFP_AURORA, record_outputs=True)
        result = sim.run(50, stop=lambda s: s.frontier_cycle() >= 5)
        assert result.target_cycles == 5
        assert result.per_partition_cycles == {"base": 5, "fpga1": 5}
        # the partial result is internally consistent
        assert result.wall_ns > 0
        assert len(sim.output_log[("base", "io_out")]) >= 5
        fmr = result.detail["fmr"]
        for part, components in result.detail["fmr_breakdown"].items():
            assert sum(components.values()) == pytest.approx(fmr[part])

    def test_stop_checked_before_any_work(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        result = sim.run(50, stop=lambda s: True)
        assert result.target_cycles == 0
        assert result.tokens_transferred == 0


class TestDeadlockDetection:
    def test_aggregated_comb_boundary_deadlocks(self):
        """Fig. 2a wired through the harness: aggregated channels on a
        combinational boundary stall every unit."""
        left = LIBDNHost(
            Simulator(make_circuit(make_comb_left(), [])),
            [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
            [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                              deps=["in"])],
            name="left")
        right = LIBDNHost(
            Simulator(make_circuit(make_comb_right(), [])),
            [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])],
            [ChannelSpec.make("out", [("q", WIDTH), ("ya", WIDTH)],
                              deps=["in"])],
            name="right")
        links = [
            Link(("L", "out"), ("R", "in"), QSFP_AURORA,
                 rename={"d": "f", "s": "c"}),
            Link(("R", "out"), ("L", "in"), QSFP_AURORA,
                 rename={"q": "e", "ya": "a"}),
        ]
        sim = PartitionedSimulation(
            [Partition("L", left), Partition("R", right)], links)
        with pytest.raises(DeadlockError) as err:
            sim.run(5)
        assert "waits on" in str(err.value)

    def test_stuck_detail_names_every_unit_and_channel(self):
        """The deadlock report carries each stuck unit's channel state:
        which outputs wait on which inputs, and which inputs are empty
        (the paper's actionable Fig. 2a diagnosis)."""
        left = LIBDNHost(
            Simulator(make_circuit(make_comb_left(), [])),
            [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
            [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                              deps=["in"])],
            name="left")
        right = LIBDNHost(
            Simulator(make_circuit(make_comb_right(), [])),
            [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])],
            [ChannelSpec.make("out", [("q", WIDTH), ("ya", WIDTH)],
                              deps=["in"])],
            name="right")
        links = [
            Link(("L", "out"), ("R", "in"), QSFP_AURORA,
                 rename={"d": "f", "s": "c"}),
            Link(("R", "out"), ("L", "in"), QSFP_AURORA,
                 rename={"q": "e", "ya": "a"}),
        ]
        sim = PartitionedSimulation(
            [Partition("L", left), Partition("R", right)], links)
        with pytest.raises(DeadlockError) as err:
            sim.run(5)
        detail = err.value.detail
        assert "left@cycle0" in detail
        assert "right@cycle0" in detail
        assert "out waits on ['in']" in detail
        assert "empty inputs ['in']" in detail
        assert err.value.host_cycle == 1  # stalled on the first pass
        # both stuck units are reported, ';;'-separated
        assert detail.count(";;") == 1

    def test_stuck_detail_empty_inputs_only(self):
        """A host whose outputs all fired but whose inputs starve
        reports only the empty input channels."""
        host = LIBDNHost(
            Simulator(make_circuit(make_rv_consumer(16), [])),
            [ChannelSpec.make("in", [("in_valid", 1), ("in_bits", 16)])],
            [ChannelSpec.make("out", [("in_ready", 1), ("sum", 32),
                                      ("received", 32)], deps=["in"])],
            name="starved")
        host.deliver("in", {"in_valid": 0, "in_bits": 0})
        host.host_step()  # consumes the only token, then starves
        detail = host.stuck_detail()
        assert detail.startswith("starved@cycle1:")
        # the re-armed output FSM waits on the starved input channel
        assert "out waits on ['in']" in detail
        assert "empty inputs ['in']" in detail

    def test_seeding_prevents_the_deadlock(self):
        left = LIBDNHost(
            Simulator(make_circuit(make_comb_left(), [])),
            [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
            [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                              deps=["in"])],
            name="left")
        right = LIBDNHost(
            Simulator(make_circuit(make_comb_right(), [])),
            [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])],
            [ChannelSpec.make("out", [("q", WIDTH), ("ya", WIDTH)],
                              deps=["in"])],
            name="right")
        links = [
            Link(("L", "out"), ("R", "in"), QSFP_AURORA,
                 rename={"d": "f", "s": "c"}),
            Link(("R", "out"), ("L", "in"), QSFP_AURORA,
                 rename={"q": "e", "ya": "a"}),
        ]
        sim = PartitionedSimulation(
            [Partition("L", left), Partition("R", right)], links,
            seed_boundary=True)
        result = sim.run(10)
        assert result.target_cycles == 10
