"""Compiled step plane: selection knobs, eligibility guard, codegen
output, fused-kernel cache, and runtime-fallback identity."""

import pytest

from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.fuzz import functional_digest
from repro.harness.stepjit import (
    generate_sources,
    partition_jit_reason,
    stepjit_enabled,
    generate_partition_source,
)
from repro.observability import RecordingTracer
from repro.platform import QSFP_AURORA
from repro.reliability import FaultSpec, harden_links
from repro.reliability.checkpoint import capture_state, restore_state
from repro.targets import make_comb_pair_circuit
from repro.telemetry import Telemetry


def _fused_sim():
    """A simulation containing at least one fused-kernel-tier unit
    (dep-free output channels): a committed NoC fuzz scenario."""
    from pathlib import Path

    from repro.fuzz import load_repro, make_sim
    corpus = Path(__file__).parent.parent / "fuzz" / "corpus"
    scenario, _ = load_repro(
        sorted(corpus.glob("fastmode-*.json"))[0])
    return make_sim(scenario)


def _build(mode=FAST, **kwargs):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    kwargs.setdefault("record_outputs", True)
    return design.build_simulation(QSFP_AURORA, **kwargs)


def _digest(sim, cycles=40, **run_kwargs):
    return functional_digest(sim, sim.run(cycles, **run_kwargs))


class TestSelection:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEPJIT", raising=False)
        assert stepjit_enabled() is True

    @pytest.mark.parametrize("value", ["0", "off", "false", "no",
                                       " OFF ", "False"])
    def test_falsey_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STEPJIT", value)
        assert stepjit_enabled() is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "anything"])
    def test_other_env_values_keep_it_on(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STEPJIT", value)
        assert stepjit_enabled() is True

    def test_sim_override_beats_env(self, monkeypatch):
        sim = _build()
        monkeypatch.setenv("REPRO_STEPJIT", "0")
        sim.stepjit = True
        assert stepjit_enabled(sim) is True
        monkeypatch.delenv("REPRO_STEPJIT")
        sim.stepjit = False
        assert stepjit_enabled(sim) is False
        sim.stepjit = None  # tri-state: None defers to the environment
        assert stepjit_enabled(sim) is True

    def test_disabled_run_reports_and_stays_identical(self):
        on, off = _build(), _build()
        off.stepjit = False
        d_on, d_off = _digest(on), _digest(off)
        assert d_on == d_off
        assert all(v.startswith("compiled")
                   for v in on.last_jit_report.values())
        assert all(v.startswith("disabled")
                   for v in off.last_jit_report.values())
        assert off._step_fns == {}


class TestEligibility:
    def _reasons(self, sim):
        return {p.part.name: partition_jit_reason(sim, p)
                for p in sim.ensure_schedule()}

    def test_clean_fast_sim_is_eligible(self):
        assert all(r is None for r in self._reasons(_build()).values())

    def test_tracer_rejects(self):
        sim = _build(tracer=RecordingTracer())
        assert all(r == "tracer attached"
                   for r in self._reasons(sim).values())

    def test_telemetry_rejects(self):
        sim = _build(telemetry=Telemetry(sample_every=10))
        assert all(r == "telemetry sampling enabled"
                   for r in self._reasons(sim).values())

    def test_reliability_layer_rejects(self):
        sim = _build()
        harden_links(sim, FaultSpec(seed=3, drop_rate=0.2))
        reasons = self._reasons(sim)
        assert any(r and "reliability layer" in r
                   for r in reasons.values())
        # ...and the run still matches the interpreter bit for bit
        # (the guard forces those partitions onto _run_unit)
        ref = _build()
        harden_links(ref, FaultSpec(seed=3, drop_rate=0.2))
        ref.stepjit = False
        assert _digest(sim) == _digest(ref)


class TestGeneratedSources:
    def test_sources_for_eligible_partitions(self):
        sim = _build()
        sources = generate_sources(sim)
        assert set(sources) == set(sim.partitions)
        for src, reason in sources.values():
            assert reason is None
            assert "def _make(_B):" in src
            assert "def _step(" in src

    def test_reject_reason_instead_of_source(self):
        sim = _build(tracer=RecordingTracer())
        for src, reason in generate_sources(sim).values():
            assert src is None
            assert reason == "tracer attached"

    def test_source_compiles_standalone(self):
        sim = _build()
        for pplan in sim.ensure_schedule():
            src, bindings = generate_partition_source(sim, pplan)
            namespace = {}
            exec(compile(src, "<test>", "exec"), namespace)
            step = namespace["_make"](bindings)
            assert callable(step)

    def test_fused_kernels_cached_on_unit(self):
        # the comb-pair units all carry dep channels, which keeps them
        # on the generic tier; a corpus NoC scenario has dep-free units
        # that take the fused-kernel path
        sim = _fused_sim()
        sim.run(10)
        kernels = [getattr(unit, "_stepjit_kernels", None)
                   for part in sim.partitions.values()
                   for _, unit in part.units]
        cached = [k for k in kernels if k]
        assert cached, "no unit took the fused-kernel tier"
        for kern in cached:  # (fire, adv, cyc) tuple per unit
            assert any(fn is not None for fn in kern)
            for fn in kern:
                if fn is not None:
                    assert "def _k(env, mems" in fn._stepjit_source
        # a second run reuses the cache (same objects, no recompile)
        before = [id(k) for k in kernels if k]
        sim.run(20)
        after = [id(getattr(unit, "_stepjit_kernels", None))
                 for part in sim.partitions.values()
                 for _, unit in part.units
                 if getattr(unit, "_stepjit_kernels", None)]
        assert before == after


class TestRuntimeIdentity:
    def test_outbox_fallback_stays_identical(self):
        """A non-empty outbox (a fire outside the compiled plan, e.g. a
        checkpoint captured mid-host_step) must route that pass through
        the interpreter — with identical results to a JIT-off run."""
        sims = []
        for jit in (True, False):
            sim = _build()
            sim.run(5)
            for part in sim.partitions.values():
                for _, unit in part.units:
                    unit.try_fire_outputs()
            sim.stepjit = jit
            sims.append(_digest(sim, 20))
        assert sims[0] == sims[1]

    def test_stop_callback_disables_eval_dedup_but_not_identity(self):
        seen = []

        def stop(sim):
            seen.append(sim.frontier_cycle())
            return False

        jit, interp = _build(), _build()
        interp.stepjit = False
        d_jit = _digest(jit, 30, stop=stop)
        d_int = _digest(interp, 30, stop=stop)
        assert d_jit == d_int
        assert seen  # the callback really ran under the JIT

    def test_checkpoint_roundtrip_under_jit(self):
        """Restore replaces queue objects wholesale; the compiled plans
        bound to the old deques must be invalidated and rebuilt."""
        straight = _build()
        d_straight = _digest(straight, 60)

        first = _build()
        first.run(30)
        state = capture_state(first)
        resumed = _build()
        resumed.run(9)  # stale compiled plans + progress to overwrite
        restore_state(resumed, state)
        assert resumed._step_fns == {}
        d_resumed = _digest(resumed, 60)
        assert d_resumed["detail"] == d_straight["detail"]
        assert d_resumed["outputs"] == d_straight["outputs"]

    def test_exact_mode_matches_interpreter(self):
        on, off = _build(mode=EXACT), _build(mode=EXACT)
        off.stepjit = False
        assert _digest(on) == _digest(off)
