"""Analytic throughput model: knob behaviour + agreement with the DES."""

import pytest

from repro.fireripper import EXACT, FAST
from repro.harness import analytic_rate_hz
from repro.platform import HOST_PCIE, PCIE_P2P, QSFP_AURORA
from repro.experiments.sweeps import measure_rate


class TestKnobs:
    def test_exact_slower_than_fast(self):
        exact = analytic_rate_hz(EXACT, 500, QSFP_AURORA, 30.0)
        fast = analytic_rate_hz(FAST, 500, QSFP_AURORA, 30.0)
        assert 1.4 < fast / exact < 2.2

    def test_wider_interface_slower(self):
        rates = [analytic_rate_hz(FAST, w, QSFP_AURORA, 30.0)
                 for w in (128, 1024, 4096)]
        assert rates[0] > rates[1] > rates[2]

    def test_higher_freq_faster(self):
        rates = [analytic_rate_hz(FAST, 500, QSFP_AURORA, f)
                 for f in (10.0, 30.0, 90.0)]
        assert rates[0] < rates[1] < rates[2]

    def test_transport_ordering(self):
        by_transport = [analytic_rate_hz(FAST, 500, t, 30.0)
                        for t in (QSFP_AURORA, PCIE_P2P, HOST_PCIE)]
        assert by_transport[0] > by_transport[1] > by_transport[2]

    def test_host_pcie_capped(self):
        assert analytic_rate_hz(FAST, 64, HOST_PCIE, 90.0) <= 26_400.0

    def test_ring_size_penalty(self):
        small = analytic_rate_hz(FAST, 64, QSFP_AURORA, 30.0, num_fpgas=2)
        big = analytic_rate_hz(FAST, 64, QSFP_AURORA, 30.0, num_fpgas=5)
        assert big < small

    def test_fame5_amortization(self):
        """Threads overlap with latency: 6 threads cost far less than 6x."""
        one = analytic_rate_hz(FAST, 64, QSFP_AURORA, 30.0, threads=1)
        six = analytic_rate_hz(FAST, 64, QSFP_AURORA, 30.0, threads=6)
        assert one / six < 2.0


class TestAgreementWithCoSimulation:
    @pytest.mark.parametrize("mode,tolerance", [(EXACT, 0.15),
                                                (FAST, 0.35)])
    @pytest.mark.parametrize("width", [128, 1024, 3200])
    def test_model_tracks_token_level_des(self, mode, width, tolerance):
        measured = measure_rate(width, mode, QSFP_AURORA, 30.0, cycles=80)
        predicted = analytic_rate_hz(mode, width, QSFP_AURORA, 30.0)
        assert abs(measured - predicted) / predicted < tolerance
