"""Command-line interface."""

import pytest

from repro.cli import main
from repro.firrtl import parse_circuit, print_circuit
from repro.targets import make_comb_pair_circuit


@pytest.fixture
def circuit_file(tmp_path):
    path = tmp_path / "pair.fir"
    path.write_text(print_circuit(make_comb_pair_circuit()))
    return str(path)


class TestReport:
    def test_prints_interface(self, circuit_file, capsys):
        rc = main(["report", circuit_file, "--extract", "right"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "interface base <-> fpga0: 64 bits" in out
        assert "expected rate" in out

    def test_compile_error_is_reported(self, circuit_file, capsys):
        rc = main(["report", circuit_file, "--extract", "ghost"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err


class TestPartition:
    def test_writes_parseable_files(self, circuit_file, tmp_path,
                                    capsys):
        out_dir = tmp_path / "parts"
        rc = main(["partition", circuit_file, "--extract", "right",
                   "--out", str(out_dir)])
        assert rc == 0
        base = parse_circuit((out_dir / "base.fir").read_text())
        fpga = parse_circuit((out_dir / "fpga0.fir").read_text())
        assert base.top == "CombPairTop"
        assert fpga.top.startswith("Wrapper")


class TestSimulate:
    def test_runs_and_reports_rate(self, circuit_file, capsys):
        rc = main(["simulate", circuit_file, "--extract", "right",
                   "--cycles", "40", "--mode", "fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulated 40 target cycles" in out
        assert "MHz" in out

    def test_transport_selection(self, circuit_file, capsys):
        rc = main(["simulate", circuit_file, "--extract", "right",
                   "--cycles", "20", "--transport", "host-pcie"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "host_managed_pcie" in out


class TestReliability:
    def test_faulty_run_bit_identical_and_degraded(self, circuit_file,
                                                   capsys):
        rc = main(["reliability", circuit_file, "--extract", "right",
                   "--mode", "fast", "--cycles", "120", "--seed", "3",
                   "--drop-rate", "0.03", "--corrupt-rate", "0.02",
                   "--flap", "40000:60000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outputs bit-identical to fault-free run: yes" in out
        assert "drops_recovered=" in out
        assert "% of fault-free" in out

    def test_crash_injection_rolls_back(self, circuit_file, capsys,
                                        tmp_path):
        rc = main(["reliability", circuit_file, "--extract", "right",
                   "--mode", "fast", "--cycles", "100",
                   "--checkpoint-every", "40", "--crash-at", "70",
                   "--checkpoint-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rollbacks: 1" in out
        assert "[crash@70]" in out
        assert (tmp_path / "checkpoint-0.json").exists()

    def test_unreliable_drops_deadlock(self, circuit_file, capsys):
        rc = main(["reliability", circuit_file, "--extract", "right",
                   "--mode", "fast", "--cycles", "100", "--seed", "2",
                   "--drop-rate", "0.3", "--unreliable",
                   "--max-rollbacks", "1"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "deadlock" in err

    def test_bad_flap_spec_reports_error(self, circuit_file, capsys):
        rc = main(["reliability", circuit_file, "--extract", "right",
                   "--flap", "banana"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "START_NS:DURATION_NS" in err


class TestTrace:
    def test_exports_chrome_trace_json(self, circuit_file, tmp_path,
                                       capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", circuit_file, "--extract", "right",
                   "--cycles", "25", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "simulated 25 target cycles" in stdout
        assert "token_tx" in stdout
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        kinds = {r["name"] for r in trace["traceEvents"]}
        assert {"token_tx", "token_rx", "target_cycle"} <= kinds

    def test_ring_capacity_bounds_kept_events(self, circuit_file,
                                              tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", circuit_file, "--extract", "right",
                   "--cycles", "25", "--events", "10",
                   "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "kept 10 of" in stdout

    def test_gzip_writes_compressed_trace(self, circuit_file,
                                          tmp_path, capsys):
        import gzip
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", circuit_file, "--extract", "right",
                   "--cycles", "25", "--gzip", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "trace.json.gz" in stdout
        with gzip.open(tmp_path / "trace.json.gz", "rt") as fh:
            assert json.load(fh)["traceEvents"]


class TestProfile:
    def test_prints_breakdown_and_bottleneck(self, circuit_file, capsys):
        rc = main(["profile", circuit_file, "--extract", "right",
                   "--cycles", "25"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FMR breakdown" in out
        assert "link_wait" in out
        assert "bottleneck:" in out


class TestTelemetryCLI:
    def test_simulate_metrics_reports_samples(self, circuit_file,
                                              capsys):
        rc = main(["simulate", circuit_file, "--extract", "right",
                   "--cycles", "60", "--metrics", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sample point(s) across 2 partition(s)" in out
        assert "every 20 cycles" in out

    def test_simulate_archive_then_compare(self, circuit_file,
                                           tmp_path, capsys):
        runs = tmp_path / "runs"
        for _ in range(2):
            rc = main(["simulate", circuit_file, "--extract", "right",
                       "--cycles", "40", "--archive", "pair",
                       "--runs-dir", str(runs)])
            assert rc == 0
        out = capsys.readouterr().out
        assert "archived run:" in out
        # the registry keeps its index.json beside the run dirs
        ids = sorted(p.name for p in runs.iterdir() if p.is_dir())
        assert len(ids) == 2
        assert ids[0].startswith("pair-")

        rc = main(["compare", ids[0], ids[1],
                   "--runs-dir", str(runs)])
        out = capsys.readouterr().out
        assert rc == 0
        # same config, same backend: identical modelled runs
        assert f"compare {ids[0]} -> {ids[1]}" in out
        assert "(+0.0%)" in out

    def test_simulate_live_then_watch_once(self, circuit_file,
                                           tmp_path, capsys):
        status = tmp_path / "live.json"
        rc = main(["simulate", circuit_file, "--extract", "right",
                   "--cycles", "60", "--live", str(status)])
        assert rc == 0
        rc = main(["watch", str(status), "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle 60 / 60 (100.0%)" in out
        assert "done" in out

    def test_watch_missing_status_errors(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path / "nope.json"), "--once"])
        assert rc == 1
        assert "no status" in capsys.readouterr().err

    def test_regress_update_then_gate(self, tmp_path, capsys):
        results = tmp_path / "results"
        rc = main(["regress", "--results-dir", str(results),
                   "--update"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline updated" in out
        assert (results / "BENCH_rates.json").exists()

        rc = main(["regress", "--results-dir", str(results)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "regression gate: OK" in out

    def test_regress_fails_on_injected_slowdown(self, tmp_path,
                                                capsys):
        results = tmp_path / "results"
        assert main(["regress", "--results-dir", str(results),
                     "--update"]) == 0
        capsys.readouterr()
        rc = main(["regress", "--results-dir", str(results),
                   "--inject-slowdown", "0.15"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSIONS" in out


class TestAutoPartition:
    def test_prints_groups(self, circuit_file, capsys):
        rc = main(["autopartition", circuit_file, "--fpgas", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "boundary cut" in out
