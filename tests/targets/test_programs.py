"""TinyCore assembler."""

import pytest

from repro.targets.programs import (
    AsmError,
    assemble,
    boot_program,
    boot_and_send_program,
    forwarder_program,
    idle_program,
    large_binary_program,
    sender_program,
    sink_program,
)


class TestAssembler:
    def test_encoding_fields(self):
        words = assemble([("ADDI", "r1", "r2", 5)])
        assert words == [(0x1 << 12) | (1 << 9) | (2 << 6) | 5]

    def test_rr_op_puts_rb_in_imm(self):
        words = assemble([("ADD", "r1", "r2", "r3")])
        assert words == [(0x2 << 12) | (1 << 9) | (2 << 6) | (3 << 3)]

    def test_labels_resolve(self):
        words = assemble([
            "start:",
            ("ADDI", "r1", "r1", 1),
            ("JMP", "start"),
        ])
        assert words[1] & 0x3F == 0

    def test_forward_label(self):
        words = assemble([
            ("JMP", "end"),
            ("ADDI", "r1", "r1", 1),
            "end:",
            ("HALT",),
        ])
        assert words[0] & 0x3F == 2

    def test_unknown_label(self):
        with pytest.raises(AsmError):
            assemble([("JMP", "nowhere")])

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble([("FLY", "r1")])

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble([("ADDI", "r9", "r0", 1)])

    def test_imm_range(self):
        with pytest.raises(AsmError):
            assemble([("ADDI", "r1", "r0", 64)])

    def test_program_length_limit(self):
        with pytest.raises(AsmError):
            assemble([("HALT",)] * 65)

    def test_bare_string_must_be_label(self):
        with pytest.raises(AsmError):
            assemble(["not a label"])


class TestCannedPrograms:
    @pytest.mark.parametrize("factory", [
        lambda: boot_program(10),
        lambda: boot_and_send_program(10, 4),
        lambda: sender_program(5),
        lambda: sink_program(5),
        lambda: forwarder_program(),
        lambda: idle_program(),
        lambda: large_binary_program(5),
    ])
    def test_fits_imem(self, factory):
        words = factory()
        assert 0 < len(words) <= 64
        assert all(0 <= w < (1 << 16) for w in words)

    def test_parameter_validation(self):
        with pytest.raises(AsmError):
            boot_program(0)
        with pytest.raises(AsmError):
            sender_program(64)
        with pytest.raises(AsmError):
            large_binary_program(32)
