"""NoC router, converters, accelerators, and SoC builders."""

import pytest

from repro.errors import IRError
from repro.firrtl import make_circuit
from repro.harness import MonolithicSimulation
from repro.rtl import Simulator
from repro.targets.accel import (
    gemmini_reference_checksum,
    make_gemmini_soc,
    make_pipelined_memory,
    make_sha3_soc,
    sha3_reference_digest,
)
from repro.targets.noc import dest_bits, flit_width, make_router
from repro.targets.soc import (
    make_ring_noc_soc,
    make_rocket_like_soc,
    make_star_soc,
    make_wide_pair,
)


class TestRouter:
    def _router_sim(self, my_id=0, n=4):
        router, lib = make_router(my_id, n)
        return Simulator(make_circuit(router, lib)), flit_width(n)

    def _flit(self, dest, payload, n=4):
        return (dest << 16) | payload

    def test_delivers_local_traffic(self):
        sim, fw = self._router_sim(my_id=1)
        sim.poke("local_out_ready", 1)
        sim.poke("ring_in_valid", 1)
        sim.poke("ring_in_bits", self._flit(1, 42))
        sim.step({})
        sim.poke("ring_in_valid", 0)
        got = []
        for _ in range(5):
            sim.eval()
            if sim.peek("local_out_valid"):
                got.append(sim.peek("local_out_bits") & 0xFFFF)
            sim.tick()
        assert 42 in got

    def test_forwards_foreign_traffic(self):
        sim, fw = self._router_sim(my_id=1)
        sim.poke("ring_in_valid", 1)
        sim.poke("ring_in_bits", self._flit(3, 99))
        sim.step({})
        sim.poke("ring_in_valid", 0)
        forwarded = []
        for _ in range(5):
            sim.eval()
            if sim.peek("ring_out_valid"):
                forwarded.append(sim.peek("ring_out_bits"))
            sim.tick()
        assert self._flit(3, 99) in forwarded
        # never delivered locally
        sim.eval()
        assert sim.peek("local_out_valid") == 0

    def test_credit_returned_per_flit(self):
        sim, fw = self._router_sim(my_id=1)
        sim.poke("local_out_ready", 1)
        sim.poke("ring_in_valid", 1)
        sim.poke("ring_in_bits", self._flit(1, 5))
        sim.step({})
        sim.poke("ring_in_valid", 0)
        credits = 0
        for _ in range(5):
            sim.eval()
            credits += sim.peek("ring_credit_out")
            sim.tick()
        assert credits == 1

    def test_injection_respects_credits(self):
        sim, fw = self._router_sim(my_id=0)
        # no credit returns: only RING_CREDITS flits may leave
        sim.poke("local_in_valid", 1)
        sim.poke("local_in_bits", self._flit(2, 1))
        sent = 0
        for _ in range(10):
            sim.eval()
            sent += sim.peek("ring_out_valid")
            sim.tick()
        assert sent == 2  # RING_CREDITS


class TestAccelerators:
    def test_sha3_digest_and_reference(self):
        mono = MonolithicSimulation(make_sha3_soc(12, 5))
        mono.run_until("done", 1, max_cycles=5000)
        assert mono.sim.peek("digest") == sha3_reference_digest(12)

    def test_sha3_runtime_scales_with_words(self):
        short = MonolithicSimulation(make_sha3_soc(8, 5)) \
            .run_until("done", 1).target_cycles
        long = MonolithicSimulation(make_sha3_soc(32, 5)) \
            .run_until("done", 1).target_cycles
        assert long > short

    def test_gemmini_checksum(self):
        mono = MonolithicSimulation(make_gemmini_soc(4))
        mono.run_until("done", 1, max_cycles=5000)
        assert mono.sim.peek("checksum") == gemmini_reference_checksum(4)

    def test_pipelined_memory_latency_and_order(self):
        mem = make_pipelined_memory(latency=5, window=4)
        sim = Simulator(make_circuit(mem, []))
        sim.poke("resp_ready", 1)
        # issue two requests back to back
        responses = []
        for cycle in range(20):
            sim.poke("req_valid", 1 if cycle < 2 else 0)
            sim.poke("req_bits", cycle)
            sim.eval()
            if sim.peek("resp_valid"):
                responses.append((cycle, sim.peek("resp_bits")))
            sim.tick()
        # data[a] = 3a + 1; responses in order, >= latency cycles later
        assert [v for _, v in responses[:2]] == [1, 4]
        assert responses[0][0] >= 5


class TestSoCs:
    def test_ring_soc_full_traffic(self):
        mono = MonolithicSimulation(make_ring_noc_soc(3,
                                                      messages_per_tile=3))
        result = mono.run_until("done", 1, max_cycles=20000)
        assert mono.sim.peek("result") == 3 * sum(range(1, 4))

    def test_ring_soc_rejects_oversized_default_hub(self):
        with pytest.raises(IRError):
            make_ring_noc_soc(16, messages_per_tile=4)

    def test_star_soc(self):
        mono = MonolithicSimulation(make_star_soc(3, messages_per_tile=4))
        mono.run_until("done", 1, max_cycles=20000)
        assert mono.sim.peek("result") == 3 * sum(range(1, 5))

    def test_rocket_soc(self):
        mono = MonolithicSimulation(make_rocket_like_soc(8, 5))
        mono.run_until("done", 1, max_cycles=20000)
        assert mono.sim.peek("result") == sum(range(1, 6))

    @pytest.mark.parametrize("comb", [False, True])
    def test_wide_pair_checks_advance(self, comb):
        sim = Simulator(make_wide_pair(256, comb_boundary=comb))
        sim.run(8)
        sim.eval()
        assert sim.peek("check_l") > 0
        assert sim.peek("check_r") > 0

    def test_flit_geometry(self):
        assert dest_bits(5) == 3
        assert flit_width(5) == 19


class TestTorusRouterAndSoC:
    def test_shortest_path_direction(self):
        """A flit injected at router 0 for destination 4 of a 5-node
        torus goes counter-clockwise (1 hop) rather than clockwise (4)."""
        from repro.targets.noc import make_torus_router

        router, lib = make_torus_router(0, 5)
        sim = Simulator(make_circuit(router, lib))
        sim.poke("local_in_valid", 1)
        sim.poke("local_in_bits", (4 << 16) | 7)
        cw, ccw = 0, 0
        for _ in range(5):
            sim.eval()
            cw += sim.peek("cw_out_valid")
            ccw += sim.peek("ccw_out_valid")
            sim.poke("local_in_valid", 0)
            sim.tick()
        assert ccw == 1 and cw == 0

    def test_near_destination_goes_clockwise(self):
        from repro.targets.noc import make_torus_router

        router, lib = make_torus_router(0, 5)
        sim = Simulator(make_circuit(router, lib))
        sim.poke("local_in_valid", 1)
        sim.poke("local_in_bits", (2 << 16) | 7)
        cw = ccw = 0
        for _ in range(5):
            sim.eval()
            cw += sim.peek("cw_out_valid")
            ccw += sim.peek("ccw_out_valid")
            sim.poke("local_in_valid", 0)
            sim.tick()
        assert cw == 1 and ccw == 0

    def test_torus_soc_traffic(self):
        from repro.targets.soc import make_torus_noc_soc

        torus = MonolithicSimulation(make_torus_noc_soc(
            4, messages_per_tile=3))
        t_res = torus.run_until("done", 1, max_cycles=20_000)
        assert torus.sim.peek("result") == 4 * sum(range(1, 4))
        ring = MonolithicSimulation(make_ring_noc_soc(
            4, messages_per_tile=3))
        r_res = ring.run_until("done", 1, max_cycles=20_000)
        # end-to-end completion is hub-throughput bound, so shortest-path
        # routing can at best match the unidirectional ring here; the
        # per-flit latency advantage is asserted at router level above
        assert t_res.target_cycles <= r_res.target_cycles

    def test_torus_partitioned_cycle_exact(self):
        from repro.fireripper import (
            EXACT,
            FireRipper,
            NoCPartitionSpec,
            PartitionSpec,
        )
        from repro.platform import QSFP_AURORA
        from repro.targets.soc import make_torus_noc_soc

        mono = MonolithicSimulation(make_torus_noc_soc(
            4, messages_per_tile=3))
        ref = mono.run_until("done", 1, max_cycles=20_000).target_cycles

        spec = PartitionSpec(mode=EXACT,
                             noc=NoCPartitionSpec.make([[0, 1], [2, 3]]))
        design = FireRipper(spec).compile(
            make_torus_noc_soc(4, messages_per_tile=3))
        sim = design.build_simulation(QSFP_AURORA, record_outputs=True)

        def stop(s):
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1]["done"] == 1

        sim.run(20_000, stop=stop)
        log = sim.output_log[("base", "io_out")]
        assert next(i for i, t in enumerate(log) if t["done"]) == ref
