"""TinyCore ISA semantics, MMIO, and the planted RTL bug."""

import pytest

from repro.firrtl import make_circuit
from repro.rtl import Simulator
from repro.targets.programs import (
    assemble,
    boot_program,
    large_binary_program,
    large_binary_reference_checksum,
)
from repro.targets.tinycore import make_tile, make_tiny_core


def _run_program(program, pokes=None, max_cycles=2000, bug=False):
    if program and not isinstance(program[0], int):
        program = assemble(program)
    core = make_tiny_core(program, shift_bug=bug)
    sim = Simulator(make_circuit(core, []))
    for k, v in (pokes or {}).items():
        sim.poke(k, v)
    sim.run_until("done", 1, max_cycles=max_cycles)
    return sim


class TestALU:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("ADD", 5, 7, 12),
        ("SUB", 7, 5, 2),
        ("SUB", 5, 7, (5 - 7) & 0xFFFF),
        ("AND", 0b1100, 0b1010, 0b1000),
        ("OR", 0b1100, 0b1010, 0b1110),
        ("XOR", 0b1100, 0b1010, 0b0110),
    ])
    def test_rr_ops(self, op, a, b, expected):
        sim = _run_program([
            ("LI", "r1", a),
            ("LI", "r2", b),
            (op, "r3", "r1", "r2"),
            ("OUT", "r3"),
            ("HALT",),
        ])
        assert sim.peek("result") == expected

    def test_addi(self):
        sim = _run_program([
            ("LI", "r1", 40),
            ("ADDI", "r1", "r1", 2),
            ("OUT", "r1"),
            ("HALT",),
        ])
        assert sim.peek("result") == 42

    def test_shifts(self):
        sim = _run_program([
            ("LI", "r1", 3),
            ("SHL", "r2", "r1", 4),
            ("SHR", "r3", "r2", 2),
            ("OUT", "r3"),
            ("HALT",),
        ])
        assert sim.peek("result") == (3 << 4) >> 2

    def test_r0_reads_zero(self):
        sim = _run_program([
            ("ADD", "r1", "r0", "r0"),
            ("OUT", "r1"),
            ("HALT",),
        ])
        assert sim.peek("result") == 0


class TestControlFlow:
    def test_beq_taken_and_not(self):
        sim = _run_program([
            ("LI", "r1", 5),
            ("LI", "r2", 5),
            ("BEQ", "r1", "r2", "same"),
            ("LI", "r3", 1),
            ("JMP", "end"),
            "same:",
            ("LI", "r3", 2),
            "end:",
            ("OUT", "r3"),
            ("HALT",),
        ])
        assert sim.peek("result") == 2

    def test_loop_counts_cycles(self):
        sim = _run_program([
            ("LI", "r1", 0),
            ("LI", "r2", 5),
            "loop:",
            ("ADDI", "r1", "r1", 1),
            ("BNE", "r1", "r2", "loop"),
            ("OUT", "r1"),
            ("HALT",),
        ])
        assert sim.peek("result") == 5
        # 2 setup + 5 x 2 loop + OUT + HALT observed at done
        assert sim.cycle == 2 + 10 + 2

    def test_halt_holds_state(self):
        sim = _run_program([("LI", "r1", 9), ("OUT", "r1"), ("HALT",)])
        result_at_halt = sim.peek("result")
        sim.run(10)
        sim.eval()
        assert sim.peek("result") == result_at_halt
        assert sim.peek("done") == 1


class TestMemoryAndMMIO:
    def test_store_load_roundtrip(self):
        sim = _run_program([
            ("LI", "r1", 13),
            ("ST", "r1", "r0", 5),
            ("LD", "r2", "r0", 5),
            ("OUT", "r2"),
            ("HALT",),
        ])
        assert sim.peek("result") == 13

    def test_out_queue_push(self):
        program = assemble([
            ("LI", "r1", 21),
            ("ST", "r1", "r0", 63),
            ("HALT",),
        ])
        core = make_tiny_core(program)
        sim = Simulator(make_circuit(core, []))
        sim.poke("out_ready", 1)
        pushed = []
        for _ in range(6):
            sim.eval()
            if sim.peek("out_valid"):
                pushed.append(sim.peek("out_bits"))
            sim.tick()
        assert pushed == [21]

    def test_in_queue_pop_handshake(self):
        program = assemble([
            "wait:",
            ("LD", "r1", "r0", 61),
            ("BEQ", "r1", "r0", "wait"),
            ("LD", "r2", "r0", 62),
            ("OUT", "r2"),
            ("HALT",),
        ])
        core = make_tiny_core(program)
        sim = Simulator(make_circuit(core, []))
        sim.run(4)  # poll with nothing available
        sim.poke("in_valid", 1)
        sim.poke("in_bits", 77)
        popped = 0
        for _ in range(8):
            sim.eval()
            if sim.peek("in_ready"):
                popped += 1
            sim.tick()
        sim.eval()
        assert popped == 1  # exactly one pop
        assert sim.peek("result") == 77


class TestBootProgram:
    def test_checksum(self):
        sim = _run_program(boot_program(10))
        # seed 7 incremented by 3: sum(7 + 3i) for i in 0..9
        assert sim.peek("result") == sum(7 + 3 * i for i in range(10))

    def test_cycles_scale_with_loops(self):
        short = _run_program(boot_program(5)).cycle
        long = _run_program(boot_program(20)).cycle
        assert long > short


class TestPlantedBug:
    def test_bug_invisible_on_boot(self):
        good = _run_program(boot_program(10), bug=False)
        buggy = _run_program(boot_program(10), bug=True)
        assert good.peek("result") == buggy.peek("result")

    def test_bug_trips_on_large_binary(self):
        ref = large_binary_reference_checksum(8)
        good = _run_program(large_binary_program(8),
                            pokes={"out_ready": 1})
        buggy = _run_program(large_binary_program(8),
                             pokes={"out_ready": 1}, bug=True)
        assert good.peek("result") == ref
        assert buggy.peek("result") != ref


class TestTile:
    def test_tile_streams_through_queues(self):
        from repro.targets.programs import sender_program

        tile, lib = make_tile(sender_program(3), name="T")
        sim = Simulator(make_circuit(tile, lib))
        sim.poke("net_out_ready", 1)
        got = []
        for _ in range(60):
            sim.eval()
            if sim.peek("net_out_valid"):
                got.append(sim.peek("net_out_bits"))
            sim.tick()
        assert got == [1, 2, 3]
