"""Ready-valid primitives against golden models (property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.firrtl import make_circuit
from repro.rtl import Simulator
from repro.targets import (
    make_counter,
    make_pipe,
    make_queue,
    make_rv_consumer,
    make_rv_producer,
)


class TestQueueGolden:
    @given(st.integers(2, 8),
           st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255),
                              st.integers(0, 1)),
                    min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_queue_is_a_fifo(self, depth, stimulus):
        sim = Simulator(make_circuit(make_queue(8, depth=depth), []))
        golden = []
        for enq_v, bits, deq_r in stimulus:
            sim.poke("enq_valid", enq_v)
            sim.poke("enq_bits", bits)
            sim.poke("deq_ready", deq_r)
            sim.eval()
            # ready/valid must reflect occupancy
            assert sim.peek("enq_ready") == int(len(golden) < depth)
            assert sim.peek("deq_valid") == int(len(golden) > 0)
            if golden:
                assert sim.peek("deq_bits") == golden[0]
            enq_fire = enq_v and len(golden) < depth
            deq_fire = deq_r and len(golden) > 0
            sim.tick()
            if deq_fire:
                golden.pop(0)
            if enq_fire:
                golden.append(bits)

    def test_full_throughput(self):
        """A depth-2 queue sustains one element per cycle."""
        sim = Simulator(make_circuit(make_queue(8, depth=2), []))
        passed = 0
        for i in range(20):
            sim.poke("enq_valid", 1)
            sim.poke("enq_bits", i)
            sim.poke("deq_ready", 1)
            sim.eval()
            if sim.peek("deq_valid"):
                passed += 1
            sim.tick()
        assert passed >= 18


class TestPipe:
    def test_one_cycle_delay(self):
        sim = Simulator(make_circuit(make_pipe(8), []))
        out = sim.step({"in_valid": 1, "in_bits": 7})
        assert out["out_valid"] == 0
        out = sim.step({"in_valid": 0, "in_bits": 0})
        assert out["out_valid"] == 1 and out["out_bits"] == 7


class TestCounter:
    def test_enable_gating(self):
        sim = Simulator(make_circuit(make_counter(8), []))
        sim.run(3, {"en": 1})
        sim.run(5, {"en": 0})
        sim.eval()
        assert sim.peek("count") == 3


class TestProducerConsumer:
    @pytest.mark.parametrize("stall", [0, 1, 3])
    def test_end_to_end_checksum(self, stall):
        from repro.firrtl import ModuleBuilder

        prod = make_rv_producer(16, count=9)
        cons = make_rv_consumer(16, stall_mask=stall)
        b = ModuleBuilder("PC")
        done = b.output("done", 1)
        total = b.output("sum", 32)
        received = b.output("received", 32)
        p = b.inst("p", prod)
        c = b.inst("c", cons)
        b.connect(c["in_valid"], p["out_valid"])
        b.connect(c["in_bits"], p["out_bits"])
        b.connect(p["out_ready"], c["in_ready"])
        b.connect(done, p["done"])
        b.connect(total, c["sum"])
        b.connect(received, c["received"])
        sim = Simulator(make_circuit(b.build(), [prod, cons]))
        sim.run_until("done", 1, max_cycles=500)
        sim.run(5)  # let the tail drain
        sim.eval()
        assert sim.peek("received") == 9
        assert sim.peek("sum") == sum(range(1, 10))

    def test_infinite_producer_never_done(self):
        prod = make_rv_producer(16, count=0)
        sim = Simulator(make_circuit(prod, []))
        sim.run(20, {"out_ready": 1})
        sim.eval()
        assert sim.peek("done") == 0
