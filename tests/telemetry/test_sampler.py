"""Cycle-keyed sampling, live status, and the Telemetry session."""

import json

import pytest

from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit
from repro.telemetry import (
    NULL_TELEMETRY,
    SAMPLE_FIELDS,
    LiveStatus,
    MetricsRegistry,
    Sampler,
    Telemetry,
    telemetry_from_env,
)


def _run(telemetry, cycles=120):
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    sim = design.build_simulation(QSFP_AURORA, telemetry=telemetry)
    return sim.run(cycles)


class TestSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Sampler(MetricsRegistry(), interval=0)

    def test_samples_every_interval_per_partition(self):
        telemetry = Telemetry(sample_every=25)
        _run(telemetry, cycles=100)
        series = telemetry.sampler.series
        assert set(series) == {"base", "fpga1"}
        for points in series.values():
            cycles = [c for c, _ in points]
            # one sample per 25-cycle threshold crossing, in order
            assert cycles == sorted(cycles)
            assert all(c >= 25 for c in cycles)
            assert len(cycles) == 4

    def test_sample_carries_every_field(self):
        telemetry = Telemetry(sample_every=50)
        _run(telemetry, cycles=60)
        for points in telemetry.sampler.series.values():
            for _, values in points:
                assert set(values) == set(SAMPLE_FIELDS)

    def test_fmr_components_partition_busy_time(self):
        """The sampled span components sum to the sampled busy cursor —
        the same exactness contract the FMR breakdown keeps."""
        telemetry = Telemetry(sample_every=40)
        _run(telemetry, cycles=90)
        for points in telemetry.sampler.series.values():
            for _, values in points:
                parts = (values["compute_ns"] + values["serdes_ns"]
                         + values["link_wait_ns"]
                         + values["credit_stall_ns"]
                         + values["sync_ns"])
                assert parts == pytest.approx(values["busy_ns"])

    def test_state_dict_round_trip(self):
        telemetry = Telemetry(sample_every=30)
        _run(telemetry, cycles=70)
        state = json.loads(json.dumps(telemetry.state_dict()))
        restored = Telemetry(sample_every=30)
        restored.load_state_dict(state)
        assert restored.state_dict() == telemetry.state_dict()
        assert restored.sampler.registry is restored.registry

    def test_detail_is_deterministic_json(self):
        t1, t2 = Telemetry(sample_every=25), Telemetry(sample_every=25)
        _run(t1, cycles=80)
        _run(t2, cycles=80)
        assert json.dumps(t1.detail(), sort_keys=True) \
            == json.dumps(t2.detail(), sort_keys=True)


class TestTelemetrySession:
    def test_result_detail_has_telemetry_payload(self):
        telemetry = Telemetry(sample_every=20)
        result = _run(telemetry, cycles=60)
        payload = result.detail["telemetry"]
        assert payload["sample_every"] == 20
        assert set(payload["series"]) == {"base", "fpga1"}
        assert payload["metrics"]["counters"]["tokens_tx|base"] > 0
        assert payload["metrics"]["counters"]["tokens_rx|fpga1"] > 0

    def test_disabled_session_records_nothing(self):
        result = _run(None, cycles=40)
        assert "telemetry" not in result.detail
        assert NULL_TELEMETRY.enabled is False

    def test_merge_worker_takes_only_owned_partition(self):
        donor = Telemetry(sample_every=20)
        _run(donor, cycles=60)
        parent = Telemetry(sample_every=20)
        parent.merge_worker("fpga1", donor.state_dict())
        assert set(parent.sampler.series) == {"fpga1"}
        assert parent.registry.partitions() == ["fpga1"]
        assert parent.sampler.series["fpga1"] \
            == donor.sampler.series["fpga1"]

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert telemetry_from_env() is None
        monkeypatch.setenv("REPRO_METRICS", "35")
        session = telemetry_from_env()
        assert session.enabled and session.sample_every == 35


class TestAnnotations:
    def test_annotations_merge_into_live_payload(self, tmp_path):
        path = tmp_path / "live.json"
        telemetry = Telemetry(sample_every=50, live_path=path,
                              annotations={"job": "job-000042",
                                           "tenant": "alice"})
        _run(telemetry, cycles=60)
        payload = LiveStatus.read(path)
        assert payload["job"] == "job-000042"
        assert payload["tenant"] == "alice"
        assert payload["status"] == "done"

    def test_annotations_never_override_harness_fields(self):
        telemetry = Telemetry(sample_every=50,
                              annotations={"status": "spoofed",
                                           "extra": "kept"})
        spec = PartitionSpec(mode=EXACT, groups=[
            PartitionGroup.make("fpga1", ["right"])])
        design = FireRipper(spec).compile(make_comb_pair_circuit())
        sim = design.build_simulation(QSFP_AURORA,
                                      telemetry=telemetry)
        sim.run(60)
        payload = telemetry.live_payload(sim, status="running")
        assert payload["status"] == "running"
        assert payload["extra"] == "kept"


class TestLiveStatus:
    def test_writes_and_reads_json(self, tmp_path):
        path = tmp_path / "live" / "status.json"
        live = LiveStatus(path, min_interval_s=0.0)
        live.update({"status": "running", "frontier_cycle": 7})
        payload = LiveStatus.read(path)
        assert payload["status"] == "running"
        assert payload["frontier_cycle"] == 7
        assert "updated" in payload

    def test_throttles_unforced_writes(self, tmp_path):
        path = tmp_path / "status.json"
        live = LiveStatus(path, min_interval_s=3600.0)
        live.update({"n": 1})
        live.update({"n": 2})  # throttled away
        assert LiveStatus.read(path)["n"] == 1
        live.update({"n": 3}, force=True)
        assert LiveStatus.read(path)["n"] == 3

    def test_read_missing_or_torn_file_is_none(self, tmp_path):
        assert LiveStatus.read(tmp_path / "nope.json") is None
        bad = tmp_path / "torn.json"
        bad.write_text('{"status": "run')
        assert LiveStatus.read(bad) is None

    def test_live_run_ends_with_done_status(self, tmp_path):
        path = tmp_path / "status.json"
        telemetry = Telemetry(sample_every=20, live_path=path)
        _run(telemetry, cycles=60)
        payload = LiveStatus.read(path)
        assert payload["status"] == "done"
        assert payload["frontier_cycle"] >= 60
        assert payload["target_cycles"] == 60
        assert set(payload["partitions"]) == {"base", "fpga1"}
