"""Run registry: archive/load/trajectory, and run comparison."""

import json

import pytest

from repro.errors import ReproError
from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit
from repro.telemetry import (
    RunRegistry,
    Telemetry,
    compare_runs,
    config_fingerprint,
    format_comparison,
    run_record,
)


@pytest.fixture(scope="module")
def result():
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    sim = design.build_simulation(QSFP_AURORA,
                                  telemetry=Telemetry(sample_every=25))
    return sim.run(80)


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert config_fingerprint({"a": 1, "b": 2}) \
            == config_fingerprint({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_fingerprint({"a": 1}) \
            != config_fingerprint({"a": 2})

    def test_short_hex(self):
        fp = config_fingerprint({"a": 1})
        assert len(fp) == 12
        int(fp, 16)


class TestRegistry:
    def test_archive_and_load(self, result, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        path = registry.archive(result, name="pair",
                                backend="inproc",
                                config={"mode": "exact"})
        assert path.name == "run.json"
        record = registry.load(path.parent.name)
        assert record["format"] == "fireaxe-repro-run"
        assert record["name"] == "pair"
        assert record["backend"] == "inproc"
        assert record["rate_hz"] == result.rate_hz
        assert record["target_cycles"] == 80
        assert record["detail"]["telemetry"]["series"]
        # ids embed name + fingerprint + sequence
        fp = config_fingerprint({"mode": "exact"})
        assert record["run_id"] == f"pair-{fp}-0000"

    def test_sequence_numbers_never_collide(self, result, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        ids = [registry.archive(result, name="pair",
                                config={"mode": "exact"}).parent.name
               for _ in range(3)]
        assert len(set(ids)) == 3
        assert ids[-1].endswith("-0002")

    def test_trajectory_groups_by_fingerprint(self, result, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.archive(result, name="a", config={"mode": "exact"})
        registry.archive(result, name="b", config={"mode": "exact"})
        registry.archive(result, name="c", config={"mode": "fast"})
        fp = config_fingerprint({"mode": "exact"})
        assert [r["name"] for r in registry.trajectory(fp)] == ["a", "b"]
        assert len(registry.list_runs()) == 3

    def test_load_rejects_junk(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        with pytest.raises(ReproError):
            registry.load("no-such-run")
        bogus = tmp_path / "runs" / "x" / "run.json"
        bogus.parent.mkdir(parents=True)
        bogus.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ReproError):
            registry.load("x")

    def test_list_runs_skips_unreadable_records(self, result, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.archive(result, name="good", config={})
        bad = tmp_path / "runs" / "bad" / "run.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{torn")
        assert [r["name"] for r in registry.list_runs()] == ["good"]


class TestIndexAndLatest:
    def test_archive_maintains_the_index(self, result, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        path = registry.archive(result, name="pair",
                                config={"mode": "exact"})
        assert (tmp_path / "runs" / "index.json").is_file()
        entries = registry.index()
        run_id = path.parent.name
        assert entries[run_id]["fingerprint"] \
            == config_fingerprint({"mode": "exact"})
        assert entries[run_id]["bytes"] > 0
        assert registry.total_bytes() == entries[run_id]["bytes"]

    def test_index_rebuilds_after_external_change(self, result,
                                                  tmp_path):
        import shutil
        registry = RunRegistry(tmp_path / "runs")
        kept = registry.archive(result, name="a",
                                config={"x": 1}).parent.name
        gone = registry.archive(result, name="b",
                                config={"x": 2}).parent.name
        # a run vanishing behind the registry's back is detected by
        # the name-set check and triggers a rescan
        shutil.rmtree(tmp_path / "runs" / gone)
        assert set(registry.index()) == {kept}

    def test_latest_returns_newest_matching_record(self, result,
                                                   tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.archive(result, name="old", config={"x": 1})
        registry.archive(result, name="new", config={"x": 1})
        registry.archive(result, name="other", config={"x": 2})
        record = registry.latest(config_fingerprint({"x": 1}))
        assert record["name"] == "new"
        assert registry.latest("deadbeef0000") is None

    def test_remove_deletes_run_and_index_entry(self, result,
                                                tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        run_id = registry.archive(result, name="pair",
                                  config={}).parent.name
        registry.remove(run_id)
        assert registry.index() == {}
        with pytest.raises(ReproError):
            registry.load(run_id)
        with pytest.raises(ReproError):
            registry.remove(run_id)


class TestGC:
    def _fill(self, result, tmp_path, n=4):
        registry = RunRegistry(tmp_path / "runs")
        ids = [registry.archive(result, name=f"r{i}",
                                config={"i": i}).parent.name
               for i in range(n)]
        return registry, ids

    def test_keep_prunes_oldest_first(self, result, tmp_path):
        registry, ids = self._fill(result, tmp_path)
        pruned = registry.gc(keep=2)
        assert pruned == ids[:2]
        assert set(registry.index()) == set(ids[2:])

    def test_max_age_uses_injected_now(self, result, tmp_path):
        registry, ids = self._fill(result, tmp_path, n=2)
        created = registry.index()[ids[0]]["created"]
        pruned = registry.gc(max_age_s=3600.0,
                             now=created + 7200.0)
        assert set(pruned) == set(ids)

    def test_max_bytes_prunes_until_it_fits(self, result, tmp_path):
        registry, ids = self._fill(result, tmp_path)
        entries = registry.index()
        budget = sum(entries[i]["bytes"] for i in ids[2:])
        pruned = registry.gc(max_bytes=budget)
        assert pruned == ids[:2]
        assert registry.total_bytes() <= budget

    def test_dry_run_deletes_nothing(self, result, tmp_path):
        registry, ids = self._fill(result, tmp_path)
        pruned = registry.gc(keep=0, dry_run=True)
        assert pruned == ids
        assert set(registry.index()) == set(ids)

    def test_policies_compose(self, result, tmp_path):
        registry, ids = self._fill(result, tmp_path)
        pruned = registry.gc(keep=3, max_bytes=0)
        assert pruned == ids
        assert registry.index() == {}


def _record(rate_hz, breakdown, cycles=100, run_id="r"):
    return {
        "run_id": run_id,
        "rate_hz": rate_hz,
        "target_cycles": cycles,
        "per_partition_cycles": {p: cycles for p in breakdown},
        "detail": {"fmr_breakdown": breakdown},
    }


class TestComparison:
    def test_rate_delta_and_attribution(self):
        base = _record(1000.0, {
            "fpga1": {"compute": 1.0, "serdes": 2.0, "link_wait": 1.0,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="a")
        slower = _record(800.0, {
            "fpga1": {"compute": 1.0, "serdes": 3.5, "link_wait": 1.2,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="b")
        comparison = compare_runs(base, slower)
        assert comparison.rate_delta_pct == pytest.approx(-20.0)
        assert comparison.fmr_delta["fpga1"]["serdes"] \
            == pytest.approx(1.5)
        # serdes grew most, cycle-weighted: it owns the regression
        assert comparison.attribution["serdes"] == pytest.approx(150.0)
        assert comparison.dominant_component == "serdes"

    def test_dominant_component_follows_direction(self):
        base = _record(800.0, {
            "fpga1": {"compute": 1.0, "serdes": 3.0, "link_wait": 1.0,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="a")
        faster = _record(1000.0, {
            "fpga1": {"compute": 1.0, "serdes": 1.0, "link_wait": 1.1,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="b")
        comparison = compare_runs(base, faster)
        # host time shrank: the dominant component is the biggest saver
        assert comparison.dominant_component == "serdes"

    def test_identical_runs_diff_to_zero(self, result, tmp_path):
        record = run_record(result, name="pair", config={"x": 1})
        comparison = compare_runs(record, record)
        assert comparison.rate_delta_pct == 0.0
        assert all(v == 0.0
                   for deltas in comparison.fmr_delta.values()
                   for v in deltas.values())

    def test_format_names_cause(self):
        base = _record(1000.0, {
            "fpga1": {"compute": 1.0, "serdes": 2.0, "link_wait": 1.0,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="a")
        slower = _record(900.0, {
            "fpga1": {"compute": 1.0, "serdes": 2.8, "link_wait": 1.0,
                      "credit_stall": 0.0, "sync": 0.0}}, run_id="b")
        text = format_comparison(compare_runs(base, slower))
        assert "compare a -> b" in text
        assert "(-10.0%)" in text
        assert "dominant component: serdes" in text
