"""Metric instruments and the partition-scoped registry."""

import json

from repro.telemetry import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("tokens", "p0")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_keeps_last_value(self):
        g = Gauge("depth", "p0")
        g.set(4)
        g.set(1)
        assert g.value == 1

    def test_histogram_buckets_count_and_sum(self):
        h = Histogram("depth", "p0", bounds=(1, 4))
        for v in (1, 2, 3, 9):
            h.observe(v)
        assert h.buckets == [1, 2, 1]  # <=1, <=4, overflow
        assert h.count == 4
        assert h.sum == 15
        assert h.as_dict()["bounds"] == [1, 4]


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("tokens", "p0") is reg.counter("tokens", "p0")
        assert reg.counter("tokens", "p0") is not reg.counter(
            "tokens", "p1")
        # kind is part of the key: a gauge never aliases a counter
        assert reg.gauge("tokens", "p0") is not reg.counter(
            "tokens", "p0")

    def test_value_reads_without_creating(self):
        reg = MetricsRegistry()
        assert reg.value("counter", "never_touched", "p0") == 0.0
        assert reg.partitions() == []
        reg.counter("tokens", "p0").inc(7)
        assert reg.value("counter", "tokens", "p0") == 7.0

    def test_partitions_lists_owners(self):
        reg = MetricsRegistry()
        reg.counter("a", "p1").inc()
        reg.gauge("b", "p0").set(1)
        assert reg.partitions() == ["p0", "p1"]

    def test_snapshot_is_sorted_and_json_able(self):
        reg = MetricsRegistry()
        reg.counter("z", "p1").inc(2)
        reg.counter("a", "p0").inc(1)
        reg.histogram("h", "p0").observe(3)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a|p0", "z|p1"]
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_part_filter(self):
        reg = MetricsRegistry()
        reg.counter("a", "p0").inc(1)
        reg.counter("a", "p1").inc(2)
        snap = reg.snapshot(part="p1")
        assert snap["counters"] == {"a|p1": 2.0}

    def test_load_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("tokens", "p0").inc(3)
        reg.gauge("depth", "p1").set(5)
        reg.histogram("h", "p0", bounds=(2, 8)).observe(6)
        restored = MetricsRegistry()
        restored.load_snapshot(reg.snapshot())
        assert restored.snapshot() == reg.snapshot()

    def test_load_snapshot_part_filter_merges_one_worker(self):
        """The coordinator's merge path: loading with ``part=`` takes
        only that partition's instruments from a worker snapshot."""
        worker = MetricsRegistry()
        worker.counter("tokens", "p0").inc(1)
        worker.counter("tokens", "p1").inc(9)  # not p0's to contribute
        parent = MetricsRegistry()
        parent.load_snapshot(worker.snapshot(), part="p0")
        assert parent.value("counter", "tokens", "p0") == 1.0
        assert parent.partitions() == ["p0"]


class TestNullRegistry:
    def test_disabled_and_absorbs_everything(self):
        assert NULL_METRICS.enabled is False
        assert isinstance(NULL_METRICS, NullMetricsRegistry)
        NULL_METRICS.counter("tokens", "p0").inc(5)
        NULL_METRICS.gauge("depth").set(3)
        NULL_METRICS.histogram("h").observe(1)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert NULL_METRICS.value("counter", "tokens", "p0") == 0.0
