"""The regression detector and the ``repro regress`` gate."""

import json

import pytest

from repro.telemetry import (
    RunRegistry,
    Violation,
    check_bench_files,
    check_rates,
    check_run,
    load_baseline,
    measure_canonical,
    run_gate,
    save_baseline,
)

BASE = {"pair_exact_qsfp": 1000.0, "pair_fast_qsfp": 3000.0}


class TestBaselineFile:
    def test_save_load_round_trip(self, tmp_path):
        path = save_baseline(BASE, tmp_path)
        assert path.name == "BENCH_rates.json"
        assert load_baseline(tmp_path) == BASE

    def test_load_rejects_missing_or_foreign(self, tmp_path):
        assert load_baseline(tmp_path) is None
        (tmp_path / "BENCH_rates.json").write_text(
            json.dumps({"format": "other"}))
        assert load_baseline(tmp_path) is None


class TestCheckRates:
    def test_within_threshold_passes(self):
        measured = {"pair_exact_qsfp": 950.0, "pair_fast_qsfp": 3100.0}
        assert check_rates(measured, BASE, threshold=0.10) == []

    def test_degradation_beyond_threshold_flags(self):
        measured = {"pair_exact_qsfp": 850.0, "pair_fast_qsfp": 3000.0}
        violations = check_rates(measured, BASE, threshold=0.10)
        assert [v.metric for v in violations] == ["pair_exact_qsfp"]
        assert violations[0].delta_pct == pytest.approx(-15.0)
        assert "degraded" in violations[0].describe()

    def test_unmeasured_baseline_entries_are_skipped(self):
        assert check_rates({}, BASE) == []


class TestCheckRun:
    def _registry(self, tmp_path, rates):
        registry = RunRegistry(tmp_path / "runs")
        registry.root.mkdir(parents=True)
        for i, rate in enumerate(rates):
            d = registry.root / f"run-{i}"
            d.mkdir()
            (d / "run.json").write_text(json.dumps({
                "format": "fireaxe-repro-run",
                "run_id": f"run-{i}",
                "fingerprint": "abc",
                "rate_hz": rate,
                "created": float(i),
            }))
        return registry

    def test_no_history_no_verdict(self, tmp_path):
        registry = self._registry(tmp_path, [1000.0])
        assert check_run(registry.list_runs()[-1], registry) == []

    def test_judged_against_newest_prior_run(self, tmp_path):
        registry = self._registry(tmp_path, [2000.0, 1000.0, 850.0])
        violations = check_run(registry.list_runs()[-1], registry)
        assert len(violations) == 1
        assert violations[0].source == "run-1"  # not the oldest
        assert violations[0].measured == 850.0

    def test_matching_rate_passes(self, tmp_path):
        registry = self._registry(tmp_path, [1000.0, 990.0])
        assert check_run(registry.list_runs()[-1], registry) == []


class TestCheckBenchFiles:
    def test_overhead_above_bound_flags(self, tmp_path):
        (tmp_path / "BENCH_trace_overhead.json").write_text(json.dumps({
            "bound_pct": 5.0,
            "null_overhead_pct": 1.0,
            "null_metrics_overhead_pct": 7.5,
        }))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] \
            == ["null_metrics_overhead_pct"]

    def test_batching_slower_than_per_token_flags(self, tmp_path):
        (tmp_path / "BENCH_parallel_speedup.json").write_text(
            json.dumps({"wire_batching_speedup": 0.8}))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] \
            == ["wire_batching_speedup"]

    def test_token_plane_below_floors_flags(self, tmp_path):
        (tmp_path / "BENCH_token_plane.json").write_text(json.dumps({
            "packed_codec_speedup": 4.2,
            "shm_vs_pipe_speedup": 1.5,
            "detail_bit_identical": False,
        }))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] == [
            "packed_codec_speedup", "shm_vs_pipe_speedup",
            "detail_bit_identical"]

    def test_token_plane_at_floors_passes(self, tmp_path):
        (tmp_path / "BENCH_token_plane.json").write_text(json.dumps({
            "packed_codec_speedup": 5.0,
            "shm_vs_pipe_speedup": 2.0,
            "detail_bit_identical": True,
        }))
        assert check_bench_files(tmp_path) == []

    def test_fuzz_corpus_violations_flag(self, tmp_path):
        (tmp_path / "BENCH_fuzz_corpus.json").write_text(json.dumps({
            "scenarios": 40,
            "distinct_fingerprints": 39,
            "shapes_covered": 5,
            "shapes_total": 6,
            "compile_failures": 2,
        }))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] == [
            "compile_failures", "distinct_fingerprints",
            "shapes_covered"]

    def test_fuzz_corpus_clean_passes(self, tmp_path):
        (tmp_path / "BENCH_fuzz_corpus.json").write_text(json.dumps({
            "scenarios": 40,
            "distinct_fingerprints": 40,
            "shapes_covered": 6,
            "shapes_total": 6,
            "compile_failures": 0,
        }))
        assert check_bench_files(tmp_path) == []

    def test_service_violations_flag(self, tmp_path):
        (tmp_path / "BENCH_service.json").write_text(json.dumps({
            "cached_speedup": 6.0,
            "cached_speedup_floor": 10.0,
            "detail_bit_identical": False,
            "executions": 8,
            "distinct_configs": 6,
        }))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] == [
            "cached_speedup", "detail_bit_identical", "executions"]

    def test_service_clean_passes(self, tmp_path):
        (tmp_path / "BENCH_service.json").write_text(json.dumps({
            "cached_speedup": 113.0,
            "cached_speedup_floor": 10.0,
            "detail_bit_identical": True,
            "executions": 6,
            "distinct_configs": 6,
        }))
        assert check_bench_files(tmp_path) == []

    def test_stepjit_violations_flag(self, tmp_path):
        (tmp_path / "BENCH_stepjit.json").write_text(json.dumps({
            "speedup": 3.2,
            "speedup_floor": 5.0,
            "detail_bit_identical": False,
        }))
        violations = check_bench_files(tmp_path)
        assert [v.metric for v in violations] == [
            "speedup", "detail_bit_identical"]

    def test_stepjit_clean_passes(self, tmp_path):
        (tmp_path / "BENCH_stepjit.json").write_text(json.dumps({
            "speedup": 19.5,
            "speedup_floor": 5.0,
            "detail_bit_identical": True,
        }))
        assert check_bench_files(tmp_path) == []

    def test_empty_results_dir_passes(self, tmp_path):
        assert check_bench_files(tmp_path) == []


class TestGate:
    def test_acceptance_gate_catches_injected_slowdown(self, tmp_path):
        """Acceptance criterion: against a freshly updated baseline a
        clean gate passes and an injected >10% slowdown fails."""
        update = run_gate(results_dir=tmp_path, update=True)
        assert update.updated_path is not None
        assert load_baseline(tmp_path) == update.measured
        assert set(update.measured) == {
            "pair_exact_qsfp", "pair_fast_qsfp", "pair_exact_pcie"}

        clean = run_gate(results_dir=tmp_path)
        assert clean.ok
        assert "regression gate: OK" in clean.to_text()

        slowed = run_gate(results_dir=tmp_path, inject_slowdown=0.15)
        assert not slowed.ok
        assert len(slowed.violations) == len(update.measured)
        assert "REGRESSIONS" in slowed.to_text()

    def test_measurements_are_deterministic(self):
        assert measure_canonical() == measure_canonical()

    def test_injection_scales_rates_down(self):
        full = measure_canonical()
        slowed = measure_canonical(slowdown=0.2)
        for name in full:
            assert slowed[name] == pytest.approx(full[name] * 0.8)

    def test_missing_baseline_reports_rates_only(self, tmp_path):
        report = run_gate(results_dir=tmp_path)
        assert report.ok
        assert "no committed baseline" in report.to_text()

    def test_violation_delta_handles_zero_baseline(self):
        assert Violation("src", "m", 0.0, 1.0, 10.0).delta_pct == 0.0
