"""Profile reports and the ambient profile session."""

import pytest

from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.observability import (
    ProfileSession,
    dominant_component,
    format_profile,
    profile_session,
    record_result,
)
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit


def _run(mode=EXACT, cycles=30, **kwargs):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    return design.build_simulation(QSFP_AURORA, **kwargs).run(cycles)


class TestAmbientSession:
    def test_results_flow_into_active_session(self):
        with profile_session() as session:
            _run()
        assert len(session.results) == 1
        assert session.results[0].target_cycles == 30

    def test_no_session_is_a_noop(self):
        result = _run()  # must not blow up with no session active
        record_result(result)  # explicit call is also a no-op
        assert result.target_cycles == 30

    def test_sessions_nest_and_restore(self):
        with profile_session() as outer:
            _run()
            with profile_session() as inner:
                _run()
            _run()
        assert len(inner.results) == 1
        assert len(outer.results) == 2

    def test_summary_percentages(self):
        with profile_session() as session:
            _run()
        summary = session.summary()
        assert "1 partitioned run(s)" in summary
        assert "bottleneck:" in summary
        totals = session.component_totals()
        assert sum(totals.values()) > 0

    def test_empty_session_summary(self):
        assert "no partitioned runs" in ProfileSession().summary()


class TestReport:
    def test_format_profile_renders_breakdown_and_links(self):
        result = _run()
        text = format_profile(result)
        assert "FMR breakdown" in text
        assert "base" in text and "fpga1" in text
        assert "links:" in text
        assert "bottleneck:" in text

    def test_dominant_component_is_an_overhead(self):
        """The pair design is latency-bound over QSFP, so link waiting
        (never raw compute) must dominate."""
        assert dominant_component(_run()) == "link_wait"

    def test_dominant_component_without_breakdown(self):
        result = _run()
        result.detail = {}
        assert dominant_component(result) == "none"
