"""Tracer sinks: null, recording (ring), tee."""

from repro.observability import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TeeTracer,
    TraceEvent,
)


def _ev(i):
    return TraceEvent("advance", ts_ns=float(i), part="p", scope="u",
                      args={"i": i})


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False

    def test_recent_is_empty(self):
        assert NULL_TRACER.recent(10) == []


class TestRecordingTracer:
    def test_keeps_everything_without_capacity(self):
        t = RecordingTracer()
        for i in range(100):
            t.emit(_ev(i))
        assert len(t) == 100
        assert t.total_emitted == 100
        assert t.events[0].args["i"] == 0

    def test_ring_drops_oldest(self):
        t = RecordingTracer(capacity=8)
        for i in range(20):
            t.emit(_ev(i))
        assert len(t) == 8
        assert t.total_emitted == 20
        assert [e.args["i"] for e in t.events] == list(range(12, 20))

    def test_recent_returns_tail(self):
        t = RecordingTracer()
        for i in range(10):
            t.emit(_ev(i))
        assert [e.args["i"] for e in t.recent(3)] == [7, 8, 9]
        assert t.recent(0) == []
        assert len(t.recent(99)) == 10

    def test_of_kind_and_counts(self):
        t = RecordingTracer()
        t.emit(TraceEvent("token_tx", 0.0))
        t.emit(TraceEvent("token_rx", 1.0))
        t.emit(TraceEvent("token_tx", 2.0))
        assert len(t.of_kind("token_tx")) == 2
        assert t.counts() == {"token_tx": 2, "token_rx": 1}

    def test_clear(self):
        t = RecordingTracer()
        t.emit(_ev(0))
        t.clear()
        assert len(t) == 0
        assert t.total_emitted == 0


class TestTeeTracer:
    def test_fans_out_to_enabled_sinks(self):
        a, b = RecordingTracer(), RecordingTracer(capacity=1)
        tee = TeeTracer([a, b])
        assert tee.enabled
        for i in range(3):
            tee.emit(_ev(i))
        assert len(a) == 3
        assert len(b) == 1

    def test_disabled_when_all_sinks_null(self):
        tee = TeeTracer([NullTracer(), NULL_TRACER])
        assert tee.enabled is False

    def test_recent_uses_first_nonempty_sink(self):
        a, b = RecordingTracer(), RecordingTracer()
        tee = TeeTracer([a, b])
        tee.emit(_ev(1))
        assert [e.args["i"] for e in tee.recent(5)] == [1]
