"""Chrome trace-event export: valid, loadable JSON from a traced run."""

import gzip
import json

from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.observability import (
    RecordingTracer,
    TraceEvent,
    export_chrome_trace,
    iter_chrome_records,
    stream_chrome_trace,
    to_chrome_trace,
)
from repro.platform import QSFP_AURORA
from repro.targets import make_comb_pair_circuit


def _traced_run(cycles=20):
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    tracer = RecordingTracer()
    design.build_simulation(QSFP_AURORA, tracer=tracer).run(cycles)
    return tracer


class TestFormat:
    def test_envelope_and_required_fields(self):
        trace = to_chrome_trace(_traced_run().events)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["traceEvents"]
        for record in trace["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(record)
            if record["ph"] != "M":
                assert "ts" in record
            if record["ph"] == "X":
                assert record["dur"] > 0

    def test_process_and_thread_metadata(self):
        trace = to_chrome_trace(_traced_run().events)
        meta = [r for r in trace["traceEvents"] if r["ph"] == "M"]
        process_names = {r["args"]["name"] for r in meta
                         if r["name"] == "process_name"}
        assert {"base", "fpga1"} <= process_names
        # every non-metadata event points at a registered pid
        pids = {r["pid"] for r in meta if r["name"] == "process_name"}
        for record in trace["traceEvents"]:
            if record["ph"] != "M":
                assert record["pid"] in pids

    def test_token_rx_emits_depth_counter(self):
        trace = to_chrome_trace(_traced_run().events)
        counters = [r for r in trace["traceEvents"] if r["ph"] == "C"]
        assert counters
        for record in counters:
            assert record["name"].startswith("in-flight ")
            assert record["args"]["tokens"] >= 1

    def test_spans_become_complete_events(self):
        tracer = _traced_run()
        trace = to_chrome_trace(tracer.events)
        spans = [r for r in trace["traceEvents"] if r["ph"] == "X"]
        expect = sum(1 for e in tracer.events if e.dur_ns > 0)
        assert len(spans) == expect

    def test_timestamps_converted_to_us(self):
        event = TraceEvent("token_tx", ts_ns=2500.0, dur_ns=1000.0,
                           part="p", scope="c")
        record = [r for r in to_chrome_trace([event])["traceEvents"]
                  if r["ph"] != "M"][0]
        assert record["ts"] == 2.5
        assert record["dur"] == 1.0


class TestExport:
    def test_acceptance_two_partition_run_exports_valid_json(self, tmp_path):
        """Acceptance criterion: a traced 2-partition exact run exports
        a loadable Chrome trace JSON."""
        tracer = _traced_run(cycles=30)
        path = export_chrome_trace(tracer.events,
                                   tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ns"
        kinds = {r["name"] for r in loaded["traceEvents"]}
        assert {"token_tx", "token_rx", "target_cycle",
                "channel_fire"} <= kinds

    def test_creates_parent_directories(self, tmp_path):
        path = export_chrome_trace([], tmp_path / "deep" / "t.json")
        assert path.exists()
        assert json.loads(path.read_text())["traceEvents"] == []


class TestStreaming:
    def test_streamed_output_matches_batch_export(self, tmp_path):
        """The generator path writes byte-for-byte the same document
        structure ``to_chrome_trace`` builds in memory."""
        events = _traced_run(cycles=30).events
        path = stream_chrome_trace(events, tmp_path / "t.json")
        assert path.suffix == ".json"
        assert json.loads(path.read_text()) == to_chrome_trace(events)

    def test_iter_yields_metadata_before_first_use(self):
        events = _traced_run().events
        seen_pids = set()
        for record in iter_chrome_records(events):
            if record["ph"] == "M" and record["name"] == "process_name":
                seen_pids.add(record["pid"])
            elif record["ph"] != "M":
                assert record["pid"] in seen_pids

    def test_gzip_appends_suffix_and_roundtrips(self, tmp_path):
        events = _traced_run(cycles=30).events
        path = stream_chrome_trace(events, tmp_path / "t.json",
                                   compress=True)
        assert path.name == "t.json.gz"
        with gzip.open(path, "rt") as fh:
            loaded = json.load(fh)
        assert loaded == to_chrome_trace(events)

    def test_gzip_suffix_not_doubled(self, tmp_path):
        path = stream_chrome_trace([], tmp_path / "t.json.gz",
                                   compress=True)
        assert path.name == "t.json.gz"
        with gzip.open(path, "rt") as fh:
            assert json.load(fh)["traceEvents"] == []

    def test_empty_stream_is_valid_json(self, tmp_path):
        path = stream_chrome_trace([], tmp_path / "empty.json")
        loaded = json.loads(path.read_text())
        assert loaded == {"traceEvents": [], "displayTimeUnit": "ns"}
