"""FMR breakdown: components always account for every host nanosecond."""

import pytest

from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.observability import FMR_COMPONENTS, FMRSpans
from repro.platform import PCIE_P2P, QSFP_AURORA
from repro.targets import make_comb_pair_circuit


def _compile_pair(mode=EXACT):
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    return FireRipper(spec).compile(make_comb_pair_circuit())


class TestFMRSpans:
    def test_breakdown_sums_to_total(self):
        spans = FMRSpans(compute_ns=100.0, serdes_ns=40.0,
                         link_wait_ns=300.0, credit_stall_ns=60.0,
                         sync_ns=12.0)
        breakdown = spans.breakdown(host_cycle_ns=10.0, target_cycles=4)
        assert sum(breakdown.values()) == pytest.approx(
            spans.total_ns / (10.0 * 4))

    def test_zero_cycles_all_zero(self):
        spans = FMRSpans(compute_ns=50.0)
        assert spans.breakdown(10.0, 0) == {
            name: 0.0 for name in FMR_COMPONENTS}

    def test_reset(self):
        spans = FMRSpans(compute_ns=5.0, sync_ns=1.0)
        spans.reset()
        assert spans.total_ns == 0.0


class TestBreakdownInResult:
    @pytest.mark.parametrize("mode,transport", [
        (EXACT, QSFP_AURORA),
        (FAST, QSFP_AURORA),
        (FAST, PCIE_P2P),
    ])
    def test_components_sum_to_partition_fmr(self, mode, transport):
        """The acceptance criterion: per-partition breakdown components
        sum to that partition's FMR (spans partition busy_until)."""
        sim = _compile_pair(mode).build_simulation(transport)
        result = sim.run(40)
        fmr = result.detail["fmr"]
        breakdown = result.detail["fmr_breakdown"]
        assert set(breakdown) == set(fmr)
        for part, components in breakdown.items():
            assert set(components) == set(FMR_COMPONENTS)
            assert sum(components.values()) == pytest.approx(
                fmr[part], rel=1e-9), part

    def test_spans_cover_busy_until_exactly(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        sim.run(25)
        for part in sim.partitions.values():
            assert part.spans.total_ns == pytest.approx(part.busy_until)

    def test_credit_stall_component_appears_under_backpressure(self):
        free = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=None).run(60)
        tight = _compile_pair(FAST).build_simulation(
            QSFP_AURORA, channel_capacity=0).run(60)
        free_stall = sum(c["credit_stall"]
                         for c in free.detail["fmr_breakdown"].values())
        tight_stall = sum(c["credit_stall"]
                          for c in tight.detail["fmr_breakdown"].values())
        assert free_stall == 0.0
        assert tight_stall > 0.0

    def test_sync_component_tracks_advance_overhead(self):
        sim = _compile_pair().build_simulation(
            QSFP_AURORA, advance_overhead_ns=500.0)
        result = sim.run(20)
        for part, components in result.detail["fmr_breakdown"].items():
            host_cycle = sim.partitions[part].host_cycle_ns
            assert components["sync"] == pytest.approx(500.0 / host_cycle)


class TestLinkStats:
    def test_link_detail_reported(self):
        sim = _compile_pair().build_simulation(QSFP_AURORA)
        result = sim.run(30)
        links = result.detail["links"]
        assert len(links) == len(sim.links)
        for key, stats in links.items():
            assert stats["tokens"] > 0
            assert 0.0 <= stats["utilization"] <= 1.0
            # every delivered token lands in exactly one histogram bucket
            assert sum(stats["in_flight_hist"].values()) == \
                stats["tokens"]

    def test_histograms_survive_long_runs(self):
        sim = _compile_pair(FAST).build_simulation(QSFP_AURORA)
        result = sim.run(200)
        for stats in result.detail["links"].values():
            assert sum(stats["in_flight_hist"].values()) == \
                stats["tokens"]
