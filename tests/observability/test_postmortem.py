"""Deadlock postmortems: channel state + trailing event ring on the
paper's Fig. 2a failure mode."""

import pytest

from repro.errors import DeadlockError
from repro.firrtl import make_circuit
from repro.harness import Link, Partition, PartitionedSimulation
from repro.libdn import ChannelSpec, LIBDNHost
from repro.observability import DeadlockPostmortem, RecordingTracer
from repro.platform import QSFP_AURORA
from repro.rtl import Simulator
from repro.targets.combo import WIDTH, make_comb_left, make_comb_right


def _fig2a_sim(**kwargs):
    """The aggregated-channel combinational boundary of Fig. 2a, which
    deadlocks on the very first pass."""
    left = LIBDNHost(
        Simulator(make_circuit(make_comb_left(), [])),
        [ChannelSpec.make("in", [("a", WIDTH), ("e", WIDTH)])],
        [ChannelSpec.make("out", [("d", WIDTH), ("s", WIDTH)],
                          deps=["in"])],
        name="left")
    right = LIBDNHost(
        Simulator(make_circuit(make_comb_right(), [])),
        [ChannelSpec.make("in", [("c", WIDTH), ("f", WIDTH)])],
        [ChannelSpec.make("out", [("q", WIDTH), ("ya", WIDTH)],
                          deps=["in"])],
        name="right")
    links = [
        Link(("L", "out"), ("R", "in"), QSFP_AURORA,
             rename={"d": "f", "s": "c"}),
        Link(("R", "out"), ("L", "in"), QSFP_AURORA,
             rename={"q": "e", "ya": "a"}),
    ]
    return PartitionedSimulation(
        [Partition("L", left), Partition("R", right)], links, **kwargs)


def _deadlock(sim):
    with pytest.raises(DeadlockError) as err:
        sim.run(5)
    return err.value


class TestPostmortemCapture:
    def test_acceptance_forced_deadlock_has_full_postmortem(self):
        """Acceptance criterion: a forced Fig. 2a deadlock produces a
        postmortem with the event ring and per-unit channel state."""
        tracer = RecordingTracer()
        exc = _deadlock(_fig2a_sim(tracer=tracer))
        pm = exc.postmortem
        assert isinstance(pm, DeadlockPostmortem)
        assert pm.frontier_cycle == 0
        assert pm.host_passes == 1
        assert set(pm.channels) == {"L", "R"}
        for part in ("L", "R"):
            state = pm.channels[part][
                "left" if part == "L" else "right"]
            assert state["inputs"]["in"]["pending"] == 0
            assert state["outputs"]["out"]["fired"] is False
            assert state["outputs"]["out"]["waiting_on"] == ["in"]
        assert pm.events  # the ring captured the deadlock event itself
        assert pm.events[-1].kind == "deadlock"

    def test_ring_bounded_by_postmortem_events(self):
        tracer = RecordingTracer()
        exc = _deadlock(_fig2a_sim(tracer=tracer, postmortem_events=2))
        assert len(exc.postmortem.events) <= 2

    def test_ring_size_configurable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTMORTEM_RING", "3")
        sim = _fig2a_sim(tracer=RecordingTracer())
        assert sim.postmortem_events == 3
        exc = _deadlock(sim)
        assert 1 <= len(exc.postmortem.events) <= 3

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTMORTEM_RING", "3")
        sim = _fig2a_sim(postmortem_events=7)
        assert sim.postmortem_events == 7

    def test_env_unset_defaults_to_64(self, monkeypatch):
        monkeypatch.delenv("REPRO_POSTMORTEM_RING", raising=False)
        assert _fig2a_sim().postmortem_events == 64

    def test_untraced_run_still_gets_channel_state(self):
        exc = _deadlock(_fig2a_sim())
        pm = exc.postmortem
        assert pm.events == []
        assert set(pm.channels) == {"L", "R"}

    def test_stuck_channels_lists_starving_inputs(self):
        exc = _deadlock(_fig2a_sim())
        assert exc.postmortem.stuck_channels() == [
            "L/left/in", "R/right/in"]


class TestPostmortemRendering:
    def test_to_text_names_units_and_waits(self):
        tracer = RecordingTracer()
        exc = _deadlock(_fig2a_sim(tracer=tracer))
        text = exc.postmortem.to_text()
        assert "frontier stuck at target cycle 0" in text
        assert "L/left @ target cycle 0" in text
        assert "out out: waits on ['in']" in text
        assert "in  in: 0 pending token(s)" in text
        assert "last" in text and "event(s):" in text

    def test_to_text_untraced_points_at_recording_tracer(self):
        exc = _deadlock(_fig2a_sim())
        assert "no event history" in exc.postmortem.to_text()

    def test_deadlock_event_emitted_to_tracer(self):
        tracer = RecordingTracer()
        _deadlock(_fig2a_sim(tracer=tracer))
        deadlocks = tracer.of_kind("deadlock")
        assert len(deadlocks) == 1
        assert deadlocks[0].args["frontier"] == 0
