"""The service's observability surface, end to end over HTTP: corr
ids on job records, the event log, ``/metrics`` + ``/healthz``, the
archived ``obs`` extra, and the stitched per-job Perfetto trace."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.obsplane import (
    EV_ADMITTED,
    EV_CACHE_HIT,
    EV_DONE,
    EV_EXECUTING,
    EV_QUEUED,
    EV_REJECTED,
    EV_SUBMITTED,
    read_events,
)
from repro.obsplane.stitch import export_job_trace, stitch_job_trace
from repro.service import ServiceConfig, ServiceThread, TenantQuota
from repro.telemetry import RunRegistry


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(workers=1, runs_dir=tmp_path / "runs",
                           event_log=tmp_path / "ev.jsonl",
                           trace_events=128)
    thread = ServiceThread(config)
    yield thread
    thread.stop()


class TestServiceObservability:
    def test_corr_id_joins_every_artifact(self, service, make_config,
                                          tmp_path):
        """The acceptance path: one submit yields one corr id
        findable in the job record, the event log, the archived run
        record, and the stitched trace."""
        client = service.client()
        record = client.submit(make_config())
        record = client.wait(record["job_id"])
        assert record["state"] == "done"
        corr = record["corr_id"]
        assert corr.startswith("corr-")
        for phase in ("cache_lookup_s", "queue_wait_s",
                      "execution_s"):
            assert record[phase] is not None and record[phase] >= 0.0

        entries = list(read_events(tmp_path / "ev.jsonl", corr=corr))
        kinds = [e["kind"] for e in entries]
        assert kinds[:4] == [EV_SUBMITTED, EV_ADMITTED, EV_QUEUED,
                             EV_EXECUTING]
        assert kinds[-1] == EV_DONE

        run_record = RunRegistry(tmp_path / "runs").load(
            record["run_id"])
        obs = run_record["obs"]
        assert obs["corr_id"] == corr
        assert obs["trace_events"]

        events = stitch_job_trace(record, run_record, entries)
        assert any(e.part == "service" for e in events)
        assert any(e.part.startswith(record["job_id"] + "/")
                   for e in events)
        assert all(e.args.get("corr", corr) == corr
                   for e in events if e.part == "service")

    def test_cache_hit_counted_and_logged(self, service,
                                          make_config, tmp_path):
        client = service.client()
        first = client.wait(client.submit(make_config(),
                                          tenant="alice")["job_id"])
        second = client.wait(client.submit(make_config(),
                                           tenant="bob")["job_id"])
        assert second["source"] == "cache"
        assert second["corr_id"] != first["corr_id"]
        hits = list(read_events(tmp_path / "ev.jsonl",
                                kinds=[EV_CACHE_HIT]))
        assert [e["corr"] for e in hits] == [second["corr_id"]]
        assert hits[0]["run_id"] == first["run_id"]

    def test_metrics_endpoint(self, service, make_config):
        client = service.client()
        client.wait(client.submit(make_config(),
                                  tenant="alice")["job_id"])
        client.wait(client.submit(make_config(),
                                  tenant="bob")["job_id"])
        text = client.metrics()
        assert ('repro_service_jobs_submitted_total{tenant="alice"} 1'
                in text)
        assert ('repro_service_cache_hits_total{tenant="bob"} 1'
                in text)
        assert ('repro_service_latency_seconds_count'
                '{phase="execution",tenant="alice"} 1') in text
        assert "repro_service_workers 1" in text
        assert "repro_service_active_jobs 0" in text

    def test_healthz_and_stats_snapshot(self, service, make_config):
        client = service.client()
        health = client.health()
        assert health["ok"] is True
        client.wait(client.submit(make_config())["job_id"])
        metrics = client.stats()["metrics"]
        assert metrics["counters"]["submitted"] == {"default": 1}
        assert "execution" in metrics["latency"]
        assert metrics["gauges"]["workers"] == 1

    def test_rejection_logged_with_corr(self, tmp_path, make_config):
        from repro.errors import ServiceError
        config = ServiceConfig(
            workers=1, runs_dir=tmp_path / "runs",
            event_log=tmp_path / "ev.jsonl",
            default_quota=TenantQuota(max_queued=0, max_active=1))
        thread = ServiceThread(config)
        try:
            client = thread.client()
            with pytest.raises(ServiceError):
                client.submit(make_config())
        finally:
            thread.stop()
        rejected = list(read_events(tmp_path / "ev.jsonl",
                                    kinds=[EV_REJECTED]))
        assert len(rejected) == 1
        assert rejected[0]["corr"].startswith("corr-")
        submitted = list(read_events(tmp_path / "ev.jsonl",
                                     kinds=[EV_SUBMITTED]))
        assert [e["corr"] for e in submitted] \
            == [rejected[0]["corr"]]

    def test_export_job_trace_file(self, service, make_config,
                                   tmp_path):
        client = service.client()
        record = client.wait(client.submit(make_config())["job_id"])
        run_record = RunRegistry(tmp_path / "runs").load(
            record["run_id"])
        entries = list(read_events(tmp_path / "ev.jsonl",
                                   corr=record["corr_id"]))
        out = tmp_path / "job.json"
        written, count = export_job_trace(out, record, run_record,
                                          entries)
        assert count > 0
        doc = json.loads(written.read_text())
        names = {r["args"]["name"] for r in doc["traceEvents"]
                 if r.get("ph") == "M"
                 and r.get("name") == "process_name"}
        assert "service" in names
        assert any(n.startswith(record["job_id"] + "/")
                   for n in names)

    def test_export_job_trace_gzip(self, service, make_config,
                                   tmp_path):
        client = service.client()
        record = client.wait(client.submit(make_config())["job_id"])
        written, _ = export_job_trace(tmp_path / "job.json", record,
                                      None, (), compress=True)
        assert written.suffix == ".gz"
        json.loads(gzip.decompress(written.read_bytes()))
