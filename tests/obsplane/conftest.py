"""Shared fixtures for the observability-plane tests."""

import pytest

from repro.firrtl import print_circuit
from repro.targets import make_comb_pair_circuit


@pytest.fixture(scope="session")
def circuit_text():
    return print_circuit(make_comb_pair_circuit())


@pytest.fixture
def make_config(circuit_text):
    """Build a simulate job config; overrides tweak the cache key."""

    def make(cycles=60, **overrides):
        config = {"kind": "simulate", "circuit_text": circuit_text,
                  "extract": ["right"], "mode": "fast",
                  "cycles": cycles}
        config.update(overrides)
        return config

    return make
