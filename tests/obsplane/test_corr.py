"""Correlation-ID propagation across every execution backend.

The bar is end-to-end proof: the ID minted on the simulation object
must come back in each partition worker's result fragment (via the
``REPRO_CORR_ID`` environment of the forked process), so
``sim.last_worker_corr`` maps *every* partition to the original ID.
"""

from __future__ import annotations

import pytest

from repro.obsplane import (
    EV_WORKER_EXIT,
    EV_WORKER_SPAWN,
    EventLog,
    current_corr_id,
    mint_corr_id,
    propagate_corr_id,
    read_events,
)
from repro.obsplane.corr import CORR_ENV
from repro.parallel import fork_available, socket_available

from ..parallel.conftest import build_star_sim

CYCLES = 40

BACKENDS = [
    pytest.param("inproc", id="inproc"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(
                     not fork_available(), reason="needs fork")),
    pytest.param("process-shm", id="process-shm",
                 marks=pytest.mark.skipif(
                     not fork_available(), reason="needs fork")),
    pytest.param("process-socket", id="process-socket",
                 marks=pytest.mark.skipif(
                     not (fork_available() and socket_available()),
                     reason="needs fork + sockets")),
]


class TestCorrEnv:
    def test_propagate_and_read(self, monkeypatch):
        monkeypatch.delenv(CORR_ENV, raising=False)
        assert current_corr_id() == ""
        corr = mint_corr_id()
        propagate_corr_id(corr)
        assert current_corr_id() == corr
        propagate_corr_id("")  # empty never clobbers
        assert current_corr_id() == corr


class TestBackendPropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_partition_echoes_the_corr_id(self, backend,
                                                monkeypatch):
        monkeypatch.delenv(CORR_ENV, raising=False)
        sim = build_star_sim(2)
        corr = mint_corr_id()
        sim.corr_id = corr
        sim.run(CYCLES, backend=backend)
        assert set(sim.last_worker_corr) == set(sim.partitions)
        assert set(sim.last_worker_corr.values()) == {corr}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_result_identical_with_and_without_corr(self, backend):
        """Observability identity must never perturb the simulated
        bits."""
        plain = build_star_sim(2).run(CYCLES, backend=backend)
        sim = build_star_sim(2)
        sim.corr_id = mint_corr_id()
        tagged = sim.run(CYCLES, backend=backend)
        assert tagged.detail == plain.detail

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_logs_worker_lifecycle(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sim = build_star_sim(2)
        corr = mint_corr_id()
        sim.corr_id = corr
        sim.events = EventLog(path)
        sim.run(CYCLES, backend="process")
        sim.events.close()
        spawns = list(read_events(path, corr=corr,
                                  kinds=[EV_WORKER_SPAWN]))
        exits = list(read_events(path, corr=corr,
                                 kinds=[EV_WORKER_EXIT]))
        assert {e["part"] for e in spawns} == set(sim.partitions)
        assert {e["part"] for e in exits} == set(sim.partitions)
        for entry in spawns:
            assert entry["worker_pid"] > 0
        # exitcode 0 on a clean self-exit, -SIGTERM when the
        # coordinator reaps after collecting fragments — either way
        # the worker was observed and reported
        for entry in exits:
            assert entry["exitcode"] is not None
