"""Trace stitching units: the three sources, timeline anchoring,
track renaming, and hash-namespaced track ids."""

from __future__ import annotations

import pytest

from repro.observability.chrome_trace import iter_chrome_records
from repro.observability.tracer import TraceEvent
from repro.obsplane.stitch import (
    dict_to_event,
    event_to_dict,
    fabric_events,
    partition_events,
    service_spans,
    stitch_job_trace,
)

JOB = {
    "job_id": "job-7", "tenant": "alice", "corr_id": "corr-abc",
    "submitted": 100.0, "started": 100.5, "finished": 101.0,
    "cache_lookup_s": 0.002, "queue_wait_s": 0.4,
    "execution_s": 0.5,
}


class TestEventDicts:
    def test_roundtrip(self):
        event = TraceEvent(kind="pass", ts_ns=5.0, dur_ns=2.0,
                           part="base", scope="sim",
                           args={"cycle": 3})
        assert dict_to_event(event_to_dict(event)) == event

    def test_dict_to_event_defaults(self):
        event = dict_to_event({})
        assert event.kind == "?" and event.part == ""
        assert event.ts_ns == 0.0


class TestServiceSpans:
    def test_three_phases_on_service_track(self):
        spans = service_spans(JOB)
        assert {s.kind for s in spans} \
            == {"cache_lookup", "queue_wait", "execution"}
        assert {s.part for s in spans} == {"service"}
        execution = next(s for s in spans if s.kind == "execution")
        # anchored at submit: execution starts 0.5 s in
        assert execution.ts_ns == pytest.approx(0.5e9)
        assert execution.dur_ns == pytest.approx(0.5e9)
        assert execution.args["corr"] == "corr-abc"

    def test_without_submit_time_no_spans(self):
        assert service_spans({"job_id": "j"}) == []

    def test_missing_phases_skipped(self):
        spans = service_spans({"job_id": "j", "submitted": 1.0,
                               "queue_wait_s": 0.1})
        assert [s.kind for s in spans] == ["queue_wait"]


class TestFabricEvents:
    def test_track_routing(self):
        entries = [
            {"kind": "host_deploy", "wall": 100.6, "host": "h0",
             "corr": "corr-abc"},
            {"kind": "worker_spawn", "wall": 100.7, "part": "base",
             "corr": "corr-abc"},
            {"kind": "queued", "wall": 100.1, "corr": "corr-abc"},
        ]
        events = fabric_events(JOB, entries)
        by_kind = {e.kind: e for e in events}
        assert by_kind["host_deploy"].part == "host:h0"
        assert by_kind["worker_spawn"].part == "job-7/workers"
        assert by_kind["worker_spawn"].scope == "base"
        assert by_kind["queued"].part == "service"
        # wall stamps land on the µs-from-submit timeline
        assert by_kind["queued"].ts_ns == pytest.approx(0.1e9)

    def test_entries_without_wall_skipped(self):
        assert fabric_events(JOB, [{"kind": "queued"}]) == []


class TestPartitionEvents:
    def _run_record(self):
        payloads = [event_to_dict(TraceEvent(
            kind="pass", ts_ns=float(i) * 1e6, dur_ns=1e5,
            part="base" if i % 2 == 0 else "fpga0", scope="sim"))
            for i in range(4)]
        return {"obs": {"trace_events": payloads},
                "farm": {"placements": [
                    {"assignment": {"base": "h9", "fpga0": "h9"}},
                    {"assignment": {"base": "h0", "fpga0": "h1"}}]}}

    def test_renamed_and_shifted(self):
        events = partition_events(JOB, self._run_record())
        # last placement wins for the host component of the track
        assert {e.part for e in events} \
            == {"job-7/h0/base", "job-7/h1/fpga0"}
        # first span lands at the execution start on the job timeline
        assert min(e.ts_ns for e in events) == pytest.approx(0.5e9)

    def test_without_placement_host_is_local(self):
        record = self._run_record()
        del record["farm"]
        events = partition_events(JOB, record)
        assert {e.part for e in events} \
            == {"job-7/local/base", "job-7/local/fpga0"}

    def test_no_run_record(self):
        assert partition_events(JOB, None) == []


class TestStitchAndHashing:
    def test_stitched_stream_is_time_ordered(self):
        entries = [{"kind": "queued", "wall": 100.1,
                    "corr": "corr-abc"}]
        events = stitch_job_trace(JOB, None, entries)
        stamps = [e.ts_ns for e in events]
        assert stamps == sorted(stamps)

    def test_hashed_track_ids_keep_jobs_distinct(self):
        """Two jobs with a same-named partition must land on
        different pids — the property first-use counters violate when
        two exported streams are concatenated."""

        def pid_of(job_id):
            events = [TraceEvent(kind="pass", ts_ns=0.0, dur_ns=1.0,
                                 part=f"{job_id}/local/base",
                                 scope="sim")]
            records = list(iter_chrome_records(events,
                                               hash_track_ids=True))
            meta = next(r for r in records
                        if r.get("ph") == "M"
                        and r["name"] == "process_name")
            return meta["pid"]

        assert pid_of("job-1") != pid_of("job-2")
        # and the mapping is deterministic across exports
        assert pid_of("job-1") == pid_of("job-1")

    def test_counter_ids_without_hashing_collide(self):
        """Documents why hashing exists: counters restart per export,
        so the same first track of two exports shares pid 1."""

        def pid_of(part):
            events = [TraceEvent(kind="pass", ts_ns=0.0, dur_ns=1.0,
                                 part=part, scope="sim")]
            meta = next(r for r in iter_chrome_records(events)
                        if r.get("ph") == "M"
                        and r["name"] == "process_name")
            return meta["pid"]

        assert pid_of("job-1/base") == pid_of("job-2/base")
