"""Service metrics: histogram quantiles, counters, the Prometheus
text exposition, and the null surface."""

from __future__ import annotations

import pytest

from repro.obsplane import (
    COUNTER_METRICS,
    LATENCY_BUCKETS,
    NULL_SERVICE_METRICS,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_empty_quantiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0

    def test_observe_and_snapshot(self):
        hist = LatencyHistogram()
        for value in (0.002, 0.002, 0.05, 1.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.054)
        assert 0.0 < snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_quantiles_bracket_the_landing_bucket(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.05)  # lands in (0.02, 0.1]
        assert 0.02 < hist.quantile(0.5) <= 0.1
        assert 0.02 < hist.quantile(0.99) <= 0.1

    def test_overflow_lands_in_inf_bucket(self):
        hist = LatencyHistogram()
        hist.observe(LATENCY_BUCKETS[-1] * 10)
        assert hist.inf_count == 1
        # the honest answer for an overflowed quantile: >= last edge
        assert hist.quantile(0.5) == LATENCY_BUCKETS[-1]


class TestServiceMetrics:
    def test_counters_per_tenant(self):
        metrics = ServiceMetrics()
        metrics.inc("submitted", "alice")
        metrics.inc("submitted", "alice")
        metrics.inc("cache_hits", "bob")
        snap = metrics.snapshot()
        assert snap["counters"]["submitted"] == {"alice": 2}
        assert snap["counters"]["cache_hits"] == {"bob": 1}
        assert snap["tenants"] == ["alice", "bob"]

    def test_latency_snapshot_by_phase_then_tenant(self):
        metrics = ServiceMetrics()
        metrics.observe("queue_wait", "alice", 0.01)
        metrics.observe("execution", "alice", 0.2)
        snap = metrics.snapshot()
        assert set(snap["latency"]) == {"queue_wait", "execution"}
        assert snap["latency"]["queue_wait"]["alice"]["count"] == 1

    def test_gauges_ride_the_snapshot(self):
        metrics = ServiceMetrics()
        snap = metrics.snapshot({"active_jobs": 2, "workers": 4})
        assert snap["gauges"]["active_jobs"] == 2

    def test_render_prometheus_text(self):
        metrics = ServiceMetrics()
        metrics.inc("submitted", "alice", 3)
        metrics.inc("cache_hits", "bob")
        metrics.observe("execution", "alice", 0.05)
        text = metrics.render({"queue_depth": {"alice": 1},
                               "active_jobs": 1, "workers": 2})
        assert text.endswith("\n")
        assert '# TYPE repro_service_jobs_submitted_total counter' \
            in text
        assert 'repro_service_jobs_submitted_total{tenant="alice"} 3' \
            in text
        assert 'repro_service_cache_hits_total{tenant="bob"} 1' \
            in text
        assert 'repro_service_queue_depth{tenant="alice"} 1' in text
        assert "repro_service_active_jobs 1" in text
        assert "repro_service_workers 2" in text
        assert "# TYPE repro_service_latency_seconds histogram" \
            in text
        base = 'phase="execution",tenant="alice"'
        assert (f'repro_service_latency_seconds_bucket{{{base},'
                f'le="+Inf"}} 1') in text
        assert f"repro_service_latency_seconds_count{{{base}}} 1" \
            in text

    def test_histogram_buckets_are_cumulative(self):
        metrics = ServiceMetrics()
        metrics.observe("execution", "t", 0.002)  # le=0.005 bucket
        metrics.observe("execution", "t", 0.05)   # le=0.1 bucket
        text = metrics.render()
        base = 'phase="execution",tenant="t"'
        assert (f'repro_service_latency_seconds_bucket{{{base},'
                f'le="0.005"}} 1') in text
        assert (f'repro_service_latency_seconds_bucket{{{base},'
                f'le="0.1"}} 2') in text
        assert (f'repro_service_latency_seconds_bucket{{{base},'
                f'le="+Inf"}} 2') in text

    def test_every_counter_renders_even_when_zero(self):
        text = ServiceMetrics().render()
        for metric in COUNTER_METRICS.values():
            assert f"# TYPE {metric} counter" in text
            assert f"{metric} 0" in text


class TestNullServiceMetrics:
    def test_disabled_and_empty(self):
        assert NULL_SERVICE_METRICS.enabled is False
        NULL_SERVICE_METRICS.inc("submitted", "t")
        NULL_SERVICE_METRICS.observe("execution", "t", 1.0)
        assert NULL_SERVICE_METRICS.snapshot() == {}
        assert NULL_SERVICE_METRICS.render() == ""
