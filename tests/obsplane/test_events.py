"""The structured event log: append/read roundtrip, filtering, the
null sink, fork-safe whole-line appends, and the human rendering."""

from __future__ import annotations

import json
import multiprocessing as mp

import pytest

from repro.obsplane import (
    EV_DONE,
    EV_QUEUED,
    EV_SUBMITTED,
    EVENT_KINDS,
    NULL_EVENT_LOG,
    EventLog,
    follow_events,
    format_event,
    mint_corr_id,
    open_event_log,
    read_events,
)
from repro.parallel import fork_available


class TestEventLog:
    def test_roundtrip(self, tmp_path):
        log = EventLog(tmp_path / "ev.jsonl")
        log.emit(EV_SUBMITTED, corr="corr-1", tenant="alice",
                 job="job-1", priority=3)
        log.emit(EV_DONE, corr="corr-1", tenant="alice", job="job-1")
        log.close()
        entries = list(read_events(tmp_path / "ev.jsonl"))
        assert [e["kind"] for e in entries] == [EV_SUBMITTED, EV_DONE]
        assert entries[0]["corr"] == "corr-1"
        assert entries[0]["priority"] == 3
        assert entries[0]["seq"] == 1 and entries[1]["seq"] == 2
        for entry in entries:
            assert entry["pid"] > 0
            assert entry["ts_ns"] > 0
            assert entry["wall"] > 0

    def test_identity_fields_appear_only_when_set(self, tmp_path):
        log = EventLog(tmp_path / "ev.jsonl")
        log.emit(EV_QUEUED, corr="corr-2")
        log.close()
        (entry,) = read_events(tmp_path / "ev.jsonl")
        assert entry["corr"] == "corr-2"
        for absent in ("tenant", "fingerprint", "job", "part",
                       "host"):
            assert absent not in entry

    def test_filters(self, tmp_path):
        log = EventLog(tmp_path / "ev.jsonl")
        log.emit(EV_SUBMITTED, corr="a", tenant="t1")
        log.emit(EV_SUBMITTED, corr="b", tenant="t2")
        log.emit(EV_DONE, corr="a", tenant="t1")
        log.close()
        path = tmp_path / "ev.jsonl"
        assert len(list(read_events(path, corr="a"))) == 2
        assert len(list(read_events(path, tenant="t2"))) == 1
        assert len(list(read_events(path, kinds=[EV_DONE]))) == 1
        assert len(list(read_events(path, corr="a",
                                    kinds=[EV_DONE]))) == 1

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(path)
        log.emit(EV_SUBMITTED, corr="a")
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "done", "corr"')  # torn mid-crash
        assert [e["kind"] for e in read_events(path)] \
            == [EV_SUBMITTED]

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_events(tmp_path / "absent.jsonl")) == []

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(path)
        for kind in EVENT_KINDS:
            log.emit(kind, corr="c", detail="x")
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == len(EVENT_KINDS)
        for line in lines:
            json.loads(line)

    @pytest.mark.skipif(not fork_available(),
                        reason="needs fork")
    def test_forked_child_appends_whole_lines(self, tmp_path):
        """A forked child inheriting the log reopens its own stream;
        parent and child lines interleave whole, each stamped with
        the writer's pid."""
        path = tmp_path / "ev.jsonl"
        log = EventLog(path)
        log.emit(EV_SUBMITTED, corr="parent")
        ctx = mp.get_context("fork")

        def child(event_log):
            for i in range(20):
                event_log.emit("worker_spawn", corr="child", i=i)

        proc = ctx.Process(target=child, args=(log,))
        proc.start()
        for i in range(20):
            log.emit(EV_QUEUED, corr="parent", i=i)
        proc.join(10.0)
        assert proc.exitcode == 0
        log.close()
        entries = list(read_events(path))
        assert len(entries) == 41
        pids = {e["pid"] for e in entries}
        assert len(pids) == 2
        assert len([e for e in entries if e["corr"] == "child"]) == 20


class TestNullAndOpen:
    def test_null_log_disabled_and_silent(self):
        assert NULL_EVENT_LOG.enabled is False
        NULL_EVENT_LOG.emit(EV_SUBMITTED, corr="x")  # no-op
        NULL_EVENT_LOG.close()

    def test_open_event_log(self, tmp_path):
        assert open_event_log(None) is NULL_EVENT_LOG
        assert open_event_log("") is NULL_EVENT_LOG
        log = open_event_log(tmp_path / "ev.jsonl")
        assert isinstance(log, EventLog) and log.enabled
        log.close()


class TestFollowAndFormat:
    def test_follow_yields_then_times_out(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(path)
        log.emit(EV_SUBMITTED, corr="f1")
        log.emit(EV_DONE, corr="f1")
        log.close()
        got = list(follow_events(path, corr="f1", poll=0.02,
                                 timeout=0.2))
        assert [e["kind"] for e in got] == [EV_SUBMITTED, EV_DONE]

    def test_format_event(self):
        corr = mint_corr_id()
        line = format_event({"kind": EV_DONE, "wall": 1700000000.0,
                             "corr": corr, "tenant": "alice",
                             "run_id": "r-1", "seq": 3, "pid": 42})
        assert EV_DONE in line
        assert f"corr={corr}" in line
        assert "tenant=alice" in line
        assert "run_id=r-1" in line
        assert "seq=" not in line and "pid=" not in line

    def test_mint_corr_id_shape(self):
        a, b = mint_corr_id(), mint_corr_id()
        assert a.startswith("corr-") and len(a) == 17
        assert a != b
