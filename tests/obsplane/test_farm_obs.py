"""Farm-level observability: the correlation ID rides through host
agents into partition workers (two forks deep), and host lifecycle
events — deploy, death, re-placement — land in the event log."""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.farm import FarmManager, FarmSpec, HostSpec
from repro.firrtl import print_circuit
from repro.obsplane import (
    EV_HOST_DEATH,
    EV_HOST_DEPLOY,
    EV_HOST_REPLACE,
    EventLog,
    mint_corr_id,
    read_events,
)
from repro.parallel import fork_available, socket_available
from repro.service.executor import execute_config, normalize_config

from ..parallel.conftest import build_star_sim, make_star_circuit

CYCLES = 300

pytestmark = pytest.mark.skipif(
    not (fork_available() and socket_available()),
    reason="farm runs need fork + sockets")


def three_host_spec():
    return FarmSpec([HostSpec("h0", cores=2), HostSpec("h1", cores=2),
                     HostSpec("h2", cores=4)])


class TestFarmCorrAndEvents:
    def test_host_loss_run_keeps_corr_and_logs_lifecycle(
            self, tmp_path):
        """One injected host kill: every partition of the final
        (re-placed) run still echoes the original corr id, and the
        log shows deploys on both placements, exactly one death, and
        the re-placement."""
        path = tmp_path / "ev.jsonl"
        corr = mint_corr_id()
        log = EventLog(path)

        def build():
            sim = build_star_sim(3)
            sim.corr_id = corr
            sim.events = log
            return sim

        manager = FarmManager(build, three_host_spec(),
                              checkpoint_every=100,
                              heartbeat_timeout=15.0,
                              host_faults={"h1": 5})
        report = manager.launch(CYCLES)
        log.close()
        assert report.supervisor.rollbacks == 1
        assert report.dead_hosts == ["h1"]

        # corr echoed from every worker of the completed placement
        parts = set(build_star_sim(3).partitions)
        assert set(manager.backend.last_worker_corr) == parts
        assert set(manager.backend.last_worker_corr.values()) \
            == {corr}

        deploys = list(read_events(path, corr=corr,
                                   kinds=[EV_HOST_DEPLOY]))
        deaths = list(read_events(path, corr=corr,
                                  kinds=[EV_HOST_DEATH]))
        replaces = list(read_events(path, corr=corr,
                                    kinds=[EV_HOST_REPLACE]))
        # both placements deployed agents; h1 died once; one re-place
        assert {e["host"] for e in deploys} >= {"h0", "h1", "h2"}
        assert [e["host"] for e in deaths] == ["h1"]
        assert len(replaces) == 1
        assert "h1" not in replaces[0]["hosts"]
        assert mp.active_children() == []

    def test_agent_forked_workers_log_spawn_with_host(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        corr = mint_corr_id()
        log = EventLog(path)

        def build():
            sim = build_star_sim(3)
            sim.corr_id = corr
            sim.events = log
            return sim

        manager = FarmManager(build, three_host_spec(),
                              heartbeat_timeout=15.0)
        manager.launch(CYCLES)
        log.close()
        spawns = list(read_events(path, corr=corr,
                                  kinds=["worker_spawn"]))
        parts = set(build_star_sim(3).partitions)
        assert {e["part"] for e in spawns} == parts
        # every spawn names the virtual host whose agent forked it
        assert all(e["host"].startswith("h") for e in spawns)
        assert all(e["backend"] == "farm" for e in spawns)


class TestFarmJobKind:
    def test_execute_config_farm_with_kill(self, tmp_path):
        """The service-facing path: a ``kind: farm`` job config with
        an injected host kill completes, reports backend ``farm``,
        and archives the corr id + per-partition echoes under
        ``obs``."""
        config = normalize_config({
            "kind": "farm",
            "circuit_text": print_circuit(make_star_circuit(3)),
            "extract": ["leaf0", "leaf1", "leaf2"],
            "hosts": {"hosts": [{"name": "h0", "cores": 2},
                                {"name": "h1", "cores": 2},
                                {"name": "h2", "cores": 4}]},
            "cycles": CYCLES,
            "kill_host": "h1", "kill_at_pass": 5,
        })
        corr = mint_corr_id()
        log = EventLog(tmp_path / "ev.jsonl")
        outcome = execute_config(config, corr_id=corr, events=log)
        log.close()
        assert outcome.backend == "farm"
        farm = outcome.extra["farm"]
        assert farm["dead_hosts"] == ["h1"]
        assert len(farm["placements"]) == 2
        obs = outcome.extra["obs"]
        assert obs["corr_id"] == corr
        assert set(obs["worker_corr"].values()) == {corr}
        deaths = list(read_events(tmp_path / "ev.jsonl", corr=corr,
                                  kinds=[EV_HOST_DEATH]))
        assert [e["host"] for e in deaths] == ["h1"]
