"""End-to-end farm runs: multi-host bit-identity, whole-host loss
recovery, and registry archival.

Host capacities are sized so the 4-partition star design *cannot* fit
on one host — every run here genuinely spans virtual hosts and moves
cross-host tokens over sockets.  The kill trigger fires at a low
wavefront pass so the loss lands inside the first checkpoint segment.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.errors import HostDeadError, PlacementError
from repro.farm import FarmBackend, FarmManager, FarmSpec, HostSpec
from repro.parallel import fork_available, socket_available
from repro.telemetry import RunRegistry

from ..parallel.conftest import build_star_sim

CYCLES = 300

pytestmark = pytest.mark.skipif(
    not (fork_available() and socket_available()),
    reason="farm runs need fork + sockets")


def two_host_spec():
    return FarmSpec([HostSpec("h0", cores=2), HostSpec("h1", cores=2)])


def three_host_spec():
    return FarmSpec([HostSpec("h0", cores=2), HostSpec("h1", cores=2),
                     HostSpec("h2", cores=4)])


class TestFarmBackend:
    def test_two_host_run_bit_identical_to_inproc(self):
        reference = build_star_sim(3).run(CYCLES, backend="inproc")
        backend = FarmBackend(two_host_spec())
        sim = build_star_sim(3)
        result = backend.run(sim, CYCLES)
        assert result.detail == reference.detail
        assert sim.last_run_backend == "farm"
        assert len(backend.last_placement.hosts_used()) == 2
        assert mp.active_children() == []

    def test_per_host_fmr_collected(self):
        backend = FarmBackend(two_host_spec())
        backend.run(build_star_sim(3), CYCLES)
        assert sorted(backend.last_host_fmr) == ["h0", "h1"]
        for components in backend.last_host_fmr.values():
            assert "compute" in components
            assert all(v >= 0.0 for v in components.values())

    def test_colocation_survives_into_the_run(self):
        backend = FarmBackend(three_host_spec(),
                              colocate=[["fpga1", "fpga2"]])
        result = backend.run(build_star_sim(3), CYCLES)
        placed = backend.last_placement.assignment
        assert placed["fpga1"] == placed["fpga2"]
        reference = build_star_sim(3).run(CYCLES, backend="inproc")
        assert result.detail == reference.detail

    def test_infeasible_farm_raises_placement_error(self):
        backend = FarmBackend(FarmSpec([HostSpec("h0", cores=1)]))
        with pytest.raises(PlacementError):
            backend.run(build_star_sim(3), CYCLES)

    def test_host_kill_raises_host_dead_and_marks_spec(self):
        spec = two_host_spec()
        backend = FarmBackend(spec, host_faults={"h1": 5},
                              heartbeat_timeout=15.0)
        with pytest.raises(HostDeadError) as err:
            backend.run(build_star_sim(3), CYCLES)
        assert err.value.host == "h1"
        assert not spec.hosts["h1"].alive
        assert [h.name for h in spec.live_hosts()] == ["h0"]
        assert mp.active_children() == []


class TestFarmManager:
    def test_host_loss_rolls_back_onto_survivors(self, tmp_path):
        """The acceptance demo: a ≥3-partition target across ≥2
        virtual hosts survives one injected host kill via checkpoint
        rollback + re-placement, stays bit-identical, and archives
        placement + per-host FMR."""
        reference = build_star_sim(3).run(CYCLES, backend="inproc")
        spec = three_host_spec()
        manager = FarmManager(
            lambda: build_star_sim(3), spec,
            checkpoint_every=100, heartbeat_timeout=15.0,
            host_faults={"h1": 5})
        registry = RunRegistry(tmp_path / "runs")
        report = manager.launch(CYCLES, registry=registry,
                                run_name="loss-demo")

        assert report.result.detail == reference.detail
        assert report.supervisor.rollbacks == 1
        kinds = report.supervisor.event_kinds()
        assert "stall" in kinds and "rollback" in kinds
        assert kinds[-1] == "complete"

        assert report.dead_hosts == ["h1"]
        assert "h1" not in report.live_hosts
        # the re-placement after the loss avoided the dead host
        assert len(report.placements) == 2
        assert "h1" in report.placements[0].hosts_used()
        assert "h1" not in report.placements[-1].hosts_used()

        record = registry.load(str(report.archive_path))
        assert record["backend"] == "farm"
        farm = record["farm"]
        assert farm["rollbacks"] == 1
        assert farm["dead_hosts"] == ["h1"]
        assert len(farm["placements"]) == 2
        assert farm["host_fmr"]
        for components in farm["host_fmr"].values():
            assert "compute" in components
        assert mp.active_children() == []

    def test_clean_launch_archives_single_placement(self, tmp_path):
        manager = FarmManager(lambda: build_star_sim(3),
                              two_host_spec(), checkpoint_every=100)
        registry = RunRegistry(tmp_path / "runs")
        report = manager.launch(CYCLES, registry=registry)
        assert report.supervisor.rollbacks == 0
        assert len(report.placements) == 1
        assert report.dead_hosts == []
        record = registry.load(str(report.archive_path))
        assert record["farm"]["live_hosts"] == ["h0", "h1"]

    def test_plan_places_without_running(self):
        manager = FarmManager(lambda: build_star_sim(3),
                              two_host_spec())
        placement = manager.plan()
        assert sorted(placement.assignment) == \
            ["base", "fpga1", "fpga2", "fpga3"]
        assert len(placement.hosts_used()) == 2
        assert mp.active_children() == []
