"""Placement passes: feasibility, determinism, and the hypothesis
property that capacity and co-location are never violated."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.farm import FarmSpec, HostSpec, place
from repro.farm.placement import _merge_groups


def farm(*cores, links=None, default="ethernet"):
    return FarmSpec([HostSpec(f"h{i}", cores=c)
                     for i, c in enumerate(cores)],
                    default_link=default, links=links or {})


class TestFeasibility:
    def test_no_partitions_rejected(self):
        with pytest.raises(PlacementError, match="nothing to place"):
            place([], [], farm(4))

    def test_no_live_hosts_rejected(self):
        spec = farm(4)
        spec.mark_dead("h0")
        with pytest.raises(PlacementError, match="no live hosts"):
            place(["a"], [], spec)

    def test_over_capacity_rejected(self):
        with pytest.raises(PlacementError, match="exceed the farm"):
            place(["a", "b", "c"], [], farm(1, 1))

    def test_group_larger_than_any_host_rejected(self):
        with pytest.raises(PlacementError, match="largest live host"):
            place(["a", "b", "c"], [], farm(2, 2),
                  colocate=[["a", "b", "c"]])

    def test_unknown_link_partition_rejected(self):
        with pytest.raises(PlacementError, match="unknown"):
            place(["a"], [("a", "ghost", 8)], farm(4))

    def test_unknown_colocate_member_rejected(self):
        with pytest.raises(PlacementError, match="unknown partition"):
            place(["a"], [], farm(4), colocate=[["a", "ghost"]])


class TestMergeGroups:
    def test_overlapping_groups_merge(self):
        groups = _merge_groups(
            ["a", "b", "c", "d"], [["a", "b"], ["b", "c"]])
        assert groups == [["a", "b", "c"], ["d"]]

    def test_disjoint_groups_stay_apart(self):
        groups = _merge_groups(
            ["a", "b", "c", "d"], [["a", "b"], ["c", "d"]])
        assert groups == [["a", "b"], ["c", "d"]]


class TestOptimizer:
    def test_chatty_pair_shares_a_host(self):
        """Two heavily-linked partitions land together when a host has
        room; the third (unlinked) partition is placed anywhere."""
        links = [("a", "b", 64), ("b", "a", 64)]
        placement = place(["a", "b", "c"], links, farm(2, 2))
        assert placement.assignment["a"] == placement.assignment["b"]
        assert placement.cut_cost_ns == 0.0 or \
            placement.assignment["c"] != placement.assignment["a"]

    def test_cheap_link_class_attracts_the_cut(self):
        """When the cut is forced, it lands on the cheapest host
        pair: the qsfp-cabled pair beats the ethernet default."""
        links = [("a", "b", 64), ("b", "c", 64), ("c", "a", 64)]
        spec = farm(2, 1, 1, links={("h0", "h1"): "qsfp"})
        placement = place(["a", "b", "c"], links, spec)
        used = placement.hosts_used()
        assert "h0" in used and "h1" in used
        assert "h2" not in used

    def test_deterministic(self):
        links = [("a", "b", 16), ("b", "c", 32), ("c", "d", 8)]
        spec = farm(2, 2, 2)
        first = place(["a", "b", "c", "d"], links, spec)
        for _ in range(3):
            again = place(["a", "b", "c", "d"], links, spec)
            assert again.assignment == first.assignment
            assert again.cut_cost_ns == first.cut_cost_ns

    def test_colocation_beats_traffic(self):
        """A co-location constraint wins over the cut optimizer: the
        group stays whole even when splitting it would be cheaper."""
        links = [("a", "x", 64), ("b", "y", 64)]
        placement = place(["a", "b", "x", "y"], links, farm(2, 2),
                          colocate=[["a", "b"]])
        assert placement.assignment["a"] == placement.assignment["b"]
        assert ["a", "b"] in placement.groups


names_st = st.integers(min_value=1, max_value=8).map(
    lambda n: [f"p{i}" for i in range(n)])


@st.composite
def placement_case(draw):
    names = draw(names_st)
    cores = draw(st.lists(st.integers(min_value=1, max_value=4),
                          min_size=1, max_size=4))
    n_links = draw(st.integers(min_value=0, max_value=10))
    links = [(names[draw(st.integers(0, len(names) - 1))],
              names[draw(st.integers(0, len(names) - 1))],
              draw(st.sampled_from([8, 16, 64, 128])))
             for _ in range(n_links)]
    links = [(a, b, w) for a, b, w in links if a != b]
    n_groups = draw(st.integers(min_value=0, max_value=2))
    colocate = [draw(st.lists(st.sampled_from(names), min_size=2,
                              max_size=min(4, len(names)),
                              unique=True))
                for _ in range(n_groups)] if len(names) >= 2 else []
    return names, cores, links, colocate


class TestPlacementProperty:
    @settings(max_examples=120, deadline=None)
    @given(placement_case())
    def test_capacity_and_colocation_always_hold(self, case):
        """For every generated farm: either placement raises a typed
        PlacementError, or the assignment (a) maps every partition to
        a live host, (b) never exceeds any host's core budget, and
        (c) never splits a co-location group."""
        names, cores, links, colocate = case
        spec = farm(*cores)
        try:
            placement = place(names, links, spec, colocate=colocate)
        except PlacementError:
            return
        budgets = {h.name: h.cores for h in spec.live_hosts()}
        assert sorted(placement.assignment) == sorted(names)
        for host, parts in placement.by_host().items():
            assert host in budgets
            assert len(parts) <= budgets[host]
        for group in colocate:
            hosts = {placement.assignment[m] for m in group}
            assert len(hosts) == 1, (group, placement.assignment)
