"""Farm host manifests: validation and JSON round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.errors import FarmError
from repro.farm import DEFAULT_LINK_CLASS, FarmSpec, HostSpec
from repro.platform import ETHERNET_100G, QSFP_AURORA


def two_hosts():
    return [HostSpec("h0", cores=2), HostSpec("h1", cores=4)]


class TestValidation:
    def test_empty_farm_rejected(self):
        with pytest.raises(FarmError, match="at least one host"):
            FarmSpec([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FarmError, match="duplicate"):
            FarmSpec([HostSpec("h0"), HostSpec("h0")])

    def test_zero_cores_rejected(self):
        with pytest.raises(FarmError, match="cores must be >= 1"):
            FarmSpec([HostSpec("h0", cores=0)])

    def test_unknown_default_link_rejected(self):
        with pytest.raises(FarmError, match="unknown default link"):
            FarmSpec(two_hosts(), default_link="carrier-pigeon")

    def test_link_to_unknown_host_rejected(self):
        with pytest.raises(FarmError, match="unknown host"):
            FarmSpec(two_hosts(), links={("h0", "ghost"): "qsfp"})

    def test_self_link_rejected(self):
        with pytest.raises(FarmError, match="itself"):
            FarmSpec(two_hosts(), links={("h0", "h0"): "qsfp"})

    def test_unknown_link_class_rejected(self):
        with pytest.raises(FarmError, match="unknown class"):
            FarmSpec(two_hosts(), links={("h0", "h1"): "telepathy"})


class TestQueries:
    def test_link_class_is_unordered_and_defaults(self):
        spec = FarmSpec(two_hosts(), links={("h1", "h0"): "qsfp"})
        assert spec.link_class("h0", "h1") == "qsfp"
        assert spec.link_class("h1", "h0") == "qsfp"
        assert spec.link_model("h0", "h1") is QSFP_AURORA
        spec2 = FarmSpec(two_hosts())
        assert spec2.link_class("h0", "h1") == DEFAULT_LINK_CLASS
        assert spec2.link_model("h0", "h1") is ETHERNET_100G

    def test_mark_dead_excludes_from_live(self):
        spec = FarmSpec(two_hosts())
        assert [h.name for h in spec.live_hosts()] == ["h0", "h1"]
        assert spec.total_cores() == 6
        spec.mark_dead("h0")
        assert [h.name for h in spec.live_hosts()] == ["h1"]
        assert spec.total_cores() == 4


class TestSerialization:
    def test_round_trip(self, tmp_path):
        spec = FarmSpec(two_hosts(), default_link="ethernet",
                        links={("h0", "h1"): "qsfp"})
        path = tmp_path / "hosts.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = FarmSpec.from_file(path)
        assert loaded.to_dict() == spec.to_dict()

    def test_bare_string_hosts_accepted(self):
        spec = FarmSpec.from_dict({"hosts": ["h0", "h1"]})
        assert sorted(spec.hosts) == ["h0", "h1"]
        assert spec.hosts["h0"].cores == 4  # the default budget

    def test_wrong_format_rejected(self):
        with pytest.raises(FarmError, match="not a farm host spec"):
            FarmSpec.from_dict({"format": "something-else"})

    def test_bad_host_entry_rejected(self):
        with pytest.raises(FarmError, match="needs a 'name'"):
            FarmSpec.from_dict({"hosts": [{"cores": 4}]})

    def test_bad_link_entry_rejected(self):
        with pytest.raises(FarmError, match="needs 'a', 'b'"):
            FarmSpec.from_dict({"hosts": ["h0", "h1"],
                                "links": [{"a": "h0"}]})

    def test_unreadable_file_reports_path(self, tmp_path):
        with pytest.raises(FarmError, match="cannot read host spec"):
            FarmSpec.from_file(tmp_path / "missing.json")

    def test_example_manifest_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] \
            / "examples" / "farm_hosts.json"
        spec = FarmSpec.from_file(example)
        assert len(spec.live_hosts()) >= 2
        assert spec.link_class("xcl0", "xcl1") == "qsfp"
