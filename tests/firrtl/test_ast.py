"""AST node construction and validation."""

import pytest

from repro.errors import IRError
from repro.firrtl.ast import (
    Connect,
    DefMemory,
    DefRegister,
    InstPort,
    Lit,
    LocalTarget,
    Port,
    PrimOp,
    Ref,
)


class TestLit:
    def test_value_fits(self):
        assert Lit(255, 8).value == 255

    def test_value_too_big(self):
        with pytest.raises(IRError):
            Lit(256, 8)

    def test_negative_rejected(self):
        with pytest.raises(IRError):
            Lit(-1, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(IRError):
            Lit(0, 0)

    def test_str(self):
        assert str(Lit(3, 4)) == "UInt<4>(3)"


class TestPrimOp:
    def test_unknown_op(self):
        with pytest.raises(IRError):
            PrimOp("frobnicate", (Lit(1, 1),), 1)

    def test_wrong_arity(self):
        with pytest.raises(IRError):
            PrimOp("add", (Lit(1, 1),), 2)

    def test_refs_traversal(self):
        expr = PrimOp("add", (Ref("a", 8), PrimOp("not", (Ref("b", 8),), 8)),
                      9)
        names = sorted(str(r) for r in expr.refs())
        assert names == ["a", "b"]

    def test_inst_port_in_refs(self):
        expr = PrimOp("and", (InstPort("q", "deq", 4), Lit(1, 4)), 4)
        leaves = list(expr.refs())
        assert len(leaves) == 1
        assert leaves[0].inst == "q"


class TestPort:
    def test_direction_validation(self):
        with pytest.raises(IRError):
            Port("p", "inout", 1)

    def test_zero_width(self):
        with pytest.raises(IRError):
            Port("p", "input", 0)

    def test_is_input(self):
        assert Port("p", "input", 1).is_input
        assert not Port("p", "output", 1).is_input


class TestRegisterAndMemory:
    def test_register_init_fits(self):
        assert DefRegister("r", 4, init=15).init == 15

    def test_register_init_too_big(self):
        with pytest.raises(IRError):
            DefRegister("r", 4, init=16)

    def test_memory_bad_shape(self):
        with pytest.raises(IRError):
            DefMemory("m", 0, 8)

    def test_memory_init_too_long(self):
        with pytest.raises(IRError):
            DefMemory("m", 2, 8, init=(1, 2, 3))


class TestTargets:
    def test_local_target_str(self):
        assert str(LocalTarget("w")) == "w"

    def test_connect_holds_target(self):
        c = Connect(LocalTarget("w"), Lit(1, 1))
        assert str(c.target) == "w"
