"""Builder DSL: widths, coercion, connects, sugar."""

import pytest

from repro.errors import IRError
from repro.firrtl import ModuleBuilder, build_circuit, cat, mux
from repro.firrtl.ast import Lit, PrimOp
from repro.rtl import Simulator


def _sig(width=8, name="a"):
    b = ModuleBuilder("T")
    return b, b.input(name, width)


class TestWidthRules:
    def test_add_grows_one(self):
        _, a = _sig(8)
        assert (a + a).width == 9

    def test_sub_grows_one(self):
        _, a = _sig(8)
        assert (a - a).width == 9

    def test_mul_sums(self):
        _, a = _sig(8)
        assert (a * a).width == 16

    def test_bitwise_max(self):
        b = ModuleBuilder("T")
        a = b.input("a", 8)
        c = b.input("c", 4)
        assert (a & c).width == 8

    def test_compare_is_one(self):
        _, a = _sig(8)
        assert a.eq(3).width == 1
        assert a.lt(3).width == 1

    def test_cat_sums(self):
        b = ModuleBuilder("T")
        a = b.input("a", 8)
        c = b.input("c", 4)
        assert a.cat(c).width == 12

    def test_bits_range(self):
        _, a = _sig(8)
        assert a.bits(5, 2).width == 4
        with pytest.raises(IRError):
            a.bits(8, 0)

    def test_shl_shr(self):
        _, a = _sig(8)
        assert a.shl(3).width == 11
        assert a.shr(3).width == 5
        assert a.shr(20).width == 1

    def test_pad_and_fit(self):
        _, a = _sig(8)
        assert a.pad(12).width == 12
        assert a.pad(4).width == 8  # pad never shrinks
        assert a.fit(4).width == 4
        assert a.fit(12).width == 12

    def test_mux_pads_operands(self):
        b = ModuleBuilder("T")
        s = b.input("s", 1)
        a = b.input("a", 4)
        out = mux(s, a, 0)
        assert out.width == 4


class TestCoercion:
    def test_int_literal_uses_peer_width(self):
        _, a = _sig(8)
        expr = (a + 1).expr
        assert isinstance(expr, PrimOp)
        assert expr.args[1] == Lit(1, 8)

    def test_negative_literal_rejected(self):
        _, a = _sig(8)
        with pytest.raises(IRError):
            a + (-1)

    def test_bool_coerces(self):
        _, a = _sig(1)
        assert (a & True).width == 1


class TestConnect:
    def test_auto_truncate(self):
        b = ModuleBuilder("T")
        a = b.input("a", 8)
        out = b.output("o", 4)
        b.connect(out, a + 1)  # 9 bits -> 4
        m = b.build()
        connect = m.connects()[0]
        assert connect.expr.width == 4

    def test_auto_pad(self):
        b = ModuleBuilder("T")
        a = b.input("a", 2)
        out = b.output("o", 8)
        b.connect(out, a)
        assert b.build().connects()[0].expr.width == 8

    def test_cannot_drive_input(self):
        b = ModuleBuilder("T")
        a = b.input("a", 2)
        with pytest.raises(IRError):
            b.connect(a, 1)

    def test_duplicate_declaration(self):
        b = ModuleBuilder("T")
        b.wire("w", 1)
        with pytest.raises(IRError):
            b.reg("w", 1)


class TestReadyValidSugar:
    def test_rv_input_directions(self):
        b = ModuleBuilder("T")
        enq = b.rv_input("enq", 8)
        m_ports = {p.name: p.direction for p in b._ports}
        assert m_ports["enq_valid"] == "input"
        assert m_ports["enq_ready"] == "output"
        assert m_ports["enq_bits"] == "input"

    def test_rv_output_directions(self):
        b = ModuleBuilder("T")
        deq = b.rv_output("deq", 8)
        m_ports = {p.name: p.direction for p in b._ports}
        assert m_ports["deq_valid"] == "output"
        assert m_ports["deq_ready"] == "input"

    def test_fire_expression(self):
        b = ModuleBuilder("T")
        enq = b.rv_input("enq", 8)
        out = b.output("o", 1)
        b.connect(out, enq.fire())
        b.connect(enq.ready, 1)
        # fire = valid & ready should simulate correctly
        bits = b.output("bits_copy", 8)
        b.connect(bits, enq.bits)
        sim = Simulator(build_circuit(b))
        assert sim.step({"enq_valid": 1, "enq_bits": 5})["o"] == 1
        assert sim.step({"enq_valid": 0, "enq_bits": 5})["o"] == 0


class TestCatHelper:
    def test_multi_cat_order(self):
        b = ModuleBuilder("T")
        hi = b.input("hi", 4)
        lo = b.input("lo", 4)
        out = b.output("o", 8)
        b.connect(out, cat(hi.read(), lo.read()))
        sim = Simulator(build_circuit(b))
        assert sim.step({"hi": 0xA, "lo": 0x5})["o"] == 0xA5

    def test_empty_cat_rejected(self):
        with pytest.raises(IRError):
            cat()
