"""Analysis passes: check, comb deps, module DAG, connectivity."""

import pytest

from repro.errors import IRError
from repro.firrtl import ModuleBuilder, make_circuit, mux
from repro.firrtl.ast import (
    Connect,
    DefInstance,
    LocalTarget,
    Lit,
    Port,
    Ref,
)
from repro.firrtl.circuit import Circuit, Module
from repro.firrtl.passes import (
    check_circuit,
    circuit_comb_deps,
    instance_adjacency,
    module_topo_order,
)
from repro.firrtl.passes.comb import classify_ports
from repro.firrtl.passes.connectivity import PARENT, connected_closure
from repro.firrtl.passes.moduledag import instance_counts
from repro.targets import make_comb_pair_circuit
from repro.targets.soc import make_ring_noc_soc


class TestCheck:
    def test_valid_circuit_passes(self, adder_pair_circuit):
        check_circuit(adder_pair_circuit)

    def test_undriven_output(self):
        m = Module("T", [Port("o", "output", 1)], [])
        with pytest.raises(IRError, match="never driven"):
            check_circuit(Circuit("T", [m]))

    def test_double_drive(self):
        m = Module("T", [Port("o", "output", 1)],
                   [Connect(LocalTarget("o"), Lit(0, 1)),
                    Connect(LocalTarget("o"), Lit(1, 1))])
        with pytest.raises(IRError, match="driven twice"):
            check_circuit(Circuit("T", [m]))

    def test_unknown_reference(self):
        m = Module("T", [Port("o", "output", 1)],
                   [Connect(LocalTarget("o"), Ref("ghost", 1))])
        with pytest.raises(IRError, match="undeclared"):
            check_circuit(Circuit("T", [m]))

    def test_width_mismatch_reference(self):
        m = Module("T", [Port("a", "input", 4), Port("o", "output", 4)],
                   [Connect(LocalTarget("o"), Ref("a", 8))])
        with pytest.raises(IRError, match="width"):
            check_circuit(Circuit("T", [m]))

    def test_missing_instance_module(self):
        m = Module("T", [Port("o", "output", 1)],
                   [DefInstance("x", "Ghost"),
                    Connect(LocalTarget("o"), Lit(0, 1))])
        with pytest.raises(IRError):
            check_circuit(Circuit("T", [m]))


class TestCombDeps:
    def test_simple_comb(self, adder_pair_circuit):
        deps = circuit_comb_deps(adder_pair_circuit)
        assert deps["AddOne"]["y"] == frozenset({"a"})
        assert deps["Top"]["z"] == frozenset({"x"})

    def test_register_breaks_path(self, counter_circuit):
        deps = circuit_comb_deps(counter_circuit)
        assert deps["Counter"]["count"] == frozenset()

    def test_memory_read_is_comb(self):
        b = ModuleBuilder("M")
        addr = b.input("addr", 4)
        out = b.output("o", 8)
        m = b.mem("m", 16, 8)
        rd = b.mem_read(m, "rd", addr)
        b.connect(out, rd)
        deps = circuit_comb_deps(make_circuit(b.build(), []))
        assert deps["M"]["o"] == frozenset({"addr"})

    def test_mixed_deps_through_hierarchy(self):
        # child: y = a + b where a comes from parent reg, b from input
        cb = ModuleBuilder("Child")
        a = cb.input("a", 8)
        c = cb.input("c", 8)
        y = cb.output("y", 8)
        cb.connect(y, a + c)
        child = cb.build()

        b = ModuleBuilder("Parent")
        pin = b.input("pin", 8)
        pout = b.output("pout", 8)
        r = b.reg("r", 8)
        i = b.inst("i", child)
        b.connect(i["a"], r)  # registered path
        b.connect(i["c"], pin)  # comb path
        b.connect(pout, i["y"])
        b.connect(r, r + 1)
        deps = circuit_comb_deps(make_circuit(b.build(), [child]))
        assert deps["Parent"]["pout"] == frozenset({"pin"})

    def test_classify_ports_comb_pair(self):
        c = make_comb_pair_circuit()
        deps = circuit_comb_deps(c)
        left = c.module("CombLeft")
        roles = classify_ports(left, deps["CombLeft"])
        assert roles["sink_out"] == ["d"]
        assert roles["source_out"] == ["s"]
        assert roles["sink_in"] == ["a"]
        assert roles["source_in"] == ["e"]


class TestModuleDAG:
    def test_children_first(self, adder_pair_circuit):
        order = module_topo_order(adder_pair_circuit)
        assert order.index("AddOne") < order.index("Top")

    def test_recursion_detected(self):
        m = Module("Loop", [Port("o", "output", 1)],
                   [DefInstance("self", "Loop"),
                    Connect(LocalTarget("o"), Lit(0, 1))])
        with pytest.raises(IRError, match="recursive"):
            module_topo_order(Circuit("Loop", [m]))

    def test_instance_counts(self, adder_pair_circuit):
        counts = instance_counts(adder_pair_circuit)
        assert counts["AddOne"] == 2
        assert counts["Top"] == 1


class TestConnectivity:
    def test_adjacency_in_ring_soc(self):
        c = make_ring_noc_soc(2, messages_per_tile=2)
        adj = instance_adjacency(c.top_module)
        # converter i is wired to router i and tile i
        assert "router0" in adj["conv0"]
        assert "tile0" in adj["conv0"]
        # tiles only touch their converter
        assert adj["tile0"] == frozenset({"conv0"})
        # ring neighbors
        assert "router1" in adj["router0"]

    def test_closure_collects_tile_and_converter(self):
        c = make_ring_noc_soc(2, messages_per_tile=2)
        routers = {"router0", "router1", "router2"}
        selected = connected_closure(
            c.top_module, {"router0"}, routers - {"router0"})
        assert selected == {"router0", "conv0", "tile0"}

    def test_closure_respects_blockers(self):
        c = make_ring_noc_soc(3, messages_per_tile=2)
        routers = {f"router{i}" for i in range(4)}
        selected = connected_closure(
            c.top_module, {"router0", "router1"},
            routers - {"router0", "router1"})
        assert "tile2" not in selected
        assert {"conv0", "conv1", "tile0", "tile1"} <= selected
