"""Printer/parser round trips, including over real target circuits."""

import pytest

from repro.errors import IRError
from repro.firrtl import (
    ModuleBuilder,
    build_circuit,
    parse_circuit,
    print_circuit,
)
from repro.rtl import Simulator
from repro.targets import make_comb_pair_circuit, make_queue
from repro.targets.accel import make_sha3_soc
from repro.firrtl import make_circuit


def _roundtrip(circuit):
    text = print_circuit(circuit)
    return parse_circuit(text), text


def _equivalent(c1, c2, inputs_seq, outputs, cycles=20):
    s1, s2 = Simulator(c1), Simulator(c2)
    for i in range(cycles):
        ins = inputs_seq(i)
        o1 = s1.step(ins)
        o2 = s2.step(ins)
        assert o1 == o2, f"cycle {i}: {o1} != {o2}"


class TestRoundTrip:
    def test_comb_pair(self):
        c = make_comb_pair_circuit()
        c2, text = _roundtrip(c)
        assert "circuit CombPairTop :" in text
        _equivalent(c, c2, lambda i: {}, ["x_obs", "y_obs"])

    def test_queue(self):
        q = make_queue(8, depth=4)
        c = make_circuit(q, [])
        c2, _ = _roundtrip(c)
        _equivalent(c, c2,
                    lambda i: {"enq_valid": i % 2, "enq_bits": i & 0xFF,
                               "deq_ready": (i >> 1) % 2},
                    ["deq_valid", "deq_bits", "enq_ready"])

    def test_sha3_soc_with_memories(self):
        c = make_sha3_soc(8, 4)
        c2, text = _roundtrip(c)
        assert "mem " in text and "init [" in text
        _equivalent(c, c2, lambda i: {}, ["done", "digest"], cycles=60)

    def test_double_roundtrip_stable(self):
        c = make_comb_pair_circuit()
        text1 = print_circuit(c)
        text2 = print_circuit(parse_circuit(text1))
        assert text1 == text2


class TestParserErrors:
    def test_missing_header(self):
        with pytest.raises(IRError):
            parse_circuit("module Foo :\n")

    def test_unknown_reference(self):
        text = ("circuit T :\n"
                "  module T :\n"
                "    output o : UInt<1>\n"
                "    o <= ghost\n")
        with pytest.raises(IRError):
            parse_circuit(text)

    def test_garbage_line(self):
        text = ("circuit T :\n"
                "  module T :\n"
                "    output o : UInt<1>\n"
                "    o <= UInt<1>(0)\n"
                "    banana banana\n")
        with pytest.raises(IRError):
            parse_circuit(text)

    def test_prim_with_params(self):
        text = ("circuit T :\n"
                "  module T :\n"
                "    input a : UInt<8>\n"
                "    output o : UInt<4>\n"
                "    o <= bits(a, 5, 2)\n")
        c = parse_circuit(text)
        sim = Simulator(c)
        assert sim.step({"a": 0b00111100})["o"] == 0b1111
