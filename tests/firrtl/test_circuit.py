"""Module and Circuit container behaviour."""

import pytest

from repro.errors import IRError
from repro.firrtl import ModuleBuilder, make_circuit
from repro.firrtl.circuit import Circuit, Module


def _leaf(name="Leaf"):
    b = ModuleBuilder(name)
    a = b.input("a", 4)
    y = b.output("y", 4)
    b.connect(y, a + 1)
    return b.build()


def _two_level():
    leaf = _leaf()
    mid = ModuleBuilder("Mid")
    a = mid.input("a", 4)
    y = mid.output("y", 4)
    i = mid.inst("inner", leaf)
    mid.connect(i["a"], a)
    mid.connect(y, i["y"])
    mid_m = mid.build()

    top = ModuleBuilder("Top")
    a2 = top.input("a", 4)
    y2 = top.output("y", 4)
    m = top.inst("middle", mid_m)
    top.connect(m["a"], a2)
    top.connect(y2, m["y"])
    return make_circuit(top.build(), [mid_m, leaf])


class TestModule:
    def test_port_lookup(self):
        m = _leaf()
        assert m.port("a").width == 4
        with pytest.raises(IRError):
            m.port("nope")

    def test_signal_width(self):
        m = _leaf()
        assert m.signal_width("y") == 4
        assert m.try_signal_width("missing") is None

    def test_fresh_name(self):
        m = _leaf()
        assert m.fresh_name("a") == "a_0"
        assert m.fresh_name("brand_new") == "brand_new"

    def test_connect_map_duplicate(self):
        m = _leaf()
        m.stmts.append(m.stmts[-1])  # duplicate the connect
        with pytest.raises(IRError):
            m.connect_map()


class TestCircuit:
    def test_missing_top(self):
        with pytest.raises(IRError):
            Circuit("Ghost", [_leaf()])

    def test_duplicate_module(self):
        with pytest.raises(IRError):
            Circuit("Leaf", [_leaf(), _leaf()])

    def test_instance_paths(self):
        c = _two_level()
        assert c.instance_paths("Leaf") == ["middle.inner"]
        assert c.instance_paths("Mid") == ["middle"]

    def test_resolve_path(self):
        c = _two_level()
        inst = c.resolve_path("middle.inner")
        assert inst.module == "Leaf"
        with pytest.raises(IRError):
            c.resolve_path("middle.bogus")

    def test_parent_of(self):
        c = _two_level()
        assert c.parent_of("middle.inner").name == "Mid"
        assert c.parent_of("middle").name == "Top"

    def test_clone_is_deep(self):
        c = _two_level()
        clone = c.clone()
        clone.module("Leaf").ports.append(
            _leaf("Other").ports[0])
        assert len(c.module("Leaf").ports) == 2

    def test_remove_unreachable(self):
        c = _two_level()
        c.add_module(_leaf("Orphan"))
        c.remove_unreachable()
        assert "Orphan" not in c.modules
        assert set(c.modules) == {"Top", "Mid", "Leaf"}

    def test_stats(self):
        c = _two_level()
        stats = c.stats()
        assert stats["modules"] == 3
        assert stats["instances"] == 2
        assert stats["connects"] == 5


class TestMakeCircuit:
    def test_missing_library_module(self):
        leaf = _leaf()
        b = ModuleBuilder("Top")
        out = b.output("o", 4)
        i = b.inst("x", leaf)
        b.connect(i["a"], 0)
        b.connect(out, i["y"])
        top = b.build()
        with pytest.raises(IRError):
            make_circuit(top, [])  # leaf not provided

    def test_ignores_unrelated(self):
        leaf = _leaf()
        unrelated = _leaf("Unused")
        b = ModuleBuilder("Top")
        out = b.output("o", 4)
        i = b.inst("x", leaf)
        b.connect(i["a"], 0)
        b.connect(out, i["y"])
        c = make_circuit(b.build(), [leaf, unrelated])
        assert "Unused" not in c.modules
