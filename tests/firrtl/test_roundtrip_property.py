"""Property: random circuits survive printer -> parser round trips with
identical simulation behaviour, and the compiled engine matches the
interpreter on them."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.firrtl import (
    ModuleBuilder,
    make_circuit,
    mux,
    parse_circuit,
    print_circuit,
)
from repro.rtl import Simulator

WIDTH = 8

_BIN = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a & b,
    lambda a, b: a | b,
    lambda a, b: a ^ b,
    lambda a, b: (a * b).trunc(WIDTH),
    lambda a, b: a.cat(b).trunc(WIDTH),
    lambda a, b: mux(a.eq(b), a, b),
    lambda a, b: a.dshr(b.bits(2, 0)),
]

node_spec = st.tuples(st.integers(0, len(_BIN) - 1),
                      st.integers(0, 5), st.integers(0, 5))


@st.composite
def circuit_spec(draw):
    n_nodes = draw(st.integers(1, 8))
    nodes = [draw(node_spec) for _ in range(n_nodes)]
    n_regs = draw(st.integers(0, 2))
    reg_inits = [draw(st.integers(0, 255)) for _ in range(n_regs)]
    mem = draw(st.booleans())
    return nodes, reg_inits, mem


def build(spec):
    nodes, reg_inits, with_mem = spec
    b = ModuleBuilder("Rand")
    a = b.input("a", WIDTH)
    bb = b.input("b", WIDTH)
    out = b.output("o", WIDTH)
    pool = [a.read(), bb.read()]
    regs = []
    for i, init in enumerate(reg_inits):
        r = b.reg(f"r{i}", WIDTH, init=init)
        regs.append(r)
        pool.append(r.read())
    if with_mem:
        m = b.mem("m", 16, WIDTH, init=[3, 1, 4, 1, 5])
        rd = b.mem_read(m, "rd", a.read().bits(3, 0))
        b.mem_write(m, bb.read().bits(3, 0), a, a.read().bit(0))
        pool.append(rd)
    for i, (f, s0, s1) in enumerate(nodes):
        value = _BIN[f](pool[s0 % len(pool)],
                        pool[s1 % len(pool)]).fit(WIDTH)
        pool.append(b.node(f"n{i}", value))
    for i, r in enumerate(regs):
        b.connect(r, pool[(i + 3) % len(pool)])
    b.connect(out, pool[-1])
    return make_circuit(b.build(), [])


@given(spec=circuit_spec(),
       stimulus=st.lists(st.tuples(st.integers(0, 255),
                                   st.integers(0, 255)),
                         min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_behavior(spec, stimulus):
    circuit = build(spec)
    reparsed = parse_circuit(print_circuit(circuit))
    s1, s2 = Simulator(circuit), Simulator(reparsed)
    for a, bb in stimulus:
        assert s1.step({"a": a, "b": bb}) == s2.step({"a": a, "b": bb})


@given(spec=circuit_spec(),
       stimulus=st.lists(st.tuples(st.integers(0, 255),
                                   st.integers(0, 255)),
                         min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_compiled_engine_matches_interpreter(spec, stimulus):
    circuit = build(spec)
    compiled = Simulator(circuit, compiled=True)
    interp = Simulator(circuit, compiled=False)
    for a, bb in stimulus:
        assert compiled.step({"a": a, "b": bb}) \
            == interp.step({"a": a, "b": bb})
    assert compiled.env == interp.env
    assert compiled.mem_state == interp.mem_state
