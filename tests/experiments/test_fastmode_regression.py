"""Fast-mode cycle-count regression pins (Table II / Fig. 14 style).

Fast-mode trades cycle exactness for rate by seeding the boundary with
zero tokens (one injected register stage per crossing).  The resulting
cycle-count deviation is a *deterministic property of the target and
the partition point*, not noise — so this suite pins the exact measured
cycle counts.  A change here means the simulated dynamics changed:
deliberate (update the pins alongside the change) or a regression.

Measured bounds mirror the paper's qualitative ordering: the
memory-latency-bound Sha3 workload is the most fast-mode-sensitive
target, the compute-bound Gemmini and the Rocket boot stay within a few
percent.
"""

import pytest

from repro.experiments import table2
from repro.fireripper import EXACT, FAST
from repro.harness import cycle_count_error_pct

#: target name -> (monolithic, exact, fast) cycles until ``done``
PINNED_CYCLES = {
    "Rocket tile (boot)": (303, 303, 305),
    "Sha3Accel (encryption)": (47, 47, 55),
    "Gemmini (convolution)": (253, 253, 257),
}

#: the loosest acceptable fast-mode error per target (percent); the
#: pins above are well inside these, the bounds document the contract
ERROR_BOUNDS_PCT = {
    "Rocket tile (boot)": 2.0,
    "Sha3Accel (encryption)": 20.0,
    "Gemmini (convolution)": 3.0,
}


@pytest.fixture(scope="module")
def rows():
    return {row.name: row for row in table2.run()}


class TestExactMode:
    def test_exact_mode_has_zero_error(self, rows):
        for name, row in rows.items():
            assert row.exact_cycles == row.monolithic_cycles, name
            assert row.exact_error_pct == 0.0, name


class TestFastModePins:
    @pytest.mark.parametrize("name", sorted(PINNED_CYCLES))
    def test_cycle_counts_pinned(self, rows, name):
        mono, exact, fast = PINNED_CYCLES[name]
        row = rows[name]
        assert row.monolithic_cycles == mono
        assert row.exact_cycles == exact
        assert row.fast_cycles == fast

    @pytest.mark.parametrize("name,err_pct", [
        ("Rocket tile (boot)", 0.6601),
        ("Sha3Accel (encryption)", 17.0213),
        ("Gemmini (convolution)", 1.5810),
    ])
    def test_error_percentages(self, rows, name, err_pct):
        assert rows[name].fast_error_pct == pytest.approx(
            err_pct, abs=1e-3)

    def test_errors_within_documented_bounds(self, rows):
        for name, bound in ERROR_BOUNDS_PCT.items():
            assert rows[name].fast_error_pct <= bound, name

    def test_sha3_is_most_sensitive(self, rows):
        """The paper's ordering: the memory-latency-bound workload
        deviates the most under fast-mode's injected latency."""
        sha3 = rows["Sha3Accel (encryption)"].fast_error_pct
        others = [row.fast_error_pct for name, row in rows.items()
                  if name != "Sha3Accel (encryption)"]
        assert all(sha3 > other for other in others)

    def test_fast_mode_never_undershoots(self, rows):
        """Injected boundary latency can only delay ``done``."""
        for name, row in rows.items():
            assert row.fast_cycles >= row.monolithic_cycles, name


class TestErrorMetric:
    def test_cycle_count_error_pct_matches_pins(self):
        assert cycle_count_error_pct(303, 305) == pytest.approx(0.6601,
                                                                abs=1e-3)
        assert cycle_count_error_pct(47, 55) == pytest.approx(17.0213,
                                                              abs=1e-3)

    def test_modes_are_distinct(self):
        assert EXACT != FAST
