"""The experiment runner CLI."""

from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, main, select


class TestSelection:
    def test_all_registered(self):
        expected = {"table1", "table2", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "fig14",
                    "casestudy_24core", "casestudy_gc40", "reliability"}
        assert set(EXPERIMENTS) == expected

    def test_prefix_matching(self):
        assert select(["fig1"]) == ["fig10", "fig11", "fig12", "fig13",
                                    "fig14"]
        assert select(["table"]) == ["table1", "table2"]
        assert select([]) == list(EXPERIMENTS)
        assert select(["nomatch"]) == []

    def test_unknown_pattern_exit_code(self, capsys):
        assert main(["nomatch"]) == 2

    def test_writes_output_files(self, tmp_path, capsys):
        rc = main(["table1", "--out", str(tmp_path)])
        assert rc == 0
        text = (tmp_path / "table1.txt").read_text()
        assert "Issue width" in text


class TestProfileFlag:
    def test_profile_appends_host_time_summary(self, tmp_path, capsys):
        rc = main(["table2", "--profile", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[profile]" in out
        assert "partitioned run(s)" in out
        assert "bottleneck:" in out
        # the summary also lands in the written artifact
        assert "[profile]" in (tmp_path / "table2.txt").read_text()

    def test_without_flag_no_summary(self, capsys):
        rc = main(["table2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[profile]" not in out
