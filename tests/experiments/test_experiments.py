"""Experiment harnesses reproduce the paper's claims (scaled down)."""

import pytest

from repro.experiments import (
    casestudy_24core,
    casestudy_gc40,
    fig7,
    fig9,
    fig10,
    fig11,
    fig13,
    fig14,
    reliability,
    table1,
    table2,
)
from repro.experiments.sweeps import fast_over_exact_speedup
from repro.fireripper import EXACT, FAST


class TestTable1:
    def test_parameters_match_paper(self):
        result = table1.run()
        by_name = {c.name: c for c in result.cores}
        assert by_name["Large BOOM"].issue_width == 3
        assert by_name["GC40 BOOM"].rob_entries == 216
        assert by_name["GC Xeon"].ld_queue == 192

    def test_area_model_close_to_published(self):
        result = table1.run()
        for name, modeled in result.modeled_area_mm2.items():
            published = result.published_area_mm2[name]
            assert abs(modeled - published) / published < 0.05

    def test_format(self):
        text = table1.format_table(table1.run())
        assert "Issue width" in text and "GC40 BOOM" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.run()

    def test_exact_mode_no_error(self, rows):
        for row in rows:
            assert row.exact_error_pct == 0.0, row.name

    def test_fast_mode_small_nonzero_error(self, rows):
        for row in rows:
            assert 0.0 < row.fast_error_pct < 25.0, row.name

    def test_sha3_most_sensitive(self, rows):
        by_name = {r.name: r for r in rows}
        sha3 = by_name["Sha3Accel (encryption)"]
        for name, row in by_name.items():
            if name != sha3.name:
                assert sha3.fast_error_pct > row.fast_error_pct

    def test_format_marks_no_error(self, rows):
        text = table2.format_table(rows)
        assert "No Error" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7.run(n_instr=12_000)

    def test_gc40_wins_everywhere(self, rows):
        for row in rows:
            assert row.uplift_pct() > 0

    def test_average_uplift(self, rows):
        assert 10.0 < fig7.average_ipc_uplift_pct(rows) < 30.0

    def test_xeon_fastest_runtime(self, rows):
        for row in rows:
            assert row.runtime_ms["GC Xeon"] \
                <= row.runtime_ms["GC40 BOOM"] * 1.01


class TestSweeps:
    @pytest.fixture(scope="class")
    def qsfp_points(self):
        return fig11.run(widths=(128, 1500, 4500),
                         freqs_mhz=(10.0, 90.0), cycles=60)

    def test_rate_decreases_with_width(self, qsfp_points):
        for mode in (EXACT, FAST):
            series = sorted((p for p in qsfp_points
                             if p.mode == mode
                             and p.host_freq_mhz == 90.0),
                            key=lambda p: p.width_bits)
            rates = [p.measured_hz for p in series]
            assert rates == sorted(rates, reverse=True)

    def test_fast_advantage_fades_with_width(self, qsfp_points):
        narrow = fast_over_exact_speedup(qsfp_points, 128, 90.0)
        wide = fast_over_exact_speedup(qsfp_points, 4500, 90.0)
        assert narrow > wide

    def test_peak_near_paper(self, qsfp_points):
        assert 1.0 < fig11.peak_rate_mhz(qsfp_points) < 2.2  # ~1.6 MHz

    def test_analytic_close(self, qsfp_points):
        for p in qsfp_points:
            assert abs(p.measured_hz - p.predicted_hz) \
                / p.predicted_hz < 0.40


class TestFig13and14:
    def test_rate_declines_with_fpga_count(self):
        points = fig13.run(fpga_counts=(2, 4), freqs_mhz=(30.0,),
                           cycles=60)
        by_n = {p.n_fpgas: p.measured_hz for p in points}
        assert by_n[4] < by_n[2]

    def test_fame5_amortizes(self):
        points = fig14.run(tile_counts=(1, 3, 6),
                           soc_freqs_mhz=(20.0,), cycles=60)
        factor = fig14.degradation_factor(points, 20.0)
        assert factor < 2.3  # paper: < 2x (ours ~2.1x, conservative)
        by_n = {p.n_tiles: p.measured_hz for p in points}
        # tripling threads from 2x to 6x costs far less than 3x
        assert by_n[3] / by_n[6] < 1.5


class TestCaseStudies:
    def test_24core_headlines(self):
        result = casestudy_24core.run(mini_tiles=4, max_cycles=20_000)
        assert 0.3e6 < result.modeled_rate_hz < 1.0e6     # ~0.58 MHz
        assert 300 < result.speedup < 700                 # ~460x
        assert result.hours_to_bug_fireaxe < 2.0          # < 2 hours
        assert result.days_to_bug_software > 14           # "weeks"
        assert result.small_workload_ok_buggy
        assert result.bug_detected_buggy
        assert not result.bug_detected_fixed

    def test_gc40_headlines(self):
        result = casestudy_gc40.run(cosim_cycles=40)
        assert not result.monolithic_fits
        assert 0.55 < result.backend_util < 0.70          # ~63%
        assert 0.12 < result.frontend_util < 0.25         # ~18%
        assert result.boundary_bits > 7000
        assert 0.1e6 < result.modeled_rate_hz < 0.35e6    # ~0.2 MHz


class TestFig9and10Summaries:
    def test_fig9_crossover_exists(self):
        results = fig9.run(core_counts=(1, 8, 12), packets_per_core=120)
        n = fig9.crossover_core_count(results)
        assert n in (8, 12)

    def test_fig10_format(self):
        results = fig10.run(duration_ms=120.0)
        text = fig10.format_table(results)
        assert "GOMAXPROCS=1" in text


class TestReliabilityCurve:
    def test_degradation_curve(self):
        points = reliability.run(fault_rates=(0.0, 0.05, 0.2),
                                 cycles=100)
        assert all(p.bit_identical for p in points)
        by_rate = {p.fault_rate: p for p in points}
        assert by_rate[0.0].relative == 1.0
        assert by_rate[0.2].relative < by_rate[0.0].relative
        assert by_rate[0.2].retries > by_rate[0.05].retries
        assert by_rate[0.2].drops_recovered > 0

    def test_format(self):
        text = reliability.format_table(
            reliability.run(fault_rates=(0.0, 0.1), cycles=60))
        assert "fault rate" in text and "identical" in text
        assert "yes" in text and "NO" not in text
