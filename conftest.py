"""Repo-wide pytest configuration: the opt-in per-test watchdog.

Set ``REPRO_TEST_TIMEOUT`` (seconds) to fail any single test that
hangs — CI uses this for the process backend and the parallel
benchmarks, where a protocol bug would otherwise block on a pipe read
forever instead of failing.  SIGALRM-based, so main-thread/POSIX only;
unset (the default) it does nothing.
"""

from __future__ import annotations

import os
import signal

import pytest

_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")


@pytest.fixture(autouse=_TIMEOUT > 0 and hasattr(signal, "SIGALRM"))
def _per_test_timeout(request):
    def fail(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TIMEOUT:g}s "
            f"({request.node.nodeid})")

    previous = signal.signal(signal.SIGALRM, fail)
    signal.setitimer(signal.ITIMER_REAL, _TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
