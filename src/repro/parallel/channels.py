"""Inter-worker message layer for the process backend.

Workers exchange *effect frames*: one frame per (sender, pass) carrying
every cross-partition side effect that sender's pass produced for one
peer — token deliveries (with their modelled arrival times) and
consume-time records (the credit returns the peer's senders price their
credit stalls with).  Frames are the unit of ordering; bytes-on-the-wire
are batched:

* a :class:`FrameConduit` buffers outgoing frames and flushes them in
  one pickled message every ``flush_interval`` passes (or sooner, when
  the worker is about to block — a blocked worker always flushes first,
  which keeps the wavefront live),
* credit-based flow control bounds run-ahead: a sender may have at most
  ``window`` un-acknowledged passes outstanding per peer; receivers
  acknowledge the highest pass they have *applied* (piggybacked on
  their own frames, or standalone when the reverse direction is quiet).

The frame schedule — which pass of which peer a worker must apply
before its own pass ``k`` — lives in the worker loop; this module only
moves and accounts frames.

Control-plane messages (worker <-> coordinator) are plain tuples whose
first element names the kind; see the module docstrings of
``worker``/``coordinator`` for the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: (link index, dst key, packed token word, arrival ns, rx serdes ns)
Delivery = Tuple[int, Tuple[str, str], int, float, float]
#: (dst key, consume-time ns)
Credit = Tuple[Tuple[str, str], float]


@dataclass
class EffectFrame:
    """Every cross-partition effect of one sender pass, for one peer."""

    sender: str
    pass_no: int
    deliveries: List[Delivery] = field(default_factory=list)
    credits: List[Credit] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.deliveries and not self.credits


@dataclass
class MetricFrame:
    """Compact telemetry piggybacked on a worker's ``progress``
    control message (no extra pipes).

    Carries the sample points the worker's cycle-keyed sampler emitted
    since its previous report, plus the partition's current position.
    The coordinator uses these only to render live status (``repro
    watch``); the *authoritative* series ships once, in the worker's
    final state fragment, which is what gets merged into the parent's
    telemetry — so live reporting can never perturb the bit-identical
    result.
    """

    part: str
    frontier: int
    busy_ns: float
    #: new (target cycle, {metric: value}) points since the last frame
    samples: List[tuple] = field(default_factory=list)


class BaseConduit:
    """Outgoing half of one worker->peer frame stream: the batching
    buffer and the flow-control window, independent of the carrier.

    ``push`` is called once per pass; ``flush`` hands the buffered
    frames to the carrier-specific :meth:`_transmit` as one batch.
    ``ack`` piggybacks the highest peer pass this worker has applied
    (maintained by the inbox), so steady-state traffic needs no
    standalone acknowledgements.  Subclasses implement only how a
    batch and a standalone ack reach the wire — pipes, shared-memory
    rings and sockets all share this accounting (the third transport
    tier must not re-implement the first two's flow control).
    """

    def __init__(self, peer: str,
                 flush_interval: int = 16,
                 window: Optional[int] = None):
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        self.peer = peer
        self.flush_interval = flush_interval
        self.window = window if window is not None \
            else max(2 * flush_interval, 4)
        self.buffer: List[EffectFrame] = []
        #: highest own pass the peer has acknowledged applying
        self.acked_through = 0
        #: highest own pass pushed (buffered or sent)
        self.pushed_through = 0
        #: hook: returns the ack to piggyback (applied-through for peer)
        self.ack_source = lambda: 0
        #: messages actually written (for the batching benchmark)
        self.messages_sent = 0
        #: individual effects (deliveries + credits) those messages
        #: carried — per-token messaging would pay one message each
        self.effects_sent = 0

    def window_open(self, pass_no: int) -> bool:
        """May a frame for ``pass_no`` enter flight without waiting?"""
        return pass_no - self.acked_through <= self.window

    def push(self, frame: EffectFrame) -> None:
        """Buffer one pass frame; flushes on a full batch.  The caller
        must have confirmed :meth:`window_open` (blocking and draining
        acknowledgements first if it was not)."""
        self.buffer.append(frame)
        self.pushed_through = frame.pass_no
        self.effects_sent += len(frame.deliveries) + len(frame.credits)
        if len(self.buffer) >= self.flush_interval:
            self.flush()

    def flush(self) -> None:
        if not self.buffer:
            return
        batch = self.buffer
        self.buffer = []
        self._transmit(batch, self.ack_source())

    def note_ack(self, through_pass: int) -> None:
        if through_pass > self.acked_through:
            self.acked_through = through_pass

    def send_ack(self, through_pass: int) -> None:
        """Write a standalone acknowledgement (no frames attached)."""
        self._transmit_ack(through_pass)

    # -- carrier interface ---------------------------------------------------

    def _transmit(self, frames: List[EffectFrame], ack: int) -> None:
        raise NotImplementedError

    def _transmit_ack(self, through_pass: int) -> None:
        raise NotImplementedError


class FrameConduit(BaseConduit):
    """Pipe-backed conduit: batches travel as one pickled
    ``("frames", [...], ack)`` message per flush."""

    def __init__(self, conn, peer: str,
                 flush_interval: int = 16,
                 window: Optional[int] = None):
        super().__init__(peer, flush_interval=flush_interval,
                         window=window)
        self.conn = conn

    def _transmit(self, frames: List[EffectFrame], ack: int) -> None:
        self.conn.send(("frames", frames, ack))
        self.messages_sent += 1

    def _transmit_ack(self, through_pass: int) -> None:
        self.conn.send(("ack", through_pass))


class PackedConduit(BaseConduit):
    """Conduit over a bounded byte carrier speaking the packed binary
    record format (shared-memory rings, sockets).

    Batches are struct-coded by a ``FramePacker`` and written through
    the carrier-specific :meth:`_try_write`, which may refuse (full
    ring, backpressured socket).  A refused write blocks *politely*:
    the caller-supplied ``wait_step`` must keep the worker live (drain
    incoming transports, service the control pipe, surface aborts) and
    returns True when the write should be abandoned instead of retried
    — the peer is dead, or the run is finalizing past the stop fence
    and the remaining frames are empty service frames nobody will read.
    Both non-pipe tiers share this loop; only ``_try_write`` differs.
    """

    def __init__(self, peer: str, packer,
                 flush_interval: int = 16,
                 window: Optional[int] = None,
                 wait_step: Optional[Callable[[], bool]] = None):
        super().__init__(peer, flush_interval=flush_interval,
                         window=window)
        self.packer = packer
        self.wait_step = wait_step or (lambda: False)

    def _transmit(self, frames: List[EffectFrame], ack: int) -> None:
        self._write_blocking(self.packer.pack_frames(frames, ack))

    def _transmit_ack(self, through_pass: int) -> None:
        self._write_blocking(self.packer.pack_ack(through_pass))

    def _write_blocking(self, payload: bytes) -> None:
        while not self._try_write(payload):
            if self.wait_step():
                return  # abandoned: receiver no longer consumes
        self.messages_sent += 1

    # -- carrier interface ---------------------------------------------------

    def _try_write(self, payload: bytes) -> bool:
        """Accept one packed record, or False when the carrier is
        full (the record was NOT taken and may be retried)."""
        raise NotImplementedError


class FrameInbox:
    """Incoming half of one peer->worker frame stream.

    Holds frames keyed by pass number until the worker's schedule asks
    for them, and decides when a standalone acknowledgement is owed
    (the reverse conduit may be idle — e.g. a finished worker serving
    frames to a still-running peer).
    """

    def __init__(self, peer: str, ack_every: int = 8):
        self.peer = peer
        self.pending: Dict[int, EffectFrame] = {}
        self.applied_through = 0
        self.ack_every = max(1, ack_every)
        self._last_ack_sent = 0

    def offer(self, frames: List[EffectFrame]) -> None:
        for frame in frames:
            self.pending[frame.pass_no] = frame

    def has(self, pass_no: int) -> bool:
        return pass_no in self.pending

    def take(self, pass_no: int) -> EffectFrame:
        frame = self.pending.pop(pass_no)
        if frame.pass_no > self.applied_through:
            self.applied_through = frame.pass_no
        return frame

    def standalone_ack_due(self) -> Optional[int]:
        """Pass number to acknowledge out-of-band, or None."""
        if self.applied_through - self._last_ack_sent >= self.ack_every:
            return self.applied_through
        return None

    def note_ack_sent(self, through_pass: int) -> None:
        if through_pass > self._last_ack_sent:
            self._last_ack_sent = through_pass
