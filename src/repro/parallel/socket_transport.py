"""Socket transport tier for the process backend — the network rung.

FireAxe's platform table spans intra-FPGA, inter-FPGA and *network*
transports; this module gives the software reproduction the third rung.
Cross-partition frame batches travel as length-prefixed binary records
(the same :class:`~repro.parallel.shm.FramePacker` codec the shm tier
uses — lossless by construction, so the socket tier is bit-identical to
every other backend) over TCP or Unix-domain stream sockets:

* :func:`make_listeners` — the coordinator binds one rendezvous
  listener per partition that has a higher-order linked peer *before*
  forking, so children inherit live listening sockets and a connect can
  never race the bind.
* :func:`connect_with_backoff` — bounded exponential-backoff connect
  with a configurable deadline (``REPRO_SOCKET_CONNECT_TIMEOUT``);
  setup-time transients (a peer still forking) retry, a dead address
  raises :class:`~repro.errors.SocketSetupError`.
* :func:`establish_channels` — the worker-side rendezvous: connect to
  every lower-order socket peer (sending a hello record naming
  ourselves), then accept from every higher-order one (reading theirs).
  Connects complete against the listen backlog without the acceptor
  scheduling, so the two phases cannot deadlock across workers.
* :class:`SocketChannel` — one established peer stream.  Non-blocking
  both ways: ``drain`` reads whatever bytes are available and returns
  only *complete* records (partial reads simply stay buffered; a peer
  vanishing mid-frame surfaces as ``closed`` with the torn record
  discarded), writes stage into a bounded pending buffer so a slow
  peer backpressures the sender instead of growing memory.
* :class:`SocketConduit` — drop-in for
  :class:`~repro.parallel.channels.FrameConduit`, built on the shared
  :class:`~repro.parallel.channels.PackedConduit` wait-step/abandon
  protocol (the same one the shm tier uses; see ``channels``).

Unlike shared memory, sockets signal peer death natively (EOF /
``ECONNRESET``), so the socket transport needs no shadow data pipes —
which is exactly what lets the farm layer stretch it across (virtual)
hosts.  Selected via ``backend="process-socket"`` /
``REPRO_BACKEND=process-socket``; family via ``REPRO_SOCKET_FAMILY``
(``tcp`` default, ``unix`` for same-box runs).
"""

from __future__ import annotations

import os
import socket
import struct
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from ..errors import SocketSetupError
from .channels import PackedConduit

_LEN = struct.Struct("<I")

DEFAULT_CONNECT_TIMEOUT = 10.0
DEFAULT_READ_TIMEOUT = 30.0
#: staged-write cap: a peer this many bytes behind backpressures us
DEFAULT_MAX_PENDING = 1 << 20


def socket_available() -> bool:
    """True when stream sockets are usable on this host."""
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    except OSError:  # pragma: no cover - no loopback networking
        return False
    sock.close()
    return True


def socket_timeouts() -> Tuple[float, float]:
    """(connect, read) timeouts in seconds, environment-overridable."""
    connect = float(os.environ.get(
        "REPRO_SOCKET_CONNECT_TIMEOUT", "") or DEFAULT_CONNECT_TIMEOUT)
    read = float(os.environ.get(
        "REPRO_SOCKET_READ_TIMEOUT", "") or DEFAULT_READ_TIMEOUT)
    return connect, read


def resolve_family(name: str) -> int:
    if name == "tcp":
        return socket.AF_INET
    if name == "unix":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise SocketSetupError(
                "unix-domain sockets are unavailable on this platform")
        return socket.AF_UNIX
    raise SocketSetupError(
        f"unknown socket family {name!r} (tcp or unix)")


def _tune(sock: socket.socket) -> None:
    if sock.family == socket.AF_INET:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def make_listeners(owners: Dict[str, int], family_name: str,
                   directory: Optional[str] = None):
    """Bind one rendezvous listener per owner (pre-fork, so every
    child inherits it already listening).

    ``owners`` maps owner name -> expected connection count (the listen
    backlog).  Returns ``(listeners, addresses, tmpdir)`` where
    ``tmpdir`` is the created unix-socket directory to remove at
    cleanup (None for TCP).
    """
    family = resolve_family(family_name)
    tmpdir = None
    if family != socket.AF_INET and directory is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-sock-")
        directory = tmpdir
    listeners: Dict[str, socket.socket] = {}
    addresses: Dict[str, object] = {}
    try:
        for owner, backlog in owners.items():
            sock = socket.socket(family, socket.SOCK_STREAM)
            if family == socket.AF_INET:
                sock.bind(("127.0.0.1", 0))
                addresses[owner] = sock.getsockname()
            else:
                path = os.path.join(directory, f"{owner}.sock")
                sock.bind(path)
                addresses[owner] = path
            sock.listen(max(1, backlog))
            listeners[owner] = sock
    except OSError as exc:
        for sock in listeners.values():
            sock.close()
        raise SocketSetupError(f"cannot bind rendezvous listener: {exc}")
    return listeners, addresses, tmpdir


def connect_with_backoff(family: int, address,
                         timeout: Optional[float] = None
                         ) -> socket.socket:
    """Connect, retrying with bounded exponential backoff until
    ``timeout`` (default ``REPRO_SOCKET_CONNECT_TIMEOUT``) elapses."""
    if timeout is None:
        timeout = socket_timeouts()[0]
    deadline = time.monotonic() + timeout
    delay = 0.001
    last: Optional[OSError] = None
    while True:
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.settimeout(max(0.05, min(1.0, timeout)))
            sock.connect(address)
            _tune(sock)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            sock.close()
            last = exc
            if time.monotonic() + delay > deadline:
                raise SocketSetupError(
                    f"cannot connect to {address!r} within "
                    f"{timeout:g}s: {last}")
            time.sleep(delay)
            delay = min(delay * 2, 0.25)


def _send_hello(sock: socket.socket, name: str, timeout: float) -> None:
    payload = name.encode()
    sock.settimeout(timeout)
    try:
        sock.sendall(_LEN.pack(len(payload)) + payload)
    except OSError as exc:
        raise SocketSetupError(f"hello send to peer failed: {exc}")
    finally:
        sock.settimeout(None)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    got = bytearray()
    while len(got) < n:
        chunk = sock.recv(n - len(got))
        if not chunk:
            raise SocketSetupError(
                "peer closed the connection during the hello handshake")
        got += chunk
    return bytes(got)


def _recv_hello(sock: socket.socket, timeout: float) -> str:
    sock.settimeout(timeout)
    try:
        (n,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
        name = _recv_exact(sock, n).decode()
    except socket.timeout:
        raise SocketSetupError(
            f"no hello from an accepted peer within {timeout:g}s")
    except OSError as exc:
        raise SocketSetupError(f"hello receive failed: {exc}")
    finally:
        sock.settimeout(None)
    return name


def establish_channels(name: str, peers_before: List[str],
                       peers_after: List[str], plan: dict
                       ) -> Dict[str, "SocketChannel"]:
    """Worker-side rendezvous: one :class:`SocketChannel` per socket
    peer.  ``plan`` carries ``family``, the global ``listeners`` map
    (we close every listener we inherited but do not own), per-owner
    ``addresses``, and the two timeouts."""
    family = resolve_family(plan["family"])
    listeners: Dict[str, socket.socket] = plan.get("listeners", {})
    for owner, listener in listeners.items():
        if owner != name:
            try:
                listener.close()
            except OSError:
                pass
    connect_timeout = plan.get("connect_timeout") \
        or socket_timeouts()[0]
    read_timeout = plan.get("read_timeout") or socket_timeouts()[1]
    channels: Dict[str, SocketChannel] = {}
    # phase 1: connect to every lower-order peer's listener.  These
    # complete against the listen backlog without the acceptor
    # scheduling, so no connect can wait on another worker's phase 2.
    for peer in peers_before:
        sock = connect_with_backoff(family, plan["addresses"][peer],
                                    timeout=connect_timeout)
        _send_hello(sock, name, read_timeout)
        channels[peer] = SocketChannel(sock, peer)
    # phase 2: accept one connection per higher-order peer; the hello
    # record names the connector (accept order is arbitrary)
    listener = listeners.get(name)
    if peers_after:
        if listener is None:
            raise SocketSetupError(
                f"worker {name!r} expects {len(peers_after)} "
                "connection(s) but was given no listener")
        expected = set(peers_after)
        listener.settimeout(read_timeout)
        for _ in peers_after:
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                raise SocketSetupError(
                    f"worker {name!r} still waiting on "
                    f"{sorted(expected)} after {read_timeout:g}s")
            _tune(sock)
            peer = _recv_hello(sock, read_timeout)
            if peer not in expected:
                sock.close()
                raise SocketSetupError(
                    f"unexpected hello from {peer!r} "
                    f"(expected one of {sorted(expected)})")
            expected.discard(peer)
            channels[peer] = SocketChannel(sock, peer)
    if listener is not None:
        try:
            listener.close()
        except OSError:
            pass
    return channels


class SocketChannel:
    """One established peer stream of length-prefixed packed records.

    Non-blocking.  ``fileno`` makes the channel selectable alongside
    control pipes in ``multiprocessing.connection.wait``.  Reads
    buffer partial records until the rest arrives; a clean or torn EOF
    sets ``closed`` (native peer-death detection — the socket tier
    needs no shadow data pipes).  Writes stage into ``_tx`` and drain
    opportunistically; once ``max_pending`` bytes are staged the
    channel refuses new records, which is the backpressure signal the
    conduit's wait-step loop spins on.
    """

    def __init__(self, sock: socket.socket, peer: str = "",
                 max_pending: int = DEFAULT_MAX_PENDING):
        self.sock = sock
        self.peer = peer
        self.max_pending = max_pending
        sock.setblocking(False)
        self._rx = bytearray()
        self._tx = bytearray()
        self.closed = False
        self.records_in = 0
        self.records_out = 0

    def fileno(self) -> int:
        return self.sock.fileno()

    # -- read side -----------------------------------------------------------

    def drain(self) -> List[bytes]:
        """Read every available byte; return the complete records."""
        while not self.closed:
            try:
                chunk = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.closed = True
                break
            if not chunk:
                self.closed = True
                break
            self._rx += chunk
        out: List[bytes] = []
        rx = self._rx
        off, n = 0, len(rx)
        while n - off >= _LEN.size:
            (length,) = _LEN.unpack_from(rx, off)
            if n - off - _LEN.size < length:
                break  # partial record: keep buffering
            start = off + _LEN.size
            out.append(bytes(rx[start:start + length]))
            off = start + length
        if off:
            del rx[:off]
        self.records_in += len(out)
        return out

    # -- write side ----------------------------------------------------------

    def try_write(self, payload: bytes) -> bool:
        """Stage one record unless backpressured; True when accepted.
        A record written to a dead peer is accepted and dropped — the
        caller's dead-peer accounting owns that case."""
        if self.closed:
            return True
        if self._tx:
            self.try_flush()
            if len(self._tx) >= self.max_pending:
                return False
        self._tx += _LEN.pack(len(payload)) + payload
        self.records_out += 1
        self.try_flush()
        return True

    def try_flush(self) -> bool:
        """Push staged bytes out; True when the backlog fully
        drained.  A peer that vanished raises the same
        ``BrokenPipeError``/``OSError`` the pipe conduits raise, so
        the worker's existing dead-peer handling applies unchanged."""
        while self._tx:
            try:
                sent = self.sock.send(self._tx)
            except (BlockingIOError, InterruptedError):
                return False
            except OSError:
                self.closed = True
                raise
            if sent <= 0:  # pragma: no cover - defensive
                return False
            del self._tx[:sent]
        return True

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - teardown race
            pass


class SocketConduit(PackedConduit):
    """Socket-backed outgoing frame stream; interface-compatible with
    :class:`~repro.parallel.channels.FrameConduit`.  Records stage
    into the channel; backpressure (a full staging buffer atop a full
    kernel buffer) enters the shared wait-step/abandon loop."""

    def __init__(self, channel: SocketChannel, peer: str, packer,
                 flush_interval: int = 16,
                 window: Optional[int] = None,
                 wait_step=None):
        super().__init__(peer, packer, flush_interval=flush_interval,
                         window=window, wait_step=wait_step)
        self.channel = channel

    def _try_write(self, payload: bytes) -> bool:
        return self.channel.try_write(payload)

    def flush(self) -> None:
        super().flush()
        # a flush with nothing (newly) buffered still pushes staged
        # bytes: blocked workers call flush before waiting, which is
        # what drains the backlog of a previously backpressured write
        if self._tx_pending():
            self.channel.try_flush()

    def _tx_pending(self) -> bool:
        return bool(self.channel._tx) and not self.channel.closed
