"""Distributed execution: one OS process per partition, real channels.

FireAxe's premise is that partitions run *concurrently* on separate
FPGAs; this package gives the reproduction the same shape in software.
Each partition's LI-BDN host runs in its own forked worker process
(``worker``), cross-partition tokens travel as batched effect frames
with credit-based flow control (``channels``) over one of two data
planes — pickled pipe messages, or struct-packed records in
shared-memory rings (``shm``) — a coordinator spawns/supervises the
workers and merges their state fragments back into the parent
simulation (``coordinator``), and an experiment-level pool fans
independent sweep points across bounded jobs (``pool``).

The backend is *bit-deterministic*: ``SimulationResult.detail`` (and
all merged simulation state that feeds checkpoints) is identical to the
in-process harness — see DESIGN.md for the wavefront schedule that
makes this true by construction.  Select it per-call
(``sim.run(..., backend=...)`` via :func:`ProcessBackend.run`), or
globally with ``REPRO_BACKEND=process`` / ``REPRO_BACKEND=process-shm``.
"""

from .coordinator import (ProcessBackend, auto_backend,
                          fork_available, unsupported_reason)
from .channels import EffectFrame, FrameConduit, FrameInbox
from .shm import FramePacker, ShmConduit, ShmRing, shm_available
from .pool import fanout

__all__ = [
    "ProcessBackend",
    "auto_backend",
    "fork_available",
    "unsupported_reason",
    "EffectFrame",
    "FrameConduit",
    "FrameInbox",
    "FramePacker",
    "ShmConduit",
    "ShmRing",
    "shm_available",
    "fanout",
]
