"""Distributed execution: one OS process per partition, real channels.

FireAxe's premise is that partitions run *concurrently* on separate
FPGAs; this package gives the reproduction the same shape in software.
Each partition's LI-BDN host runs in its own forked worker process
(``worker``), cross-partition tokens travel as batched effect frames
with credit-based flow control (``channels``) over one of three data
planes — pickled pipe messages, struct-packed records in shared-memory
rings (``shm``), or the same packed records over TCP / unix-domain
stream sockets (``socket_transport``, the rung the farm layer
stretches across hosts) — a coordinator spawns/supervises the workers
and merges their state fragments back into the parent simulation
(``coordinator``), and an experiment-level pool fans independent sweep
points across bounded jobs (``pool``).

The backend is *bit-deterministic*: ``SimulationResult.detail`` (and
all merged simulation state that feeds checkpoints) is identical to the
in-process harness — see DESIGN.md for the wavefront schedule that
makes this true by construction.  Select it per-call
(``sim.run(..., backend=...)`` via :func:`ProcessBackend.run`), or
globally with ``REPRO_BACKEND=process`` / ``process-shm`` /
``process-socket`` (unknown names raise
:class:`~repro.errors.UnknownBackendError`).
"""

from .coordinator import (BACKEND_ALIASES, VALID_BACKENDS,
                          ProcessBackend, auto_backend,
                          fork_available, normalize_backend,
                          unsupported_reason)
from .channels import (BaseConduit, EffectFrame, FrameConduit,
                       FrameInbox, PackedConduit)
from .shm import FramePacker, ShmConduit, ShmRing, shm_available
from .socket_transport import (SocketChannel, SocketConduit,
                               connect_with_backoff, establish_channels,
                               make_listeners, socket_available)
from .pool import fanout

__all__ = [
    "BACKEND_ALIASES",
    "VALID_BACKENDS",
    "ProcessBackend",
    "auto_backend",
    "fork_available",
    "normalize_backend",
    "unsupported_reason",
    "BaseConduit",
    "EffectFrame",
    "FrameConduit",
    "FrameInbox",
    "PackedConduit",
    "FramePacker",
    "ShmConduit",
    "ShmRing",
    "shm_available",
    "SocketChannel",
    "SocketConduit",
    "connect_with_backoff",
    "establish_channels",
    "make_listeners",
    "socket_available",
    "fanout",
]
