"""Experiment-level fan-out: run independent sweep points in a bounded
pool of forked workers.

This is deliberately simpler than the per-partition backend in
``coordinator``: sweep points share nothing, so there is no token
protocol — just a queue of task indices (the closures themselves are
inherited by ``fork``, so nothing needs pickling except each task's
return value) drained by ``jobs`` child processes.

Children run with the backend auto-selection disabled
(``worker.IN_WORKER``): when the caller parallelizes at the experiment
level, each point runs in-process — two layers of forking would
oversubscribe the host and daemonic children cannot fork again anyway.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, List, Optional, Sequence

from .. import errors as _errors
from ..errors import WorkerError
from . import worker as _worker_mod


def _fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


def _pool_child(thunks, queue, send_conn) -> None:
    _worker_mod.IN_WORKER = True
    while True:
        idx = queue.get()
        if idx is None:
            break
        try:
            send_conn.send((idx, True, thunks[idx]()))
        except BaseException as exc:  # noqa: BLE001 — shipped to parent
            try:
                send_conn.send((idx, False, type(exc).__name__,
                                str(exc)))
            except (BrokenPipeError, OSError):
                os._exit(1)
    send_conn.close()
    os._exit(0)


def _rebuild_error(task_label: str, exc_type: str, message: str):
    exc_cls = getattr(_errors, exc_type, None)
    if exc_cls is not None and isinstance(exc_cls, type) \
            and issubclass(exc_cls, _errors.ReproError):
        try:
            return exc_cls(message)
        except TypeError:
            pass
    return WorkerError(task_label, "raised", f"{exc_type}: {message}")


def fanout(thunks: Sequence[Callable[[], object]], jobs: int,
           labels: Optional[Sequence[str]] = None) -> List[object]:
    """Run every thunk, at most ``jobs`` concurrently, returning their
    results in input order.

    ``jobs <= 1`` (or a single task, or a platform without ``fork``, or
    already being inside a parallel worker) degrades to a plain
    sequential loop — identical behaviour, no processes.  The first
    failing task's exception is re-raised in the parent after the pool
    has been torn down.
    """
    thunks = list(thunks)
    labels = list(labels) if labels is not None \
        else [f"task-{i}" for i in range(len(thunks))]
    if jobs is None or jobs <= 1 or len(thunks) <= 1 \
            or not _fork_available() or _worker_mod.IN_WORKER:
        return [thunk() for thunk in thunks]
    jobs = min(jobs, len(thunks))
    ctx = mp.get_context("fork")
    queue = ctx.SimpleQueue()
    for i in range(len(thunks)):
        queue.put(i)
    for _ in range(jobs):
        queue.put(None)
    procs = []
    conns = []
    try:
        for _ in range(jobs):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_pool_child,
                               args=(thunks, queue, send_conn),
                               daemon=True)
            proc.start()
            send_conn.close()
            procs.append(proc)
            conns.append(recv_conn)
        results: dict = {}
        first_error = None
        open_conns = list(conns)
        while open_conns:
            from multiprocessing.connection import wait as conn_wait
            for conn in conn_wait(open_conns):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    open_conns.remove(conn)
                    continue
                if msg[1]:
                    results[msg[0]] = msg[2]
                elif first_error is None:
                    first_error = _rebuild_error(
                        labels[msg[0]], msg[2], msg[3])
        if first_error is not None:
            raise first_error
        missing = [i for i in range(len(thunks)) if i not in results]
        if missing:
            raise WorkerError(
                labels[missing[0]], "died",
                "pool worker exited before finishing "
                f"{len(missing)} task(s)")
        return [results[i] for i in range(len(thunks))]
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(5.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        queue.close()
