"""Shared-memory ring transport tier for the process backend.

The pipe transport pays a pickle round trip plus two kernel copies per
frame batch.  This tier replaces the steady-state data plane with
single-producer/single-consumer byte rings in POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and a fixed-layout binary frame
codec built from the partition topology:

* :class:`ShmRing` — an SPSC ring of length-prefixed records.  The
  writer owns the head cursor, the reader owns the tail cursor; each
  cursor is a monotonically increasing u64 published with a single
  8-byte aligned store *after* the payload bytes are in place, so a
  record is never observed half-written.
* :class:`FramePacker` — packs a batch of
  :class:`~repro.parallel.channels.EffectFrame` into one struct-coded
  record.  Token payloads are the packed channel words, serialized as
  fixed-width little-endian byte strings sized from the destination
  channel's codec; floats travel as IEEE-754 doubles (``<d``), which
  round-trip exactly, so the shm tier is bit-identical to the pipe
  tier by construction.
* :class:`ShmConduit` — drop-in for
  :class:`~repro.parallel.channels.FrameConduit`: same buffering,
  flush-interval, and flow-control window accounting, but ``flush``
  writes a packed record into the ring instead of pickling into a
  pipe.  A full ring blocks politely: the caller-supplied ``wait_step``
  drains *incoming* rings (breaking ring-buffer deadlock cycles),
  services the control pipe, and may tell the writer to abandon the
  batch (peer dead, or the run is finalizing past the stop fence).

The control plane (progress reports, deadlock votes, stop/abort) stays
on pipes, as does worker-death detection (a closed pipe raises EOF;
shared memory cannot signal peer death).  Rings are created by the
coordinator *before* forking so children inherit the mappings, and the
coordinator alone unlinks them.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from .channels import EffectFrame, PackedConduit

try:  # pragma: no cover - exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm
    _shared_memory = None


def shm_available() -> bool:
    """True when :mod:`multiprocessing.shared_memory` is usable here."""
    return _shared_memory is not None


#: ring header: two u64 cursors (head = bytes written, tail = bytes read)
_HEADER = 16
_CURSOR = struct.Struct("<Q")
_LEN = struct.Struct("<I")

DEFAULT_RING_BYTES = 1 << 20


class RingFull(Exception):
    """Raised by :meth:`ShmRing.write` when the record does not fit."""


class ShmRing:
    """Single-producer/single-consumer ring of length-prefixed records.

    Cursors are *total bytes* ever written/read (u64, never wrapped);
    the data region index is ``cursor % capacity``.  The writer reads
    the tail only to compute free space, the reader reads the head only
    to find new records — each side stores only its own cursor, so no
    locks are needed.  Each side also keeps a local mirror of its own
    cursor (authoritative — only it writes it) and a lazily refreshed
    snapshot of the other side's, so the steady-state cost per
    operation is one bulk slice copy plus one publishing store.
    """

    def __init__(self, shm, capacity: int):
        self.shm = shm
        self.capacity = capacity
        self.buf = shm.buf
        #: writer-local: own head (exact) and last-seen tail
        self._head = self._load(0)
        self._tail_seen = self._load(8)
        #: reader-local: own tail (exact) and last-seen head
        self._tail = self._tail_seen
        self._head_seen = self._head

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        shm = _shared_memory.SharedMemory(create=True,
                                          size=_HEADER + capacity)
        shm.buf[:_HEADER] = b"\0" * _HEADER
        return cls(shm, capacity)

    @property
    def name(self) -> str:
        return self.shm.name

    # cursor accessors (offset 0 = head/writer, offset 8 = tail/reader)

    def _load(self, off: int) -> int:
        return _CURSOR.unpack_from(self.buf, off)[0]

    def _store(self, off: int, value: int) -> None:
        _CURSOR.pack_into(self.buf, off, value)

    # writer side

    def try_write(self, payload: bytes) -> bool:
        """Append one record; False when the ring lacks space."""
        record = _LEN.pack(len(payload)) + payload
        n = len(record)
        capacity = self.capacity
        if n > capacity:
            raise RingFull(
                f"record of {n} bytes exceeds ring capacity "
                f"{capacity}; raise REPRO_SHM_RING_BYTES")
        head = self._head
        if n > capacity - (head - self._tail_seen):
            self._tail_seen = self._load(8)
            if n > capacity - (head - self._tail_seen):
                return False
        pos = head % capacity
        end = pos + n
        buf = self.buf
        if end <= capacity:
            buf[_HEADER + pos:_HEADER + end] = record
        else:
            first = capacity - pos
            buf[_HEADER + pos:_HEADER + capacity] = record[:first]
            buf[_HEADER:_HEADER + n - first] = record[first:]
        # publish: single aligned 8-byte store after the payload lands
        self._head = head + n
        self._store(0, self._head)
        return True

    # reader side

    def read_all(self) -> List[bytes]:
        """Drain every complete record currently in the ring.  The full
        available span is copied out in at most two bulk slices, then
        split into records from the (cheap, local) bytes object."""
        tail = self._tail
        head = self._head_seen
        if head == tail:
            head = self._head_seen = self._load(0)
            if head == tail:
                return []
        avail = head - tail
        pos = tail % self.capacity
        buf = self.buf
        if pos + avail <= self.capacity:
            blob = bytes(buf[_HEADER + pos:_HEADER + pos + avail])
        else:
            first = self.capacity - pos
            blob = bytes(buf[_HEADER + pos:_HEADER + self.capacity]) \
                + bytes(buf[_HEADER:_HEADER + avail - first])
        # publish: the writer may reuse the space only after this store
        # (the bytes above are already copied out)
        self._tail = tail + avail
        self._store(8, self._tail)
        out: List[bytes] = []
        off = 0
        unpack = _LEN.unpack_from
        while off < avail:
            (n,) = unpack(blob, off)
            off += _LEN.size
            out.append(blob[off:off + n])
            off += n
        return out

    # lifecycle (coordinator side)

    def close(self) -> None:
        self.buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


#: record kinds
_KIND_FRAMES = 1
_KIND_ACK = 2

_REC_HDR = struct.Struct("<BQI")      # kind, ack/through, n_frames
_FRAME_HDR = struct.Struct("<QII")    # pass_no, n_deliveries, n_credits
_DELIV_HDR = struct.Struct("<Idd")    # link index, arrive ns, rx ns
_CREDIT = struct.Struct("<Id")        # credit-key index, consume ns


class FramePacker:
    """Topology-keyed binary codec for frame batches.

    Built once by the coordinator from the simulation's link list (the
    same object every forked worker holds), so both ends agree on the
    link indices, the per-link token byte widths (from the destination
    channel's :class:`~repro.libdn.codec.TokenCodec`), and the table
    that maps credit keys to small integers.
    """

    def __init__(self, link_nbytes: List[int],
                 link_dst: List[Tuple[str, str]],
                 credit_keys: List[Tuple[str, str]]):
        self.link_nbytes = link_nbytes
        self.link_dst = link_dst
        self.credit_keys = credit_keys
        self.credit_index = {k: i for i, k in enumerate(credit_keys)}

    @classmethod
    def from_sim(cls, sim) -> "FramePacker":
        link_nbytes = [sim._in_channel_by_key[link.dst].codec.nbytes
                       for link in sim.links]
        link_dst = [link.dst for link in sim.links]
        credit_keys = sorted({link.dst for link in sim.links})
        return cls(link_nbytes, link_dst, credit_keys)

    def pack_frames(self, frames: List[EffectFrame], ack: int) -> bytes:
        parts = [_REC_HDR.pack(_KIND_FRAMES, ack, len(frames))]
        nbytes = self.link_nbytes
        credit_index = self.credit_index
        for frame in frames:
            parts.append(_FRAME_HDR.pack(
                frame.pass_no, len(frame.deliveries), len(frame.credits)))
            for idx, _dst, word, arrive_ns, rx_ns in frame.deliveries:
                parts.append(_DELIV_HDR.pack(idx, arrive_ns, rx_ns))
                parts.append(word.to_bytes(nbytes[idx], "little"))
            for key, ns in frame.credits:
                parts.append(_CREDIT.pack(credit_index[key], ns))
        return b"".join(parts)

    def pack_ack(self, through_pass: int) -> bytes:
        return _REC_HDR.pack(_KIND_ACK, through_pass, 0)

    def unpack(self, payload: bytes, sender: str):
        """Decode one record into the pipe-protocol message shape:
        ``("frames", [EffectFrame...], ack)`` or ``("ack", through)``."""
        kind, ack, n_frames = _REC_HDR.unpack_from(payload, 0)
        if kind == _KIND_ACK:
            return ("ack", ack)
        off = _REC_HDR.size
        nbytes = self.link_nbytes
        link_dst = self.link_dst
        credit_keys = self.credit_keys
        frames: List[EffectFrame] = []
        for _ in range(n_frames):
            pass_no, n_deliv, n_credit = _FRAME_HDR.unpack_from(payload, off)
            off += _FRAME_HDR.size
            deliveries = []
            for _ in range(n_deliv):
                idx, arrive_ns, rx_ns = _DELIV_HDR.unpack_from(payload, off)
                off += _DELIV_HDR.size
                n = nbytes[idx]
                word = int.from_bytes(payload[off:off + n], "little")
                off += n
                deliveries.append((idx, link_dst[idx], word,
                                   arrive_ns, rx_ns))
            credits = []
            for _ in range(n_credit):
                key_idx, ns = _CREDIT.unpack_from(payload, off)
                off += _CREDIT.size
                credits.append((credit_keys[key_idx], ns))
            frames.append(EffectFrame(sender=sender, pass_no=pass_no,
                                      deliveries=deliveries,
                                      credits=credits))
        return ("frames", frames, ack)


class ShmConduit(PackedConduit):
    """Ring-backed outgoing frame stream; interface-compatible with
    :class:`~repro.parallel.channels.FrameConduit`.

    The batching/window accounting and the blocked-write wait-step
    protocol live in :class:`~repro.parallel.channels.PackedConduit`;
    this class only maps "accept one record" onto the SPSC ring.
    """

    def __init__(self, ring: ShmRing, peer: str, packer: FramePacker,
                 flush_interval: int = 16,
                 window: Optional[int] = None,
                 wait_step: Optional[Callable[[], bool]] = None):
        super().__init__(peer, packer, flush_interval=flush_interval,
                         window=window, wait_step=wait_step)
        self.ring = ring

    def _try_write(self, payload: bytes) -> bool:
        return self.ring.try_write(payload)
