"""Coordinator for the process backend: spawn, supervise, merge.

``ProcessBackend.run`` forks one worker process per partition (the
simulation object is inherited by ``fork``, so compiled artefacts,
token sources and closures need no pickling), wires a dedicated pipe
pair between every pair of *linked* partitions plus a control pipe pair
per worker, and then plays supervisor:

* tracks per-worker progress reports to detect global completion,
  LI-BDN deadlock (no worker progressed past pass ``k*`` — the same
  pass the serial loop would have detected it at) and injected-crash
  trigger points,
* converts worker death, unhandled worker exceptions and heartbeat
  silence into a typed :class:`~repro.errors.WorkerError` naming the
  partition that failed first — after terminating, joining and reaping
  every remaining child, so a failure never leaves orphans or a hung
  parent,
* on success merges the per-worker state fragments back onto the parent
  simulation object, so ``sim.result()``, checkpointing and continued
  in-process runs observe exactly the state a serial run would have
  produced.

Determinism: workers execute the wavefront schedule (see ``worker``),
which reproduces the serial round-robin's interleaving of
cross-partition effects exactly; everything in
``SimulationResult.detail`` is derived from modelled time, so results
are bit-identical to the in-process backend.  Host wall-clock never
enters the results (see DESIGN.md).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from .. import errors as _errors
from ..errors import (BackendUnavailableError, DeadlockError,
                      SimulationError, UnknownBackendError,
                      UnsupportedTopologyError, WorkerError)
from ..observability.postmortem import DeadlockPostmortem
from ..obsplane.events import EV_WORKER_EXIT, EV_WORKER_SPAWN
from ..observability.tracer import (NULL_TRACER, RecordingTracer,
                                    TraceEvent)
from ..reliability.supervisor import InjectedCrash
from . import worker as _worker_mod
from .shm import DEFAULT_RING_BYTES, FramePacker, ShmRing, shm_available
from .socket_transport import (make_listeners, socket_available,
                               socket_timeouts)
from .worker import worker_main


def unsupported_reason(sim) -> Optional[str]:
    """Why ``sim`` cannot be distributed, or None if it can."""
    switch_srcs: Dict[int, set] = {}
    for link in sim.links:
        if link.hooks.switch is not None:
            switch_srcs.setdefault(
                id(link.hooks.switch), set()).add(link.src[0])
    for srcs in switch_srcs.values():
        if len(srcs) > 1:
            return ("a switch fabric is shared by links of different "
                    "source partitions; backplane contention ordering "
                    "cannot be partitioned")
    if sim.tracer.enabled \
            and not isinstance(sim.tracer, RecordingTracer):
        return (f"tracer {type(sim.tracer).__name__} cannot be "
                "re-based across worker processes (only "
                "RecordingTracer or a disabled tracer is supported)")
    return None


def fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


#: canonical backend names, as `normalize_backend` returns them
VALID_BACKENDS = ("auto", "inproc", "process", "process-shm",
                  "process-socket")

#: accepted spellings -> canonical backend name
BACKEND_ALIASES = {
    "auto": "auto",
    "inproc": "inproc",
    "process": "process",
    "proc": "process",
    "process-shm": "process-shm",
    "shm": "process-shm",
    "process-socket": "process-socket",
    "socket": "process-socket",
}


def normalize_backend(name, source: str = "backend") -> str:
    """Canonical backend name for ``name``.  An unrecognized spelling
    raises :class:`~repro.errors.UnknownBackendError` listing every
    valid name — it must never silently fall through to a different
    backend than the caller asked for."""
    key = (name or "").strip().lower() if isinstance(name, str) else name
    try:
        return BACKEND_ALIASES[key]
    except (KeyError, TypeError):
        raise UnknownBackendError(name, VALID_BACKENDS,
                                  source=source) from None


def auto_backend(sim) -> Optional["ProcessBackend"]:
    """Backend selected by the ``REPRO_BACKEND`` environment variable
    for ``run(backend="auto")``, or None for the in-process loop.
    A non-empty unknown value raises
    :class:`~repro.errors.UnknownBackendError` rather than silently
    running in-process."""
    if _worker_mod.IN_WORKER:
        return None
    raw = os.environ.get("REPRO_BACKEND", "").strip()
    if not raw:
        return None
    mode = normalize_backend(raw, source="REPRO_BACKEND")
    if mode in ("auto", "inproc"):
        return None
    if not fork_available():
        return None
    if unsupported_reason(sim) is not None:
        return None
    kwargs = {}
    if mode == "process-shm" and shm_available():
        # best effort: auto selection degrades to the pipe transport
        # rather than failing when shared memory is unavailable
        kwargs["transport"] = "shm"
    elif mode == "process-socket" and socket_available():
        kwargs["transport"] = "socket"
    flush = os.environ.get("REPRO_FLUSH_INTERVAL")
    if flush:
        kwargs["flush_interval"] = max(1, int(flush))
    timeout = os.environ.get("REPRO_HEARTBEAT_TIMEOUT")
    if timeout:
        kwargs["heartbeat_timeout"] = float(timeout)
    return ProcessBackend(**kwargs)


class _WorkerState:
    __slots__ = ("frontier", "last_true_pass", "max_reported",
                 "last_seen", "fragment", "postmortem", "dead",
                 "exitcode", "failed", "busy_ns")

    def __init__(self, frontier: int, now: float):
        self.frontier = frontier
        self.last_true_pass = 0
        self.max_reported = 0
        self.last_seen = now
        self.fragment = None
        self.postmortem = None
        self.dead = False
        self.exitcode: Optional[int] = None
        #: (exception type name, message) from a "failed" report
        self.failed: Optional[Tuple[str, str]] = None
        #: modelled time position from the last piggybacked metric
        #: frame (live status rendering only)
        self.busy_ns = 0.0


class ProcessBackend:
    """Runs a partitioned simulation with one OS process per partition.

    Args:
        flush_interval: passes batched into one pipe message per peer
            (frame batching; also the progress-report batch size).
        window: max unacknowledged passes in flight per peer before a
            sender blocks (credit flow control); default
            ``2 * flush_interval``.
        heartbeat_timeout: seconds of *total* silence from a worker
            (no frames for peers implies progress reports or heartbeats
            for the coordinator) before it is declared hung.
        worker_faults: test hook — ``{partition: (mode, pass_no)}``
            where mode is ``"kill"``, ``"raise"`` or ``"hang"``.
        transport: data-plane carrier between linked workers —
            ``"pipe"`` pickles frame batches over OS pipes,
            ``"shm"`` moves struct-packed batches through
            shared-memory rings (see :mod:`repro.parallel.shm`),
            ``"socket"`` moves the same packed batches over stream
            sockets (see :mod:`repro.parallel.socket_transport`);
            control and liveness stay on pipes either way (sockets
            additionally signal peer death natively).
        socket_family: ``"tcp"`` (loopback TCP with ``TCP_NODELAY``)
            or ``"unix"`` for the socket transport; defaults to the
            ``REPRO_SOCKET_FAMILY`` environment variable, then tcp.
    """

    def __init__(self, flush_interval: int = 16,
                 window: Optional[int] = None,
                 heartbeat_timeout: float = 30.0,
                 worker_faults: Optional[Dict[str, tuple]] = None,
                 transport: str = "pipe",
                 socket_family: Optional[str] = None):
        if transport not in ("pipe", "shm", "socket"):
            raise ValueError(
                f"unknown transport {transport!r} (pipe, shm or socket)")
        self.flush_interval = max(1, flush_interval)
        self.window = window
        self.heartbeat_timeout = heartbeat_timeout
        self.worker_faults = dict(worker_faults or {})
        self.transport = transport
        if socket_family is None:
            socket_family = os.environ.get(
                "REPRO_SOCKET_FAMILY", "").strip().lower() or "tcp"
        if socket_family not in ("tcp", "unix"):
            raise ValueError(
                f"unknown socket family {socket_family!r} "
                "(tcp or unix)")
        self.socket_family = socket_family
        self._backend_label = {"pipe": "process",
                               "shm": "process-shm",
                               "socket": "process-socket"}[transport]
        self._rings: List[ShmRing] = []
        self._listeners: Dict[str, object] = {}
        self._socket_tmpdir: Optional[str] = None
        #: per-worker wire accounting from the last completed run —
        #: {partition: {"messages_sent": ..., "frames_pushed": ...}};
        #: benchmark instrumentation, never part of simulation state
        self.last_wire_stats: Dict[str, dict] = {}
        #: per-worker corr-id echo from the last completed run — the
        #: propagation proof (observability only, never merged)
        self.last_worker_corr: Dict[str, str] = {}

    # -- public entry ---------------------------------------------------------

    def run(self, sim, target_cycles: int,
            max_passes: int = 50_000_000,
            crash_cycle: Optional[int] = None):
        if not fork_available():
            raise BackendUnavailableError(
                "process backend needs the 'fork' start method "
                "(unavailable on this platform)")
        if self.transport == "shm" and not shm_available():
            raise BackendUnavailableError(
                "shm transport needs multiprocessing.shared_memory "
                "(unavailable on this platform)")
        if self.transport == "socket" and not socket_available():
            raise BackendUnavailableError(
                "socket transport needs stream sockets "
                "(unavailable on this host)")
        reason = unsupported_reason(sim)
        if reason is not None:
            raise UnsupportedTopologyError(reason)
        if sim.telemetry.enabled:
            sim.telemetry.target_cycles = max(
                sim.telemetry.target_cycles or 0, target_cycles)
        if sim.frontier_cycle() >= target_cycles:
            sim.last_run_backend = self._backend_label
            self._finish_telemetry(sim)
            return sim.result()
        if crash_cycle is not None \
                and sim.frontier_cycle() >= crash_cycle:
            raise InjectedCrash(crash_cycle)
        return self._run(sim, target_cycles, max_passes, crash_cycle)

    # -- plumbing -------------------------------------------------------------

    def _spawn(self, sim, target_cycles: int, max_passes: int):
        ctx = mp.get_context("fork")
        names = list(sim.partitions)
        order = {name: i for i, name in enumerate(names)}
        linked: Dict[str, set] = {name: set() for name in names}
        for link in sim.links:
            a, b = link.src[0], link.dst[0]
            if a != b:
                linked[a].add(b)
                linked[b].add(a)

        all_conns: List = []

        def pipe():
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            all_conns.extend((recv_conn, send_conn))
            return recv_conn, send_conn

        data: Dict[str, Dict[str, tuple]] = {n: {} for n in names}
        #: per-worker {peer: (recv_ring, send_ring)}; rings are created
        #: *before* forking so children inherit the mappings.  The
        #: parent alone unlinks them (in _cleanup); children exit via
        #: os._exit and never touch ring lifecycle.
        rings: Dict[str, Dict[str, tuple]] = {n: {} for n in names}
        packer = None
        if self.transport in ("shm", "socket"):
            packer = FramePacker.from_sim(sim)
        if self.transport == "shm":
            ring_bytes = int(os.environ.get(
                "REPRO_SHM_RING_BYTES", "") or DEFAULT_RING_BYTES)
        socket_plan = None
        if self.transport == "socket":
            # rendezvous listeners are bound before forking so every
            # child inherits them live; an owner is any partition a
            # higher-order linked peer will connect down to.  Sockets
            # signal peer death natively, so socket pairs get no
            # shadow data pipes at all.
            owners = {}
            for i, a in enumerate(names):
                backlog = sum(1 for b in names[i + 1:]
                              if b in linked[a])
                if backlog:
                    owners[a] = backlog
            listeners, addresses, tmpdir = make_listeners(
                owners, self.socket_family)
            self._listeners = listeners
            self._socket_tmpdir = tmpdir
            connect_timeout, read_timeout = socket_timeouts()
            socket_plan = {
                "family": self.socket_family,
                "listeners": listeners,
                "addresses": addresses,
                "connect_timeout": connect_timeout,
                "read_timeout": read_timeout,
            }
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if b not in linked[a] or self.transport == "socket":
                    continue
                a2b_recv, a2b_send = pipe()
                b2a_recv, b2a_send = pipe()
                data[a][b] = (b2a_recv, a2b_send)
                data[b][a] = (a2b_recv, b2a_send)
                if self.transport == "shm":
                    ring_ab = ShmRing.create(ring_bytes)
                    ring_ba = ShmRing.create(ring_bytes)
                    self._rings.extend((ring_ab, ring_ba))
                    rings[a][b] = (ring_ba, ring_ab)
                    rings[b][a] = (ring_ab, ring_ba)
        up: Dict[str, tuple] = {}
        down: Dict[str, tuple] = {}
        for name in names:
            up[name] = pipe()      # worker -> coordinator
            down[name] = pipe()    # coordinator -> worker

        procs: Dict[str, mp.Process] = {}
        for name in names:
            own = set()
            for conns in data[name].values():
                own.update(id(c) for c in conns)
            own.add(id(down[name][0]))
            own.add(id(up[name][1]))
            unrelated = [c for c in all_conns if id(c) not in own]
            options = {
                "flush_interval": self.flush_interval,
                "window": self.window,
                "heartbeat_s": min(2.0, self.heartbeat_timeout / 4),
                "die": self.worker_faults.get(name),
                "rings": rings[name] or None,
                "packer": packer,
                "socket": (dict(socket_plan,
                                peers=sorted(linked[name]))
                           if socket_plan is not None else None),
                "corr_id": getattr(sim, "corr_id", "") or "",
            }
            procs[name] = ctx.Process(
                target=worker_main,
                args=(sim, name, order, target_cycles, max_passes,
                      data[name], down[name][0], up[name][1],
                      unrelated, options),
                name=f"repro-worker-{name}", daemon=True)
        for proc in procs.values():
            proc.start()
        events = getattr(sim, "events", None)
        if events is not None and events.enabled:
            corr = getattr(sim, "corr_id", "")
            for name, proc in procs.items():
                events.emit(EV_WORKER_SPAWN, corr=corr, part=name,
                            worker_pid=proc.pid,
                            backend=self._backend_label)
        # the children own these ends now; closing them here is what
        # turns any single worker death into EOFs everywhere else
        for conns in data.values():
            for recv_conn, send_conn in conns.values():
                recv_conn.close()
                send_conn.close()
        for name in names:
            down[name][0].close()
            up[name][1].close()
        # children inherited the rendezvous listeners across fork; the
        # owners keep their copies open until their accept phase ends
        for sock in self._listeners.values():
            try:
                sock.close()
            except OSError:
                pass
        ctl_recv = {name: up[name][0] for name in names}
        ctl_send = {name: down[name][1] for name in names}
        return procs, ctl_recv, ctl_send

    @staticmethod
    def _broadcast(ctl_send, msg) -> None:
        for conn in ctl_send.values():
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    def _cleanup(self, procs, ctl_recv, ctl_send) -> None:
        """Terminate, reap and unplumb every child unconditionally."""
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in procs.values():
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        for conn in list(ctl_recv.values()) + list(ctl_send.values()):
            try:
                conn.close()
            except OSError:
                pass
        # children are reaped; the parent owns ring teardown and the
        # unix-socket rendezvous directory
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._rings = []
        for sock in self._listeners.values():
            try:
                sock.close()
            except OSError:
                pass
        self._listeners = {}
        if self._socket_tmpdir is not None:
            shutil.rmtree(self._socket_tmpdir, ignore_errors=True)
            self._socket_tmpdir = None

    # -- the supervision loop -------------------------------------------------

    def _run(self, sim, target_cycles, max_passes, crash_cycle):
        from multiprocessing.connection import wait as conn_wait

        procs, ctl_recv, ctl_send = self._spawn(
            sim, target_cycles, max_passes)
        names = list(sim.partitions)
        now = time.monotonic()
        states = {name: _WorkerState(
            sim.partitions[name].target_cycle, now)
            for name in names}
        conn_name = {ctl_recv[name]: name for name in names}
        sentinel_name = {procs[name].sentinel: name for name in names}
        stopping = False
        aborting: Optional[str] = None
        abort_at = 0.0
        primary_failure: Optional[Tuple[str, str, str, str]] = None
        tick = min(1.0, max(0.05, self.heartbeat_timeout / 4))

        try:
            while True:
                waitables = [c for c in ctl_recv.values()
                             if not states[conn_name[c]].dead]
                waitables += [s for s, n in sentinel_name.items()
                              if not states[n].dead]
                ready = conn_wait(waitables, timeout=tick) \
                    if waitables else []
                now = time.monotonic()
                for item in ready:
                    if item in sentinel_name:
                        self._on_death(sentinel_name[item], procs,
                                       ctl_recv, states, now)
                    else:
                        self._drain(conn_name[item],
                                    ctl_recv[conn_name[item]],
                                    states, now)
                live = (sim.telemetry.live
                        if sim.telemetry.enabled else None)
                if live is not None:
                    live.update(self._live_payload(sim, states))

                failure = primary_failure or self._find_failure(
                    names, states, stopping, aborting)
                if failure is not None:
                    primary_failure = failure
                    self._broadcast(ctl_send, ("abort", "fatal"))
                    raise self._failure_error(failure)

                for name in names:
                    state = states[name]
                    if not state.dead and state.fragment is None \
                            and now - state.last_seen \
                            > self.heartbeat_timeout:
                        self._broadcast(ctl_send, ("abort", "fatal"))
                        raise WorkerError(
                            name, "heartbeat-timeout",
                            f"no message for more than "
                            f"{self.heartbeat_timeout}s")

                if aborting == "deadlock":
                    if all(s.postmortem is not None
                           for s in states.values()):
                        raise self._deadlock_error(sim, states)
                    if now - abort_at > self.heartbeat_timeout:
                        silent = [n for n in names
                                  if states[n].postmortem is None]
                        raise WorkerError(
                            silent[0], "heartbeat-timeout",
                            "no deadlock postmortem within "
                            f"{self.heartbeat_timeout}s")
                    continue

                min_frontier = min(s.frontier
                                   for s in states.values())
                if not stopping and min_frontier >= target_cycles:
                    # fence: running the wavefront through this pass
                    # guarantees every effect-bearing frame (all emitted
                    # at or before a worker's completion pass, hence at
                    # or before its last report) has been applied
                    fence = max(s.max_reported
                                for s in states.values()) + 1
                    self._broadcast(ctl_send, ("stop", fence))
                    stopping = True
                if stopping:
                    if all(s.fragment is not None
                           for s in states.values()):
                        break
                    continue
                if crash_cycle is not None \
                        and min_frontier >= crash_cycle:
                    self._broadcast(ctl_send, ("abort", "crash"))
                    raise InjectedCrash(crash_cycle)

                k_star = self._deadlock_pass(states)
                if k_star is not None:
                    self._broadcast(ctl_send, ("abort", "deadlock"))
                    aborting = "deadlock"
                    abort_at = now
        finally:
            self._cleanup(procs, ctl_recv, ctl_send)

        fragments = {n: states[n].fragment for n in names}
        self.last_wire_stats = {
            n: frag.get("wire_stats", {})
            for n, frag in fragments.items()}
        self.last_worker_corr = {
            n: frag.get("corr", "")
            for n, frag in fragments.items()}
        sim.last_worker_corr = dict(self.last_worker_corr)
        events = getattr(sim, "events", None)
        if events is not None and events.enabled:
            corr = getattr(sim, "corr_id", "")
            for n, proc in procs.items():
                events.emit(EV_WORKER_EXIT, corr=corr, part=n,
                            worker_pid=proc.pid,
                            exitcode=proc.exitcode)
        self._merge(sim, fragments)
        sim.last_run_backend = self._backend_label
        self._finish_telemetry(sim)
        return sim.result()

    def _live_payload(self, sim, states) -> dict:
        """Live status assembled from piggybacked metric frames — the
        parent's partition objects are stale while workers run."""
        wall_ns = max((s.busy_ns for s in states.values()),
                      default=0.0)
        frontier = min((s.frontier for s in states.values()),
                       default=0)
        rate_hz = frontier / wall_ns * 1e9 if wall_ns > 0 else 0.0
        return {
            "status": "running",
            "backend": self._backend_label,
            "frontier_cycle": frontier,
            "target_cycles": sim.telemetry.target_cycles,
            "wall_ns": wall_ns,
            "rate_hz": rate_hz,
            "partitions": {name: state.frontier
                           for name, state in states.items()},
        }

    @staticmethod
    def _finish_telemetry(sim) -> None:
        if sim.telemetry.enabled and sim.frontier_cycle() >= (
                sim.telemetry.target_cycles or 0):
            sim.telemetry.finish(sim)

    def _drain(self, name, conn, states, now) -> None:
        state = states[name]
        while True:
            try:
                if not conn.poll():
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                return  # the sentinel handler owns death accounting
            self._apply_msg(state, msg, now)

    @staticmethod
    def _apply_msg(state, msg, now) -> None:
        """Fold one worker control message into its supervision state
        (shared with the farm manager, whose agents relay the same
        messages tagged with the partition name)."""
        state.last_seen = now
        kind = msg[0]
        if kind == "progress":
            for pass_no, frontier, progressed in msg[2]:
                if pass_no > state.max_reported:
                    state.max_reported = pass_no
                if progressed and pass_no > state.last_true_pass:
                    state.last_true_pass = pass_no
                state.frontier = frontier
            if len(msg) > 3 and msg[3] is not None:
                state.busy_ns = msg[3].busy_ns
                state.frontier = max(state.frontier,
                                     msg[3].frontier)
        elif kind == "heartbeat":
            state.frontier = max(state.frontier, msg[3])
        elif kind == "done":
            state.fragment = msg[1]
        elif kind == "postmortem":
            state.postmortem = msg[1]
        elif kind == "failed" and state.failed is None:
            state.failed = (msg[2], msg[3])

    def _on_death(self, name, procs, ctl_recv, states, now) -> None:
        state = states[name]
        if state.dead:
            return
        procs[name].join(1.0)
        self._drain(name, ctl_recv[name], states, now)
        state.dead = True
        state.exitcode = procs[name].exitcode

    @staticmethod
    def _find_failure(names, states, stopping, aborting):
        """First fatal worker condition in partition order, preferring
        primary causes over secondary casualties (exit code 3 means "my
        peer or coordinator vanished")."""
        for name in names:
            if states[name].failed is not None:
                return (name, "raised", *states[name].failed)
        for name in names:
            state = states[name]
            if state.dead and state.fragment is None \
                    and state.postmortem is None \
                    and state.exitcode not in (0, 3) \
                    and not (stopping or aborting):
                return (name, "died", "",
                        f"worker process exited with code "
                        f"{state.exitcode}")
        # only secondary casualties: blame the first of them
        if not (stopping or aborting):
            for name in names:
                state = states[name]
                if state.dead and state.fragment is None \
                        and state.postmortem is None:
                    return (name, "died", "",
                            "worker process exited after losing a "
                            "peer or coordinator connection")
        return None

    @staticmethod
    def _failure_error(failure):
        name, reason, exc_type, message = failure
        if reason == "raised":
            exc_cls = getattr(_errors, exc_type, None)
            if exc_cls is not None \
                    and isinstance(exc_cls, type) \
                    and issubclass(exc_cls, _errors.ReproError):
                try:
                    return exc_cls(message)
                except TypeError:
                    pass
            return WorkerError(name, "raised",
                              f"{exc_type}: {message}")
        return WorkerError(name, reason, message)

    # -- terminal assembly ----------------------------------------------------

    def _deadlock_pass(self, states) -> Optional[int]:
        """The pass the serial loop would have detected deadlock at, or
        None while any worker may still progress.  Sound because reports
        arrive in pass order: once every worker has reported *past* the
        last pass on which any of them progressed, no token can ever
        move again (the wavefront has fully propagated)."""
        if not states:
            return None
        floor = min(s.max_reported for s in states.values())
        last_true = max(s.last_true_pass for s in states.values())
        if floor > last_true:
            return last_true + 1
        return None

    def _deadlock_error(self, sim, states) -> DeadlockError:
        k_star = self._deadlock_pass(states)
        details: List[str] = []
        channels: Dict[str, Dict[str, dict]] = {}
        events: List[TraceEvent] = []
        for name in sim.partitions:
            payload = states[name].postmortem
            details.extend(payload["stuck"])
            channels[name] = payload["channels"]
            events.extend(payload["events"])
        events.sort(key=lambda e: e.ts_ns)
        frontier = min(states[n].postmortem["frontier"]
                       for n in sim.partitions)
        if sim.tracer.enabled:
            sim.tracer.emit(TraceEvent(
                "deadlock",
                ts_ns=max(states[n].postmortem["busy_until"]
                          for n in sim.partitions),
                args={"host_passes": k_star, "frontier": frontier}))
        postmortem = DeadlockPostmortem(
            host_passes=k_star,
            frontier_cycle=frontier,
            channels=channels,
            events=events[-sim.postmortem_events:])
        return DeadlockError(" ;; ".join(details), host_cycle=k_star,
                             postmortem=postmortem)

    @staticmethod
    def _merge(sim, fragments) -> None:
        """Overlay every worker's owned state onto the parent process's
        simulation.  Ownership: a link's transmit-side state belongs to
        its source partition's worker, its receive-side accounting to
        the destination's; arrivals, host state and recorded outputs
        belong to the partition that holds the channel."""
        merged_events: List[TraceEvent] = []
        total = sim.total_tokens
        dropped = sim.dropped_tokens
        #: pre-run trim counts — needed to know how much of each
        #: receiver-reported consume sequence the senders already
        #: dropped this run
        base_before = dict(sim._consume_base)
        consume_values: Dict[Tuple[str, str], list] = {}
        consume_base: Dict[Tuple[str, str], int] = {}
        for name in sim.partitions:
            frag = fragments[name]
            part = sim.partitions[name]
            part.busy_until = frag["busy_until"]
            spans = part.hooks.spans
            for component, ns in frag["spans"].items():
                setattr(spans, f"{component}_ns", ns)
            part.host.load_state_dict(frag["host"])
            for idx, entry in frag["links_src"].items():
                link = sim.links[idx]
                link.tokens = entry["tokens"]
                link.next_free = entry["next_free"]
                link.busy_ns = entry["busy_ns"]
                if entry["reliability"] is not None \
                        and link.reliability is not None:
                    link.reliability.load_state_dict(
                        entry["reliability"])
                switch_state = entry.get("switch")
                if switch_state is not None \
                        and link.hooks.switch is not None:
                    link.hooks.switch.next_free = \
                        switch_state["next_free"]
                    link.hooks.switch.tokens = switch_state["tokens"]
            for idx, entry in frag["links_dst"].items():
                sim.links[idx].depth_hist = dict(entry["depth_hist"])
            for key in [k for k in sim._arrivals if k[0] == name]:
                del sim._arrivals[key]
            for key, values in frag["arrivals"].items():
                sim._arrivals[key] = deque(values)
            consume_values.update(frag["consume_values"])
            consume_base.update(frag["consume_base"])
            for key in [k for k in sim.output_log if k[0] == name]:
                del sim.output_log[key]
            sim.output_log.update(frag["output_log"])
            total += frag["total_delta"]
            dropped += frag["dropped_delta"]
            if frag["tracer_events"]:
                merged_events.extend(frag["tracer_events"])
            if frag.get("telemetry") is not None \
                    and sim.telemetry.enabled:
                sim.telemetry.merge_worker(name, frag["telemetry"])
        # consume-time queues: the receiver reports the full (untrimmed)
        # append sequence, the sender how far its credit reads trimmed
        # it; serially the two act on one shared deque.  A sole feeder
        # local to the receiver already trimmed the reported values.
        feeders: Dict[Tuple[str, str], set] = {}
        for link in sim.links:
            feeders.setdefault(link.dst, set()).add(link.src[0])
        for key in [k for k in sim._consume_times
                    if k in sim._dst_link_count]:
            del sim._consume_times[key]
        for key, values in consume_values.items():
            new_base = consume_base.get(key, base_before.get(key, 0))
            drop = 0
            if feeders.get(key) != {key[0]}:
                drop = new_base - base_before.get(key, 0)
            sim._consume_times[key] = deque(values[drop:])
        for key in [k for k in sim._consume_base
                    if k in sim._dst_link_count]:
            del sim._consume_base[key]
        sim._consume_base.update(consume_base)
        sim.total_tokens = total
        sim.dropped_tokens = dropped
        if merged_events and sim.tracer.enabled:
            merged_events.sort(key=lambda e: e.ts_ns)
            for event in merged_events:
                sim.tracer.emit(event)
