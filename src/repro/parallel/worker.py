"""Worker process: owns one partition of a forked co-simulation.

Each worker executes the *same* per-partition work the in-process
harness's round-robin would have executed, in the same order, seeing the
same tokens — which is what makes the process backend's results
bit-identical.  The scheduling rule that guarantees this ("wavefront
order"): before running its own pass ``k``, a worker applies the effect
frame of

* pass ``k-1`` from every linked peer that comes *after* it in the
  global partition order, then
* pass ``k`` from every linked peer that comes *before* it,

each group in ascending partition order.  That reproduces exactly the
order in which the serial round-robin interleaves cross-partition token
deliveries and consume-time (credit) records with this partition's own
processing, while leaving the expensive part — evaluating the
partition's RTL and pricing its timing overlay — to run concurrently
across workers.  The dependency graph of (pass, partition) points is
acyclic, so the wavefront can never deadlock on itself; a worker that
must block first flushes every buffered outgoing frame, keeping peers
fed.

A finished worker (its partition reached the target cycle) keeps
cycling *service passes*: it emits empty frames so slower peers can keep
advancing, paced by the flow-control window, until the coordinator
broadcasts a stop.  Service passes perform no simulation work and
mutate no state, so the final merged state is deterministic.

Control protocol (worker -> coordinator, over the control pipe):

``("progress", name, [(pass, frontier, progressed), ...], metrics)``
    batched per-pass progress; flushed on no-progress passes so the
    coordinator can detect global deadlock quickly.  ``metrics`` is a
    :class:`~repro.parallel.channels.MetricFrame` with the sample
    points taken since the previous report (None when telemetry is
    off) — live status rides the existing control pipe, no extra
    plumbing.
``("heartbeat", name, pass, frontier)``
    emitted while blocked, so a hung peer is distinguishable from a
    hung self.
``("done", fragment)``  — final state fragment, after a stop.
``("postmortem", payload)`` — stuck-channel snapshot, after a deadlock
    abort.
``("failed", name, exc_type, message)`` — local failure.

Coordinator -> worker: ``("stop",)`` and ``("abort", reason)``.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..observability.tracer import RecordingTracer
from ..obsplane.corr import current_corr_id, propagate_corr_id
from .channels import EffectFrame, FrameConduit, FrameInbox, MetricFrame
from .shm import FramePacker, ShmConduit, ShmRing
from .socket_transport import (SocketChannel, SocketConduit,
                               establish_channels)

#: set in forked children so backend auto-selection never recurses
IN_WORKER = False


class _Stop(Exception):
    """Coordinator broadcast a clean stop (all partitions done)."""


class _Abort(Exception):
    """Coordinator broadcast an abort (deadlock / crash / failure)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class Router:
    """The harness's remote-effect sink while running inside a worker.

    Installed as ``sim.router``; the partitioned harness consults it in
    ``_deliver_link`` (token bound for a peer partition) and
    ``_record_consume`` (credit return for a channel fed by a peer's
    link).  Effects accumulate into one :class:`EffectFrame` per linked
    peer per pass.
    """

    def __init__(self, sim, me: str):
        self.me = me
        self._link_index = {id(link): i for i, link in
                            enumerate(sim.links)}
        #: dst channel key -> partitions owning a link that feeds it
        self.dst_feeders: Dict[Tuple[str, str], List[str]] = {}
        for link in sim.links:
            feeders = self.dst_feeders.setdefault(link.dst, [])
            if link.src[0] not in feeders:
                feeders.append(link.src[0])
        linked = ({l.dst[0] for l in sim.links if l.src[0] == me} |
                  {l.src[0] for l in sim.links if l.dst[0] == me})
        self.peers = sorted(linked - {me})
        self.out: Dict[str, EffectFrame] = {}

    def begin_pass(self, pass_no: int) -> None:
        self.out = {peer: EffectFrame(self.me, pass_no)
                    for peer in self.peers}

    def is_local(self, partition: str) -> bool:
        return partition == self.me

    def deliver_remote(self, link, word: int, arrive_ns: float,
                       rx_ns: float) -> None:
        self.out[link.dst[0]].deliveries.append(
            (self._link_index[id(link)], link.dst, word,
             arrive_ns, rx_ns))

    def consumed(self, key: Tuple[str, str], ns: float) -> None:
        for feeder in self.dst_feeders.get(key, ()):
            if feeder != self.me:
                self.out[feeder].credits.append((key, ns))


class PartitionWorker:
    """Drives one partition to ``target_cycles`` inside its process."""

    def __init__(self, sim, name: str, order: Dict[str, int],
                 target_cycles: int, max_passes: int,
                 data_conns: Dict[str, tuple], ctl_recv, ctl_send,
                 flush_interval: int = 16,
                 window: Optional[int] = None,
                 heartbeat_s: float = 5.0,
                 die: Optional[Tuple[str, int]] = None,
                 rings: Optional[Dict[str, Tuple[ShmRing, ShmRing]]] = None,
                 packer: Optional[FramePacker] = None,
                 socket_plan: Optional[dict] = None):
        self.sim = sim
        self.name = name
        self.part = sim.partitions[name]
        self.order = order
        self.target_cycles = target_cycles
        self.max_passes = max_passes
        self.ctl_recv = ctl_recv
        self.ctl_send = ctl_send
        self.flush_interval = flush_interval
        self.heartbeat_s = heartbeat_s
        self.die = die
        self.pass_no = 0

        self.router = Router(sim, name)
        sim.router = self.router
        self.peers = self.router.peers
        me_idx = order[name]
        by_order = sorted(self.peers, key=order.__getitem__)
        self.peers_before = [p for p in by_order if order[p] < me_idx]
        self.peers_after = [p for p in by_order if order[p] > me_idx]

        # data plane, one conduit per peer out of three carriers: a
        # socket channel when the rendezvous plan names the peer
        # (cross-host, or the whole run under transport="socket"), a
        # ring-backed conduit when the coordinator made a ring pair, a
        # pipe conduit otherwise.  The data pipes stay registered for
        # waiting even in ring mode — a peer never writes on them then,
        # so the only event they can deliver is the EOF that signals
        # the peer died (shared memory cannot; sockets signal it
        # natively, so socket peers need no data pipes at all).
        rings = rings or {}
        self.packer = packer
        self._recv_rings: Dict[str, ShmRing] = {}
        self._socket_chans: Dict[str, SocketChannel] = {}
        self._finalizing = False
        self.conduits: Dict[str, FrameConduit] = {}
        self.inboxes: Dict[str, FrameInbox] = {}
        self._conn_peer = {}
        self._wait_conns = [ctl_recv]
        socket_peers: set = set()
        channels: Dict[str, SocketChannel] = {}
        if socket_plan is not None:
            socket_peers = set(socket_plan["peers"]) & set(self.peers)
            channels = establish_channels(
                name,
                [p for p in self.peers_before if p in socket_peers],
                [p for p in self.peers_after if p in socket_peers],
                socket_plan)
        for peer in self.peers:
            if peer in socket_peers:
                chan = channels[peer]
                conduit = SocketConduit(
                    chan, peer, packer,
                    flush_interval=flush_interval, window=window,
                    wait_step=(
                        lambda p=peer: self._transport_wait_step(p)))
                self._socket_chans[peer] = chan
                self._conn_peer[chan] = peer
                self._wait_conns.append(chan)
            elif peer in rings:
                recv_conn, _send_conn = data_conns[peer]
                recv_ring, send_ring = rings[peer]
                conduit = ShmConduit(
                    send_ring, peer, packer,
                    flush_interval=flush_interval, window=window,
                    wait_step=(
                        lambda p=peer: self._transport_wait_step(p)))
                self._recv_rings[peer] = recv_ring
                self._conn_peer[recv_conn] = peer
                self._wait_conns.append(recv_conn)
            else:
                recv_conn, send_conn = data_conns[peer]
                conduit = FrameConduit(send_conn, peer,
                                       flush_interval=flush_interval,
                                       window=window)
                self._conn_peer[recv_conn] = peer
                self._wait_conns.append(recv_conn)
            conduit.ack_source = (lambda p=peer: self._take_ack(p))
            self.conduits[peer] = conduit
            self.inboxes[peer] = FrameInbox(
                peer, ack_every=max(1, flush_interval // 2))

        # the wavefront schedule is compiled per-process: the parent
        # dispatched to the backend before compiling its own, and the
        # hooks/links may have changed since any inherited compile
        # (invalidate also drops any step functions inherited from the
        # parent — they bind the parent's pre-fork objects)
        sim.invalidate_schedule()
        sim.ensure_schedule()
        sim._batching = not sim._metrics_on

        #: pass number fence from the coordinator's stop broadcast:
        #: run the wavefront through this pass, then finalize (ensures
        #: every peer's effect-bearing frame has been applied)
        self._stop_fence: Optional[int] = None
        self._abort_reason: Optional[str] = None
        self._dead_peers = set()
        self._reports: List[Tuple[int, int, bool]] = []
        self._reported_reached = False
        self._tokens0 = sim.total_tokens
        self._dropped0 = sim.dropped_tokens

        # only the coordinator renders live status; the worker's
        # inherited copy must not race it on the same file.  The
        # samples-sent cursor starts past any series points inherited
        # from the parent (a resumed run) so only fresh points ride
        # the progress reports.
        self._samples_sent = 0
        if sim.telemetry.enabled:
            sim.telemetry.live = None
            sim.telemetry.target_cycles = max(
                sim.telemetry.target_cycles or 0, target_cycles)
            self._samples_sent = len(
                sim.telemetry.sampler.series.get(name, []))

        # a recording parent tracer is swapped for a fresh one so the
        # fragment ships only the events this run produced
        self._tracer: Optional[RecordingTracer] = None
        if sim.tracer.enabled:
            self._tracer = RecordingTracer(
                capacity=getattr(sim.tracer, "capacity", None))
            sim.tracer = self._tracer
            sim._trace = True
            sim._install_tracer()

        # compiled step plane for this partition only (the wavefront
        # protocol runs peer passes through frame application, never
        # through their step functions); compiled last so the guard
        # sees the final tracer/telemetry/router configuration
        sim._compile_step_fns(only={name})

    # -- plumbing ------------------------------------------------------------

    def frontier(self) -> int:
        return self.part.target_cycle

    def _take_ack(self, peer: str) -> int:
        through = self.inboxes[peer].applied_through
        self.inboxes[peer].note_ack_sent(through)
        return through

    def _flush_all(self) -> None:
        for peer, conduit in self.conduits.items():
            try:
                conduit.flush()
            except (BrokenPipeError, OSError):
                # the peer exited; it has already applied everything it
                # needed from us (a worker only finalizes past the stop
                # fence) or the run is aborting — drop the frames
                conduit.buffer = []
                self._dead_peers.add(peer)
        self._flush_reports()

    def _send_ctl(self, msg) -> None:
        try:
            self.ctl_send.send(msg)
        except (BrokenPipeError, OSError):
            os._exit(3)

    def _handle(self, conn, msg) -> None:
        kind = msg[0]
        peer = self._conn_peer.get(conn)
        if kind == "frames":
            _, frames, ack = msg
            self.inboxes[peer].offer(frames)
            self.conduits[peer].note_ack(ack)
        elif kind == "ack":
            self.conduits[peer].note_ack(msg[1])
        elif kind == "stop":
            self._stop_fence = msg[1]
        elif kind == "abort":
            self._abort_reason = msg[1]

    def _drain(self, conn) -> None:
        if isinstance(conn, SocketChannel):
            self._drain_socket(self._conn_peer[conn], conn)
            return
        while True:
            try:
                if not conn.poll():
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                if conn is self.ctl_recv:
                    os._exit(3)  # coordinator vanished: die quietly
                peer = self._conn_peer.get(conn)
                self._dead_peers.add(peer)
                if conn in self._wait_conns:
                    self._wait_conns.remove(conn)
                return
            self._handle(conn, msg)

    def _raise_control(self) -> None:
        # a stop is NOT raised here: the fence must be honoured at a
        # pass boundary (we may be blocked mid-pass on a frame we still
        # have to apply); only aborts interrupt immediately
        if self._abort_reason is not None:
            raise _Abort(self._abort_reason)

    def _poll_control(self) -> None:
        self._drain(self.ctl_recv)
        self._raise_control()

    def _offer_packed(self, peer: str, payload: bytes) -> None:
        """Apply one decoded binary record from a ring or socket."""
        msg = self.packer.unpack(payload, peer)
        if msg[0] == "frames":
            _, frames, ack = msg
            self.inboxes[peer].offer(frames)
            self.conduits[peer].note_ack(ack)
        else:
            self.conduits[peer].note_ack(msg[1])

    def _drain_rings(self) -> bool:
        """Drain every incoming shared-memory ring; True when any record
        arrived.  Also called while blocked *writing* a full ring, which
        is what breaks ring-buffer wait cycles: the peer that cannot
        accept our bytes is itself blocked until someone reads its."""
        got = False
        for peer, ring in self._recv_rings.items():
            for payload in ring.read_all():
                got = True
                self._offer_packed(peer, payload)
        return got

    def _drain_socket(self, peer: str, chan: SocketChannel) -> bool:
        got = False
        for payload in chan.drain():
            got = True
            self._offer_packed(peer, payload)
        if chan.closed:
            self._dead_peers.add(peer)
            if chan in self._wait_conns:
                self._wait_conns.remove(chan)
        return got

    def _drain_sockets(self) -> bool:
        got = False
        for peer, chan in list(self._socket_chans.items()):
            got |= self._drain_socket(peer, chan)
        return got

    def _transport_wait_step(self, peer: str) -> bool:
        """One polite spin of a conduit blocked on a full ring or a
        backpressured socket: keep every other stream moving, then
        tell the writer whether to abandon the batch (the receiver
        will never read it again)."""
        self._drain_rings()
        self._drain_sockets()
        for conn in _conn_wait(self._wait_conns, timeout=0.0005):
            self._drain(conn)
        self._raise_control()
        return peer in self._dead_peers or self._finalizing

    def _wait_until(self, pred) -> None:
        """Block until ``pred()`` — flushing first so peers never starve
        on our buffered frames, and heartbeating while idle.  With rings
        in play the wait is a short-timeout poll loop (shared memory has
        no file descriptor to select on)."""
        last_beat = time.monotonic()
        while not pred():
            self._flush_all()
            ringed = bool(self._recv_rings) and self._drain_rings()
            if not ringed:
                timeout = 0.0005 if self._recv_rings \
                    else self.heartbeat_s
                ready = _conn_wait(self._wait_conns, timeout=timeout)
                for conn in ready:
                    self._drain(conn)
                now = time.monotonic()
                if not ready and now - last_beat >= self.heartbeat_s:
                    self._send_ctl(("heartbeat", self.name,
                                    self.pass_no, self.frontier()))
                    last_beat = now
            self._raise_control()
            # a pass beyond the stop fence only moves empty frames (all
            # partitions are done), so it is safe — and necessary — to
            # finalize from inside it: the peer we are waiting on has
            # itself stopped at the fence
            if self._stop_fence is not None \
                    and self.pass_no > self._stop_fence:
                raise _Stop()

    # -- the wavefront -------------------------------------------------------

    def _apply_frame(self, peer: str, pass_no: int) -> None:
        if pass_no <= 0:
            return
        inbox = self.inboxes[peer]
        if not inbox.has(pass_no):
            self._wait_until(lambda: inbox.has(pass_no))
        frame = inbox.take(pass_no)
        sim = self.sim
        for idx, _dst, word, arrive_ns, rx_ns in frame.deliveries:
            sim.apply_link_delivery(sim.links[idx], word,
                                    arrive_ns, rx_ns)
        for key, ns in frame.credits:
            sim._consume_times.setdefault(key, deque()).append(ns)
        due = inbox.standalone_ack_due()
        if due is not None:
            try:
                self.conduits[peer].send_ack(due)
            except (BrokenPipeError, OSError):
                self._dead_peers.add(peer)
            inbox.note_ack_sent(due)

    def _own_pass(self) -> bool:
        sim, part = self.sim, self.part
        progress = False
        if part.target_cycle < self.target_cycles:
            step = sim._step_fns.get(self.name)
            if step is not None:
                progress = step(self.target_cycles)
            else:
                sim._feed_sources(part)
                for up in sim._plan_by_part[self.name].unit_plans:
                    if up.unit.target_cycle >= self.target_cycles:
                        continue
                    progress |= sim._run_unit(up, self.target_cycles)
            if sim._metrics_on:
                # same logical point as the serial loop's per-partition
                # sampling hook; the wavefront invariant makes the
                # partition-local state here bit-identical to it
                sim.telemetry.on_pass(sim, part)
        return progress

    def _emit_frames(self, pass_no: int) -> None:
        for peer in self.peers:
            conduit = self.conduits[peer]
            if not conduit.window_open(pass_no) \
                    and peer not in self._dead_peers:
                self._wait_until(
                    lambda c=conduit, p=peer: c.window_open(pass_no)
                    or p in self._dead_peers)
            if peer not in self._dead_peers:
                try:
                    conduit.push(self.router.out[peer])
                except (BrokenPipeError, OSError):
                    self._dead_peers.add(peer)

    def _report(self, pass_no: int, progress: bool) -> None:
        reached = self.frontier() >= self.target_cycles
        self._reports.append((pass_no, self.frontier(), progress))
        if (len(self._reports) >= self.flush_interval
                or (not progress and not reached)
                or (reached and not self._reported_reached)):
            self._flush_reports()
            if reached:
                self._reported_reached = True

    def _flush_reports(self) -> None:
        if self._reports:
            metrics = None
            if self.sim._metrics_on:
                series = self.sim.telemetry.sampler.series.get(
                    self.name, [])
                metrics = MetricFrame(
                    self.name, self.frontier(), self.part.busy_until,
                    list(series[self._samples_sent:]))
                self._samples_sent = len(series)
            self._send_ctl(("progress", self.name, self._reports,
                            metrics))
            self._reports = []

    def _maybe_die(self, pass_no: int) -> None:
        if self.die is None or pass_no != self.die[1]:
            return
        mode = self.die[0]
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "raise":
            raise RuntimeError("injected worker fault (test)")
        elif mode == "hang":
            time.sleep(3600)

    def loop(self) -> None:
        """Run passes forever; exits via :class:`_Stop`/:class:`_Abort`
        (or an error).  The coordinator owns termination decisions —
        global completion, deadlock and crash conditions all need the
        view across every partition."""
        idle = 0
        while True:
            if self._stop_fence is not None \
                    and self.pass_no >= self._stop_fence:
                raise _Stop()
            self.pass_no += 1
            k = self.pass_no
            for peer in self.peers_after:
                self._apply_frame(peer, k - 1)
            for peer in self.peers_before:
                self._apply_frame(peer, k)
            self._poll_control()
            self._maybe_die(k)
            self.router.begin_pass(k)
            progress = self._own_pass()
            self._emit_frames(k)
            self._report(k, progress)
            # serial parity: the pass budget only binds while this
            # partition still has work (a finished worker's service
            # passes aren't passes the serial loop would have run)
            if (k > self.max_passes
                    and self.frontier() < self.target_cycles):
                raise SimulationError(
                    "co-simulation pass budget exhausted")
            if progress or self.frontier() >= self.target_cycles:
                idle = 0
            else:
                # likely deadlocked: keep serving frames and reporting,
                # but don't burn the host while the coordinator decides
                idle += 1
                if idle >= 2:
                    time.sleep(min(0.001 * idle, 0.02))

    # -- terminal payloads ---------------------------------------------------

    def fragment(self) -> dict:
        """Everything the coordinator needs to make the parent process's
        simulation object identical to a serial run's."""
        sim, me = self.sim, self.name
        links_src, links_dst = {}, {}
        #: the receive side owns the full consume-time sequence (it is
        #: the appender); each sender owns how far its credit reads have
        #: trimmed the shared queue — the merge recombines them
        consume_values, consume_base = {}, {}
        for i, link in enumerate(sim.links):
            if link.src[0] == me:
                entry = {
                    "tokens": link.tokens,
                    "next_free": link.next_free,
                    "busy_ns": link.busy_ns,
                    "reliability": (link.reliability.state_dict()
                                    if link.reliability is not None
                                    else None),
                }
                if link.hooks.switch is not None:
                    entry["switch"] = {
                        "next_free": link.hooks.switch.next_free,
                        "tokens": link.hooks.switch.tokens,
                    }
                links_src[i] = entry
                if link.dst in sim._consume_base:
                    consume_base[link.dst] = \
                        sim._consume_base[link.dst]
            if link.dst[0] == me:
                links_dst[i] = {"depth_hist": dict(link.depth_hist)}
                if link.dst in sim._consume_times:
                    consume_values[link.dst] = \
                        list(sim._consume_times[link.dst])
        return {
            "partition": me,
            "passes": self.pass_no,
            "busy_until": self.part.busy_until,
            "spans": self.part.hooks.spans.as_dict(),
            "host": self.part.host.state_dict(),
            "links_src": links_src,
            "links_dst": links_dst,
            "arrivals": {k: list(v) for k, v in sim._arrivals.items()
                         if k[0] == me},
            "consume_values": consume_values,
            "consume_base": consume_base,
            "output_log": {k: v for k, v in sim.output_log.items()
                           if k[0] == me},
            "total_delta": sim.total_tokens - self._tokens0,
            "dropped_delta": sim.dropped_tokens - self._dropped0,
            "tracer_events": (self._tracer.events
                              if self._tracer is not None else None),
            # authoritative telemetry: the merge takes this partition's
            # series and instruments from here, never from the live
            # metric frames above
            "telemetry": (sim.telemetry.state_dict()
                          if sim.telemetry.enabled else None),
            # observability echo: the corr id this worker's process
            # actually observed (diagnostics; never merged into state)
            "corr": current_corr_id(),
            # wire accounting (benchmarks; never merged into sim state)
            "wire_stats": {
                "messages_sent": sum(c.messages_sent
                                     for c in self.conduits.values()),
                "effects_sent": sum(c.effects_sent
                                    for c in self.conduits.values()),
                "frames_pushed": sum(c.pushed_through
                                     for c in self.conduits.values()),
            },
        }

    def postmortem_payload(self) -> dict:
        part = self.part
        return {
            "partition": self.name,
            "frontier": part.target_cycle,
            "busy_until": part.busy_until,
            "stuck": [unit.stuck_detail() for _, unit in part.units],
            "channels": {
                (prefix + unit.name if prefix else unit.name):
                    unit.channel_state()
                for prefix, unit in part.units
            },
            "events": (self._tracer.recent(self.sim.postmortem_events)
                       if self._tracer is not None else []),
        }


def worker_main(sim, name, order, target_cycles, max_passes,
                data_conns, ctl_recv, ctl_send, unrelated_conns,
                options) -> None:
    """Entry point of a forked worker process.

    ``unrelated_conns`` is every pipe end belonging to other workers;
    closing them here is what lets peers and the coordinator observe a
    clean EOF the moment any single worker dies.
    """
    global IN_WORKER
    IN_WORKER = True
    # adopt the request's correlation id: visible to anything this
    # worker execs, and echoed home in the result fragment
    corr_id = options.get("corr_id", "")
    if corr_id:
        propagate_corr_id(corr_id)
    for conn in unrelated_conns:
        try:
            conn.close()
        except OSError:
            pass
    worker = None
    try:
        worker = PartitionWorker(
            sim, name, order, target_cycles, max_passes,
            data_conns, ctl_recv, ctl_send,
            flush_interval=options.get("flush_interval", 16),
            window=options.get("window"),
            heartbeat_s=options.get("heartbeat_s", 5.0),
            die=options.get("die"),
            rings=options.get("rings"),
            packer=options.get("packer"),
            socket_plan=options.get("socket"))
        worker.loop()
    except _Stop:
        # past the fence the remaining frames are empty service frames;
        # a blocked ring write may abandon them instead of waiting on a
        # receiver that has already finalized
        worker._finalizing = True
        worker._flush_all()
        # final standalone acks: a peer may still be blocked on its
        # flow-control window for a pass we applied but never acked
        for peer, inbox in worker.inboxes.items():
            try:
                worker.conduits[peer].send_ack(inbox.applied_through)
            except (BrokenPipeError, OSError):
                pass
        try:
            ctl_send.send(("done", worker.fragment()))
        except (BrokenPipeError, OSError):
            os._exit(3)
        os._exit(0)
    except _Abort as abort:
        if abort.reason == "deadlock":
            try:
                ctl_send.send(("postmortem",
                               worker.postmortem_payload()))
            except (BrokenPipeError, OSError):
                pass
        os._exit(0)
    except Exception as exc:  # noqa: BLE001 — everything must be reported
        import traceback
        tail = traceback.format_exc(limit=-3)
        try:
            ctl_send.send(("failed", name, type(exc).__name__,
                           f"{exc}\n{tail}".rstrip()))
        except (BrokenPipeError, OSError):
            pass
        os._exit(1)
    os._exit(0)
