"""Exception hierarchy for the FireAxe reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors.  The compiler-facing errors carry enough structure for tools to
render actionable diagnostics (e.g. the combinational port chain that made a
partition boundary illegal, mirroring FireRipper's user feedback).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ReproError(Exception):
    """Base class for all library errors."""


class IRError(ReproError):
    """Malformed IR: unknown references, duplicate names, bad widths."""


class ElaborationError(ReproError):
    """The circuit could not be flattened into a netlist."""


class CombLoopError(ElaborationError):
    """A combinational cycle was found during elaboration.

    Attributes:
        cycle: flattened signal names forming the loop, in order.
    """

    def __init__(self, cycle: Sequence[str]):
        self.cycle = list(cycle)
        super().__init__(
            "combinational loop: " + " -> ".join(self.cycle + self.cycle[:1])
        )


class SimulationError(ReproError):
    """A runtime failure inside one of the simulation engines."""


class DeadlockError(SimulationError):
    """Token exchange between LI-BDNs can make no further progress.

    This is the failure mode of Fig. 2a in the paper: aggregating all I/O
    into a single channel pair across a combinational boundary produces a
    circular token dependency.

    Attributes:
        host_cycle: host time at which progress stopped.
        detail: human-readable description of the stuck channels.
        postmortem: structured
            :class:`~repro.observability.postmortem.DeadlockPostmortem`
            (full per-unit channel state plus the trailing trace-event
            ring) when raised by the partitioned harness.
    """

    def __init__(self, detail: str, host_cycle: Optional[int] = None,
                 postmortem: Optional[object] = None):
        self.host_cycle = host_cycle
        self.detail = detail
        self.postmortem = postmortem
        msg = f"LI-BDN deadlock: {detail}"
        if host_cycle is not None:
            msg += f" (host cycle {host_cycle})"
        super().__init__(msg)


class WorkerError(SimulationError):
    """A distributed-backend worker process failed (died, hung, or
    raised) and the run could not complete.

    Raised by the process backend's coordinator after it has terminated
    and reaped every remaining child, so a worker failure never leaves
    orphaned processes or a hung parent.

    Attributes:
        partition: name of the partition whose worker failed first
            (secondary casualties — workers that exited because a peer
            vanished — are not blamed).
        reason: short machine-readable cause (``died``, ``raised``,
            ``heartbeat-timeout``, ...).
    """

    def __init__(self, partition: str, reason: str, message: str):
        self.partition = partition
        self.reason = reason
        super().__init__(
            f"worker {partition!r} {reason}: {message}")


class BackendUnavailableError(SimulationError):
    """The requested execution backend cannot run on this host (e.g.
    the process backend on a platform without ``fork``)."""


class UnknownBackendError(SimulationError):
    """``backend=`` / ``REPRO_BACKEND`` named no known execution
    backend.  Raised at dispatch time (not deep inside a coordinator)
    so the message can list every valid name.

    Attributes:
        name: the unrecognized backend string.
        valid: the accepted backend names.
        source: where the bad name came from (``backend`` for the
            ``run`` argument, ``REPRO_BACKEND`` for the environment).
    """

    def __init__(self, name, valid: Sequence[str] = (),
                 source: str = "backend"):
        self.name = name
        self.valid = tuple(valid)
        msg = f"unknown {source} {name!r}"
        if self.valid:
            msg += f"; valid backends: {', '.join(self.valid)}"
        super().__init__(msg)


class HostDeadError(WorkerError):
    """A farm virtual host died or went silent, taking every partition
    worker placed on it down with it.

    Raised by the farm manager after it has aborted the surviving
    hosts and reaped every agent, so (like :class:`WorkerError`) the
    supervisor's ordinary rollback/re-place path applies.

    Attributes:
        host: name of the lost host.
    """

    def __init__(self, host: str, reason: str, message: str,
                 partition: str = ""):
        self.host = host
        super().__init__(partition or f"host:{host}", reason, message)


class UnsupportedTopologyError(SimulationError):
    """The simulation's structure cannot be distributed (e.g. a switch
    fabric shared by links of different source partitions)."""


class CompileError(ReproError):
    """FireRipper rejected the partition specification."""


class CombChainError(CompileError):
    """The combinational dependency chain across the boundary exceeds 2.

    FireRipper terminates compilation in this case and reports the chain of
    combinational ports so the user can move the partition point.

    Attributes:
        chain: the offending alternating output/input port chain.
    """

    def __init__(self, chain: Sequence[str]):
        self.chain = list(chain)
        super().__init__(
            "combinational dependency chain longer than 2 across the "
            "partition boundary: " + " -> ".join(self.chain)
        )


class SelectionError(CompileError):
    """The module-selection spec named instances that do not exist or
    cannot be grouped (e.g. non-adjacent NoC router indices)."""


class ResourceError(ReproError):
    """A partition does not fit the FPGA it was mapped to."""

    def __init__(self, message: str, utilization: Optional[dict] = None):
        self.utilization = dict(utilization or {})
        super().__init__(message)


class TransportError(ReproError):
    """Misconfigured FPGA-to-FPGA transport (topology, link count)."""


class SocketSetupError(TransportError):
    """The socket transport's rendezvous failed: a peer's listener
    never became reachable within the connect timeout (after bounded
    exponential-backoff retries), a hello handshake timed out, or the
    configured family/address is unusable on this host."""


class FarmError(ReproError):
    """A malformed or unusable farm host specification."""


class PlacementError(SimulationError):
    """No partition-to-host placement satisfies the farm constraints
    (host core capacity, co-location groups) — e.g. after host deaths
    left too little capacity to re-place the design."""


class CheckpointError(ReproError):
    """A partitioned-run checkpoint could not be taken or restored.

    Raised for unreadable or version-incompatible checkpoint files and
    for restores into a simulation whose topology (partitions, units,
    channels, links) does not match the one that was checkpointed.
    """


class FuzzFailure(SimulationError):
    """A differential-fuzz oracle found a scenario where the backends
    (or modes, or a checkpoint round-trip, or a fault-hardened run)
    disagree.

    Carries the minimized scenario so the failure is replayable:
    ``repro fuzz replay <repro_path>`` re-runs the exact (circuit,
    partition-spec, input-program, seed) tuple through the same oracle.

    Attributes:
        oracle: which oracle tripped (``identity``, ``fastmode``,
            ``checkpoint``, ``faults``).
        backend: the backend whose result diverged from the in-process
            reference (empty for single-backend oracles).
        scenario: the minimized scenario as a JSON-able dict.
        repro_path: where the replayable repro file was written (None
            when shrinking/persisting was disabled).
    """

    def __init__(self, oracle: str, backend: str, message: str,
                 scenario: Optional[dict] = None,
                 repro_path: Optional[str] = None):
        self.oracle = oracle
        self.backend = backend
        self.scenario = dict(scenario or {})
        self.repro_path = repro_path
        where = f" on backend {backend!r}" if backend else ""
        suffix = f" (repro: {repro_path})" if repro_path else ""
        super().__init__(
            f"fuzz oracle {oracle!r} failed{where}: {message}{suffix}")


class ServiceError(ReproError):
    """A malformed or unserviceable simulation-service request (bad
    job config, unknown job kind, an experiment that produced nothing
    to archive, ...)."""


class QuotaExceededError(ServiceError):
    """A tenant's submission exceeded its admission quota.

    Raised at submit time, before the job enters the queue, so the
    rejected request costs the service nothing.  Cache hits and
    coalesced (single-flight) submissions are not counted against the
    quota — only jobs that would occupy queue or worker capacity.

    Attributes:
        tenant: the submitting tenant.
        kind: which limit tripped (``queued`` or ``active``).
        limit: the configured ceiling.
        current: the tenant's count at rejection time.
    """

    def __init__(self, tenant: str, kind: str, limit: int,
                 current: int):
        self.tenant = tenant
        self.kind = kind
        self.limit = limit
        self.current = current
        super().__init__(
            f"tenant {tenant!r} exceeded its {kind} quota "
            f"({current} >= {limit})")


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in this service.

    Attributes:
        job_id: the unknown id.
    """

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"no such job: {job_id!r}")


class LinkGiveUpError(TransportError):
    """A reliable link exhausted its retry budget for one token.

    Attributes:
        link: the link's identity string.
        seq: sequence number of the undeliverable token.
        attempts: how many transmission attempts were made.
    """

    def __init__(self, link: str, seq: int, attempts: int):
        self.link = link
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"link {link}: token seq={seq} undeliverable after "
            f"{attempts} attempts")
