"""Cycle-based RTL simulator for the FIRRTL-like IR.

The simulator elaborates (flattens) a circuit into a netlist of single
assignments, topologically sorts the combinational logic, and then executes
``eval`` (combinational settle) / ``tick`` (register + memory commit)
phases.  It is the reference semantics against which the LI-BDN token
machinery and FireRipper's transforms are validated: *cycle counts from
this engine define ground truth*.
"""

from .elaborate import Elaboration, elaborate
from .engine import Simulator
from .vcd import VCDWriter, dump_vcd

__all__ = ["Simulator", "Elaboration", "elaborate", "VCDWriter", "dump_vcd"]
