"""Primitive-op evaluation and Python code generation.

Two implementations with identical semantics:

* :func:`eval_expr` — a tree-walking interpreter, used as the reference.
* :func:`compile_expr` — emits a Python expression string for the compiled
  engine, which ``exec``'s one flat function per circuit (typically ~10x
  faster, important for the multi-thousand-cycle partitioned co-sims).

All values are plain ints masked to their expression width.  Division and
remainder by zero evaluate to zero (a concrete choice for FIRRTL's
undefined case, applied identically in both implementations).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import SimulationError
from ..firrtl.ast import Expr, InstPort, Lit, PrimOp, Ref


def mask(width: int) -> int:
    return (1 << width) - 1


def _div(a: int, b: int) -> int:
    """Division helper exposed to generated code (div-by-zero -> 0)."""
    return a // b if b else 0


def _rem(a: int, b: int) -> int:
    """Remainder helper exposed to generated code (rem-by-zero -> 0)."""
    return a % b if b else 0


#: names the compiled engine must inject into the exec namespace
CODEGEN_HELPERS = {"_div": _div, "_rem": _rem}


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Interpret ``expr`` over flat signal values in ``env``."""
    if isinstance(expr, Ref):
        try:
            return env[expr.name]
        except KeyError:
            raise SimulationError(f"no value for signal {expr.name!r}")
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, InstPort):
        raise SimulationError(
            f"unelaborated instance port {expr.inst}.{expr.port}"
        )
    if isinstance(expr, PrimOp):
        return _eval_primop(expr, env)
    raise SimulationError(f"cannot evaluate {expr!r}")


def _eval_primop(expr: PrimOp, env: Dict[str, int]) -> int:
    op = expr.op
    args = expr.args
    m = mask(expr.width)
    if op == "mux":
        sel = eval_expr(args[0], env)
        return eval_expr(args[1] if sel else args[2], env)
    a = eval_expr(args[0], env)
    if op == "not":
        return (~a) & m
    if op == "andr":
        return int(a == mask(args[0].width))
    if op == "orr":
        return int(a != 0)
    if op == "xorr":
        return a.bit_count() & 1
    if op == "bits":
        hi, lo = expr.params
        return (a >> lo) & mask(hi - lo + 1)
    if op == "shl":
        return (a << expr.params[0]) & m
    if op == "shr":
        return (a >> expr.params[0]) & m
    if op == "pad":
        return a
    b = eval_expr(args[1], env)
    if op == "add":
        return (a + b) & m
    if op == "sub":
        return (a - b) & m
    if op == "mul":
        return (a * b) & m
    if op == "div":
        return (a // b) & m if b else 0
    if op == "rem":
        return (a % b) & m if b else 0
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "eq":
        return int(a == b)
    if op == "neq":
        return int(a != b)
    if op == "lt":
        return int(a < b)
    if op == "leq":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "geq":
        return int(a >= b)
    if op == "cat":
        return (a << args[1].width) | b
    if op == "dshl":
        return (a << b) & m
    if op == "dshr":
        return a >> b
    raise SimulationError(f"unhandled op {op!r}")


def compile_expr(expr: Expr, name_of: Callable[[str], str]) -> str:
    """Emit a Python expression computing ``expr``.

    ``name_of`` maps flat signal names to the Python identifiers holding
    their current values in the generated function.
    """
    if isinstance(expr, Ref):
        return name_of(expr.name)
    if isinstance(expr, Lit):
        return str(expr.value)
    if isinstance(expr, PrimOp):
        return _compile_primop(expr, name_of)
    raise SimulationError(f"cannot compile {expr!r}")


def _compile_primop(expr: PrimOp, name_of) -> str:
    op = expr.op
    m = mask(expr.width)
    cargs = [compile_expr(a, name_of) for a in expr.args]
    if op == "mux":
        return f"({cargs[1]} if {cargs[0]} else {cargs[2]})"
    a = cargs[0]
    if op == "not":
        return f"((~{a}) & {m})"
    if op == "andr":
        return f"(1 if {a} == {mask(expr.args[0].width)} else 0)"
    if op == "orr":
        return f"(1 if {a} else 0)"
    if op == "xorr":
        # int.bit_count is a single CPython popcount call — no string
        # materialization of the operand as bin() would do
        return f"(({a}).bit_count() & 1)"
    if op == "bits":
        hi, lo = expr.params
        inner = f"({a} >> {lo})" if lo else a
        return f"({inner} & {mask(hi - lo + 1)})"
    if op == "shl":
        return f"(({a} << {expr.params[0]}) & {m})"
    if op == "shr":
        return f"({a} >> {expr.params[0]})"
    if op == "pad":
        return a
    b = cargs[1]
    if op == "add":
        return f"(({a} + {b}) & {m})"
    if op == "sub":
        return f"(({a} - {b}) & {m})"
    if op == "mul":
        return f"(({a} * {b}) & {m})"
    if op == "div":
        return f"(_div({a}, {b}) & {m})"
    if op == "rem":
        return f"(_rem({a}, {b}) & {m})"
    if op == "and":
        return f"({a} & {b})"
    if op == "or":
        return f"({a} | {b})"
    if op == "xor":
        return f"({a} ^ {b})"
    if op == "eq":
        return f"(1 if {a} == {b} else 0)"
    if op == "neq":
        return f"(1 if {a} != {b} else 0)"
    if op == "lt":
        return f"(1 if {a} < {b} else 0)"
    if op == "leq":
        return f"(1 if {a} <= {b} else 0)"
    if op == "gt":
        return f"(1 if {a} > {b} else 0)"
    if op == "geq":
        return f"(1 if {a} >= {b} else 0)"
    if op == "cat":
        return f"(({a} << {expr.args[1].width}) | {b})"
    if op == "dshl":
        return f"((({a}) << ({b})) & {m})"
    if op == "dshr":
        return f"(({a}) >> ({b}))"
    raise SimulationError(f"unhandled op {op!r}")
