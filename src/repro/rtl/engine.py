"""Cycle-based execution engine.

:class:`Simulator` owns the flat signal environment and advances a circuit
through ``eval`` / ``tick`` phases:

* ``eval()`` settles all combinational logic given the current inputs and
  register state (safe to call repeatedly),
* ``tick()`` commits register next-values and memory writes computed from
  the *current* settled values, advancing one target cycle.

Two execution strategies share these semantics: a tree-walking interpreter
(reference) and a compiled mode that ``exec``'s one generated Python
function for the comb phase and one for the tick phase.  The test suite
checks they agree cycle-for-cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..errors import SimulationError
from ..firrtl.circuit import Circuit
from .elaborate import (
    Elaboration,
    FlatAssign,
    FlatMemRead,
    elaborate,
)
from .eval import CODEGEN_HELPERS, compile_expr, eval_expr, mask


class Simulator:
    """Executes an elaborated circuit cycle by cycle.

    Args:
        circuit: a :class:`Circuit` or a pre-computed :class:`Elaboration`.
        compiled: use generated-code execution (default) or the interpreter.
    """

    def __init__(self, circuit: Union[Circuit, Elaboration],
                 compiled: bool = True):
        if isinstance(circuit, Circuit):
            self.elab = elaborate(circuit)
        else:
            self.elab = circuit
        self.compiled = compiled
        self.env: Dict[str, int] = {}
        self.mem_state: Dict[str, List[int]] = {}
        self.cycle = 0
        if compiled:
            self._comb_fn, self._tick_fn = _compile(self.elab)
        self.reset()

    # -- state management ----------------------------------------------------

    def reset(self) -> None:
        """Zero all signals, apply register inits and memory images."""
        self.env = {name: 0 for name in self.elab.widths}
        for reg in self.elab.regs.values():
            self.env[reg.name] = reg.init
        self.mem_state = {}
        for m in self.elab.mems.values():
            data = [0] * m.depth
            for i, v in enumerate(m.init):
                data[i] = v & mask(m.width)
            self.mem_state[m.name] = data
        self.cycle = 0

    def snapshot(self) -> dict:
        """Capture the full simulation state (signals, memories, cycle).

        Restoring a snapshot resumes the simulation exactly where it was
        — useful for bisecting long runs toward a failure (the workflow
        behind the 24-core case study's bug hunt).
        """
        return {
            "env": dict(self.env),
            "mems": {k: list(v) for k, v in self.mem_state.items()},
            "cycle": self.cycle,
        }

    def restore(self, snapshot: dict) -> None:
        """Resume from a :meth:`snapshot`."""
        self.env = dict(snapshot["env"])
        self.mem_state = {k: list(v)
                          for k, v in snapshot["mems"].items()}
        self.cycle = snapshot["cycle"]

    # -- I/O -------------------------------------------------------------------

    def poke(self, name: str, value: int) -> None:
        """Set a top-level input port value (masked to the port width)."""
        width = self.elab.inputs.get(name)
        if width is None:
            raise SimulationError(f"{name!r} is not a top-level input")
        self.env[name] = value & mask(width)

    def peek(self, name: str) -> int:
        """Read any flat signal's current value."""
        try:
            return self.env[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}")

    def peek_outputs(self) -> Dict[str, int]:
        return {name: self.env[name] for name in self.elab.outputs}

    # -- execution ---------------------------------------------------------------

    def eval(self) -> None:
        """Settle combinational logic for the current inputs and state."""
        if self.compiled:
            self._comb_fn(self.env, self.mem_state)
            return
        for a in self.elab.assigns:
            if isinstance(a, FlatAssign):
                self.env[a.name] = eval_expr(a.expr, self.env)
            else:  # FlatMemRead
                addr = eval_expr(a.addr, self.env) % a.depth
                self.env[a.name] = self.mem_state[a.mem][addr]

    def tick(self) -> None:
        """Commit register and memory updates; advance one target cycle.

        Assumes :meth:`eval` ran since the last poke; call :meth:`step`
        for the combined sequence.
        """
        if self.compiled:
            self._tick_fn(self.env, self.mem_state)
        else:
            next_values = {}
            for reg in self.elab.regs.values():
                if reg.next is not None:
                    next_values[reg.name] = (
                        eval_expr(reg.next, self.env) & mask(reg.width))
            writes = []
            for w in self.elab.writes:
                if eval_expr(w.en, self.env):
                    addr = eval_expr(w.addr, self.env) % w.depth
                    data = eval_expr(w.data, self.env)
                    writes.append((w.mem, addr, data))
            self.env.update(next_values)
            for mem, addr, data in writes:
                self.mem_state[mem][addr] = data
        self.cycle += 1

    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, int]:
        """Poke ``inputs``, settle, capture outputs, then tick."""
        for name, value in (inputs or {}).items():
            self.poke(name, value)
        self.eval()
        outputs = self.peek_outputs()
        self.tick()
        return outputs

    def run(self, cycles: int,
            inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Step ``cycles`` times with constant inputs; return last outputs."""
        outputs: Dict[str, int] = {}
        for _ in range(cycles):
            outputs = self.step(inputs)
            inputs = None
        # settle so peeks after run() observe the post-tick state
        self.eval()
        return outputs

    def run_until(self, signal: str, value: int = 1,
                  max_cycles: int = 1_000_000) -> int:
        """Step until ``signal == value``; returns the cycle count at which
        the condition held (before the tick of that cycle)."""
        for _ in range(max_cycles):
            self.eval()
            if self.env[signal] == value:
                return self.cycle
            self.tick()
        raise SimulationError(
            f"{signal} never reached {value} within {max_cycles} cycles"
        )


def _compile(elab: Elaboration):
    """Generate the comb and tick functions for an elaboration."""
    ids: Dict[str, str] = {}

    def ident(name: str) -> str:
        if name not in ids:
            ids[name] = f"v{len(ids)}"
        return ids[name]

    # names computed combinationally in this netlist
    comb_targets = {a.name for a in elab.assigns}

    # every referenced name that is *not* a comb target must be loaded from
    # the environment first (registers, top inputs, never-driven signals)
    loads: List[str] = []
    seen_loads = set()

    def note_load(name: str) -> None:
        if name not in comb_targets and name not in seen_loads:
            seen_loads.add(name)
            loads.append(name)

    def compile_with_loads(expr) -> str:
        for leaf_name in _ref_names(expr):
            note_load(leaf_name)
        return compile_expr(expr, ident)

    body: List[str] = []
    for a in elab.assigns:
        if isinstance(a, FlatAssign):
            code = compile_with_loads(a.expr)
            body.append(f"    {ident(a.name)} = {code}")
        else:
            addr = compile_with_loads(a.addr)
            body.append(
                f"    {ident(a.name)} = mems[{a.mem!r}][({addr}) % {a.depth}]"
            )

    prologue = [f"    {ident(n)} = env[{n!r}]" for n in loads]
    epilogue = [f"    env[{a.name!r}] = {ident(a.name)}"
                for a in elab.assigns]
    # _div/_rem enter as default arguments so references inside the
    # generated body are LOAD_FAST locals, not module-global lookups
    sig = "env, mems, _div=_div, _rem=_rem"
    comb_src = f"def _comb({sig}):\n" + "\n".join(
        prologue + body + epilogue or ["    pass"]) + "\n"
    if not (prologue or body or epilogue):
        comb_src = f"def _comb({sig}):\n    pass\n"

    # tick: read settled values straight from env (simple and correct)
    env_ref = lambda name: f"env[{name!r}]"  # noqa: E731
    tick_lines: List[str] = []
    commit_lines: List[str] = []
    for i, reg in enumerate(elab.regs.values()):
        if reg.next is None:
            continue
        code = compile_expr(reg.next, env_ref)
        tick_lines.append(f"    n{i} = ({code}) & {mask(reg.width)}")
        commit_lines.append(f"    env[{reg.name!r}] = n{i}")
    for j, w in enumerate(elab.writes):
        en = compile_expr(w.en, env_ref)
        addr = compile_expr(w.addr, env_ref)
        data = compile_expr(w.data, env_ref)
        tick_lines.append(
            f"    w{j} = (({addr}) % {w.depth}, {data}) if {en} else None")
        commit_lines.append(
            f"    if w{j} is not None: mems[{w.mem!r}][w{j}[0]] = w{j}[1]")
    tick_body = tick_lines + commit_lines
    tick_src = f"def _tick({sig}):\n" + (
        "\n".join(tick_body) if tick_body else "    pass") + "\n"

    namespace: Dict[str, object] = dict(CODEGEN_HELPERS)
    exec(compile(comb_src, f"<comb:{elab.top}>", "exec"), namespace)
    exec(compile(tick_src, f"<tick:{elab.top}>", "exec"), namespace)
    return namespace["_comb"], namespace["_tick"]


def _ref_names(expr) -> Iterable[str]:
    from ..firrtl.ast import Ref

    for leaf in expr.refs():
        if isinstance(leaf, Ref):
            yield leaf.name
