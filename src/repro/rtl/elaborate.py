"""Hierarchy flattening: a circuit becomes a flat netlist.

Every signal of every instance receives a dot-separated flat name
(``tile0.core.pc``).  The result is an :class:`Elaboration` holding:

* ``assigns`` — one single-assignment per combinational signal, already in
  topological order (a :class:`~repro.errors.CombLoopError` names the loop
  otherwise),
* ``regs`` — flat registers with init and next-expression,
* ``mems``/``writes`` — flat memories and their synchronous write ports,
* top-level ``inputs``/``outputs``.

Registers with no connected next-value hold their state.  Instance input
ports become ordinary assigned signals; child output ports are assigned
inside the child's own scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import CombLoopError, ElaborationError
from ..firrtl.ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    InstTarget,
    Lit,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    PrimOp,
    Ref,
)
from ..firrtl.circuit import Circuit, Module


@dataclass
class FlatAssign:
    """Combinational assignment ``name = expr`` over flat references."""

    name: str
    expr: Expr


@dataclass
class FlatMemRead:
    """Combinational memory read ``name = mem[addr]``."""

    name: str
    mem: str
    addr: Expr
    depth: int
    width: int


@dataclass
class FlatReg:
    """Flattened register; ``next`` is None when the register holds."""

    name: str
    width: int
    init: int
    next: Optional[Expr] = None


@dataclass
class FlatMem:
    """Flattened memory."""

    name: str
    depth: int
    width: int
    init: Tuple[int, ...] = ()


@dataclass
class FlatMemWrite:
    """Flattened synchronous write port."""

    mem: str
    depth: int
    addr: Expr
    data: Expr
    en: Expr


AssignLike = Union[FlatAssign, FlatMemRead]


@dataclass
class Elaboration:
    """Flattened, topologically sorted netlist."""

    top: str
    inputs: Dict[str, int]
    outputs: Dict[str, int]
    assigns: List[AssignLike]
    regs: Dict[str, FlatReg]
    mems: Dict[str, FlatMem]
    writes: List[FlatMemWrite]
    widths: Dict[str, int]

    @property
    def comb_signal_count(self) -> int:
        return len(self.assigns)


def elaborate(circuit: Circuit) -> Elaboration:
    """Flatten ``circuit`` and topologically sort its combinational logic."""
    flat = _Flattener(circuit)
    flat.walk(circuit.top_module, "")
    assigns = _topo_sort(flat.assigns, flat.regs, flat.top_inputs)
    top = circuit.top_module
    return Elaboration(
        top=circuit.top,
        inputs={p.name: p.width for p in top.input_ports},
        outputs={p.name: p.width for p in top.output_ports},
        assigns=assigns,
        regs=flat.regs,
        mems=flat.mems,
        writes=flat.writes,
        widths=flat.widths,
    )


class _Flattener:
    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.assigns: Dict[str, AssignLike] = {}
        self.regs: Dict[str, FlatReg] = {}
        self.mems: Dict[str, FlatMem] = {}
        self.writes: List[FlatMemWrite] = []
        self.widths: Dict[str, int] = {}
        self.top_inputs = {p.name for p in circuit.top_module.input_ports}

    def walk(self, module: Module, prefix: str) -> None:
        def flat(name: str) -> str:
            return f"{prefix}{name}"

        def rewrite(expr: Expr) -> Expr:
            if isinstance(expr, Ref):
                return Ref(flat(expr.name), expr.width)
            if isinstance(expr, InstPort):
                return Ref(f"{prefix}{expr.inst}.{expr.port}", expr.width)
            if isinstance(expr, Lit):
                return expr
            if isinstance(expr, PrimOp):
                return PrimOp(expr.op, tuple(rewrite(a) for a in expr.args),
                              expr.width, expr.params)
            raise ElaborationError(f"cannot flatten expression {expr!r}")

        local_regs = {r.name for r in module.registers()}
        local_mems = {m.name: m for m in module.memories()}

        for p in module.ports:
            self.widths[flat(p.name)] = p.width

        for s in module.stmts:
            if isinstance(s, DefWire):
                self.widths[flat(s.name)] = s.width
            elif isinstance(s, DefNode):
                self.widths[flat(s.name)] = s.expr.width
                self._assign(flat(s.name), rewrite(s.expr))
            elif isinstance(s, DefRegister):
                name = flat(s.name)
                self.widths[name] = s.width
                self.regs[name] = FlatReg(name, s.width, s.init)
            elif isinstance(s, DefMemory):
                name = flat(s.name)
                self.mems[name] = FlatMem(name, s.depth, s.width,
                                          s.init or ())
            elif isinstance(s, MemReadPort):
                mem = local_mems[s.mem]
                name = flat(s.name)
                self.widths[name] = mem.width
                self._assign_read(
                    FlatMemRead(name, flat(s.mem), rewrite(s.addr),
                                mem.depth, mem.width))
            elif isinstance(s, MemWritePort):
                mem = local_mems[s.mem]
                self.writes.append(
                    FlatMemWrite(flat(s.mem), mem.depth, rewrite(s.addr),
                                 rewrite(s.data), rewrite(s.en)))
            elif isinstance(s, DefInstance):
                child = self.circuit.module(s.module)
                self.walk(child, f"{prefix}{s.name}.")
            elif isinstance(s, Connect):
                if isinstance(s.target, LocalTarget):
                    name = flat(s.target.name)
                    if s.target.name in local_regs:
                        self.regs[name].next = rewrite(s.expr)
                    else:
                        self._assign(name, rewrite(s.expr))
                elif isinstance(s.target, InstTarget):
                    name = f"{prefix}{s.target.inst}.{s.target.port}"
                    self._assign(name, rewrite(s.expr))

    def _assign(self, name: str, expr: Expr) -> None:
        if name in self.assigns:
            raise ElaborationError(f"{name} assigned twice")
        self.assigns[name] = FlatAssign(name, expr)
        self.widths.setdefault(name, expr.width)

    def _assign_read(self, read: FlatMemRead) -> None:
        if read.name in self.assigns:
            raise ElaborationError(f"{read.name} assigned twice")
        self.assigns[read.name] = read


def _expr_deps(expr: Expr) -> List[str]:
    return [r.name for r in expr.refs() if isinstance(r, Ref)]


def _assign_deps(a: AssignLike) -> List[str]:
    if isinstance(a, FlatAssign):
        return _expr_deps(a.expr)
    return _expr_deps(a.addr)


def _topo_sort(assigns: Dict[str, AssignLike], regs: Dict[str, FlatReg],
               top_inputs) -> List[AssignLike]:
    """Kahn's algorithm over combinational assignments.

    Registers and top-level inputs are exogenous (no incoming edges);
    anything left over after the sort is part of a combinational loop,
    which we extract and report.
    """
    comb_targets = set(assigns)
    in_deg: Dict[str, int] = {n: 0 for n in comb_targets}
    users: Dict[str, List[str]] = {n: [] for n in comb_targets}
    for name, a in assigns.items():
        for dep in _assign_deps(a):
            if dep in comb_targets:
                in_deg[name] += 1
                users[dep].append(name)
    ready = sorted(n for n, d in in_deg.items() if d == 0)
    order: List[AssignLike] = []
    idx = 0
    ready_list = list(ready)
    while idx < len(ready_list):
        name = ready_list[idx]
        idx += 1
        order.append(assigns[name])
        for user in users[name]:
            in_deg[user] -= 1
            if in_deg[user] == 0:
                ready_list.append(user)
    if len(order) != len(assigns):
        remaining = {n for n, d in in_deg.items() if d > 0}
        raise CombLoopError(_extract_cycle(assigns, remaining))
    return order


def _extract_cycle(assigns: Dict[str, AssignLike], remaining) -> List[str]:
    start = sorted(remaining)[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        deps = [d for d in _assign_deps(assigns[node]) if d in remaining]
        node = deps[0]
        if node in seen:
            return path[path.index(node):]
        path.append(node)
        seen.add(node)
