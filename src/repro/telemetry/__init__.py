"""Live telemetry: metrics registry, time-series sampling, run
registry, regression gating.

Where :mod:`repro.observability` answers "what happened" after the fact
(event traces, FMR breakdowns, postmortems), this package answers "what
is happening and how does it compare":

* :mod:`~repro.telemetry.metrics` — partition-scoped counters, gauges
  and histograms behind a pay-as-you-go
  :class:`~repro.telemetry.metrics.MetricsRegistry` (null by default,
  like the tracer),
* :mod:`~repro.telemetry.sampler` — a cycle-keyed
  :class:`~repro.telemetry.sampler.Sampler` emitting deterministic
  per-partition time-series, bit-identical between the in-process loop
  and the process backend (per-worker series ride the existing pipes
  and are merged by the coordinator), plus the
  :class:`~repro.telemetry.sampler.LiveStatus` file ``repro watch``
  polls,
* :mod:`~repro.telemetry.runs` — the persistent
  :class:`~repro.telemetry.runs.RunRegistry` under ``results/runs/``
  and the ``repro compare`` diff (rate delta + FMR attribution),
* :mod:`~repro.telemetry.regression` — the regression detector behind
  ``repro regress`` and the CI ``bench-regression`` gate.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from .regression import (
    GateReport,
    Violation,
    check_bench_files,
    check_rates,
    check_run,
    load_baseline,
    measure_canonical,
    run_gate,
    save_baseline,
)
from .runs import (
    RunComparison,
    RunRegistry,
    compare_runs,
    config_fingerprint,
    format_comparison,
    run_record,
)
from .sampler import (
    LiveStatus,
    NULL_TELEMETRY,
    NullTelemetry,
    SAMPLE_FIELDS,
    Sampler,
    Telemetry,
    telemetry_from_env,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "SAMPLE_FIELDS",
    "Sampler",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "LiveStatus",
    "telemetry_from_env",
    "RunRegistry",
    "RunComparison",
    "run_record",
    "compare_runs",
    "format_comparison",
    "config_fingerprint",
    "GateReport",
    "Violation",
    "measure_canonical",
    "check_rates",
    "check_run",
    "check_bench_files",
    "load_baseline",
    "save_baseline",
    "run_gate",
]
