"""Cycle-keyed time-series sampling over a metrics registry.

The paper's sweeps (Figs. 7-14) are all rate-vs-configuration curves,
but a *single* partitioned run also has structure over time: link-wait
grows when an upstream partition slows, credit stalls appear when a
receiver falls behind, FAME-5 contention shows up as serdes time.  The
:class:`Sampler` captures that by snapshotting each partition's timing
overlay every ``interval`` *target cycles*.

Determinism is the design center.  A sample for partition ``p`` is
taken at the first scheduling slot at which ``p``'s target cycle
reaches the next multiple of the interval, and every sampled value is
derived from ``p``-local modelled state (``busy_until``, FMR spans,
source-side link counters, arrival-queue depths).  Under the process
backend the wavefront schedule makes a partition's local state at that
slot bit-identical to the serial round-robin's, so the per-worker
series the coordinator merges are bit-identical to an in-process run's
— the property suite asserts exactly this.

A :class:`Telemetry` object bundles one run's registry + sampler and is
what :class:`~repro.harness.partitioned.PartitionedSimulation` accepts
as its ``telemetry`` argument.  The default is :data:`NULL_TELEMETRY`
(disabled, free).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry, NULL_METRICS

#: one series entry: (target cycle, {metric name: value})
SeriesPoint = Tuple[int, Dict[str, float]]

#: metric names every sample carries, in emission order
SAMPLE_FIELDS: Tuple[str, ...] = (
    "busy_ns", "ns_per_kcycle", "fmr",
    "compute_ns", "serdes_ns", "link_wait_ns", "credit_stall_ns",
    "sync_ns",
    "tokens_tx", "tokens_rx", "credit_stalls", "queue_depth",
    "link_tokens",
)


class Sampler:
    """Emits one :data:`SeriesPoint` per partition per ``interval``
    target cycles."""

    def __init__(self, registry: MetricsRegistry, interval: int = 50):
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self.registry = registry
        self.interval = interval
        #: partition -> ordered sample series
        self.series: Dict[str, List[SeriesPoint]] = {}
        #: partition -> next target cycle at which to sample
        self._next: Dict[str, int] = {}

    def on_pass(self, sim, part) -> None:
        """Called by the harness right after ``part``'s slot in a pass;
        takes a sample when the partition crossed its next threshold."""
        cycle = part.target_cycle
        if cycle < self._next.get(part.name, self.interval):
            return
        self.take(sim, part)
        self._next[part.name] = \
            (cycle // self.interval + 1) * self.interval

    def take(self, sim, part) -> SeriesPoint:
        """Sample ``part`` now, regardless of thresholds."""
        cycle = part.target_cycle
        spans = part.hooks.spans
        reg = self.registry
        name = part.name
        busy = part.busy_until
        host_cycles = (busy / part.host_cycle_ns
                       if part.host_cycle_ns else 0.0)
        queue_depth = sum(
            len(q) for key, q in sim._arrivals.items()
            if key[0] == name)
        link_tokens = sum(link.tokens for link in sim.links
                          if link.src[0] == name)
        values = {
            "busy_ns": busy,
            "ns_per_kcycle": busy / cycle * 1e3 if cycle else 0.0,
            "fmr": host_cycles / cycle if cycle else 0.0,
            "compute_ns": spans.compute_ns,
            "serdes_ns": spans.serdes_ns,
            "link_wait_ns": spans.link_wait_ns,
            "credit_stall_ns": spans.credit_stall_ns,
            "sync_ns": spans.sync_ns,
            "tokens_tx": reg.value("counter", "tokens_tx", name),
            "tokens_rx": reg.value("counter", "tokens_rx", name),
            "credit_stalls": reg.value("counter", "credit_stalls",
                                       name),
            "queue_depth": float(queue_depth),
            "link_tokens": float(link_tokens),
        }
        point: SeriesPoint = (cycle, values)
        self.series.setdefault(name, []).append(point)
        return point

    # -- persistence ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "interval": self.interval,
            "next": dict(sorted(self._next.items())),
            "series": {
                name: [[cycle, dict(sorted(values.items()))]
                       for cycle, values in points]
                for name, points in sorted(self.series.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.interval = state.get("interval", self.interval)
        self._next = {name: int(cycle)
                      for name, cycle in state.get("next", {}).items()}
        self.series = {
            name: [(int(cycle), dict(values))
                   for cycle, values in points]
            for name, points in state.get("series", {}).items()
        }


class LiveStatus:
    """Wall-clock-throttled writer of an in-flight run's status file.

    ``repro watch`` polls the JSON this writes.  Wall time is used only
    to pace the writes and stamp ``updated`` — nothing here feeds back
    into simulation state, so live status never perturbs determinism.
    """

    def __init__(self, path: Union[str, Path],
                 min_interval_s: float = 0.2):
        self.path = Path(path)
        self.min_interval_s = min_interval_s
        # None until the first write: monotonic() counts from an
        # arbitrary epoch (often boot), so seeding with 0.0 would
        # throttle the very first update on a freshly booted machine
        self._last_write: Optional[float] = None

    def update(self, payload: dict, force: bool = False) -> None:
        now = time.monotonic()
        if not force and self._last_write is not None \
                and now - self._last_write < self.min_interval_s:
            return
        self._last_write = now
        payload = dict(payload)
        payload["updated"] = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)  # atomic: watchers never read a torn file

    @staticmethod
    def read(path: Union[str, Path]) -> Optional[dict]:
        try:
            return json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError):
            return None


class Telemetry:
    """One run's metrics registry + sampler (+ optional live status).

    Args:
        sample_every: target cycles between samples.
        registry: the instrument registry (a fresh
            :class:`~repro.telemetry.metrics.MetricsRegistry` by
            default).
        live_path: when given, a :class:`LiveStatus` file is kept up to
            date while the run progresses (``repro watch`` reads it).
        annotations: extra identity keys merged into every live-status
            payload (the simulation service stamps ``job``, ``tenant``
            and ``fingerprint`` here so ``repro watch --job`` can name
            what it is following).  Annotations never override the
            harness-owned payload fields.
    """

    enabled: bool = True

    def __init__(self, sample_every: int = 50,
                 registry: Optional[MetricsRegistry] = None,
                 live_path: Optional[Union[str, Path]] = None,
                 annotations: Optional[dict] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.sampler = Sampler(self.registry, sample_every)
        self.live: Optional[LiveStatus] = (
            LiveStatus(live_path) if live_path is not None else None)
        self.annotations = dict(annotations or {})
        #: run target, set by the harness so live status can show
        #: progress toward it
        self.target_cycles: Optional[int] = None

    @property
    def sample_every(self) -> int:
        return self.sampler.interval

    def on_pass(self, sim, part) -> None:
        self.sampler.on_pass(sim, part)
        if self.live is not None:
            self.live.update(self.live_payload(sim))

    def live_payload(self, sim, status: str = "running") -> dict:
        frontier = sim.frontier_cycle()
        wall_ns = max((p.busy_until
                       for p in sim.partitions.values()), default=0.0)
        rate_hz = frontier / wall_ns * 1e9 if wall_ns > 0 else 0.0
        payload = {
            "status": status,
            "backend": sim.last_run_backend or "inproc",
            "frontier_cycle": frontier,
            "target_cycles": self.target_cycles,
            "wall_ns": wall_ns,
            "rate_hz": rate_hz,
            "partitions": {name: p.target_cycle
                           for name, p in sim.partitions.items()},
        }
        for key, value in self.annotations.items():
            payload.setdefault(key, value)
        return payload

    def finish(self, sim) -> None:
        """Write the terminal live-status record (forced)."""
        if self.live is not None:
            self.live.update(self.live_payload(sim, status="done"),
                             force=True)

    # -- result / persistence --------------------------------------------

    def detail(self) -> dict:
        """The ``SimulationResult.detail['telemetry']`` payload —
        deterministic, JSON-able, bit-identical across backends."""
        return {
            "sample_every": self.sampler.interval,
            "series": self.sampler.state_dict()["series"],
            "metrics": self.registry.snapshot(),
        }

    def state_dict(self) -> dict:
        return {
            "sampler": self.sampler.state_dict(),
            "metrics": self.registry.snapshot(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.sampler.load_state_dict(state.get("sampler", {}))
        self.registry = MetricsRegistry()
        self.registry.load_snapshot(state.get("metrics", {}))
        self.sampler.registry = self.registry

    def merge_worker(self, part: str, state: dict) -> None:
        """Overlay one worker's telemetry onto this (parent) session:
        only the series, cursor and instruments of the partition the
        worker owns are taken, mirroring the state-fragment ownership
        rule."""
        sampler_state = state.get("sampler", {})
        series = sampler_state.get("series", {}).get(part)
        if series is not None:
            self.sampler.series[part] = [
                (int(cycle), dict(values)) for cycle, values in series]
        nxt = sampler_state.get("next", {}).get(part)
        if nxt is not None:
            self.sampler._next[part] = int(nxt)
        self.registry.load_snapshot(state.get("metrics", {}),
                                    part=part)


class NullTelemetry(Telemetry):
    """The default disabled session: no registry, no samples, no cost."""

    enabled = False

    def __init__(self):
        self.registry = NULL_METRICS
        self.sampler = Sampler(NULL_METRICS)
        self.live = None
        self.annotations = {}
        self.target_cycles = None

    def on_pass(self, sim, part) -> None:  # pragma: no cover
        pass

    def finish(self, sim) -> None:  # pragma: no cover
        pass


#: shared default session — attach sites use this instead of None checks
NULL_TELEMETRY = NullTelemetry()


def telemetry_from_env() -> Optional[Telemetry]:
    """A :class:`Telemetry` configured by ``REPRO_METRICS`` (the sample
    interval in target cycles), or None when the variable is unset —
    the ambient way to turn sampling on for tools that do not plumb a
    session themselves."""
    raw = os.environ.get("REPRO_METRICS", "").strip()
    if not raw:
        return None
    return Telemetry(sample_every=max(1, int(raw)))
