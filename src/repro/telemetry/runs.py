"""Persistent run registry: archive, look up, and diff runs.

Every archived run lands under ``results/runs/<run_id>/run.json`` with
its config fingerprint, backend, headline numbers, per-partition FMR
breakdown and (when telemetry was on) the sampled metric series.  The
registry is the memory the regression detector checks new runs against,
and what ``repro compare A B`` diffs:

* the **rate delta** between two runs, and
* the **FMR attribution** of that delta — which overhead component
  (serdes, link wait, credit stall, sync) of which partition absorbed
  the extra host time.  Because the FMR components partition each
  partition's ``busy_until`` exactly, the component deltas weighted by
  simulated cycles account for the whole change in host time; the
  dominant one names the cause.

Run identity: ``run_id`` is caller-chosen (CLI default: a name plus the
config fingerprint plus a sequence number), and the *fingerprint* —
a hash over the run's configuration — groups runs of the same workload
across time so trajectories can be tracked.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ReproError
from ..observability.fmr import FMR_COMPONENTS

RUN_FORMAT = "fireaxe-repro-run"
RUN_VERSION = 1
INDEX_FORMAT = "fireaxe-repro-run-index"
INDEX_FILE = "index.json"


def config_fingerprint(config: dict) -> str:
    """Stable 12-hex-digit digest of a run configuration."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def run_record(result, name: str = "", backend: str = "",
               config: Optional[dict] = None,
               extra: Optional[dict] = None) -> dict:
    """Build the archive payload for one ``SimulationResult``.

    ``extra`` merges additional top-level keys into the record (e.g.
    the farm layer's ``{"farm": {placement, host_fmr, ...}}``); it may
    not override the fixed schema fields.
    """
    config = dict(config or {})
    detail = dict(result.detail)
    record = {
        "format": RUN_FORMAT,
        "version": RUN_VERSION,
        "name": name,
        "backend": backend,
        "config": config,
        "fingerprint": config_fingerprint(config),
        "created": time.time(),
        "target_cycles": result.target_cycles,
        "wall_ns": result.wall_ns,
        "rate_hz": result.rate_hz,
        "tokens_transferred": result.tokens_transferred,
        "per_partition_cycles": dict(result.per_partition_cycles),
        "detail": detail,
    }
    for key, value in (extra or {}).items():
        if key in record:
            raise ReproError(
                f"extra run-record key {key!r} collides with the "
                "fixed schema")
        record[key] = value
    return record


class RunRegistry:
    """Archive of runs under one directory (``results/runs`` by
    default).

    As a cache substrate the registry keeps an ``index.json`` beside
    the run directories mapping ``run_id`` to its fingerprint,
    creation time and on-disk size, so fingerprint lookups
    (:meth:`latest`, :meth:`trajectory`) read one small file plus the
    matching record instead of parsing every ``run.json``.  Both the
    records and the index are written via atomic tmp+rename, so
    concurrent readers never observe a torn file; the index is
    validated against the directory names and rebuilt from a scan
    whenever runs appeared or vanished behind the registry's back.
    """

    def __init__(self, root: Union[str, Path] = "results/runs"):
        self.root = Path(root)

    # -- write ------------------------------------------------------------

    def archive(self, result, name: str = "run",
                backend: str = "", config: Optional[dict] = None,
                run_id: Optional[str] = None,
                extra: Optional[dict] = None) -> Path:
        """Persist one run; returns the record path."""
        record = run_record(result, name=name, backend=backend,
                            config=config, extra=extra)
        if run_id is None:
            run_id = self._new_id(name, record["fingerprint"])
        record["run_id"] = run_id
        path = self.root / run_id / "run.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True))
        tmp.replace(path)
        entries = self.index()
        entries[run_id] = self._index_entry(record, path)
        self._write_index(entries)
        return path

    def _new_id(self, name: str, fingerprint: str) -> str:
        seq = 0
        prefix = f"{name}-{fingerprint}"
        while (self.root / f"{prefix}-{seq:04d}").exists():
            seq += 1
        return f"{prefix}-{seq:04d}"

    def remove(self, run_id: str) -> None:
        """Delete one archived run and its index entry."""
        path = self.root / run_id
        if not (path / "run.json").is_file():
            raise ReproError(f"no archived run {run_id!r} under "
                             f"{self.root}")
        shutil.rmtree(path)
        entries = self.index()
        entries.pop(run_id, None)
        self._write_index(entries)

    def gc(self, max_age_s: Optional[float] = None,
           keep: Optional[int] = None,
           max_bytes: Optional[int] = None,
           dry_run: bool = False,
           now: Optional[float] = None) -> List[str]:
        """Cache eviction: prune archived runs, oldest first.

        Three independent policies compose (any may be None):

        * ``max_age_s`` — drop runs older than this many seconds,
        * ``keep`` — keep at most this many runs (newest survive),
        * ``max_bytes`` — drop oldest runs until the total archive
          size fits the budget.

        Returns the pruned run ids (oldest first); ``dry_run`` reports
        without deleting.
        """
        now = time.time() if now is None else now
        entries = self.index()
        survivors = sorted(entries.items(),
                           key=lambda kv: kv[1].get("created", 0.0))
        pruned: List[str] = []

        def prune(run_id: str) -> None:
            pruned.append(run_id)

        if max_age_s is not None:
            fresh = []
            for run_id, entry in survivors:
                if now - entry.get("created", 0.0) > max_age_s:
                    prune(run_id)
                else:
                    fresh.append((run_id, entry))
            survivors = fresh
        if keep is not None and len(survivors) > keep:
            excess = len(survivors) - keep
            for run_id, _ in survivors[:excess]:
                prune(run_id)
            survivors = survivors[excess:]
        if max_bytes is not None:
            total = sum(e.get("bytes", 0) for _, e in survivors)
            while survivors and total > max_bytes:
                run_id, entry = survivors.pop(0)
                total -= entry.get("bytes", 0)
                prune(run_id)
        if not dry_run:
            for run_id in pruned:
                shutil.rmtree(self.root / run_id, ignore_errors=True)
            if pruned:
                for run_id in pruned:
                    entries.pop(run_id, None)
                self._write_index(entries)
        return pruned

    # -- index ------------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / INDEX_FILE

    @staticmethod
    def _index_entry(record: dict, path: Path) -> dict:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        return {
            "fingerprint": record.get("fingerprint", ""),
            "name": record.get("name", ""),
            "created": record.get("created", 0.0),
            "rate_hz": record.get("rate_hz", 0.0),
            "target_cycles": record.get("target_cycles", 0),
            "bytes": size,
        }

    def index(self) -> Dict[str, dict]:
        """``run_id -> {fingerprint, created, bytes, ...}`` for every
        archived run; rebuilt by scanning when missing or when the run
        directories no longer match it (cheap name-set check — no
        record is parsed on the happy path)."""
        data = None
        try:
            payload = json.loads(self._index_path.read_text())
            if payload.get("format") == INDEX_FORMAT:
                data = payload.get("runs", {})
        except (OSError, json.JSONDecodeError):
            data = None
        dirs = set()
        if self.root.is_dir():
            dirs = {p.name for p in self.root.iterdir()
                    if (p / "run.json").is_file()}
        if data is None or set(data) != dirs:
            data = self._rebuild_index()
        return data

    def _rebuild_index(self) -> Dict[str, dict]:
        entries: Dict[str, dict] = {}
        if not self.root.is_dir():
            return entries
        for path in sorted(self.root.glob("*/run.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("format") != RUN_FORMAT:
                continue
            entries[path.parent.name] = self._index_entry(record, path)
        self._write_index(entries)
        return entries

    def _write_index(self, entries: Dict[str, dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"format": INDEX_FORMAT,
                   "runs": dict(sorted(entries.items()))}
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(self._index_path)

    def total_bytes(self) -> int:
        """Total archived record size, from the index."""
        return sum(e.get("bytes", 0) for e in self.index().values())

    # -- read -------------------------------------------------------------

    def load(self, run_id: str) -> dict:
        """Load one archived run by id (or by a path to its json)."""
        path = Path(run_id)
        if not path.is_file():
            path = self.root / run_id / "run.json"
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read run {run_id!r}: {exc}")
        if record.get("format") != RUN_FORMAT:
            raise ReproError(f"{path} is not an archived run record")
        return record

    def list_runs(self) -> List[dict]:
        """Every archived record, oldest first."""
        records = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob("*/run.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("format") == RUN_FORMAT:
                records.append(record)
        records.sort(key=lambda r: r.get("created", 0.0))
        return records

    def _matching_ids(self, fingerprint: str) -> List[str]:
        """Run ids sharing ``fingerprint``, oldest first, via the
        index — no record is parsed."""
        matches = [(entry.get("created", 0.0), run_id)
                   for run_id, entry in self.index().items()
                   if entry.get("fingerprint") == fingerprint]
        return [run_id for _, run_id in sorted(matches)]

    def trajectory(self, fingerprint: str) -> List[dict]:
        """Archived runs sharing one config fingerprint, oldest
        first — the history a new run of that config is judged
        against."""
        records = []
        for run_id in self._matching_ids(fingerprint):
            try:
                records.append(self.load(run_id))
            except ReproError:
                continue
        return records

    def latest(self, fingerprint: str) -> Optional[dict]:
        """The newest archived run of one config fingerprint — the
        cache-lookup primitive: one index read plus one record read,
        however many runs are archived."""
        for run_id in reversed(self._matching_ids(fingerprint)):
            try:
                return self.load(run_id)
            except ReproError:
                continue
        return None


# -- comparison ------------------------------------------------------------


@dataclass
class RunComparison:
    """The diff of two archived runs."""

    run_a: str
    run_b: str
    rate_a_hz: float
    rate_b_hz: float
    #: per partition, per FMR component: B minus A (host cycles per
    #: target cycle)
    fmr_delta: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per component: cycle-weighted host-cycle delta across partitions
    attribution: Dict[str, float] = field(default_factory=dict)

    @property
    def rate_delta_pct(self) -> float:
        if self.rate_a_hz == 0:
            return 0.0
        return (self.rate_b_hz / self.rate_a_hz - 1.0) * 100.0

    @property
    def dominant_component(self) -> str:
        """The FMR component absorbing the largest share of the host
        time change (in the direction of the change)."""
        if not self.attribution:
            return "none"
        total = sum(self.attribution.values())
        key = max if total >= 0 else min
        return key(self.attribution, key=self.attribution.get)


def compare_runs(a: dict, b: dict) -> RunComparison:
    """Diff two :func:`run_record` payloads (A = baseline, B = new)."""
    comparison = RunComparison(
        run_a=a.get("run_id", a.get("name", "A")),
        run_b=b.get("run_id", b.get("name", "B")),
        rate_a_hz=a.get("rate_hz", 0.0),
        rate_b_hz=b.get("rate_hz", 0.0))
    break_a = a.get("detail", {}).get("fmr_breakdown", {})
    break_b = b.get("detail", {}).get("fmr_breakdown", {})
    cycles_a = a.get("per_partition_cycles", {})
    cycles_b = b.get("per_partition_cycles", {})
    attribution = {name: 0.0 for name in FMR_COMPONENTS}
    for part in sorted(set(break_a) & set(break_b)):
        deltas = {}
        weight = min(cycles_a.get(part, a.get("target_cycles", 0)),
                     cycles_b.get(part, b.get("target_cycles", 0)))
        for component in FMR_COMPONENTS:
            delta = (break_b[part].get(component, 0.0)
                     - break_a[part].get(component, 0.0))
            deltas[component] = delta
            attribution[component] += delta * weight
        comparison.fmr_delta[part] = deltas
    comparison.attribution = attribution
    return comparison


def format_comparison(comparison: RunComparison) -> str:
    """Render a comparison the way ``repro compare`` prints it."""
    sign = "+" if comparison.rate_delta_pct >= 0 else ""
    lines = [
        f"compare {comparison.run_a} -> {comparison.run_b}",
        f"rate: {comparison.rate_a_hz / 1e3:.2f} kHz -> "
        f"{comparison.rate_b_hz / 1e3:.2f} kHz "
        f"({sign}{comparison.rate_delta_pct:.1f}%)",
    ]
    if comparison.fmr_delta:
        lines.append("")
        lines.append("FMR delta (host cycles per target cycle, B - A):")
        header = f"{'partition':>12}" + "".join(
            f"{name:>14}" for name in FMR_COMPONENTS)
        lines.append(header)
        for part in sorted(comparison.fmr_delta):
            deltas = comparison.fmr_delta[part]
            lines.append(f"{part:>12}" + "".join(
                f"{deltas.get(name, 0.0):>+14.3f}"
                for name in FMR_COMPONENTS))
        total = sum(comparison.attribution.values())
        if total:
            lines.append("")
            lines.append("attribution of the host-time change:")
            for name in FMR_COMPONENTS:
                value = comparison.attribution[name]
                share = value / total * 100.0
                lines.append(f"  {name:>14}: {value:>+12.1f} "
                             f"host cycles ({share:.1f}%)")
            lines.append(f"dominant component: "
                         f"{comparison.dominant_component}")
    return "\n".join(lines)
