"""Performance-regression detection against recorded history.

The timing overlay prices every host action in *modelled* time, so the
achieved simulation rate of a fixed configuration is a deterministic
number — a behavioural fingerprint of the whole pipeline (compiler,
harness, credit logic, transport pricing).  That makes rate regression
checking exact: any code change that slows the modelled hot path (or
mis-prices an action) moves a canonical rate, and the detector flags it
without wall-clock noise.

Three kinds of checks, all threshold-configurable:

* :func:`measure_canonical` / :func:`check_rates` — run a small suite
  of canonical partitioned configurations and compare each modelled
  rate against the committed baseline (``results/BENCH_rates.json``);
  a rate more than ``threshold`` below baseline is a violation.
* :func:`check_run` — judge a freshly archived run against the
  :class:`~repro.telemetry.runs.RunRegistry` trajectory of its config
  fingerprint (the latest prior run of the same workload).
* :func:`check_bench_files` — validate the committed
  ``results/BENCH_*.json`` measurements against their own bounds (the
  null-tracer overhead cap, wire batching actually batching, the fuzz
  corpus compiling collision-free over every shape).

The CI ``bench-regression`` job runs all of this via ``repro regress``
and must fail on a >10% rate degradation — which the job proves by
also running with ``--inject-slowdown`` and expecting failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .runs import RunRegistry

RATES_FILE = "BENCH_rates.json"
RATES_FORMAT = "fireaxe-repro-canonical-rates"
DEFAULT_THRESHOLD = 0.10


def _pair_rate(mode: str, transport_name: str,
               cycles: int = 200) -> float:
    # imported lazily: the compiler stack imports the harness, which
    # imports this package — a module-level import would be circular
    from ..fireripper import FireRipper, PartitionGroup, PartitionSpec
    from ..platform import PCIE_P2P, QSFP_AURORA

    transport = {"qsfp": QSFP_AURORA, "pcie": PCIE_P2P}[transport_name]
    from ..targets import make_comb_pair_circuit
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())
    sim = design.build_simulation(transport)
    return sim.run(cycles, backend="inproc").rate_hz


#: name -> zero-argument callable returning a deterministic modelled
#: rate in Hz
CANONICAL_RATES: Dict[str, Callable[[], float]] = {
    "pair_exact_qsfp": lambda: _pair_rate("exact", "qsfp"),
    "pair_fast_qsfp": lambda: _pair_rate("fast", "qsfp"),
    "pair_exact_pcie": lambda: _pair_rate("exact", "pcie"),
}


def measure_canonical(slowdown: float = 0.0) -> Dict[str, float]:
    """Measure every canonical configuration's modelled rate.

    ``slowdown`` scales the measured rates down — the CI self-test's
    injected degradation (0.15 models a 15% slower simulator).
    """
    scale = 1.0 - slowdown
    return {name: fn() * scale
            for name, fn in CANONICAL_RATES.items()}


@dataclass
class Violation:
    """One detected regression."""

    source: str       # file or run the baseline came from
    metric: str
    baseline: float
    measured: float
    limit_pct: float  # allowed degradation

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0
        return (self.measured / self.baseline - 1.0) * 100.0

    def describe(self) -> str:
        return (f"{self.source}: {self.metric} degraded "
                f"{self.delta_pct:+.1f}% "
                f"({self.baseline:.6g} -> {self.measured:.6g}, "
                f"limit -{self.limit_pct:.0f}%)")


def save_baseline(rates: Dict[str, float],
                  results_dir: Union[str, Path]) -> Path:
    path = Path(results_dir) / RATES_FILE
    payload = {"format": RATES_FORMAT,
               "rates_hz": dict(sorted(rates.items()))}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_baseline(results_dir: Union[str, Path]
                  ) -> Optional[Dict[str, float]]:
    path = Path(results_dir) / RATES_FILE
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("format") != RATES_FORMAT:
        return None
    return payload.get("rates_hz", {})


def check_rates(measured: Dict[str, float],
                baseline: Dict[str, float],
                threshold: float = DEFAULT_THRESHOLD
                ) -> List[Violation]:
    """Rates more than ``threshold`` below their baseline."""
    violations = []
    for name in sorted(baseline):
        if name not in measured:
            continue
        if measured[name] < baseline[name] * (1.0 - threshold):
            violations.append(Violation(
                RATES_FILE, name, baseline[name], measured[name],
                threshold * 100.0))
    return violations


def check_run(record: dict, registry: RunRegistry,
              threshold: float = DEFAULT_THRESHOLD
              ) -> List[Violation]:
    """Judge one archived run against the newest *prior* run sharing
    its config fingerprint (no history, no verdict)."""
    history = registry.trajectory(record.get("fingerprint", ""))
    run_id = record.get("run_id")
    prior = [r for r in history if r.get("run_id") != run_id]
    if not prior:
        return []
    reference = prior[-1]
    rate = record.get("rate_hz", 0.0)
    base = reference.get("rate_hz", 0.0)
    if base > 0 and rate < base * (1.0 - threshold):
        return [Violation(
            reference.get("run_id", "prior-run"), "rate_hz",
            base, rate, threshold * 100.0)]
    return []


def check_bench_files(results_dir: Union[str, Path],
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> List[Violation]:
    """Validate committed benchmark measurements against their own
    bounds."""
    results_dir = Path(results_dir)
    violations: List[Violation] = []

    def load(name: str) -> Optional[dict]:
        try:
            return json.loads((results_dir / name).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    trace = load("BENCH_trace_overhead.json")
    if trace is not None:
        bound = trace.get("bound_pct", 5.0)
        for metric in ("null_overhead_pct",
                       "null_metrics_overhead_pct",
                       "process_null_overhead_pct"):
            value = trace.get(metric)
            if value is not None and value > bound:
                violations.append(Violation(
                    "BENCH_trace_overhead.json", metric,
                    bound, value, 0.0))
    parallel = load("BENCH_parallel_speedup.json")
    if parallel is not None:
        speedup = parallel.get("wire_batching_speedup")
        if speedup is not None and speedup < 1.0:
            violations.append(Violation(
                "BENCH_parallel_speedup.json",
                "wire_batching_speedup", 1.0, speedup, 0.0))
    token_plane = load("BENCH_token_plane.json")
    if token_plane is not None:
        for metric, floor in (("packed_codec_speedup", 5.0),
                              ("shm_vs_pipe_speedup", 2.0)):
            value = token_plane.get(metric)
            if value is not None and value < floor:
                violations.append(Violation(
                    "BENCH_token_plane.json", metric,
                    floor, value, 0.0))
        identical = token_plane.get("detail_bit_identical")
        if identical is not None and not identical:
            violations.append(Violation(
                "BENCH_token_plane.json", "detail_bit_identical",
                1.0, 0.0, 0.0))
    fuzz_corpus = load("BENCH_fuzz_corpus.json")
    if fuzz_corpus is not None:
        failures = fuzz_corpus.get("compile_failures")
        if failures is not None and failures > 0:
            violations.append(Violation(
                "BENCH_fuzz_corpus.json", "compile_failures",
                0.0, float(failures), 0.0))
        scenarios = fuzz_corpus.get("scenarios")
        distinct = fuzz_corpus.get("distinct_fingerprints")
        if scenarios is not None and distinct is not None \
                and distinct < scenarios:
            violations.append(Violation(
                "BENCH_fuzz_corpus.json", "distinct_fingerprints",
                float(scenarios), float(distinct), 0.0))
        covered = fuzz_corpus.get("shapes_covered")
        total = fuzz_corpus.get("shapes_total")
        if covered is not None and total is not None \
                and covered < total:
            violations.append(Violation(
                "BENCH_fuzz_corpus.json", "shapes_covered",
                float(total), float(covered), 0.0))
    service = load("BENCH_service.json")
    if service is not None:
        floor = service.get("cached_speedup_floor", 10.0)
        speedup = service.get("cached_speedup")
        if speedup is not None and speedup < floor:
            violations.append(Violation(
                "BENCH_service.json", "cached_speedup",
                floor, speedup, 0.0))
        identical = service.get("detail_bit_identical")
        if identical is not None and not identical:
            violations.append(Violation(
                "BENCH_service.json", "detail_bit_identical",
                1.0, 0.0, 0.0))
        executions = service.get("executions")
        distinct = service.get("distinct_configs")
        if executions is not None and distinct is not None \
                and executions > distinct:
            # repeats re-simulated: the cache failed its one job
            violations.append(Violation(
                "BENCH_service.json", "executions",
                float(distinct), float(executions), 0.0))
    service_metrics = load("BENCH_service_metrics.json")
    if service_metrics is not None:
        bound = service_metrics.get("bound_pct", 5.0)
        value = service_metrics.get("null_plane_overhead_pct")
        if value is not None and value > bound:
            violations.append(Violation(
                "BENCH_service_metrics.json",
                "null_plane_overhead_pct", bound, value, 0.0))
        for flag in ("metrics_scrape_ok", "corr_joined"):
            value = service_metrics.get(flag)
            if value is not None and not value:
                violations.append(Violation(
                    "BENCH_service_metrics.json", flag,
                    1.0, 0.0, 0.0))
        events = service_metrics.get("events_logged")
        if events is not None and events < 1:
            violations.append(Violation(
                "BENCH_service_metrics.json", "events_logged",
                1.0, float(events), 0.0))
    socket_tier = load("BENCH_socket_tier.json")
    if socket_tier is not None:
        speedup = socket_tier.get("socket_batching_speedup")
        if speedup is not None and speedup < 1.0:
            violations.append(Violation(
                "BENCH_socket_tier.json",
                "socket_batching_speedup", 1.0, speedup, 0.0))
        identical = socket_tier.get("detail_bit_identical")
        if identical is not None and not identical:
            violations.append(Violation(
                "BENCH_socket_tier.json", "detail_bit_identical",
                1.0, 0.0, 0.0))
    stepjit = load("BENCH_stepjit.json")
    if stepjit is not None:
        floor = stepjit.get("speedup_floor", 5.0)
        speedup = stepjit.get("speedup")
        if speedup is not None and speedup < floor:
            violations.append(Violation(
                "BENCH_stepjit.json", "speedup",
                floor, speedup, 0.0))
        identical = stepjit.get("detail_bit_identical")
        if identical is not None and not identical:
            violations.append(Violation(
                "BENCH_stepjit.json", "detail_bit_identical",
                1.0, 0.0, 0.0))
    return violations


def run_gate(results_dir: Union[str, Path] = "results",
             threshold: float = DEFAULT_THRESHOLD,
             inject_slowdown: float = 0.0,
             update: bool = False,
             runs_dir: Optional[Union[str, Path]] = None
             ) -> "GateReport":
    """The full ``repro regress`` pass; see :class:`GateReport`."""
    measured = measure_canonical(slowdown=inject_slowdown)
    if update:
        path = save_baseline(measured, results_dir)
        return GateReport(measured=measured, baseline=measured,
                          updated_path=path)
    baseline = load_baseline(results_dir)
    violations: List[Violation] = []
    if baseline:
        violations.extend(check_rates(measured, baseline, threshold))
    violations.extend(check_bench_files(results_dir, threshold))
    if runs_dir is not None:
        registry = RunRegistry(runs_dir)
        records = registry.list_runs()
        if records:
            violations.extend(
                check_run(records[-1], registry, threshold))
    return GateReport(measured=measured, baseline=baseline or {},
                      violations=violations)


@dataclass
class GateReport:
    """Outcome of one regression-gate pass."""

    measured: Dict[str, float]
    baseline: Dict[str, float]
    violations: List[Violation] = None
    updated_path: Optional[Path] = None

    def __post_init__(self):
        if self.violations is None:
            self.violations = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_text(self, threshold: float = DEFAULT_THRESHOLD) -> str:
        lines = ["canonical modelled rates:"]
        for name in sorted(self.measured):
            base = self.baseline.get(name)
            suffix = ""
            if base:
                delta = (self.measured[name] / base - 1.0) * 100.0
                suffix = f"  (baseline {base / 1e3:.2f} kHz, " \
                         f"{delta:+.2f}%)"
            lines.append(f"  {name:>18}: "
                         f"{self.measured[name] / 1e3:.2f} kHz{suffix}")
        if self.updated_path is not None:
            lines.append(f"baseline updated: {self.updated_path}")
        elif not self.baseline:
            lines.append("no committed baseline "
                         f"({RATES_FILE}); rates reported only")
        if self.violations:
            lines.append("")
            lines.append(f"REGRESSIONS (threshold "
                         f"{threshold * 100.0:.0f}%):")
            for violation in self.violations:
                lines.append(f"  {violation.describe()}")
        else:
            lines.append("regression gate: OK")
        return "\n".join(lines)
