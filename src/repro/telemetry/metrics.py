"""Metric instruments and the pay-as-you-go registry.

The telemetry layer complements the event tracer: instead of a stream
of individual events, it maintains *aggregates* — counters (token
crossings, credit stalls), gauges (last-seen values) and fixed-bucket
histograms (receiver in-flight depths) — cheap enough to leave on for
long runs, and a :class:`~repro.telemetry.sampler.Sampler` that turns
them into deterministic time-series.

Every instrument is scoped to a partition (the ``part`` label).  That
is not cosmetic: under the process backend each partition's worker owns
exactly the instruments labelled with its partition, which is what lets
the coordinator merge per-worker registries back into one with no
double counting — the same ownership rule the state-fragment merge
already uses for links and arrival queues.

Like the tracer, the default is a :data:`NULL_METRICS` registry whose
``enabled`` flag is ``False``; every instrument site in the harness
guards on that flag, so an uninstrumented run pays one attribute read
per potential update (``bench_observability`` pins the cost under 5%).

All values are derived from *modelled* host time and token counts —
never python wall time — so identical runs produce identical metrics on
any backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: default histogram bucket upper bounds (the last bucket is +inf)
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

_Key = Tuple[str, str, str]  # (kind, name, part)


class Counter:
    """A monotonically increasing sum (count or accumulated ns)."""

    __slots__ = ("name", "part", "value")

    def __init__(self, name: str, part: str = ""):
        self.name = name
        self.part = part
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-written value (queue depth, current rate)."""

    __slots__ = ("name", "part", "value")

    def __init__(self, name: str, part: str = ""):
        self.name = name
        self.part = part
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucket histogram plus count and sum.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the trailing
    bucket counts the rest.  Bounds are fixed at construction so two
    histograms of the same instrument always merge bucket-for-bucket.
    """

    __slots__ = ("name", "part", "bounds", "buckets", "count", "sum")

    def __init__(self, name: str, part: str = "",
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.part = part
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Owns every instrument of one run.

    Instruments are created lazily on first touch and identified by
    ``(kind, name, part)``; repeated lookups return the same object, so
    hot-path call sites can also cache the instrument once.
    """

    #: instrument sites skip updates entirely when False
    enabled: bool = True

    def __init__(self):
        self._instruments: Dict[_Key, object] = {}

    # -- instrument access ------------------------------------------------

    def counter(self, name: str, part: str = "") -> Counter:
        key = ("counter", name, part)
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = Counter(name, part)
        return inst

    def gauge(self, name: str, part: str = "") -> Gauge:
        key = ("gauge", name, part)
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = Gauge(name, part)
        return inst

    def histogram(self, name: str, part: str = "",
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        key = ("histogram", name, part)
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = Histogram(name, part, bounds)
        return inst

    def value(self, kind: str, name: str, part: str = "") -> float:
        """Current value of a counter/gauge (0.0 when untouched)."""
        inst = self._instruments.get((kind, name, part))
        return inst.value if inst is not None else 0.0

    # -- snapshots --------------------------------------------------------

    def snapshot(self, part: Optional[str] = None) -> dict:
        """JSON-able state of every instrument (optionally one
        partition's), in deterministic sorted order."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for (kind, name, p), inst in sorted(
                self._instruments.items()):
            if part is not None and p != part:
                continue
            key = f"{name}|{p}"
            if kind == "counter":
                out["counters"][key] = inst.value
            elif kind == "gauge":
                out["gauges"][key] = inst.value
            else:
                out["histograms"][key] = inst.as_dict()
        return out

    def load_snapshot(self, state: dict,
                      part: Optional[str] = None) -> None:
        """Restore instruments from :meth:`snapshot` output.  With
        ``part`` given, only that partition's instruments are loaded
        (the coordinator's per-worker merge)."""
        for key, value in state.get("counters", {}).items():
            name, p = key.rsplit("|", 1)
            if part is not None and p != part:
                continue
            self.counter(name, p).value = value
        for key, value in state.get("gauges", {}).items():
            name, p = key.rsplit("|", 1)
            if part is not None and p != part:
                continue
            self.gauge(name, p).value = value
        for key, entry in state.get("histograms", {}).items():
            name, p = key.rsplit("|", 1)
            if part is not None and p != part:
                continue
            hist = self.histogram(name, p,
                                  bounds=tuple(entry["bounds"]))
            hist.buckets = list(entry["buckets"])
            hist.count = entry["count"]
            hist.sum = entry["sum"]

    def partitions(self) -> List[str]:
        """Partition labels that own at least one instrument."""
        return sorted({p for (_, _, p) in self._instruments})


class _NullInstrument:
    """Absorbs updates; shared by every null-registry lookup."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:  # pragma: no cover
        pass

    def set(self, value: float) -> None:  # pragma: no cover
        pass

    def observe(self, value: float) -> None:  # pragma: no cover
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The default no-op registry: nothing recorded, nothing paid."""

    enabled = False

    def counter(self, name: str, part: str = ""):  # pragma: no cover
        return _NULL_INSTRUMENT

    def gauge(self, name: str, part: str = ""):  # pragma: no cover
        return _NULL_INSTRUMENT

    def histogram(self, name: str, part: str = "",
                  bounds=DEFAULT_BUCKETS):  # pragma: no cover
        return _NULL_INSTRUMENT


#: shared default registry — attach sites use this instead of None checks
NULL_METRICS = NullMetricsRegistry()
