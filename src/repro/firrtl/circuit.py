"""Module and Circuit containers for the FIRRTL-like IR.

A :class:`Module` owns an ordered list of statements plus index structures
(ports, signal widths, instances, connect map) that passes use constantly.
A :class:`Circuit` is a named set of modules with a designated top.  Both
are mutable — FireRipper's transforms rewrite them in place on deep copies.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import IRError
from . import ast
from .ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    InstTarget,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    Port,
    Stmt,
)


class Module:
    """One module definition: ports plus a flat, ordered statement list."""

    def __init__(self, name: str, ports: Optional[List[Port]] = None,
                 stmts: Optional[List[Stmt]] = None):
        self.name = name
        self.ports: List[Port] = list(ports or [])
        self.stmts: List[Stmt] = list(stmts or [])

    # -- index helpers -----------------------------------------------------

    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name == name:
                return p
        raise IRError(f"{self.name}: no port named {name!r}")

    def has_port(self, name: str) -> bool:
        return any(p.name == name for p in self.ports)

    @property
    def input_ports(self) -> List[Port]:
        return [p for p in self.ports if p.is_input]

    @property
    def output_ports(self) -> List[Port]:
        return [p for p in self.ports if not p.is_input]

    def instances(self) -> List[DefInstance]:
        return [s for s in self.stmts if isinstance(s, DefInstance)]

    def instance(self, name: str) -> DefInstance:
        for s in self.instances():
            if s.name == name:
                return s
        raise IRError(f"{self.name}: no instance named {name!r}")

    def registers(self) -> List[DefRegister]:
        return [s for s in self.stmts if isinstance(s, DefRegister)]

    def memories(self) -> List[DefMemory]:
        return [s for s in self.stmts if isinstance(s, DefMemory)]

    def connects(self) -> List[Connect]:
        return [s for s in self.stmts if isinstance(s, Connect)]

    def connect_map(self) -> Dict[str, Connect]:
        """Map ``str(target)`` -> the Connect statement driving it."""
        out: Dict[str, Connect] = {}
        for c in self.connects():
            key = str(c.target)
            if key in out:
                raise IRError(f"{self.name}: {key} driven twice")
            out[key] = c
        return out

    def signal_width(self, name: str) -> int:
        """Width of a locally named signal (port/wire/node/reg/mem read)."""
        w = self.try_signal_width(name)
        if w is None:
            raise IRError(f"{self.name}: unknown signal {name!r}")
        return w

    def try_signal_width(self, name: str) -> Optional[int]:
        for p in self.ports:
            if p.name == name:
                return p.width
        for s in self.stmts:
            if isinstance(s, (DefWire, DefRegister)) and s.name == name:
                return s.width
            if isinstance(s, DefNode) and s.name == name:
                return s.expr.width
            if isinstance(s, MemReadPort) and s.name == name:
                return self._mem_width(s.mem)
        return None

    def _mem_width(self, mem_name: str) -> int:
        for s in self.stmts:
            if isinstance(s, DefMemory) and s.name == mem_name:
                return s.width
        raise IRError(f"{self.name}: unknown memory {mem_name!r}")

    def defined_names(self) -> Iterator[str]:
        """All locally declared names (ports, wires, nodes, regs, mems,
        mem-read ports, instances)."""
        for p in self.ports:
            yield p.name
        for s in self.stmts:
            if isinstance(s, (DefWire, DefRegister, DefMemory, DefNode,
                              DefInstance)):
                yield s.name
            elif isinstance(s, MemReadPort):
                yield s.name

    def fresh_name(self, base: str) -> str:
        """A name not yet declared in this module, derived from ``base``."""
        taken = set(self.defined_names())
        if base not in taken:
            return base
        i = 0
        while f"{base}_{i}" in taken:
            i += 1
        return f"{base}_{i}"

    def __repr__(self) -> str:
        return (f"Module({self.name!r}, {len(self.ports)} ports, "
                f"{len(self.stmts)} stmts)")


class Circuit:
    """A set of modules with a designated top module."""

    def __init__(self, top: str, modules: Iterable[Module]):
        self.top = top
        self.modules: Dict[str, Module] = {}
        for m in modules:
            self.add_module(m)
        if top not in self.modules:
            raise IRError(f"top module {top!r} not among modules")

    def add_module(self, m: Module) -> None:
        if m.name in self.modules:
            raise IRError(f"duplicate module {m.name!r}")
        self.modules[m.name] = m

    @property
    def top_module(self) -> Module:
        return self.modules[self.top]

    def module(self, name: str) -> Module:
        if name not in self.modules:
            raise IRError(f"no module named {name!r}")
        return self.modules[name]

    def clone(self) -> "Circuit":
        """Deep copy, so transforms never mutate the caller's circuit."""
        return copy.deepcopy(self)

    def remove_unreachable(self) -> None:
        """Drop modules not instantiated (transitively) from the top."""
        keep = set()
        stack = [self.top]
        while stack:
            name = stack.pop()
            if name in keep:
                continue
            keep.add(name)
            for inst in self.modules[name].instances():
                stack.append(inst.module)
        self.modules = {n: m for n, m in self.modules.items() if n in keep}

    def instance_paths(self, module_name: str) -> List[str]:
        """All hierarchical instance paths (dot separated, rooted at top)
        at which ``module_name`` is instantiated."""
        found: List[str] = []

        def walk(mod: Module, prefix: str) -> None:
            for inst in mod.instances():
                path = f"{prefix}{inst.name}"
                if inst.module == module_name:
                    found.append(path)
                walk(self.modules[inst.module], path + ".")

        walk(self.top_module, "")
        return found

    def resolve_path(self, path: str) -> DefInstance:
        """Resolve a dot-separated instance path to its DefInstance."""
        mod = self.top_module
        parts = path.split(".")
        inst = None
        for part in parts:
            inst = mod.instance(part)
            mod = self.modules[inst.module]
        assert inst is not None
        return inst

    def parent_of(self, path: str) -> Module:
        """The module containing the last segment of an instance path."""
        parts = path.split(".")
        mod = self.top_module
        for part in parts[:-1]:
            mod = self.modules[mod.instance(part).module]
        # validate the final segment exists
        mod.instance(parts[-1])
        return mod

    def stats(self) -> Dict[str, int]:
        """Aggregate statement counts across the hierarchy (per definition,
        not per instantiation)."""
        counts = {"modules": len(self.modules), "ports": 0, "wires": 0,
                  "nodes": 0, "registers": 0, "memories": 0,
                  "instances": 0, "connects": 0}
        for m in self.modules.values():
            counts["ports"] += len(m.ports)
            for s in m.stmts:
                if isinstance(s, DefWire):
                    counts["wires"] += 1
                elif isinstance(s, DefNode):
                    counts["nodes"] += 1
                elif isinstance(s, DefRegister):
                    counts["registers"] += 1
                elif isinstance(s, DefMemory):
                    counts["memories"] += 1
                elif isinstance(s, DefInstance):
                    counts["instances"] += 1
                elif isinstance(s, Connect):
                    counts["connects"] += 1
        return counts

    def __repr__(self) -> str:
        return f"Circuit(top={self.top!r}, modules={sorted(self.modules)})"
