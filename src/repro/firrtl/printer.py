"""Text emission for the FIRRTL-like IR.

The format intentionally resembles real FIRRTL so circuits are easy to read
in the terminal, and it round-trips through :mod:`repro.firrtl.parser`.
"""

from __future__ import annotations

from typing import List

from ..errors import IRError
from .ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    Lit,
    MemReadPort,
    MemWritePort,
    Port,
    PrimOp,
    Ref,
    Stmt,
)
from .circuit import Circuit, Module

_INDENT = "  "


def print_expr(expr: Expr) -> str:
    """Render an expression as text."""
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, InstPort):
        return f"{expr.inst}.{expr.port}"
    if isinstance(expr, Lit):
        return f"UInt<{expr.width}>({expr.value})"
    if isinstance(expr, PrimOp):
        parts = [print_expr(a) for a in expr.args]
        parts += [str(p) for p in expr.params]
        return f"{expr.op}({', '.join(parts)})"
    raise IRError(f"cannot print expression {expr!r}")


def _print_stmt(stmt: Stmt) -> str:
    if isinstance(stmt, DefWire):
        return f"wire {stmt.name} : UInt<{stmt.width}>"
    if isinstance(stmt, DefNode):
        return f"node {stmt.name} = {print_expr(stmt.expr)}"
    if isinstance(stmt, DefRegister):
        return f"reg {stmt.name} : UInt<{stmt.width}>, init {stmt.init}"
    if isinstance(stmt, DefMemory):
        line = f"mem {stmt.name} : UInt<{stmt.width}>[{stmt.depth}]"
        if stmt.init:
            line += " init [" + ", ".join(str(v) for v in stmt.init) + "]"
        return line
    if isinstance(stmt, MemReadPort):
        return f"read {stmt.name} = {stmt.mem}[{print_expr(stmt.addr)}]"
    if isinstance(stmt, MemWritePort):
        return (f"write {stmt.mem}[{print_expr(stmt.addr)}] <= "
                f"{print_expr(stmt.data)} when {print_expr(stmt.en)}")
    if isinstance(stmt, DefInstance):
        return f"inst {stmt.name} of {stmt.module}"
    if isinstance(stmt, Connect):
        return f"{stmt.target} <= {print_expr(stmt.expr)}"
    raise IRError(f"cannot print statement {stmt!r}")


def print_module(module: Module) -> str:
    """Render one module definition."""
    lines: List[str] = [f"module {module.name} :"]
    for p in module.ports:
        lines.append(f"{_INDENT}{p.direction} {p.name} : UInt<{p.width}>")
    for s in module.stmts:
        lines.append(f"{_INDENT}{_print_stmt(s)}")
    return "\n".join(lines)


def print_circuit(circuit: Circuit) -> str:
    """Render a whole circuit; the top module is printed first."""
    lines = [f"circuit {circuit.top} :"]
    order = [circuit.top] + sorted(n for n in circuit.modules
                                   if n != circuit.top)
    for name in order:
        body = print_module(circuit.modules[name])
        for line in body.splitlines():
            lines.append(f"{_INDENT}{line}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
