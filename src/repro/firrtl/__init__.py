"""FIRRTL-like intermediate representation for digital circuits.

This package is the substrate everything else builds on: the AST
(:mod:`~repro.firrtl.ast`), module/circuit containers
(:mod:`~repro.firrtl.circuit`), an authoring DSL
(:mod:`~repro.firrtl.builder`), a text printer/parser, and the analysis
passes FireRipper relies on (:mod:`~repro.firrtl.passes`).
"""

from . import ast
from .ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    INPUT,
    InstPort,
    InstTarget,
    Lit,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    OUTPUT,
    Port,
    PrimOp,
    Ref,
)
from .builder import (
    Connectable,
    ModuleBuilder,
    RVBundle,
    Signal,
    build_circuit,
    cat,
    make_circuit,
    mux,
)
from .circuit import Circuit, Module
from .fingerprint import circuit_fingerprint, elaboration_fingerprint
from .parser import parse_circuit
from .printer import print_circuit, print_expr, print_module

__all__ = [
    "ast",
    "Circuit",
    "Module",
    "ModuleBuilder",
    "Connectable",
    "RVBundle",
    "Signal",
    "mux",
    "cat",
    "build_circuit",
    "make_circuit",
    "circuit_fingerprint",
    "elaboration_fingerprint",
    "parse_circuit",
    "print_circuit",
    "print_module",
    "print_expr",
    "Connect",
    "DefInstance",
    "DefMemory",
    "DefNode",
    "DefRegister",
    "DefWire",
    "Expr",
    "INPUT",
    "OUTPUT",
    "InstPort",
    "InstTarget",
    "Lit",
    "LocalTarget",
    "MemReadPort",
    "MemWritePort",
    "Port",
    "PrimOp",
    "Ref",
]
