"""Authoring DSL for the FIRRTL-like IR.

:class:`ModuleBuilder` provides Chisel-flavoured ergonomics on top of the
raw AST: operator-overloaded signals, automatic literal coercion, automatic
pad/truncate on connect, register/memory/instance helpers, and ready-valid
bundle sugar (the ``<prefix>_valid`` / ``<prefix>_ready`` / ``<prefix>_bits``
naming convention is what FireRipper's fast-mode uses to recognize
latency-insensitive boundaries).

Width rules (simplified FIRRTL):

========== =============================
op          result width
========== =============================
add, sub    max(w1, w2) + 1
mul         w1 + w2
div         w1
rem         min(w1, w2)
and/or/xor  max(w1, w2)
not         w
cat         w1 + w2
mux         max(w1, w2)
cmp ops     1
shl n       w + n
shr n       max(w - n, 1)
dshl/dshr   w1  (self-truncating; deviation from FIRRTL, documented)
bits hi,lo  hi - lo + 1
pad n       max(w, n)
reductions  1
========== =============================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import IRError
from .ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    INPUT,
    InstPort,
    InstTarget,
    Lit,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    OUTPUT,
    Port,
    PrimOp,
    Ref,
)
from .circuit import Circuit, Module

SignalLike = Union["Signal", int]


def _coerce(value: SignalLike, width_hint: Optional[int] = None) -> Expr:
    """Turn an int into a literal (using ``width_hint`` or the value's own
    minimal width), or unwrap a Signal."""
    if isinstance(value, Signal):
        return value.expr
    if isinstance(value, Connectable):
        return value.read().expr
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        if value < 0:
            raise IRError("negative literals are not supported; use sub")
        natural = max(value.bit_length(), 1)
        width = width_hint if width_hint and width_hint >= natural else natural
        return Lit(value, width)
    raise IRError(f"cannot use {value!r} as a signal")


class Signal:
    """Expression wrapper with operators.  Returned by builder helpers."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    @property
    def width(self) -> int:
        return self.expr.width

    # -- binary helpers ----------------------------------------------------

    def _bin(self, op: str, other: SignalLike, width) -> "Signal":
        rhs = _coerce(other, self.width)
        return Signal(PrimOp(op, (self.expr, rhs), width(self.width,
                                                         rhs.width)))

    def __add__(self, other: SignalLike) -> "Signal":
        return self._bin("add", other, lambda a, b: max(a, b) + 1)

    def __sub__(self, other: SignalLike) -> "Signal":
        return self._bin("sub", other, lambda a, b: max(a, b) + 1)

    def __mul__(self, other: SignalLike) -> "Signal":
        return self._bin("mul", other, lambda a, b: a + b)

    def __floordiv__(self, other: SignalLike) -> "Signal":
        return self._bin("div", other, lambda a, b: a)

    def __mod__(self, other: SignalLike) -> "Signal":
        return self._bin("rem", other, lambda a, b: min(a, b))

    def __and__(self, other: SignalLike) -> "Signal":
        return self._bin("and", other, lambda a, b: max(a, b))

    def __or__(self, other: SignalLike) -> "Signal":
        return self._bin("or", other, lambda a, b: max(a, b))

    def __xor__(self, other: SignalLike) -> "Signal":
        return self._bin("xor", other, lambda a, b: max(a, b))

    def __invert__(self) -> "Signal":
        return Signal(PrimOp("not", (self.expr,), self.width))

    # -- comparisons (named methods; Python's rich-compare protocol would
    #    interfere with use in sets/dicts) ---------------------------------

    def eq(self, other: SignalLike) -> "Signal":
        return self._bin("eq", other, lambda a, b: 1)

    def neq(self, other: SignalLike) -> "Signal":
        return self._bin("neq", other, lambda a, b: 1)

    def lt(self, other: SignalLike) -> "Signal":
        return self._bin("lt", other, lambda a, b: 1)

    def leq(self, other: SignalLike) -> "Signal":
        return self._bin("leq", other, lambda a, b: 1)

    def gt(self, other: SignalLike) -> "Signal":
        return self._bin("gt", other, lambda a, b: 1)

    def geq(self, other: SignalLike) -> "Signal":
        return self._bin("geq", other, lambda a, b: 1)

    # -- structural ops ----------------------------------------------------

    def cat(self, other: SignalLike) -> "Signal":
        """Concatenate: ``self`` becomes the high bits."""
        rhs = _coerce(other)
        return Signal(PrimOp("cat", (self.expr, rhs),
                             self.width + rhs.width))

    def bits(self, hi: int, lo: int = 0) -> "Signal":
        if not (0 <= lo <= hi < self.width):
            raise IRError(
                f"bits({hi},{lo}) out of range for width {self.width}"
            )
        return Signal(PrimOp("bits", (self.expr,), hi - lo + 1,
                             params=(hi, lo)))

    def bit(self, i: int) -> "Signal":
        return self.bits(i, i)

    def pad(self, width: int) -> "Signal":
        if width <= self.width:
            return self
        return Signal(PrimOp("pad", (self.expr,), width, params=(width,)))

    def trunc(self, width: int) -> "Signal":
        if width >= self.width:
            return self
        return self.bits(width - 1, 0)

    def fit(self, width: int) -> "Signal":
        """Pad or truncate to exactly ``width`` bits."""
        if self.width == width:
            return self
        return self.pad(width) if self.width < width else self.trunc(width)

    def shl(self, n: int) -> "Signal":
        return Signal(PrimOp("shl", (self.expr,), self.width + n,
                             params=(n,)))

    def shr(self, n: int) -> "Signal":
        return Signal(PrimOp("shr", (self.expr,), max(self.width - n, 1),
                             params=(n,)))

    def dshl(self, amount: SignalLike) -> "Signal":
        rhs = _coerce(amount)
        return Signal(PrimOp("dshl", (self.expr, rhs), self.width))

    def dshr(self, amount: SignalLike) -> "Signal":
        rhs = _coerce(amount)
        return Signal(PrimOp("dshr", (self.expr, rhs), self.width))

    def andr(self) -> "Signal":
        return Signal(PrimOp("andr", (self.expr,), 1))

    def orr(self) -> "Signal":
        return Signal(PrimOp("orr", (self.expr,), 1))

    def xorr(self) -> "Signal":
        return Signal(PrimOp("xorr", (self.expr,), 1))

    def __repr__(self) -> str:
        return f"Signal({self.expr})"


def mux(sel: Signal, if_true: SignalLike, if_false: SignalLike) -> Signal:
    """2:1 multiplexer; operands are padded to a common width."""
    t = _coerce(if_true)
    f = _coerce(if_false, t.width)
    t = _coerce(Signal(t).pad(f.width))
    width = max(t.width, f.width)
    return Signal(PrimOp("mux", (sel.expr, t, f), width))


def cat(*signals: Signal) -> Signal:
    """Concatenate many signals; the first becomes the highest bits."""
    if not signals:
        raise IRError("cat() needs at least one signal")
    out = signals[0]
    for s in signals[1:]:
        out = out.cat(s)
    return out


class RVBundle:
    """Handle for a ready-valid bundle created by the builder sugar."""

    def __init__(self, valid: "Connectable", ready: "Connectable",
                 bits: "Connectable"):
        self.valid = valid
        self.ready = ready
        self.bits = bits

    def fire(self) -> Signal:
        return self.valid.read() & self.ready.read()


class Connectable:
    """A named thing that can be read as a Signal and/or connected.

    Wraps local signals (ports, wires, registers) and instance ports with a
    uniform interface, so ``builder.connect(x, expr)`` works for all of them.
    """

    def __init__(self, builder: "ModuleBuilder", target, width: int,
                 readable: bool = True, writable: bool = True):
        self._builder = builder
        self.target = target
        self.width = width
        self.readable = readable
        self.writable = writable

    def read(self) -> Signal:
        if not self.readable:
            raise IRError(f"{self.target} is not readable here")
        if isinstance(self.target, LocalTarget):
            return Signal(Ref(self.target.name, self.width))
        return Signal(InstPort(self.target.inst, self.target.port,
                               self.width))

    # allow Connectable to be used directly in expressions
    @property
    def expr(self) -> Expr:
        return self.read().expr

    def __getattr__(self, item):
        # delegate operators via Signal
        return getattr(self.read(), item)

    def __add__(self, o):
        return self.read() + o

    def __sub__(self, o):
        return self.read() - o

    def __mul__(self, o):
        return self.read() * o

    def __and__(self, o):
        return self.read() & o

    def __or__(self, o):
        return self.read() | o

    def __xor__(self, o):
        return self.read() ^ o

    def __invert__(self):
        return ~self.read()

    def __repr__(self) -> str:
        return f"Connectable({self.target})"


class InstanceHandle:
    """Handle returned by :meth:`ModuleBuilder.inst`."""

    def __init__(self, builder: "ModuleBuilder", name: str, module: Module):
        self._builder = builder
        self.name = name
        self.module = module

    def io(self, port_name: str) -> Connectable:
        p = self.module.port(port_name)
        return Connectable(
            self._builder, InstTarget(self.name, port_name), p.width,
            readable=not p.is_input, writable=p.is_input,
        )

    def __getitem__(self, port_name: str) -> Connectable:
        return self.io(port_name)


class ModuleBuilder:
    """Builds one :class:`Module` statement by statement."""

    def __init__(self, name: str):
        self.name = name
        self._ports: List[Port] = []
        self._stmts: List = []
        self._names: Dict[str, int] = {}
        self._instances: Dict[str, Module] = {}

    # -- declaration helpers -----------------------------------------------

    def _declare(self, name: str, kind: str) -> None:
        if name in self._names:
            raise IRError(f"{self.name}: {name!r} already declared")
        self._names[name] = 1

    def input(self, name: str, width: int) -> Connectable:
        self._declare(name, "input")
        self._ports.append(Port(name, INPUT, width))
        return Connectable(self, LocalTarget(name), width, writable=False)

    def output(self, name: str, width: int) -> Connectable:
        self._declare(name, "output")
        self._ports.append(Port(name, OUTPUT, width))
        return Connectable(self, LocalTarget(name), width)

    def wire(self, name: str, width: int) -> Connectable:
        self._declare(name, "wire")
        self._stmts.append(DefWire(name, width))
        return Connectable(self, LocalTarget(name), width)

    def reg(self, name: str, width: int, init: int = 0) -> Connectable:
        self._declare(name, "reg")
        self._stmts.append(DefRegister(name, width, init))
        return Connectable(self, LocalTarget(name), width)

    def node(self, name: str, expr: SignalLike) -> Signal:
        self._declare(name, "node")
        e = _coerce(expr)
        self._stmts.append(DefNode(name, e))
        return Signal(Ref(name, e.width))

    def mem(self, name: str, depth: int, width: int,
            init: Optional[Sequence[int]] = None) -> str:
        self._declare(name, "mem")
        self._stmts.append(
            DefMemory(name, depth, width,
                      tuple(init) if init is not None else None))
        return name

    def mem_read(self, mem: str, name: str, addr: SignalLike) -> Signal:
        self._declare(name, "memread")
        width = self._mem_width(mem)
        self._stmts.append(MemReadPort(mem, name, _coerce(addr)))
        return Signal(Ref(name, width))

    def mem_write(self, mem: str, addr: SignalLike, data: SignalLike,
                  en: SignalLike) -> None:
        width = self._mem_width(mem)
        data_expr = Signal(_coerce(data, width)).fit(width).expr
        en_expr = Signal(_coerce(en, 1)).fit(1).expr
        self._stmts.append(
            MemWritePort(mem, _coerce(addr), data_expr, en_expr))

    def _mem_width(self, mem: str) -> int:
        for s in self._stmts:
            if isinstance(s, DefMemory) and s.name == mem:
                return s.width
        raise IRError(f"{self.name}: unknown memory {mem!r}")

    def inst(self, name: str, module: Module) -> InstanceHandle:
        self._declare(name, "inst")
        self._stmts.append(DefInstance(name, module.name))
        self._instances[name] = module
        return InstanceHandle(self, name, module)

    def lit(self, value: int, width: Optional[int] = None) -> Signal:
        return Signal(_coerce(value, width))

    # -- connections ---------------------------------------------------------

    def connect(self, dst: Connectable, src: SignalLike) -> None:
        """Drive ``dst`` with ``src``, padding/truncating to fit."""
        if not isinstance(dst, Connectable):
            raise IRError(f"connect target must be Connectable, got {dst!r}")
        if not dst.writable:
            raise IRError(f"{dst.target} is not a legal connect target")
        sig = Signal(_coerce(src, dst.width)).fit(dst.width)
        self._stmts.append(Connect(dst.target, sig.expr))

    # -- ready-valid sugar ---------------------------------------------------

    def rv_input(self, prefix: str, width: int) -> RVBundle:
        """Consumer-side bundle: valid/bits are inputs, ready is an output."""
        return RVBundle(
            valid=self.input(f"{prefix}_valid", 1),
            ready=self.output(f"{prefix}_ready", 1),
            bits=self.input(f"{prefix}_bits", width),
        )

    def rv_output(self, prefix: str, width: int) -> RVBundle:
        """Producer-side bundle: valid/bits are outputs, ready is an input."""
        return RVBundle(
            valid=self.output(f"{prefix}_valid", 1),
            ready=self.input(f"{prefix}_ready", 1),
            bits=self.output(f"{prefix}_bits", width),
        )

    # -- finalize ------------------------------------------------------------

    def build(self) -> Module:
        return Module(self.name, self._ports, self._stmts)

    def submodules(self) -> Dict[str, Module]:
        """Modules referenced by instances declared through this builder."""
        return dict(self._instances)


def make_circuit(top: Module, library: Iterable[Module]) -> Circuit:
    """Assemble a circuit from a top module and a module library.

    Only modules transitively instantiated from ``top`` are included; the
    library may contain unrelated modules (they are ignored).
    """
    lib = {m.name: m for m in library}
    lib[top.name] = top
    modules: Dict[str, Module] = {}

    def collect(module: Module) -> None:
        if module.name in modules:
            return
        modules[module.name] = module
        for inst in module.instances():
            child = lib.get(inst.module)
            if child is None:
                raise IRError(
                    f"module {module.name} instantiates unknown module "
                    f"{inst.module!r}; add it to the library"
                )
            collect(child)

    collect(top)
    return Circuit(top.name, modules.values())


def build_circuit(top_builder: ModuleBuilder,
                  extra_modules: Iterable[Module] = ()) -> Circuit:
    """Assemble a circuit from a top-level builder.

    The library is the builder's directly instantiated modules plus
    ``extra_modules`` (which must cover any deeper levels of hierarchy).
    """
    library = list(extra_modules)
    library.extend(top_builder.submodules().values())
    return make_circuit(top_builder.build(), library)
