"""Parser for the FIRRTL-like text format emitted by the printer.

The grammar is line oriented:

.. code-block:: text

    circuit Top :
      module Top :
        input a : UInt<8>
        output b : UInt<8>
        reg r : UInt<8>, init 0
        node n = add(a, UInt<1>(1))
        b <= n
        r <= b

Expressions use function-call syntax for primitive ops, ``UInt<w>(v)`` for
literals, bare identifiers for local references, and ``inst.port`` for
instance ports.  Because reference widths depend on declarations, expression
parsing happens module-locally after declarations are scanned.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import IRError
from .ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    InstTarget,
    Lit,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    PRIM_OPS,
    Port,
    PrimOp,
    Ref,
)
from .circuit import Circuit, Module

_TOKEN_RE = re.compile(
    r"\s*(UInt<\d+>\(\d+\)|[A-Za-z_][A-Za-z_0-9.$]*|\d+|[(),])"
)

# width rules mirrored from the builder so parsed PrimOps get correct widths
_WIDTH_RULES = {
    "add": lambda ws, ps: max(ws) + 1,
    "sub": lambda ws, ps: max(ws) + 1,
    "mul": lambda ws, ps: ws[0] + ws[1],
    "div": lambda ws, ps: ws[0],
    "rem": lambda ws, ps: min(ws),
    "and": lambda ws, ps: max(ws),
    "or": lambda ws, ps: max(ws),
    "xor": lambda ws, ps: max(ws),
    "not": lambda ws, ps: ws[0],
    "eq": lambda ws, ps: 1,
    "neq": lambda ws, ps: 1,
    "lt": lambda ws, ps: 1,
    "leq": lambda ws, ps: 1,
    "gt": lambda ws, ps: 1,
    "geq": lambda ws, ps: 1,
    "mux": lambda ws, ps: max(ws[1], ws[2]),
    "cat": lambda ws, ps: ws[0] + ws[1],
    "bits": lambda ws, ps: ps[0] - ps[1] + 1,
    "shl": lambda ws, ps: ws[0] + ps[0],
    "shr": lambda ws, ps: max(ws[0] - ps[0], 1),
    "dshl": lambda ws, ps: ws[0],
    "dshr": lambda ws, ps: ws[0],
    "pad": lambda ws, ps: max(ws[0], ps[0]),
    "andr": lambda ws, ps: 1,
    "orr": lambda ws, ps: 1,
    "xorr": lambda ws, ps: 1,
}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise IRError(f"cannot tokenize expression at: {text[pos:]!r}")
            break
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _ExprParser:
    """Recursive-descent expression parser with module-local width lookup."""

    def __init__(self, text: str, widths: Dict[str, int],
                 inst_widths: Dict[Tuple[str, str], int]):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.widths = widths
        self.inst_widths = inst_widths

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        tok = self.peek()
        if tok is None:
            raise IRError("unexpected end of expression")
        if expected is not None and tok != expected:
            raise IRError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    def parse(self) -> Expr:
        expr = self._expr()
        if self.peek() is not None:
            raise IRError(f"trailing tokens: {self.tokens[self.pos:]}")
        return expr

    def _expr(self) -> Expr:
        tok = self.take()
        lit = re.fullmatch(r"UInt<(\d+)>\((\d+)\)", tok)
        if lit:
            return Lit(int(lit.group(2)), int(lit.group(1)))
        if tok in PRIM_OPS and self.peek() == "(":
            return self._primop(tok)
        if "." in tok:
            inst, port = tok.split(".", 1)
            key = (inst, port)
            if key not in self.inst_widths:
                raise IRError(f"unknown instance port {tok!r}")
            return InstPort(inst, port, self.inst_widths[key])
        if tok not in self.widths:
            raise IRError(f"unknown reference {tok!r}")
        return Ref(tok, self.widths[tok])

    def _primop(self, op: str) -> Expr:
        self.take("(")
        args: List[Expr] = []
        params: List[int] = []
        n_args = PRIM_OPS[op]
        while True:
            if len(args) < n_args:
                args.append(self._expr())
            else:
                params.append(int(self.take()))
            tok = self.take()
            if tok == ")":
                break
            if tok != ",":
                raise IRError(f"expected ',' or ')', got {tok!r}")
        widths = [a.width for a in args]
        width = _WIDTH_RULES[op](widths, params)
        return PrimOp(op, tuple(args), width, tuple(params))


_PORT_RE = re.compile(r"(input|output)\s+(\w+)\s*:\s*UInt<(\d+)>")
_WIRE_RE = re.compile(r"wire\s+(\w+)\s*:\s*UInt<(\d+)>")
_REG_RE = re.compile(r"reg\s+(\w+)\s*:\s*UInt<(\d+)>\s*,\s*init\s+(\d+)")
_MEM_RE = re.compile(
    r"mem\s+(\w+)\s*:\s*UInt<(\d+)>\[(\d+)\](?:\s+init\s+\[([^\]]*)\])?")
_READ_RE = re.compile(r"read\s+(\w+)\s*=\s*(\w+)\[(.*)\]\s*$")
_WRITE_RE = re.compile(r"write\s+(\w+)\[(.*)\]\s*<=\s*(.*)\s+when\s+(.*)$")
_INST_RE = re.compile(r"inst\s+(\w+)\s+of\s+(\w+)")
_NODE_RE = re.compile(r"node\s+(\w+)\s*=\s*(.*)$")
_CONNECT_RE = re.compile(r"([\w.]+)\s*<=\s*(.*)$")


def parse_circuit(text: str) -> Circuit:
    """Parse circuit text produced by :func:`repro.firrtl.printer.print_circuit`."""
    lines = [ln.rstrip() for ln in text.splitlines()]
    lines = [ln for ln in lines
             if ln.strip() and not ln.strip().startswith(";")]
    if not lines or not lines[0].strip().startswith("circuit"):
        raise IRError("expected 'circuit <name> :' header")
    top = lines[0].split()[1]

    # split into module chunks
    chunks: List[List[str]] = []
    for ln in lines[1:]:
        stripped = ln.strip()
        if stripped.startswith("module "):
            chunks.append([stripped])
        else:
            if not chunks:
                raise IRError(f"statement outside module: {ln!r}")
            chunks[-1].append(stripped)

    # first pass: collect port signatures (for instance port widths)
    signatures: Dict[str, Dict[str, int]] = {}
    names: List[str] = []
    for chunk in chunks:
        name = chunk[0].split()[1]
        names.append(name)
        sig: Dict[str, int] = {}
        for ln in chunk[1:]:
            m = _PORT_RE.fullmatch(ln)
            if m:
                sig[m.group(2)] = int(m.group(3))
        signatures[name] = sig

    modules = [_parse_module(chunk, signatures) for chunk in chunks]
    return Circuit(top, modules)


def _parse_module(chunk: List[str],
                  signatures: Dict[str, Dict[str, int]]) -> Module:
    name = chunk[0].split()[1]
    ports: List[Port] = []
    stmts: List = []
    widths: Dict[str, int] = {}
    inst_widths: Dict[Tuple[str, str], int] = {}
    mem_widths: Dict[str, int] = {}
    inst_modules: Dict[str, str] = {}
    # declaration scan
    body = chunk[1:]
    for ln in body:
        for regex, handler in _DECLS:
            m = regex.fullmatch(ln)
            if m:
                handler(m, widths, inst_widths, mem_widths, inst_modules,
                        signatures)
                break

    def parse_expr(text: str) -> Expr:
        return _ExprParser(text, widths, inst_widths).parse()

    for ln in body:
        m = _PORT_RE.fullmatch(ln)
        if m:
            ports.append(Port(m.group(2), m.group(1), int(m.group(3))))
            continue
        m = _WIRE_RE.fullmatch(ln)
        if m:
            stmts.append(DefWire(m.group(1), int(m.group(2))))
            continue
        m = _REG_RE.fullmatch(ln)
        if m:
            stmts.append(DefRegister(m.group(1), int(m.group(2)),
                                     int(m.group(3))))
            continue
        m = _MEM_RE.fullmatch(ln)
        if m:
            init = None
            if m.group(4):
                init = tuple(int(v) for v in m.group(4).split(","))
            stmts.append(DefMemory(m.group(1), int(m.group(3)),
                                   int(m.group(2)), init))
            continue
        m = _READ_RE.fullmatch(ln)
        if m:
            stmts.append(MemReadPort(m.group(2), m.group(1),
                                     parse_expr(m.group(3))))
            continue
        m = _WRITE_RE.fullmatch(ln)
        if m:
            stmts.append(MemWritePort(m.group(1), parse_expr(m.group(2)),
                                      parse_expr(m.group(3)),
                                      parse_expr(m.group(4))))
            continue
        m = _INST_RE.fullmatch(ln)
        if m:
            stmts.append(DefInstance(m.group(1), m.group(2)))
            continue
        m = _NODE_RE.fullmatch(ln)
        if m:
            expr = parse_expr(m.group(2))
            stmts.append(DefNode(m.group(1), expr))
            widths[m.group(1)] = expr.width
            continue
        m = _CONNECT_RE.fullmatch(ln)
        if m:
            target_text = m.group(1)
            if "." in target_text:
                inst, port = target_text.split(".", 1)
                target = InstTarget(inst, port)
            else:
                target = LocalTarget(target_text)
            stmts.append(Connect(target, parse_expr(m.group(2))))
            continue
        raise IRError(f"{name}: cannot parse line {ln!r}")
    return Module(name, ports, stmts)


def _decl_port(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    widths[m.group(2)] = int(m.group(3))


def _decl_wire(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    widths[m.group(1)] = int(m.group(2))


def _decl_reg(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    widths[m.group(1)] = int(m.group(2))


def _decl_mem(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    mem_widths[m.group(1)] = int(m.group(2))


def _decl_read(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    widths[m.group(1)] = mem_widths[m.group(2)]


def _decl_inst(m, widths, inst_widths, mem_widths, inst_modules, signatures):
    inst, mod = m.group(1), m.group(2)
    inst_modules[inst] = mod
    for port, w in signatures.get(mod, {}).items():
        inst_widths[(inst, port)] = w


_DECLS = [
    (_PORT_RE, _decl_port),
    (_WIRE_RE, _decl_wire),
    (_REG_RE, _decl_reg),
    (_MEM_RE, _decl_mem),
    (_READ_RE, _decl_read),
    (_INST_RE, _decl_inst),
]
