"""Well-formedness checks for circuits.

Checks are deliberately strict: every connect target must be declared and
driven exactly once, every reference must resolve, instance ports must
match the instantiated module's signature, and connect directions must be
legal (local outputs/wires/registers, instance inputs).  FireRipper runs
this before and after its transforms as a sanity net.
"""

from __future__ import annotations

from typing import Dict, Set

from ...errors import IRError
from ..ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    InstTarget,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    Ref,
)
from ..circuit import Circuit, Module


def check_circuit(circuit: Circuit) -> None:
    """Validate every module; raise :class:`IRError` on the first problem."""
    for module in circuit.modules.values():
        check_module(module, circuit)
    # instance targets resolve
    for module in circuit.modules.values():
        for inst in module.instances():
            if inst.module not in circuit.modules:
                raise IRError(
                    f"{module.name}: instance {inst.name} of missing module "
                    f"{inst.module!r}"
                )


def check_module(module: Module, circuit: Circuit = None) -> None:
    """Validate one module (signature checks need the circuit)."""
    declared: Set[str] = set()
    for name in module.defined_names():
        if name in declared:
            raise IRError(f"{module.name}: duplicate declaration {name!r}")
        declared.add(name)

    mems = {m.name for m in module.memories()}
    insts: Dict[str, str] = {i.name: i.module for i in module.instances()}
    inputs = {p.name for p in module.input_ports}
    connect_targets: Set[str] = set()

    def check_expr(expr: Expr) -> None:
        for leaf in expr.refs():
            if isinstance(leaf, Ref):
                width = module.try_signal_width(leaf.name)
                if width is None:
                    raise IRError(
                        f"{module.name}: reference to undeclared signal "
                        f"{leaf.name!r}"
                    )
                if width != leaf.width:
                    raise IRError(
                        f"{module.name}: {leaf.name} has width {width}, "
                        f"referenced with width {leaf.width}"
                    )
            elif isinstance(leaf, InstPort):
                _check_inst_port(module, circuit, insts, leaf.inst,
                                 leaf.port, expect_output=True,
                                 width=leaf.width)

    for s in module.stmts:
        if isinstance(s, MemReadPort):
            if s.mem not in mems:
                raise IRError(f"{module.name}: read from unknown mem {s.mem!r}")
            check_expr(s.addr)
        elif isinstance(s, MemWritePort):
            if s.mem not in mems:
                raise IRError(f"{module.name}: write to unknown mem {s.mem!r}")
            check_expr(s.addr)
            check_expr(s.data)
            check_expr(s.en)
        elif isinstance(s, DefNode):
            check_expr(s.expr)
        elif isinstance(s, Connect):
            check_expr(s.expr)
            key = str(s.target)
            if key in connect_targets:
                raise IRError(f"{module.name}: {key} driven twice")
            connect_targets.add(key)
            if isinstance(s.target, LocalTarget):
                name = s.target.name
                if name in inputs:
                    raise IRError(
                        f"{module.name}: cannot drive input port {name!r}"
                    )
                width = module.try_signal_width(name)
                if width is None:
                    raise IRError(
                        f"{module.name}: connect to undeclared {name!r}"
                    )
                if width != s.expr.width:
                    raise IRError(
                        f"{module.name}: connect {name} width mismatch "
                        f"({width} vs {s.expr.width})"
                    )
            elif isinstance(s.target, InstTarget):
                _check_inst_port(module, circuit, insts, s.target.inst,
                                 s.target.port, expect_output=False,
                                 width=s.expr.width)

    # every output port and wire should be driven (registers may hold)
    for p in module.output_ports:
        if p.name not in connect_targets:
            raise IRError(
                f"{module.name}: output port {p.name!r} is never driven"
            )
    for s in module.stmts:
        if isinstance(s, DefWire) and s.name not in connect_targets:
            raise IRError(f"{module.name}: wire {s.name!r} is never driven")


def _check_inst_port(module: Module, circuit: Circuit,
                     insts: Dict[str, str], inst: str, port: str,
                     expect_output: bool, width: int) -> None:
    if inst not in insts:
        raise IRError(f"{module.name}: unknown instance {inst!r}")
    if circuit is None:
        return
    child = circuit.modules.get(insts[inst])
    if child is None:
        raise IRError(
            f"{module.name}: instance {inst} of missing module "
            f"{insts[inst]!r}"
        )
    p = child.port(port)
    if expect_output and p.is_input:
        raise IRError(
            f"{module.name}: reads input port {inst}.{port} of child"
        )
    if not expect_output and not p.is_input:
        raise IRError(
            f"{module.name}: drives output port {inst}.{port} of child"
        )
    if p.width != width:
        raise IRError(
            f"{module.name}: {inst}.{port} width mismatch "
            f"({p.width} vs {width})"
        )
