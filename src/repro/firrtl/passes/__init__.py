"""Analysis and transform passes over the FIRRTL-like IR."""

from .base import Pass, PassManager
from .check import check_circuit, check_module
from .comb import circuit_comb_deps, module_comb_deps
from .connectivity import instance_adjacency
from .moduledag import module_topo_order

__all__ = [
    "Pass",
    "PassManager",
    "check_circuit",
    "check_module",
    "circuit_comb_deps",
    "module_comb_deps",
    "instance_adjacency",
    "module_topo_order",
]
