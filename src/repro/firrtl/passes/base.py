"""Tiny pass framework.

FireRipper (and Golden Gate before it) is structured as a sequence of
circuit-to-circuit passes.  We keep the same shape: a :class:`Pass` maps a
circuit to a circuit (possibly the same object), and a :class:`PassManager`
runs a pipeline while recording what ran, which makes compiler behaviour
easy to test and to report back to the user.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..circuit import Circuit


class Pass:
    """A named circuit transformation (or analysis wrapper)."""

    name = "pass"

    def run(self, circuit: Circuit) -> Circuit:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FnPass(Pass):
    """Adapt a plain function into a Pass."""

    def __init__(self, name: str, fn: Callable[[Circuit], Circuit]):
        self.name = name
        self._fn = fn

    def run(self, circuit: Circuit) -> Circuit:
        return self._fn(circuit)


class PassManager:
    """Runs passes in order and records the trace."""

    def __init__(self, passes: Optional[List[Pass]] = None):
        self.passes: List[Pass] = list(passes or [])
        self.trace: List[str] = []

    def add(self, p: Pass) -> "PassManager":
        self.passes.append(p)
        return self

    def run(self, circuit: Circuit) -> Circuit:
        self.trace = []
        for p in self.passes:
            circuit = p.run(circuit)
            self.trace.append(p.name)
        return circuit
