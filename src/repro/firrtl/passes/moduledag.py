"""Module instantiation DAG and its topological order.

FireRipper "first topologically sorts the modules according to their
position in the module hierarchy" so that each module's combinational
summary is available before its parents are analyzed.  This pass provides
exactly that order (children before parents).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...errors import IRError
from ..circuit import Circuit


def module_topo_order(circuit: Circuit) -> List[str]:
    """Module names in dependency order: leaves first, top last.

    Raises :class:`IRError` on recursive instantiation (illegal in this IR,
    as in FIRRTL).
    """
    order: List[str] = []
    done: Set[str] = set()
    visiting: Set[str] = set()

    def visit(name: str, stack: List[str]) -> None:
        if name in done:
            return
        if name in visiting:
            cycle = stack[stack.index(name):] + [name]
            raise IRError("recursive module instantiation: "
                          + " -> ".join(cycle))
        visiting.add(name)
        for inst in circuit.module(name).instances():
            if inst.module not in circuit.modules:
                raise IRError(
                    f"module {name} instantiates missing module "
                    f"{inst.module!r}"
                )
            visit(inst.module, stack + [name])
        visiting.discard(name)
        done.add(name)
        order.append(name)

    visit(circuit.top, [])
    # include modules unreachable from the top (harmless, keeps analyses
    # total over the circuit)
    for name in sorted(circuit.modules):
        visit(name, [])
    return order


def instance_counts(circuit: Circuit) -> Dict[str, int]:
    """How many times each module is instantiated in the elaborated design
    (the top counts once).  Used by resource estimation and FAME-5."""
    counts: Dict[str, int] = {name: 0 for name in circuit.modules}
    counts[circuit.top] = 1
    for name in reversed(module_topo_order(circuit)):
        mult = counts[name]
        if mult == 0:
            continue
        for inst in circuit.module(name).instances():
            counts[inst.module] += mult
    return counts
