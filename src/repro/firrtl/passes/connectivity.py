"""Instance connectivity analysis.

NoC-partition-mode (Sec. III-B of the paper) needs to know, inside a parent
module, which instances are wired to which: FireRipper "traverses the
circuit representation, collecting all the modules that are connected to
the modules inside the wrapper module, but are not connected to any other
[router nodes]".

We compute an undirected adjacency relation between sibling instances,
tracing through wires and nodes (registers also propagate adjacency here:
a register between two instances still means the two are wired together
for partitioning purposes).  Connections to the parent's own ports are
reported under the pseudo-instance name ``PARENT``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..ast import (
    Connect,
    DefNode,
    Expr,
    InstPort,
    InstTarget,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    Ref,
)
from ..circuit import Module

#: pseudo-instance representing the parent module's own I/O boundary
PARENT = "<parent>"


def instance_adjacency(module: Module) -> Dict[str, FrozenSet[str]]:
    """Undirected adjacency between sibling instances of ``module``.

    Keys are instance names (plus :data:`PARENT`); values are the sets of
    instances each is wired to, directly or through wires/nodes/registers.
    """
    inst_names = {i.name for i in module.instances()}
    ports = {p.name for p in module.ports}

    # For each local signal, which instances (or PARENT) source it —
    # propagated through wires/nodes/registers to a fixpoint.
    node_exprs: Dict[str, Expr] = {}
    drivers: Dict[str, Expr] = {}
    read_addrs: Dict[str, Expr] = {}
    for s in module.stmts:
        if isinstance(s, DefNode):
            node_exprs[s.name] = s.expr
        elif isinstance(s, MemReadPort):
            read_addrs[s.name] = s.addr
        elif isinstance(s, Connect) and isinstance(s.target, LocalTarget):
            drivers[s.target.name] = s.expr

    sources: Dict[str, Set[str]] = {}

    def signal_sources(name: str, seen: Set[str]) -> Set[str]:
        if name in sources:
            return sources[name]
        if name in seen:
            return set()
        seen.add(name)
        out: Set[str] = set()
        if name in ports:
            out.add(PARENT)
        expr = node_exprs.get(name) or drivers.get(name) \
            or read_addrs.get(name)
        if expr is not None:
            out |= expr_sources(expr, seen)
        sources[name] = out
        return out

    def expr_sources(expr: Expr, seen: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for leaf in expr.refs():
            if isinstance(leaf, InstPort):
                out.add(leaf.inst)
            elif isinstance(leaf, Ref):
                out |= signal_sources(leaf.name, seen)
        return out

    adjacency: Dict[str, Set[str]] = {n: set() for n in inst_names}
    adjacency[PARENT] = set()

    def link(a: str, b: str) -> None:
        if a == b:
            return
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    for s in module.stmts:
        if isinstance(s, Connect):
            if isinstance(s.target, InstTarget):
                for src in expr_sources(s.expr, set()):
                    link(s.target.inst, src)
            elif isinstance(s.target, LocalTarget) \
                    and s.target.name in ports:
                for src in expr_sources(s.expr, set()):
                    link(PARENT, src)

    return {k: frozenset(v) for k, v in adjacency.items()}


def connected_closure(module: Module, seeds: Set[str],
                      blockers: Set[str]) -> Set[str]:
    """Grow ``seeds`` with instances wired (transitively) to the seed set
    but not wired to any instance in ``blockers``.

    This is the paper's NoC-mode collection rule: starting from the wrapped
    router nodes, pull in protocol converters and tiles that hang only off
    those routers, stopping at instances that also touch other routers or
    the parent boundary.
    """
    adjacency = instance_adjacency(module)
    selected = set(seeds)
    changed = True
    while changed:
        changed = False
        for inst, neighbors in adjacency.items():
            if inst in selected or inst == PARENT or inst in blockers:
                continue
            if neighbors & selected and not (neighbors & blockers):
                selected.add(inst)
                changed = True
    return selected
