"""Combinational dependency analysis.

This is the analysis FireRipper runs before partitioning: for every module,
compute — for each output port — the set of input ports it depends on
through combinational logic only (registers break paths; memory reads are
combinational in this IR, so read data depends on the read address).

The per-module summaries compose hierarchically: an instance's output port
depends on whatever the child's summary says, applied to the expressions
the parent connects to the child's inputs.  Following the paper, modules
are processed in topological order so child summaries always exist.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...errors import IRError
from ..ast import (
    Connect,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    InstTarget,
    LocalTarget,
    MemReadPort,
    Ref,
)
from ..circuit import Circuit, Module
from .moduledag import module_topo_order

#: output port -> set of input ports it combinationally depends on
CombSummary = Dict[str, FrozenSet[str]]


def module_comb_deps(module: Module,
                     child_summaries: Dict[str, CombSummary]) -> CombSummary:
    """Combinational input-port dependencies for each output port.

    ``child_summaries`` maps module names (of instantiated children) to
    their own summaries.
    """
    analysis = _ModuleCombAnalysis(module, child_summaries)
    return {p.name: frozenset(analysis.deps_of_signal(p.name))
            for p in module.output_ports}


def circuit_comb_deps(circuit: Circuit) -> Dict[str, CombSummary]:
    """Summaries for every module in the circuit, children first."""
    summaries: Dict[str, CombSummary] = {}
    for name in module_topo_order(circuit):
        summaries[name] = module_comb_deps(circuit.module(name), summaries)
    return summaries


class _ModuleCombAnalysis:
    """Memoized local dependency traversal for one module."""

    def __init__(self, module: Module, child_summaries: Dict[str, CombSummary]):
        self.module = module
        self.child_summaries = child_summaries
        self.inputs: Set[str] = {p.name for p in module.input_ports}
        self.registers: Set[str] = {r.name for r in module.registers()}
        self.drivers: Dict[str, Expr] = {}
        self.node_exprs: Dict[str, Expr] = {}
        self.read_ports: Dict[str, Expr] = {}
        self.inst_modules: Dict[str, str] = {
            i.name: i.module for i in module.instances()
        }
        # connects to instance input ports: (inst, port) -> expr
        self.inst_inputs: Dict[Tuple[str, str], Expr] = {}
        for s in module.stmts:
            if isinstance(s, DefNode):
                self.node_exprs[s.name] = s.expr
            elif isinstance(s, MemReadPort):
                self.read_ports[s.name] = s.addr
            elif isinstance(s, Connect):
                if isinstance(s.target, LocalTarget):
                    self.drivers[s.target.name] = s.expr
                elif isinstance(s.target, InstTarget):
                    self.inst_inputs[(s.target.inst, s.target.port)] = s.expr
        self._memo: Dict[str, FrozenSet[str]] = {}
        self._in_progress: Set[str] = set()

    # -- local signals -------------------------------------------------------

    def deps_of_signal(self, name: str) -> FrozenSet[str]:
        """Input-port dependency set for a locally named signal."""
        if name in self._memo:
            return self._memo[name]
        if name in self.inputs:
            return frozenset((name,))
        if name in self.registers:
            return frozenset()
        if name in self._in_progress:
            # combinational loop through this signal; elaboration reports
            # loops precisely, here we just avoid infinite recursion.
            return frozenset()
        self._in_progress.add(name)
        try:
            if name in self.node_exprs:
                out = self.deps_of_expr(self.node_exprs[name])
            elif name in self.read_ports:
                out = self.deps_of_expr(self.read_ports[name])
            elif name in self.drivers:
                out = self.deps_of_expr(self.drivers[name])
            else:
                # undriven wire or output: no dependencies
                out = frozenset()
        finally:
            self._in_progress.discard(name)
        self._memo[name] = out
        return out

    def deps_of_expr(self, expr: Expr) -> FrozenSet[str]:
        out: Set[str] = set()
        for leaf in expr.refs():
            if isinstance(leaf, Ref):
                out |= self.deps_of_signal(leaf.name)
            elif isinstance(leaf, InstPort):
                out |= self._deps_of_inst_port(leaf)
        return frozenset(out)

    def _deps_of_inst_port(self, leaf: InstPort) -> FrozenSet[str]:
        mod_name = self.inst_modules.get(leaf.inst)
        if mod_name is None:
            raise IRError(
                f"{self.module.name}: reference to unknown instance "
                f"{leaf.inst!r}"
            )
        summary = self.child_summaries.get(mod_name)
        if summary is None:
            raise IRError(
                f"{self.module.name}: no comb summary for child module "
                f"{mod_name!r} (topological order violated)"
            )
        child_inputs = summary.get(leaf.port)
        if child_inputs is None:
            # reading a child *input* port would be odd; treat as no deps
            return frozenset()
        out: Set[str] = set()
        for child_in in child_inputs:
            driver = self.inst_inputs.get((leaf.inst, child_in))
            if driver is not None:
                out |= self.deps_of_expr(driver)
        return frozenset(out)


def comb_dependent_pairs(summary: CombSummary) -> List[Tuple[str, str]]:
    """Flatten a summary into (output, input) dependent pairs, sorted."""
    pairs = [(o, i) for o, ins in summary.items() for i in sorted(ins)]
    return sorted(pairs)


def classify_ports(module: Module, summary: CombSummary
                   ) -> Dict[str, List[str]]:
    """Split a module's boundary ports into the four LI-BDN channel roles
    used by exact-mode (Fig. 2b of the paper):

    * ``source_out``: outputs with no combinational input dependencies,
    * ``sink_out``:   outputs that depend on some input,
    * ``sink_in``:    inputs feeding some output combinationally,
    * ``source_in``:  the remaining inputs.
    """
    sink_out = sorted(o for o, ins in summary.items() if ins)
    source_out = sorted(o for o in summary if o not in set(sink_out))
    sink_in_set: Set[str] = set()
    for ins in summary.values():
        sink_in_set |= set(ins)
    sink_in = sorted(sink_in_set)
    source_in = sorted(p.name for p in module.input_ports
                       if p.name not in sink_in_set)
    return {
        "source_out": source_out,
        "sink_out": sink_out,
        "sink_in": sink_in,
        "source_in": source_in,
    }
