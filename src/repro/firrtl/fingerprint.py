"""Structural fingerprints of circuits and elaborations.

Two digests with two distinct jobs:

* :func:`circuit_fingerprint` — a digest of the *source-level* IR (the
  canonical textual printing), used by the scenario mill to prove that a
  seeded generator is deterministic: identical seeds must yield
  byte-identical circuits, across processes and regardless of
  ``PYTHONHASHSEED``.  Two circuits with the same fingerprint print
  identically, so they elaborate and simulate identically.
* :func:`elaboration_fingerprint` — a digest of the *flattened* design
  (signal widths, register inits, memory shapes), used by the
  checkpoint layer's topology check: a checkpoint may only be restored
  onto a partition whose elaborated RTL matches the one that was
  captured, not merely one with the same channel names.

Both digests are order-independent where the underlying structures are
unordered (dicts are serialized sorted), so they are stable across
Python hash randomization.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from .printer import print_circuit

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import Circuit

FINGERPRINT_HEX_DIGITS = 16


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[
        :FINGERPRINT_HEX_DIGITS]


def circuit_fingerprint(circuit: "Circuit") -> str:
    """Hex digest of the canonical textual printing of ``circuit``."""
    return _digest(print_circuit(circuit))


def elaboration_fingerprint(elab) -> str:
    """Hex digest of an elaborated design's structure.

    ``elab`` is duck-typed (an :class:`~repro.rtl.elaborate.Elaboration`
    or anything with ``widths``/``regs``/``mems`` mappings) so this
    module stays import-free of the RTL layer.
    """
    parts = []
    for name in sorted(elab.widths):
        parts.append(f"w {name} {elab.widths[name]}")
    for name in sorted(elab.regs):
        reg = elab.regs[name]
        parts.append(f"r {name} {reg.init}")
    for name in sorted(elab.mems):
        mem = elab.mems[name]
        parts.append(f"m {name} {mem.depth}x{mem.width}")
    return _digest("\n".join(parts))
