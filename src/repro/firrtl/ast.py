"""Abstract syntax tree for the FIRRTL-like circuit IR.

The IR is a deliberately small subset of FIRRTL sufficient to express the
targets the paper partitions (cores, accelerators, NoCs, ready-valid
plumbing) while keeping combinational analysis and elaboration tractable:

* every signal is an unsigned bit vector (``UInt<w>``); signed arithmetic is
  expressed through explicit primitive ops,
* there is a single implicit clock and a synchronous active-high reset,
* control flow (`when`) is expressed through ``mux`` expressions, so every
  signal has exactly one driving connect,
* memories have combinational read ports and synchronous write ports.

Expressions are immutable trees; statements are flat, ordered lists inside a
:class:`~repro.firrtl.circuit.Module`.  Widths are resolved at construction
time (the builder computes them), so passes never need an inference step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..errors import IRError

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for IR expressions.  Immutable; ``width`` is resolved."""

    width: int

    def refs(self) -> Iterator["Expr"]:
        """Yield every :class:`Ref` / :class:`InstPort` leaf in the tree."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Ref(Expr):
    """Reference to a local signal: port, wire, node, or register."""

    name: str
    width: int

    def refs(self):
        yield self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InstPort(Expr):
    """Read of an instance port, e.g. ``router0.out_valid``."""

    inst: str
    port: str
    width: int

    def refs(self):
        yield self

    def __str__(self) -> str:
        return f"{self.inst}.{self.port}"


@dataclass(frozen=True)
class Lit(Expr):
    """Unsigned literal with an explicit width."""

    value: int
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise IRError(f"literal width must be positive, got {self.width}")
        if self.value < 0 or self.value >= (1 << self.width):
            raise IRError(
                f"literal {self.value} does not fit in {self.width} bits"
            )

    def refs(self):
        return iter(())

    def __str__(self) -> str:
        return f'UInt<{self.width}>({self.value})'


#: op name -> arity (number of expression operands).  Ops that also take
#: integer parameters (bits, shl, shr, pad) store them in ``params``.
PRIM_OPS: Dict[str, int] = {
    "add": 2,
    "sub": 2,
    "mul": 2,
    "div": 2,
    "rem": 2,
    "and": 2,
    "or": 2,
    "xor": 2,
    "not": 1,
    "eq": 2,
    "neq": 2,
    "lt": 2,
    "leq": 2,
    "gt": 2,
    "geq": 2,
    "mux": 3,
    "cat": 2,
    "bits": 1,  # params: (hi, lo)
    "shl": 1,   # params: (amount,)
    "shr": 1,   # params: (amount,)
    "dshl": 2,
    "dshr": 2,
    "pad": 1,   # params: (width,)
    "andr": 1,
    "orr": 1,
    "xorr": 1,
}


@dataclass(frozen=True)
class PrimOp(Expr):
    """Primitive operation.

    ``width`` follows simplified FIRRTL rules (see :mod:`repro.firrtl.builder`
    for the width computation); ``params`` carries integer parameters for
    ``bits``/``shl``/``shr``/``pad``.
    """

    op: str
    args: Tuple[Expr, ...]
    width: int
    params: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.op not in PRIM_OPS:
            raise IRError(f"unknown primitive op {self.op!r}")
        if len(self.args) != PRIM_OPS[self.op]:
            raise IRError(
                f"{self.op} expects {PRIM_OPS[self.op]} args, "
                f"got {len(self.args)}"
            )

    def refs(self):
        for a in self.args:
            yield from a.refs()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        parts = [str(a) for a in self.args]
        parts += [str(p) for p in self.params]
        return f"{self.op}({', '.join(parts)})"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Stmt:
    """Base class for IR statements."""


INPUT = "input"
OUTPUT = "output"


@dataclass
class Port(Stmt):
    """Module I/O port."""

    name: str
    direction: str  # INPUT or OUTPUT
    width: int

    def __post_init__(self):
        if self.direction not in (INPUT, OUTPUT):
            raise IRError(f"bad port direction {self.direction!r}")
        if self.width <= 0:
            raise IRError(f"port {self.name}: width must be positive")

    @property
    def is_input(self) -> bool:
        return self.direction == INPUT


@dataclass
class DefWire(Stmt):
    """Named combinational signal driven by a later :class:`Connect`."""

    name: str
    width: int


@dataclass
class DefNode(Stmt):
    """Named immutable expression (single static assignment)."""

    name: str
    expr: Expr

    @property
    def width(self) -> int:
        return self.expr.width


@dataclass
class DefRegister(Stmt):
    """Register with synchronous reset to ``init``.

    The register's *next* value is set by a :class:`Connect` whose target is
    the register's name; reading the name anywhere yields the *current*
    value, so registers always break combinational paths.
    """

    name: str
    width: int
    init: int = 0

    def __post_init__(self):
        if self.init < 0 or self.init >= (1 << self.width):
            raise IRError(
                f"register {self.name}: init {self.init} does not fit "
                f"in {self.width} bits"
            )


@dataclass
class DefMemory(Stmt):
    """Word-addressed memory with comb reads and sync writes."""

    name: str
    depth: int
    width: int
    init: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.depth <= 0 or self.width <= 0:
            raise IRError(f"memory {self.name}: bad shape")
        if self.init is not None and len(self.init) > self.depth:
            raise IRError(f"memory {self.name}: init longer than depth")


@dataclass
class MemReadPort(Stmt):
    """Combinational read port: defines node ``name`` = ``mem[addr]``."""

    mem: str
    name: str
    addr: Expr


@dataclass
class MemWritePort(Stmt):
    """Synchronous write port: ``mem[addr] <= data`` when ``en`` at tick."""

    mem: str
    addr: Expr
    data: Expr
    en: Expr


@dataclass
class DefInstance(Stmt):
    """Instantiation of another module in the circuit."""

    name: str
    module: str


@dataclass(frozen=True)
class LocalTarget:
    """Connect target naming a local wire, output port, or register next."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InstTarget:
    """Connect target naming an instance *input* port."""

    inst: str
    port: str

    def __str__(self) -> str:
        return f"{self.inst}.{self.port}"


@dataclass
class Connect(Stmt):
    """Single driving connection ``target <= expr``."""

    target: object  # LocalTarget | InstTarget
    expr: Expr
