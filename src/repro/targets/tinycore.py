"""TinyCore: a small single-cycle RISC-style core, plus its tile.

This is the RTL-tier stand-in for a Rocket/BOOM tile: a real fetch-
decode-execute core running assembled programs from
:mod:`repro.targets.programs`, with queue MMIO so tiles can talk over a
bus or NoC.  The *tile* wraps the core with input/output queues, giving
it the decoupled ready-valid boundary that FireRipper's fast-mode (and
NoC-partition-mode) exploit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..firrtl.builder import ModuleBuilder, Signal, mux
from ..firrtl.circuit import Module
from .primitives import make_queue
from .programs import (
    ADDR_IN_POP,
    ADDR_IN_VALID,
    ADDR_OUT_PUSH,
    ADDR_OUT_READY,
)

WORD = 16
IMEM_DEPTH = 64
DMEM_DEPTH = 64


def make_tiny_core(program: Sequence[int],
                   name: str = "TinyCore",
                   shift_bug: bool = False) -> Module:
    """Build the core with ``program`` baked into its instruction ROM.

    Ports: ``done``/``result`` for observation; ``in_valid/in_bits/
    in_ready`` and ``out_valid/out_bits/out_ready`` for the queue MMIO
    described in :mod:`repro.targets.programs`.

    ``shift_bug=True`` plants the 24-core case-study RTL bug: right
    shifts by 8 or more lose a bit position (off-by-one in the shifter's
    upper mux).  Small workloads never execute wide shifts, so — like the
    paper's bug, which only appeared once larger binaries were loaded —
    it stays hidden until a "large binary" runs (Sec. V-A).
    """
    b = ModuleBuilder(name)
    done_out = b.output("done", 1)
    result_out = b.output("result", WORD)
    in_valid = b.input("in_valid", 1)
    in_bits = b.input("in_bits", WORD)
    in_ready = b.output("in_ready", 1)
    out_valid = b.output("out_valid", 1)
    out_bits = b.output("out_bits", WORD)
    out_ready = b.input("out_ready", 1)

    pc = b.reg("pc", 6)
    halted = b.reg("halted", 1)
    result = b.reg("result_r", WORD)

    imem = b.mem("imem", IMEM_DEPTH, WORD, init=list(program))
    instr = b.mem_read(imem, "instr", pc)

    op = b.node("op", instr.bits(15, 12))
    rd = b.node("rd", instr.bits(11, 9))
    ra = b.node("ra", instr.bits(8, 6))
    rb = b.node("rb", instr.bits(5, 3))
    imm = b.node("imm", instr.bits(5, 0))

    regfile = b.mem("regfile", 8, WORD)
    rf_ra = b.mem_read(regfile, "rf_ra", ra)
    rf_rb = b.mem_read(regfile, "rf_rb", rb)
    rf_rd = b.mem_read(regfile, "rf_rd", rd)

    running = b.node("running", ~halted)

    def is_op(code: int, label: str) -> Signal:
        return b.node(f"is_{label}", op.eq(code))

    is_halt = is_op(0x0, "halt")
    is_addi = is_op(0x1, "addi")
    is_add = is_op(0x2, "add")
    is_sub = is_op(0x3, "sub")
    is_and = is_op(0x4, "and")
    is_or = is_op(0x5, "or")
    is_xor = is_op(0x6, "xor")
    is_ld = is_op(0x7, "ld")
    is_st = is_op(0x8, "st")
    is_beq = is_op(0x9, "beq")
    is_bne = is_op(0xA, "bne")
    is_jmp = is_op(0xB, "jmp")
    is_li = is_op(0xC, "li")
    is_out = is_op(0xD, "out")
    is_shl = is_op(0xE, "shl")
    is_shr = is_op(0xF, "shr")

    # data memory with MMIO window
    dmem = b.mem("dmem", DMEM_DEPTH, WORD)
    addr = b.node("addr", (rf_ra + imm).bits(5, 0))
    dval = b.mem_read(dmem, "dval", addr)

    mmio_in_valid = b.node("mmio_in_valid", addr.eq(ADDR_IN_VALID))
    mmio_in_pop = b.node("mmio_in_pop", addr.eq(ADDR_IN_POP))
    mmio_out_ready = b.node("mmio_out_ready", addr.eq(ADDR_OUT_READY))
    mmio_out_push = b.node("mmio_out_push", addr.eq(ADDR_OUT_PUSH))

    ld_value = b.node(
        "ld_value",
        mux(mmio_in_valid, in_valid.read().pad(WORD),
            mux(mmio_in_pop, in_bits.read(),
                mux(mmio_out_ready, out_ready.read().pad(WORD), dval))))

    shamt = b.node("shamt", imm.bits(3, 0))
    if shift_bug:
        # the planted bug: for shift amounts >= 8 the shifter drops one
        # position (shifts by shamt - 1)
        buggy_shamt = b.node(
            "buggy_shamt",
            mux(shamt.geq(8), (shamt - 1).trunc(4), shamt))
        shr_value = rf_ra.dshr(buggy_shamt)
    else:
        shr_value = rf_ra.dshr(shamt)
    alu = b.node(
        "alu",
        mux(is_addi, rf_ra + imm,
            mux(is_add, rf_ra + rf_rb,
                mux(is_sub, rf_ra - rf_rb,
                    mux(is_and, rf_ra & rf_rb,
                        mux(is_or, rf_ra | rf_rb,
                            mux(is_xor, rf_ra ^ rf_rb,
                                mux(is_li, imm.pad(WORD),
                                    mux(is_shl, rf_ra.dshl(shamt),
                                        shr_value)))))))).trunc(WORD))

    wb_en = b.node(
        "wb_en",
        running & (is_addi | is_add | is_sub | is_and | is_or | is_xor
                   | is_li | is_shl | is_shr | is_ld))
    wb_val = b.node("wb_val", mux(is_ld, ld_value, alu))
    b.mem_write(regfile, rd, wb_val, wb_en)

    dmem_wen = b.node("dmem_wen",
                      running & is_st & ~mmio_out_push)
    b.mem_write(dmem, addr, rf_rd, dmem_wen)

    # queue MMIO handshakes
    b.connect(out_valid, running & is_st & mmio_out_push)
    b.connect(out_bits, rf_rd)
    b.connect(in_ready, running & is_ld & mmio_in_pop)

    # control flow
    eq = b.node("cmp_eq", rf_ra.eq(rf_rd))
    taken = b.node("taken",
                   (is_beq & eq) | (is_bne & ~eq) | is_jmp)
    pc_next = b.node(
        "pc_next",
        mux(~running | is_halt, pc.read(),
            mux(taken, imm, pc + 1)).trunc(6))
    b.connect(pc, pc_next)
    b.connect(halted, halted | (running & is_halt))
    b.connect(result, mux(running & is_out, rf_rd, result))
    b.connect(done_out, halted)
    b.connect(result_out, result)
    return b.build()


def make_tile(program: Sequence[int], name: str = "Tile",
              queue_depth: int = 4,
              shift_bug: bool = False) -> Tuple[Module, List[Module]]:
    """Wrap a TinyCore with in/out network queues.

    Returns ``(tile_module, library)``; the tile's network interface is a
    ready-valid pair ``net_in_*`` / ``net_out_*``, fully registered behind
    queues (a latency-insensitive boundary).
    """
    core = make_tiny_core(program, name=f"{name}_Core",
                          shift_bug=shift_bug)
    inq = make_queue(WORD, depth=queue_depth, name=f"{name}_InQ")
    outq = make_queue(WORD, depth=queue_depth, name=f"{name}_OutQ")

    b = ModuleBuilder(name)
    done = b.output("done", 1)
    result = b.output("result", WORD)
    net_in = b.rv_input("net_in", WORD)
    net_out = b.rv_output("net_out", WORD)

    c = b.inst("core", core)
    qi = b.inst("inq", inq)
    qo = b.inst("outq", outq)

    # network -> input queue -> core
    b.connect(qi["enq_valid"], net_in.valid)
    b.connect(qi["enq_bits"], net_in.bits)
    b.connect(net_in.ready, qi["enq_ready"])
    b.connect(c["in_valid"], qi["deq_valid"])
    b.connect(c["in_bits"], qi["deq_bits"])
    b.connect(qi["deq_ready"], c["in_ready"])

    # core -> output queue -> network
    b.connect(qo["enq_valid"], c["out_valid"])
    b.connect(qo["enq_bits"], c["out_bits"])
    b.connect(c["out_ready"], qo["enq_ready"])
    b.connect(net_out.valid, qo["deq_valid"])
    b.connect(net_out.bits, qo["deq_bits"])
    b.connect(qo["deq_ready"], net_out.ready)

    b.connect(done, c["done"])
    b.connect(result, c["result"])
    return b.build(), [core, inq, outq]
