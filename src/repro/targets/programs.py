"""TinyCore ISA, assembler, and the programs the case studies run.

TinyCore is a 16-bit, single-cycle, Harvard-architecture core — the
reproduction's stand-in for a Rocket tile.  Programs are real: they
execute out of an instruction ROM, loop, poll queues, and halt, so
partitioned simulation cycle counts are meaningful (Table II's validation
compares them against monolithic runs).

Instruction format (16 bits)::

    [15:12] opcode | [11:9] rd | [8:6] ra | [5:0] imm6
    register-register ops use [5:3] as rb

Opcodes:

====  =====  ==========================================
0x0   HALT   stop; assert ``done``
0x1   ADDI   rd = ra + imm6
0x2   ADD    rd = ra + rb
0x3   SUB    rd = ra - rb
0x4   AND    rd = ra & rb
0x5   OR     rd = ra | rb
0x6   XOR    rd = ra ^ rb
0x7   LD     rd = dmem[ra + imm6]   (addr 61/62 are queue MMIO)
0x8   ST     dmem[ra + imm6] = rd   (addr 63 pushes the output queue)
0x9   BEQ    if ra == rd: pc = imm6
0xA   BNE    if ra != rd: pc = imm6
0xB   JMP    pc = imm6
0xC   LI     rd = imm6
0xD   OUT    result register = rd
0xE   SHL    rd = ra << (imm6 & 15)
0xF   SHR    rd = ra >> (imm6 & 15)
====  =====  ==========================================

Queue MMIO (data addresses intercepted before the data memory):

* ``LD rd, [61]`` — input-queue valid flag (0/1), does not pop,
* ``LD rd, [62]`` — input-queue head; pops when valid,
* ``LD rd, [60]`` — output-queue ready flag,
* ``ST [63], rd`` — push rd to the output queue (dropped if not ready;
  well-behaved programs poll 60 first).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..errors import ReproError

HALT, ADDI, ADD, SUB, AND, OR, XOR, LD = range(8)
ST, BEQ, BNE, JMP, LI, OUT, SHL, SHR = range(8, 16)

#: queue MMIO addresses
ADDR_OUT_READY = 60
ADDR_IN_VALID = 61
ADDR_IN_POP = 62
ADDR_OUT_PUSH = 63

Instr = Tuple  # mnemonic-first tuples, see assemble()


class AsmError(ReproError):
    """Bad assembly program."""


def _reg(r: Union[int, str]) -> int:
    if isinstance(r, str):
        if not r.startswith("r"):
            raise AsmError(f"bad register {r!r}")
        r = int(r[1:])
    if not 0 <= r < 8:
        raise AsmError(f"register out of range: {r}")
    return r


def assemble(program: Sequence[Union[str, Instr]]) -> List[int]:
    """Assemble a program into instruction words.

    A program is a list of items; strings ending in ``:`` are labels,
    tuples are instructions like ``("ADDI", "r1", "r1", 1)`` or
    ``("BNE", "r1", "r2", "loop")`` (branch targets may be labels).
    """
    labels: Dict[str, int] = {}
    instrs: List[Instr] = []
    for item in program:
        if isinstance(item, str):
            if not item.endswith(":"):
                raise AsmError(f"bare string must be a label: {item!r}")
            labels[item[:-1]] = len(instrs)
        else:
            instrs.append(item)
    if len(instrs) > 64:
        raise AsmError(f"program too long: {len(instrs)} words (max 64)")

    ops = {"HALT": HALT, "ADDI": ADDI, "ADD": ADD, "SUB": SUB, "AND": AND,
           "OR": OR, "XOR": XOR, "LD": LD, "ST": ST, "BEQ": BEQ,
           "BNE": BNE, "JMP": JMP, "LI": LI, "OUT": OUT, "SHL": SHL,
           "SHR": SHR}

    def imm6(v: Union[int, str]) -> int:
        if isinstance(v, str):
            if v not in labels:
                raise AsmError(f"unknown label {v!r}")
            v = labels[v]
        if not 0 <= v < 64:
            raise AsmError(f"immediate out of range: {v}")
        return v

    words: List[int] = []
    for ins in instrs:
        name = ins[0]
        if name not in ops:
            raise AsmError(f"unknown mnemonic {name!r}")
        op = ops[name]
        rd = ra = imm = 0
        if name == "HALT":
            pass
        elif name in ("ADDI", "LD", "ST", "SHL", "SHR"):
            rd, ra, imm = _reg(ins[1]), _reg(ins[2]), imm6(ins[3])
        elif name in ("ADD", "SUB", "AND", "OR", "XOR"):
            rd, ra = _reg(ins[1]), _reg(ins[2])
            imm = _reg(ins[3]) << 3
        elif name in ("BEQ", "BNE"):
            rd, ra, imm = _reg(ins[1]), _reg(ins[2]), imm6(ins[3])
        elif name == "JMP":
            imm = imm6(ins[1])
        elif name == "LI":
            rd, imm = _reg(ins[1]), imm6(ins[2])
        elif name == "OUT":
            rd = _reg(ins[1])
        words.append((op << 12) | (rd << 9) | (ra << 6) | imm)
    return words


# --------------------------------------------------------------------------
# canned programs
# --------------------------------------------------------------------------


def boot_program(loop_count: int = 40) -> List[int]:
    """The "Linux boot" stand-in: initialize memory, run a copy+checksum
    loop ``loop_count`` times, report the checksum, halt.

    ``loop_count`` must fit the imm6 field (< 64).
    """
    if not 1 <= loop_count < 64:
        raise AsmError("loop_count must be in [1, 63]")
    return assemble([
        ("LI", "r1", 0),            # loop counter
        ("LI", "r2", loop_count),   # limit
        ("LI", "r3", 0),            # checksum
        ("LI", "r4", 7),            # seed value
        "loop:",
        ("ST", "r4", "r1", 0),      # dmem[r1] = r4
        ("LD", "r5", "r1", 0),      # r5 = dmem[r1]
        ("ADD", "r3", "r3", "r5"),  # checksum += r5
        ("ADDI", "r4", "r4", 3),    # mutate seed
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "loop"),
        ("OUT", "r3"),
        ("HALT",),
    ])


def boot_and_send_program(loop_count: int = 40,
                          messages: int = 8) -> List[int]:
    """The Rocket-tile workload for Table II: run the boot loop, then
    stream ``messages`` values (1..messages) to the SoC subsystem, halt."""
    if not 1 <= loop_count < 64 or not 1 <= messages < 64:
        raise AsmError("loop_count/messages must be in [1, 63]")
    return assemble([
        # boot phase (same body as boot_program)
        ("LI", "r1", 0),
        ("LI", "r2", loop_count),
        ("LI", "r3", 0),
        ("LI", "r4", 7),
        "boot:",
        ("ST", "r4", "r1", 0),
        ("LD", "r5", "r1", 0),
        ("ADD", "r3", "r3", "r5"),
        ("ADDI", "r4", "r4", 3),
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "boot"),
        ("OUT", "r3"),
        # stream phase
        ("LI", "r1", 0),
        ("LI", "r2", messages),
        ("LI", "r3", 1),
        "send:",
        ("LD", "r4", "r0", ADDR_OUT_READY),
        ("BEQ", "r4", "r0", "send"),
        ("ST", "r3", "r0", ADDR_OUT_PUSH),
        ("ADDI", "r3", "r3", 1),
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "send"),
        ("HALT",),
    ])


def sender_program(count: int, stride: int = 1) -> List[int]:
    """Stream ``count`` increasing values out of the tile queue, halt."""
    if not 1 <= count < 64 or not 1 <= stride < 64:
        raise AsmError("count/stride must be in [1, 63]")
    return assemble([
        ("LI", "r1", 0),           # sent
        ("LI", "r2", count),
        ("LI", "r3", 1),           # value
        "loop:",
        ("LD", "r4", "r0", ADDR_OUT_READY),
        ("BEQ", "r4", "r0", "loop"),       # wait for queue space
        ("ST", "r3", "r0", ADDR_OUT_PUSH),
        ("ADDI", "r3", "r3", stride),
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "loop"),
        ("OUT", "r1"),
        ("HALT",),
    ])


def sink_program(count: int) -> List[int]:
    """Receive ``count`` values from the tile queue, checksum, halt."""
    if not 1 <= count < 64:
        raise AsmError("count must be in [1, 63]")
    return assemble([
        ("LI", "r1", 0),           # received
        ("LI", "r2", count),
        ("LI", "r3", 0),           # checksum
        "loop:",
        ("LD", "r4", "r0", ADDR_IN_VALID),
        ("BEQ", "r4", "r0", "loop"),
        ("LD", "r5", "r0", ADDR_IN_POP),
        ("ADD", "r3", "r3", "r5"),
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "loop"),
        ("OUT", "r3"),
        ("HALT",),
    ])


def forwarder_program() -> List[int]:
    """Forever: pop a value from the input queue, push it out (the
    leaky-DMA servers' packet-forwarding loop)."""
    return assemble([
        "loop:",
        ("LD", "r4", "r0", ADDR_IN_VALID),
        ("BEQ", "r4", "r0", "loop"),
        ("LD", "r5", "r0", ADDR_IN_POP),
        "wait_out:",
        ("LD", "r4", "r0", ADDR_OUT_READY),
        ("BEQ", "r4", "r0", "wait_out"),
        ("ST", "r5", "r0", ADDR_OUT_PUSH),
        ("OUT", "r5"),
        ("JMP", "loop"),
    ])


def large_binary_program(count: int = 10) -> List[int]:
    """The "larger binary" of the 24-core case study: exercises wide
    right shifts (which small workloads never touch), sends a checksum of
    the shifted values to the hub, then halts.  On the buggy core the
    checksum is wrong, which the hub-side validation flags — the analogue
    of the paper's supervisor-binary-interface trap."""
    if not 1 <= count < 32:
        raise AsmError("count must be in [1, 31]")
    return assemble([
        ("LI", "r1", 0),            # iterations
        ("LI", "r2", count),
        ("LI", "r3", 0),            # checksum
        ("LI", "r6", 55),           # value seed
        "loop:",
        ("SHL", "r4", "r6", 9),     # spread bits high
        ("SHR", "r5", "r4", 9),     # wide right shift: hits the bug
        ("ADD", "r3", "r3", "r5"),
        ("ADDI", "r6", "r6", 7),
        ("ADDI", "r1", "r1", 1),
        ("BNE", "r1", "r2", "loop"),
        "send:",
        ("LD", "r4", "r0", ADDR_OUT_READY),
        ("BEQ", "r4", "r0", "send"),
        ("ST", "r3", "r0", ADDR_OUT_PUSH),
        ("OUT", "r3"),
        ("HALT",),
    ])


def large_binary_reference_checksum(count: int = 10) -> int:
    """Golden checksum for :func:`large_binary_program`."""
    total = 0
    value = 55
    for _ in range(count):
        spread = (value << 9) & 0xFFFF
        total = (total + (spread >> 9)) & 0xFFFF
        value = (value + 7) & 0xFFFF
    return total


def idle_program() -> List[int]:
    """Spin forever (a parked core)."""
    return assemble([
        "loop:",
        ("JMP", "loop"),
    ])
