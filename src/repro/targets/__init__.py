"""Target designs written in the IR.

These are the stand-ins for the paper's Chisel-generated RTL: ready-valid
primitives, the Fig. 2 combinational-boundary pair, a small RISC-style
core tile that runs real programs, Sha3-like and Gemmini-like accelerator
SoCs, a Constellation-like ring NoC generator, and multi-tile SoC
builders.  Everything a case study partitions is generated here.
"""

from .primitives import (
    make_counter,
    make_pipe,
    make_queue,
    make_rv_consumer,
    make_rv_producer,
)
from .combo import make_comb_pair_circuit, COMB_PAIR_REGS

__all__ = [
    "make_queue",
    "make_pipe",
    "make_counter",
    "make_rv_producer",
    "make_rv_consumer",
    "make_comb_pair_circuit",
    "COMB_PAIR_REGS",
]
