"""Ready-valid primitives: queues, pipes, producers, consumers, counters.

These are the building blocks the larger targets compose, and they match
the decoupled-interface idioms the paper's fast-mode banks on: modules
attached to buses "interface with the bus via decoupled interfaces"
(Sec. III-A2), i.e. exactly these queues.
"""

from __future__ import annotations

from typing import Optional

from ..firrtl.builder import ModuleBuilder, mux
from ..firrtl.circuit import Module


def make_queue(width: int, depth: int = 2,
               name: Optional[str] = None) -> Module:
    """Standard ready-valid FIFO queue.

    Ports: ``enq_valid/enq_ready/enq_bits`` and
    ``deq_valid/deq_ready/deq_bits``.  Ready is combinational on
    occupancy only (not on ``deq_ready``), so the enqueue side of a queue
    is a latency-insensitive boundary — the property fast-mode needs.
    """
    b = ModuleBuilder(name or f"Queue_w{width}_d{depth}")
    enq = b.rv_input("enq", width)
    deq = b.rv_output("deq", width)

    ptr_w = max((depth - 1).bit_length(), 1)
    cnt_w = depth.bit_length()
    count = b.reg("count", cnt_w)
    rptr = b.reg("rptr", ptr_w)
    wptr = b.reg("wptr", ptr_w)
    storage = b.mem("storage", depth, width)

    not_full = b.node("not_full", count.lt(depth))
    not_empty = b.node("not_empty", count.gt(0))
    enq_fire = b.node("enq_fire", enq.valid.read() & not_full)
    deq_fire = b.node("deq_fire", not_empty & deq.ready.read())

    b.mem_write(storage, wptr, enq.bits.read(), enq_fire)
    head = b.mem_read(storage, "head", rptr)

    b.connect(enq.ready, not_full)
    b.connect(deq.valid, not_empty)
    b.connect(deq.bits, head)

    wrap = depth - 1
    b.connect(wptr, mux(enq_fire, mux(wptr.eq(wrap), b.lit(0, ptr_w),
                                      wptr + 1), wptr))
    b.connect(rptr, mux(deq_fire, mux(rptr.eq(wrap), b.lit(0, ptr_w),
                                      rptr + 1), rptr))
    b.connect(count, (count + enq_fire) - deq_fire)
    return b.build()


def make_pipe(width: int, name: Optional[str] = None) -> Module:
    """Single-stage valid pipe (no backpressure): out is in, one cycle
    later."""
    b = ModuleBuilder(name or f"Pipe_w{width}")
    in_valid = b.input("in_valid", 1)
    in_bits = b.input("in_bits", width)
    out_valid = b.output("out_valid", 1)
    out_bits = b.output("out_bits", width)
    v = b.reg("v", 1)
    d = b.reg("d", width)
    b.connect(v, in_valid)
    b.connect(d, mux(in_valid.read(), in_bits, d))
    b.connect(out_valid, v)
    b.connect(out_bits, d)
    return b.build()


def make_counter(width: int = 16, name: Optional[str] = None) -> Module:
    """Free-running counter with an enable — a minimal source-only module."""
    b = ModuleBuilder(name or f"Counter_w{width}")
    en = b.input("en", 1)
    out = b.output("count", width)
    r = b.reg("r", width)
    b.connect(r, mux(en.read(), r + 1, r))
    b.connect(out, r)
    return b.build()


def make_rv_producer(width: int, count: int = 0,
                     name: Optional[str] = None) -> Module:
    """Produces an incrementing value stream on a ready-valid output.

    With ``count > 0`` it stops after that many transactions and raises
    ``done``; with ``count == 0`` it streams forever.  The produced values
    are ``1, 2, 3, ...`` so consumers can checksum them.
    """
    b = ModuleBuilder(name or f"RVProducer_w{width}_n{count}")
    out = b.rv_output("out", width)
    done = b.output("done", 1)
    sent = b.reg("sent", 32)
    value = b.reg("value", width, init=1)

    if count > 0:
        active = b.node("active", sent.lt(count))
    else:
        active = b.node("active", b.lit(1, 1))
    fire = b.node("fire", active & out.ready.read())
    b.connect(out.valid, active)
    b.connect(out.bits, value)
    b.connect(sent, sent + fire)
    b.connect(value, mux(fire, value + 1, value))
    if count > 0:
        b.connect(done, sent.geq(count))
    else:
        b.connect(done, 0)
    return b.build()


def make_rv_consumer(width: int, stall_mask: int = 0,
                     name: Optional[str] = None) -> Module:
    """Consumes a ready-valid stream, accumulating a checksum.

    ``stall_mask`` deasserts ready on cycles where
    ``cycle & stall_mask != 0``, to exercise backpressure.
    Outputs: ``sum`` (checksum), ``received`` (transaction count).
    """
    b = ModuleBuilder(name or f"RVConsumer_w{width}_m{stall_mask}")
    inp = b.rv_input("in", width)
    total = b.output("sum", 32)
    received = b.output("received", 32)
    cyc = b.reg("cyc", 16)
    acc = b.reg("acc", 32)
    cnt = b.reg("cnt", 32)
    b.connect(cyc, cyc + 1)
    if stall_mask:
        ready = b.node("ready_now", (cyc & stall_mask).eq(0))
    else:
        ready = b.node("ready_now", b.lit(1, 1))
    fire = b.node("fire", inp.valid.read() & ready)
    b.connect(inp.ready, ready)
    b.connect(acc, mux(fire, acc + inp.bits.read(), acc))
    b.connect(cnt, cnt + fire)
    b.connect(total, acc)
    b.connect(received, cnt)
    return b.build()
