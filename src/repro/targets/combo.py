"""The Fig. 2 combinational-boundary pair, reconstructed concretely.

Two modules whose boundary carries combinational logic in both directions,
arranged exactly so the paper's exact-mode walkthrough reproduces:

* ``CombLeft`` (LI-BDN 1): register ``x`` (init 1); source output
  ``s = x``; sink output ``d = a + x`` (adder *P*); sink input ``a``;
  source input ``e`` feeding ``x`` directly.
* ``CombRight`` (LI-BDN 2): register ``y`` (init 2); source output
  ``ya = y``; sink output ``q = c + y + 4`` (adder *Q*); sink input ``c``;
  source input ``f`` with ``y <= f + y + 4``.

Wired ``s -> c``, ``q -> e``, ``ya -> a``, ``d -> f``, the first simulated
cycle produces the paper's token values: source tokens 1 and 2 in step 1,
sink tokens 3 and 7 in step 2, and registers updating to 7 and 9 in
step 3.
"""

from __future__ import annotations

from typing import Tuple

from ..firrtl.builder import ModuleBuilder, make_circuit
from ..firrtl.circuit import Circuit, Module

#: register start values and the first-cycle expectations from the paper
COMB_PAIR_REGS = {
    "x_init": 1, "y_init": 2,
    "step1_source_tokens": (1, 2),
    "step2_sink_tokens": (3, 7),
    "step3_registers": (7, 9),
}

WIDTH = 16


def make_comb_left() -> Module:
    b = ModuleBuilder("CombLeft")
    a = b.input("a", WIDTH)       # sink in (feeds adder P)
    e = b.input("e", WIDTH)       # source in (feeds register x only)
    d = b.output("d", WIDTH)      # sink out: adder P = a + x
    s = b.output("s", WIDTH)      # source out: register x
    x = b.reg("x", WIDTH, init=COMB_PAIR_REGS["x_init"])
    b.connect(d, a + x)
    b.connect(s, x)
    b.connect(x, e)
    return b.build()


def make_comb_right() -> Module:
    b = ModuleBuilder("CombRight")
    c = b.input("c", WIDTH)       # sink in (feeds adder Q)
    f = b.input("f", WIDTH)       # source in (register y datapath only)
    q = b.output("q", WIDTH)      # sink out: adder Q = c + y + 4
    ya = b.output("ya", WIDTH)    # source out: register y
    y = b.reg("y", WIDTH, init=COMB_PAIR_REGS["y_init"])
    b.connect(q, (c + y) + 4)
    b.connect(ya, y)
    b.connect(y, (f + y) + 4)
    return b.build()


def make_comb_pair_circuit() -> Circuit:
    """Monolithic circuit wiring the two halves; ``x_obs``/``y_obs``
    expose the register values for validation."""
    left = make_comb_left()
    right = make_comb_right()
    b = ModuleBuilder("CombPairTop")
    x_obs = b.output("x_obs", WIDTH)
    y_obs = b.output("y_obs", WIDTH)
    l = b.inst("left", left)
    r = b.inst("right", right)
    b.connect(r["c"], l["s"])
    b.connect(l["e"], r["q"])
    b.connect(l["a"], r["ya"])
    b.connect(r["f"], l["d"])
    b.connect(x_obs, l["s"])
    b.connect(y_obs, r["ya"])
    return make_circuit(b.build(), [left, right])
