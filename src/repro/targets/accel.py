"""Accelerator SoCs for the Table II validation.

Two accelerators with opposite boundary sensitivity, mirroring the
paper's validation targets:

* :func:`make_sha3_soc` — a Sha3-like absorb/permute engine that streams
  its input through a ready-valid memory port.  Every word costs a memory
  round trip across the partition boundary, so fast-mode's injected cycle
  of latency shows up directly in the runtime (the paper's 6.62% error
  case).
* :func:`make_gemmini_soc` — a Gemmini-like matmul engine that crunches
  out of a preloaded local scratchpad.  Only the command and completion
  cross the boundary, so fast-mode barely perturbs the cycle count
  (0.22% in the paper).

Both SoCs expose ``done`` and ``digest``/``checksum`` outputs and raise
``done`` after one operation, so harnesses can measure operation latency
in cycles.
"""

from __future__ import annotations

from typing import List, Tuple

from ..firrtl.builder import ModuleBuilder, mux
from ..firrtl.circuit import Circuit, Module
from ..firrtl.builder import make_circuit

WORD = 16


def make_simple_memory(latency: int = 6, depth: int = 64,
                       name: str = "SimpleMem") -> Module:
    """One-outstanding-request memory: ready-valid request (address) in,
    ready-valid response (data) out after ``latency`` cycles.

    Contents are synthesized as ``data[a] = 3a + 1`` so accelerators can
    be checked against a closed-form reference.
    """
    b = ModuleBuilder(name)
    req = b.rv_input("req", WORD)
    resp = b.rv_output("resp", WORD)

    init = [(3 * a + 1) & 0xFFFF for a in range(depth)]
    store = b.mem("store", depth, WORD, init=init)

    busy = b.reg("busy", 1)
    countdown = b.reg("countdown", 8)
    pending_addr = b.reg("pending_addr", WORD)
    resp_full = b.reg("resp_full", 1)
    resp_data = b.reg("resp_data", WORD)

    accept = b.node("accept", ~busy & ~resp_full)
    req_fire = b.node("req_fire", req.valid.read() & accept)
    b.connect(req.ready, accept)

    expired = b.node("expired", busy & countdown.eq(0))
    addr_bits = b.node("addr_bits", pending_addr.bits(5, 0))
    data = b.mem_read(store, "data", addr_bits)

    b.connect(busy, mux(req_fire, b.lit(1, 1), mux(expired, 0, busy)))
    b.connect(countdown,
              mux(req_fire, b.lit(latency, 8),
                  mux(busy & countdown.gt(0), countdown - 1, countdown)))
    b.connect(pending_addr, mux(req_fire, req.bits.read(), pending_addr))

    resp_fire = b.node("resp_fire", resp_full & resp.ready.read())
    b.connect(resp_full,
              mux(expired, b.lit(1, 1), mux(resp_fire, 0, resp_full)))
    b.connect(resp_data, mux(expired, data, resp_data))
    b.connect(resp.valid, resp_full)
    b.connect(resp.bits, resp_data)
    return b.build()


def make_pipelined_memory(latency: int = 6, depth: int = 64,
                          window: int = 16,
                          name: str = "PipelinedMem") -> Module:
    """Streaming memory: accepts up to ``window`` outstanding requests;
    each response becomes visible ``latency`` cycles after its request
    (in order).  Contents are ``data[a] = 3a + 1``.
    """
    b = ModuleBuilder(name)
    req = b.rv_input("req", WORD)
    resp = b.rv_output("resp", WORD)

    init = [(3 * a + 1) & 0xFFFF for a in range(depth)]
    store = b.mem("store", depth, WORD, init=init)

    now = b.reg("now", 16)
    b.connect(now, now + 1)

    ptr_w = max((window - 1).bit_length(), 1)
    cnt_w = window.bit_length()
    count = b.reg("count", cnt_w)
    rptr = b.reg("rptr", ptr_w)
    wptr = b.reg("wptr", ptr_w)
    pending = b.mem("pending", window, WORD)  # data, fetched at enqueue
    stamps = b.mem("stamps", window, 16)

    not_full = b.node("not_full", count.lt(window))
    req_fire = b.node("req_fire", req.valid.read() & not_full)
    b.connect(req.ready, not_full)

    addr_bits = b.node("addr_bits", req.bits.read().bits(5, 0))
    fetched = b.mem_read(store, "fetched", addr_bits)
    b.mem_write(pending, wptr, fetched, req_fire)
    b.mem_write(stamps, wptr, now, req_fire)

    head_data = b.mem_read(pending, "head_data", rptr)
    head_stamp = b.mem_read(stamps, "head_stamp", rptr)
    aged = b.node("aged", (now - head_stamp).trunc(16).geq(latency))
    resp_ok = b.node("resp_ok", count.gt(0) & aged)
    resp_fire = b.node("resp_fire", resp_ok & resp.ready.read())
    b.connect(resp.valid, resp_ok)
    b.connect(resp.bits, head_data)

    wrap = window - 1
    b.connect(wptr, mux(req_fire, mux(wptr.eq(wrap), b.lit(0, ptr_w),
                                      wptr + 1), wptr))
    b.connect(rptr, mux(resp_fire, mux(rptr.eq(wrap), b.lit(0, ptr_w),
                                       rptr + 1), rptr))
    b.connect(count, (count + req_fire) - resp_fire)
    return b.build()


def make_sha3_accel(name: str = "Sha3Accel") -> Module:
    """Absorb-and-permute engine streaming ``len`` words from memory.

    Requests pipeline (the engine does not wait for each response before
    issuing the next read), like the real DMA-driven Sha3 accelerator;
    responses fold into a rotating hash state in order.

    Command format: ``cmd_bits = [len(6) | addr(6)]``.
    """
    b = ModuleBuilder(name)
    cmd = b.rv_input("cmd", 12)
    mreq = b.rv_output("mreq", WORD)
    mresp = b.rv_input("mresp", WORD)
    done = b.output("done", 1)
    digest = b.output("digest", WORD)

    busy = b.reg("busy", 1)
    addr = b.reg("addr", 6)
    to_issue = b.reg("to_issue", 7)
    to_recv = b.reg("to_recv", 7)
    hash_state = b.reg("hash_state", WORD, init=0x5A5A & 0xFFFF)
    finished = b.reg("finished", 1)

    idle = b.node("idle", ~busy)
    cmd_fire = b.node("cmd_fire", cmd.valid.read() & idle)
    b.connect(cmd.ready, idle)

    issuing = b.node("issuing", busy & to_issue.gt(0))
    b.connect(mreq.valid, issuing)
    b.connect(mreq.bits, addr.pad(WORD))
    mreq_fire = b.node("mreq_fire", issuing & mreq.ready.read())

    b.connect(mresp.ready, busy)
    mresp_fire = b.node("mresp_fire", busy & mresp.valid.read())

    # permute: rotate-left 3, xor data, add golden-ratio-ish constant
    absorbed = b.node(
        "absorbed",
        ((hash_state.dshl(3) | hash_state.dshr(13))
         ^ mresp.bits.read()) + 0x9E3)

    last_word = b.node("last_word", to_recv.eq(1))
    op_done = b.node("op_done", mresp_fire & last_word)
    b.connect(busy, mux(cmd_fire, b.lit(1, 1), mux(op_done, 0, busy)))
    b.connect(addr, mux(cmd_fire, cmd.bits.read().bits(5, 0),
                        mux(mreq_fire, addr + 1, addr)))
    b.connect(to_issue,
              mux(cmd_fire, cmd.bits.read().bits(11, 6).pad(7),
                  mux(mreq_fire, to_issue - 1, to_issue)))
    b.connect(to_recv,
              mux(cmd_fire, cmd.bits.read().bits(11, 6).pad(7),
                  mux(mresp_fire, to_recv - 1, to_recv)))
    b.connect(hash_state, mux(mresp_fire, absorbed, hash_state))
    b.connect(finished, finished | op_done)
    b.connect(done, finished)
    b.connect(digest, hash_state)
    return b.build()


def make_sha3_soc(n_words: int = 16, mem_latency: int = 6
                  ) -> Circuit:
    """SoC: command driver + Sha3-like accelerator + backing memory."""
    accel = make_sha3_accel()
    memory = make_pipelined_memory(latency=mem_latency)
    b = ModuleBuilder("Sha3SoC")
    done = b.output("done", 1)
    digest = b.output("digest", WORD)

    a = b.inst("sha3accel", accel)
    m = b.inst("mem", memory)

    # one-shot command driver
    issued = b.reg("issued", 1)
    cmd_fire = b.node("cmd_fire", ~issued & a["cmd_ready"].read())
    b.connect(issued, issued | cmd_fire)
    b.connect(a["cmd_valid"], ~issued)
    b.connect(a["cmd_bits"], b.lit((n_words << 6) | 0, 12))

    b.connect(m["req_valid"], a["mreq_valid"])
    b.connect(m["req_bits"], a["mreq_bits"])
    b.connect(a["mreq_ready"], m["req_ready"])
    b.connect(a["mresp_valid"], m["resp_valid"])
    b.connect(a["mresp_bits"], m["resp_bits"])
    b.connect(m["resp_ready"], a["mresp_ready"])

    b.connect(done, a["done"])
    b.connect(digest, a["digest"])
    return make_circuit(b.build(), [accel, memory])


def make_gemmini_accel(dim: int = 4, name: str = "GemminiAccel") -> Module:
    """Matmul engine over a preloaded scratchpad: C = A x B with a
    ``dim^3`` MAC loop, one MAC per cycle, then a checksum reduction."""
    b = ModuleBuilder(name)
    cmd = b.rv_input("cmd", 4)
    done = b.output("done", 1)
    checksum = b.output("checksum", WORD)

    n = dim
    a_init = [((3 * i + 5) % 23) & 0xFFFF for i in range(n * n)]
    b_init = [((7 * i + 2) % 19) & 0xFFFF for i in range(n * n)]
    spad_a = b.mem("spad_a", n * n, WORD, init=a_init)
    spad_b = b.mem("spad_b", n * n, WORD, init=b_init)
    spad_c = b.mem("spad_c", n * n, WORD)

    idx_w = max((n - 1).bit_length(), 1)
    i = b.reg("i", idx_w)
    j = b.reg("j", idx_w)
    k = b.reg("k", idx_w)
    acc = b.reg("acc", WORD)
    csum = b.reg("csum", WORD)
    # 0 idle, 1 computing, 2 reducing, 3 done
    state = b.reg("state", 2)

    idle = b.node("idle", state.eq(0))
    computing = b.node("computing", state.eq(1))
    reducing = b.node("reducing", state.eq(2))

    cmd_fire = b.node("cmd_fire", cmd.valid.read() & idle)
    b.connect(cmd.ready, idle)

    a_addr = b.node("a_addr", (i * n + k).trunc(2 * idx_w + 1))
    b_addr = b.node("b_addr", (k * n + j).trunc(2 * idx_w + 1))
    c_addr = b.node("c_addr", (i * n + j).trunc(2 * idx_w + 1))
    a_val = b.mem_read(spad_a, "a_val", a_addr)
    b_val = b.mem_read(spad_b, "b_val", b_addr)
    c_val = b.mem_read(spad_c, "c_val", c_addr)

    mac = b.node("mac", (acc + a_val * b_val).trunc(WORD))
    k_last = b.node("k_last", k.eq(n - 1))
    j_last = b.node("j_last", j.eq(n - 1))
    i_last = b.node("i_last", i.eq(n - 1))
    cell_done = b.node("cell_done", computing & k_last)
    all_cells = b.node("all_cells", cell_done & j_last & i_last)

    b.mem_write(spad_c, c_addr, mac, cell_done)
    b.connect(acc, mux(computing, mux(k_last, b.lit(0, WORD), mac), acc))
    b.connect(k, mux(computing, mux(k_last, b.lit(0, idx_w), k + 1), k))
    # the (i, j) walk advances per completed cell while computing, and per
    # cycle while reducing (the reduction re-walks C in the same order)
    step_ij = b.node("step_ij", cell_done | reducing)
    b.connect(j, mux(step_ij, mux(j_last, b.lit(0, idx_w), j + 1), j))
    b.connect(i, mux(step_ij & j_last,
                     mux(i_last, b.lit(0, idx_w), i + 1), i))

    # reduction reuses i*n+j as the walk index via (i, j)
    red_val = b.node("red_val", c_val)
    red_last = b.node("red_last", reducing & j_last & i_last)
    b.connect(csum, mux(reducing, (csum + red_val).trunc(WORD), csum))

    b.connect(
        state,
        mux(cmd_fire, b.lit(1, 2),
            mux(all_cells, b.lit(2, 2),
                mux(red_last, b.lit(3, 2), state))))
    b.connect(done, state.eq(3))
    b.connect(checksum, csum)
    return b.build()


def make_gemmini_soc(dim: int = 4) -> Circuit:
    """SoC: command driver + Gemmini-like matmul accelerator."""
    accel = make_gemmini_accel(dim=dim)
    b = ModuleBuilder("GemminiSoC")
    done = b.output("done", 1)
    checksum = b.output("checksum", WORD)
    a = b.inst("gemminiaccel", accel)
    issued = b.reg("issued", 1)
    cmd_fire = b.node("cmd_fire", ~issued & a["cmd_ready"].read())
    b.connect(issued, issued | cmd_fire)
    b.connect(a["cmd_valid"], ~issued)
    b.connect(a["cmd_bits"], b.lit(1, 4))
    b.connect(done, a["done"])
    b.connect(checksum, a["checksum"])
    return make_circuit(b.build(), [accel])


def gemmini_reference_checksum(dim: int = 4) -> int:
    """Closed-form reference for the Gemmini checksum."""
    n = dim
    a = [((3 * i + 5) % 23) for i in range(n * n)]
    bm = [((7 * i + 2) % 19) for i in range(n * n)]
    total = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * bm[k * n + j]) & 0xFFFF
            total = (total + acc) & 0xFFFF
    return total


def sha3_reference_digest(n_words: int = 16) -> int:
    """Closed-form reference for the Sha3 digest."""
    state = 0x5A5A
    for a in range(n_words):
        data = (3 * a + 1) & 0xFFFF
        rot = ((state << 3) | (state >> 13)) & 0xFFFF
        state = (rot ^ data) + 0x9E3 & 0xFFFF
    return state
