"""SoC builders: ring-NoC multicore SoCs, the Rocket-like tile SoC, and
width-parametric boundary designs for the performance sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import IRError
from ..firrtl.builder import ModuleBuilder, make_circuit, mux
from ..firrtl.circuit import Circuit, Module
from .noc import (PAYLOAD, dest_bits, flit_width, make_converter,
                  make_router, make_torus_router)
from .primitives import make_queue
from .programs import boot_program, sender_program, sink_program
from .tinycore import make_tile


def make_ring_noc_soc(n_tiles: int,
                      tile_programs: Optional[Sequence[Sequence[int]]] = None,
                      hub_program: Optional[Sequence[int]] = None,
                      messages_per_tile: int = 4) -> Circuit:
    """A multicore SoC: ``n_tiles`` TinyCore tiles on a unidirectional
    ring NoC, plus a hub tile (the "SoC subsystem") at router index
    ``n_tiles``.

    By default every tile streams ``messages_per_tile`` values to the
    hub, which checksums ``n_tiles * messages_per_tile`` receipts and
    halts — so ``done``/``result`` witness full cross-NoC traffic.

    Router instances are named ``router<i>``; partition this circuit with
    ``PartitionSpec(noc=NoCPartitionSpec.make([[...indices...]]))``.
    """
    n_routers = n_tiles + 1
    hub_id = n_tiles
    if tile_programs is None:
        tile_programs = [sender_program(messages_per_tile)
                         for _ in range(n_tiles)]
    if hub_program is None:
        total = n_tiles * messages_per_tile
        if total >= 64:
            raise IRError(
                "default hub sink program counts < 64 messages; pass a "
                "custom hub_program for larger runs")
        hub_program = sink_program(total)

    library: List[Module] = []
    b = ModuleBuilder(f"RingSoC_{n_tiles}t")
    done = b.output("done", 1)
    result = b.output("result", PAYLOAD)

    routers = []
    for i in range(n_routers):
        rmod, rlib = make_router(i, n_routers)
        library.append(rmod)
        library.extend(rlib)
        routers.append(b.inst(f"router{i}", rmod))

    def attach_tile(idx: int, program: Sequence[int], dest: int,
                    label: str):
        tmod, tlib = make_tile(program, name=f"{label}Tile{idx}")
        cmod = make_converter(dest, n_routers,
                              name=f"Converter{idx}_n{n_routers}")
        library.append(tmod)
        library.extend(tlib)
        library.append(cmod)
        t = b.inst(f"tile{idx}", tmod)
        c = b.inst(f"conv{idx}", cmod)
        r = routers[idx]
        b.connect(c["tile_in_valid"], t["net_out_valid"])
        b.connect(c["tile_in_bits"], t["net_out_bits"])
        b.connect(t["net_out_ready"], c["tile_in_ready"])
        b.connect(t["net_in_valid"], c["tile_out_valid"])
        b.connect(t["net_in_bits"], c["tile_out_bits"])
        b.connect(c["tile_out_ready"], t["net_in_ready"])
        b.connect(r["local_in_valid"], c["net_out_valid"])
        b.connect(r["local_in_bits"], c["net_out_bits"])
        b.connect(c["net_out_ready"], r["local_in_ready"])
        b.connect(c["net_in_valid"], r["local_out_valid"])
        b.connect(c["net_in_bits"], r["local_out_bits"])
        b.connect(r["local_out_ready"], c["net_in_ready"])
        return t

    for i in range(n_tiles):
        attach_tile(i, tile_programs[i], dest=hub_id, label="Core")
    hub = attach_tile(hub_id, hub_program, dest=0, label="Hub")

    # ring wiring: router i -> router (i+1) % N; credits flow backward
    for i in range(n_routers):
        nxt = routers[(i + 1) % n_routers]
        cur = routers[i]
        b.connect(nxt["ring_in_valid"], cur["ring_out_valid"])
        b.connect(nxt["ring_in_bits"], cur["ring_out_bits"])
        b.connect(cur["ring_credit_in"], nxt["ring_credit_out"])

    b.connect(done, hub["done"])
    b.connect(result, hub["result"])
    return make_circuit(b.build(), library)


def make_torus_noc_soc(n_tiles: int,
                       messages_per_tile: int = 4) -> Circuit:
    """Like :func:`make_ring_noc_soc` but over the bidirectional torus
    routers (shortest-path routing both ways around the ring) — the
    Fig. 9 "Ring" bus configuration at RTL tier."""
    n_routers = n_tiles + 1
    hub_id = n_tiles
    total = n_tiles * messages_per_tile
    if total >= 64:
        raise IRError("hub sink program counts < 64 messages")
    library: List[Module] = []
    b = ModuleBuilder(f"TorusSoC_{n_tiles}t")
    done = b.output("done", 1)
    result = b.output("result", PAYLOAD)

    routers = []
    for i in range(n_routers):
        rmod, rlib = make_torus_router(i, n_routers)
        library.append(rmod)
        library.extend(rlib)
        routers.append(b.inst(f"router{i}", rmod))

    def attach(idx, program, dest, label):
        tmod, tlib = make_tile(program, name=f"{label}TorusTile{idx}")
        cmod = make_converter(dest, n_routers,
                              name=f"TorusConv{idx}_n{n_routers}")
        library.append(tmod)
        library.extend(tlib)
        library.append(cmod)
        t = b.inst(f"tile{idx}", tmod)
        c = b.inst(f"conv{idx}", cmod)
        r = routers[idx]
        b.connect(c["tile_in_valid"], t["net_out_valid"])
        b.connect(c["tile_in_bits"], t["net_out_bits"])
        b.connect(t["net_out_ready"], c["tile_in_ready"])
        b.connect(t["net_in_valid"], c["tile_out_valid"])
        b.connect(t["net_in_bits"], c["tile_out_bits"])
        b.connect(c["tile_out_ready"], t["net_in_ready"])
        b.connect(r["local_in_valid"], c["net_out_valid"])
        b.connect(r["local_in_bits"], c["net_out_bits"])
        b.connect(c["net_out_ready"], r["local_in_ready"])
        b.connect(c["net_in_valid"], r["local_out_valid"])
        b.connect(c["net_in_bits"], r["local_out_bits"])
        b.connect(r["local_out_ready"], c["net_in_ready"])
        return t

    for i in range(n_tiles):
        attach(i, sender_program(messages_per_tile), hub_id, "Core")
    hub = attach(hub_id, sink_program(total), 0, "Hub")

    # clockwise direction: i -> i+1; counter-clockwise: i -> i-1;
    # credits flow back against each direction
    for i in range(n_routers):
        nxt = routers[(i + 1) % n_routers]
        prv = routers[(i - 1) % n_routers]
        cur = routers[i]
        b.connect(nxt["cw_in_valid"], cur["cw_out_valid"])
        b.connect(nxt["cw_in_bits"], cur["cw_out_bits"])
        b.connect(cur["cw_credit_in"], nxt["cw_credit_out"])
        b.connect(prv["ccw_in_valid"], cur["ccw_out_valid"])
        b.connect(prv["ccw_in_bits"], cur["ccw_out_bits"])
        b.connect(cur["ccw_credit_in"], prv["ccw_credit_out"])

    b.connect(done, hub["done"])
    b.connect(result, hub["result"])
    return make_circuit(b.build(), library)


def make_rocket_like_soc(boot_loops: int = 40,
                         messages: int = 8) -> Circuit:
    """The Table II "Rocket tile (Linux boot)" stand-in: one core tile
    running a boot workload then streaming results to the SoC subsystem
    (a sink), connected by plain ready-valid links.

    Partition path for the tile: ``"rockettile"``.
    """
    from .programs import boot_and_send_program

    tile_mod, tile_lib = make_tile(
        boot_and_send_program(boot_loops, messages), name="RocketTile")
    hub_mod, hub_lib = make_tile(sink_program(messages), name="SocHub")
    b = ModuleBuilder("RocketSoC")
    done = b.output("done", 1)
    result = b.output("result", PAYLOAD)
    t = b.inst("rockettile", tile_mod)
    h = b.inst("subsystem", hub_mod)
    b.connect(h["net_in_valid"], t["net_out_valid"])
    b.connect(h["net_in_bits"], t["net_out_bits"])
    b.connect(t["net_out_ready"], h["net_in_ready"])
    b.connect(t["net_in_valid"], h["net_out_valid"])
    b.connect(t["net_in_bits"], h["net_out_bits"])
    b.connect(h["net_out_ready"], t["net_in_ready"])
    b.connect(done, h["done"] & t["done"])
    b.connect(result, h["result"])
    return make_circuit(b.build(), [tile_mod, hub_mod]
                        + tile_lib + hub_lib)


def make_star_soc(n_tiles: int, messages_per_tile: int = 5) -> Circuit:
    """``n_tiles`` identical sender tiles feeding a hub through a
    round-robin arbiter — the duplicate-module SoC used for the FAME-5
    amortization study (Fig. 14).  Tiles are named ``tile<i>`` so each can
    be selected as its own partition group and then FAME-5 merged.
    """
    total = n_tiles * messages_per_tile
    if total >= 64:
        raise IRError("star SoC hub counts < 64 messages")
    tile_mod, tile_lib = make_tile(sender_program(messages_per_tile),
                                   name="StarTile")
    hub_mod, hub_lib = make_tile(sink_program(total), name="StarHub")
    b = ModuleBuilder(f"StarSoC_{n_tiles}t")
    done = b.output("done", 1)
    result = b.output("result", PAYLOAD)
    hub = b.inst("hub", hub_mod)
    tiles = [b.inst(f"tile{i}", tile_mod) for i in range(n_tiles)]

    rr_w = max((n_tiles - 1).bit_length(), 1)
    rr = b.reg("rr", rr_w)
    b.connect(rr, mux(rr.eq(n_tiles - 1), b.lit(0, rr_w), rr + 1))

    sel_valid = tiles[0]["net_out_valid"].read()
    sel_bits = tiles[0]["net_out_bits"].read()
    for i in range(1, n_tiles):
        cond = rr.eq(i)
        sel_valid = mux(cond, tiles[i]["net_out_valid"].read(), sel_valid)
        sel_bits = mux(cond, tiles[i]["net_out_bits"].read(), sel_bits)
    b.connect(hub["net_in_valid"], sel_valid)
    b.connect(hub["net_in_bits"], sel_bits)
    for i in range(n_tiles):
        b.connect(tiles[i]["net_out_ready"],
                  rr.eq(i) & hub["net_in_ready"].read())
        b.connect(tiles[i]["net_in_valid"], 0)
        b.connect(tiles[i]["net_in_bits"], 0)
    b.connect(hub["net_out_ready"], 0)
    b.connect(done, hub["done"])
    b.connect(result, hub["result"])
    return make_circuit(b.build(), [tile_mod, hub_mod]
                        + tile_lib + hub_lib)


def make_wide_pair(width: int, comb_boundary: bool = False) -> Circuit:
    """Width-parametric two-module design for the Fig. 11/12 sweeps.

    ``Left`` and ``Right`` exchange ``width``-bit buses every cycle.  With
    ``comb_boundary=False`` both directions are registered (a pure
    latency-insensitive boundary); with True, the left half combs its
    incoming bus into its outgoing one (its output becomes a legal
    exact-mode *sink out*, exercising the two-crossing behaviour without
    tripping the chain-length check).

    Partition path for the right half: ``"right"``.
    """
    def half(name: str, seed: int, comb: bool) -> Module:
        hb = ModuleBuilder(name)
        bus_in = hb.input("bus_in", width)
        bus_out = hb.output("bus_out", width)
        check = hb.output("check", 32)
        state = hb.reg("state", width, init=seed)
        acc = hb.reg("acc", 32)
        if comb:
            hb.connect(bus_out, state ^ bus_in)
        else:
            hb.connect(bus_out, state)
        hb.connect(state, state + bus_in)
        hb.connect(acc, acc + bus_in.read().trunc(16))
        hb.connect(check, acc)
        return hb.build()

    left = half("WideLeft", 1, comb_boundary)
    right = half("WideRight", 2, False)
    b = ModuleBuilder("WidePairTop")
    check_l = b.output("check_l", 32)
    check_r = b.output("check_r", 32)
    l = b.inst("left", left)
    r = b.inst("right", right)
    b.connect(r["bus_in"], l["bus_out"])
    b.connect(l["bus_in"], r["bus_out"])
    b.connect(check_l, l["check"])
    b.connect(check_r, r["check"])
    return make_circuit(b.build(), [left, right])
