"""Ring NoC generator — the Constellation stand-in (Sec. III-B, Fig. 4).

The generated network has the three-layer shape the paper describes: the
physical layer (router nodes, named ``router<i>`` so NoC-partition-mode
can find them), the protocol layer (per-tile protocol converters), and
the top-level wiring.  Router-to-router links are *credit based and fully
registered*: no router output is combinationally dependent on any ring
input, which is exactly the property that makes NoC boundaries ideal
partition points (all boundary channels classify as source->source).

Flits are ``[dest | payload]``; routing is dimension-free ring forwarding
(one direction), delivery when ``dest == my_id``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import IRError
from ..firrtl.builder import ModuleBuilder, cat, mux
from ..firrtl.circuit import Module
from .primitives import make_queue

PAYLOAD = 16
RING_CREDITS = 2
IN_BUF_DEPTH = 2


def flit_width(n_routers: int) -> int:
    return PAYLOAD + dest_bits(n_routers)


def dest_bits(n_routers: int) -> int:
    return max((n_routers - 1).bit_length(), 1)


def make_router(my_id: int, n_routers: int,
                name: Optional[str] = None) -> Tuple[Module, List[Module]]:
    """One ring router node.

    Ports:
      * ``ring_in_valid/ring_in_bits`` + ``ring_credit_out`` — upstream,
      * ``ring_out_valid/ring_out_bits`` + ``ring_credit_in`` — downstream,
      * ``local_in_*`` / ``local_out_*`` — ready-valid to the protocol
        converter.

    Forwarded traffic has priority over local injection.
    """
    fw = flit_width(n_routers)
    db = dest_bits(n_routers)
    in_buf = make_queue(fw, depth=IN_BUF_DEPTH,
                        name=f"RouterInBuf_n{n_routers}")
    out_q = make_queue(fw, depth=IN_BUF_DEPTH,
                       name=f"RouterLocalOut_n{n_routers}")
    b = ModuleBuilder(name or f"Router{my_id}_n{n_routers}")
    ring_in_valid = b.input("ring_in_valid", 1)
    ring_in_bits = b.input("ring_in_bits", fw)
    ring_credit_out = b.output("ring_credit_out", 1)
    ring_out_valid = b.output("ring_out_valid", 1)
    ring_out_bits = b.output("ring_out_bits", fw)
    ring_credit_in = b.input("ring_credit_in", 1)
    local_in = b.rv_input("local_in", fw)
    local_out = b.rv_output("local_out", fw)

    buf = b.inst("in_buf", in_buf)
    loq = b.inst("local_out_q", out_q)

    # upstream flits always fit: the upstream router spends a credit per
    # flit and we return it only after dequeuing from in_buf.
    b.connect(buf["enq_valid"], ring_in_valid)
    b.connect(buf["enq_bits"], ring_in_bits)

    credits = b.reg("credits", RING_CREDITS.bit_length(),
                    init=RING_CREDITS)
    head = b.node("head", buf["deq_bits"].read())
    head_valid = b.node("head_valid", buf["deq_valid"].read())
    head_dest = b.node("head_dest", head.bits(fw - 1, PAYLOAD))
    for_me = b.node("for_me", head_dest.eq(my_id))

    deliver = b.node("deliver",
                     head_valid & for_me & loq["enq_ready"].read())
    can_send = b.node("can_send", credits.gt(0))
    forward = b.node("forward", head_valid & ~for_me & can_send)
    inject = b.node("inject",
                    local_in.valid.read() & ~forward & can_send)

    b.connect(buf["deq_ready"], deliver | forward)
    b.connect(ring_credit_out, deliver | forward)

    b.connect(loq["enq_valid"], head_valid & for_me)
    b.connect(loq["enq_bits"], head)
    b.connect(local_out.valid, loq["deq_valid"])
    b.connect(local_out.bits, loq["deq_bits"])
    b.connect(loq["deq_ready"], local_out.ready)

    b.connect(local_in.ready, inject)

    # registered ring output: one pulse per flit
    out_v = b.reg("out_v", 1)
    out_d = b.reg("out_d", fw)
    send = b.node("send", forward | inject)
    b.connect(out_v, send)
    b.connect(out_d, mux(forward, head,
                         mux(inject, local_in.bits.read(), out_d)))
    b.connect(ring_out_valid, out_v)
    b.connect(ring_out_bits, out_d)
    b.connect(credits,
              (credits - send) + ring_credit_in.read())
    return b.build(), [in_buf, out_q]


def make_torus_router(my_id: int, n_routers: int,
                      name: Optional[str] = None
                      ) -> Tuple[Module, List[Module]]:
    """Bidirectional (torus) ring router with shortest-path routing —
    the topology of the paper's Fig. 9 "Ring" configuration.

    Two independent ring directions (``cw`` and ``ccw``), each with its
    own credit loop and input buffer; locally injected flits pick the
    direction with the shorter hop count to their destination.  All ring
    outputs are registered, preserving the source->source boundary
    property NoC-partition-mode relies on.
    """
    fw = flit_width(n_routers)
    db = dest_bits(n_routers)
    cw_buf = make_queue(fw, depth=IN_BUF_DEPTH,
                        name=f"TorusCwBuf_n{n_routers}")
    ccw_buf = make_queue(fw, depth=IN_BUF_DEPTH,
                         name=f"TorusCcwBuf_n{n_routers}")
    out_q = make_queue(fw, depth=IN_BUF_DEPTH,
                       name=f"TorusLocalOut_n{n_routers}")
    b = ModuleBuilder(name or f"TorusRouter{my_id}_n{n_routers}")
    ports = {}
    for d in ("cw", "ccw"):
        ports[f"{d}_in_valid"] = b.input(f"{d}_in_valid", 1)
        ports[f"{d}_in_bits"] = b.input(f"{d}_in_bits", fw)
        ports[f"{d}_credit_out"] = b.output(f"{d}_credit_out", 1)
        ports[f"{d}_out_valid"] = b.output(f"{d}_out_valid", 1)
        ports[f"{d}_out_bits"] = b.output(f"{d}_out_bits", fw)
        ports[f"{d}_credit_in"] = b.input(f"{d}_credit_in", 1)
    local_in = b.rv_input("local_in", fw)
    local_out = b.rv_output("local_out", fw)

    bufs = {"cw": b.inst("cw_buf", cw_buf),
            "ccw": b.inst("ccw_buf", ccw_buf)}
    loq = b.inst("local_out_q", out_q)

    for d in ("cw", "ccw"):
        b.connect(bufs[d]["enq_valid"], ports[f"{d}_in_valid"])
        b.connect(bufs[d]["enq_bits"], ports[f"{d}_in_bits"])

    credits = {d: b.reg(f"credits_{d}", RING_CREDITS.bit_length(),
                        init=RING_CREDITS) for d in ("cw", "ccw")}

    heads = {}
    for d in ("cw", "ccw"):
        head = b.node(f"head_{d}", bufs[d]["deq_bits"].read())
        hv = b.node(f"head_valid_{d}", bufs[d]["deq_valid"].read())
        dest = b.node(f"head_dest_{d}", head.bits(fw - 1, PAYLOAD))
        heads[d] = (head, hv, b.node(f"for_me_{d}", dest.eq(my_id)))

    # deliver: cw buffer has priority into the local queue
    cw_deliver = b.node(
        "cw_deliver",
        heads["cw"][1] & heads["cw"][2] & loq["enq_ready"].read())
    ccw_deliver = b.node(
        "ccw_deliver",
        heads["ccw"][1] & heads["ccw"][2] & loq["enq_ready"].read()
        & ~cw_deliver)
    b.connect(loq["enq_valid"],
              (heads["cw"][1] & heads["cw"][2])
              | (heads["ccw"][1] & heads["ccw"][2] & ~cw_deliver))
    b.connect(loq["enq_bits"],
              mux(heads["cw"][1] & heads["cw"][2],
                  heads["cw"][0], heads["ccw"][0]))
    b.connect(local_out.valid, loq["deq_valid"])
    b.connect(local_out.bits, loq["deq_bits"])
    b.connect(loq["deq_ready"], local_out.ready)

    # shortest-path direction for a locally injected flit
    inj_dest = b.node("inj_dest",
                      local_in.bits.read().bits(fw - 1, PAYLOAD))
    # clockwise hop count: (dest - my_id) mod n_routers, computed in
    # non-negative arithmetic so it works for any ring size
    cw_dist = b.node("cw_dist",
                     (inj_dest + (n_routers - my_id)) % n_routers)
    half = n_routers // 2
    go_cw = b.node("go_cw", cw_dist.leq(half) & cw_dist.gt(0))

    deliver = {"cw": cw_deliver, "ccw": ccw_deliver}
    injected_any = []
    for d in ("cw", "ccw"):
        head, hv, for_me = heads[d]
        can_send = b.node(f"can_send_{d}", credits[d].gt(0))
        forward = b.node(f"forward_{d}", hv & ~for_me & can_send)
        wants = go_cw if d == "cw" else ~go_cw
        inject = b.node(
            f"inject_{d}",
            local_in.valid.read() & wants & ~forward & can_send)
        injected_any.append(inject)
        b.connect(bufs[d]["deq_ready"], deliver[d] | forward)
        b.connect(ports[f"{d}_credit_out"], deliver[d] | forward)
        out_v = b.reg(f"out_v_{d}", 1)
        out_d = b.reg(f"out_d_{d}", fw)
        send = b.node(f"send_{d}", forward | inject)
        b.connect(out_v, send)
        b.connect(out_d, mux(forward, head,
                             mux(inject, local_in.bits.read(), out_d)))
        b.connect(ports[f"{d}_out_valid"], out_v)
        b.connect(ports[f"{d}_out_bits"], out_d)
        b.connect(credits[d],
                  (credits[d] - send) + ports[f"{d}_credit_in"].read())
    b.connect(local_in.ready, injected_any[0] | injected_any[1])
    return b.build(), [cw_buf, ccw_buf, out_q]


def make_converter(dest_id: int, n_routers: int,
                   name: Optional[str] = None) -> Module:
    """Protocol converter between a tile (payload-wide ready-valid) and
    its router (flit-wide).  Tile-bound flits are stripped to payload;
    network-bound payloads are stamped with the converter's fixed
    destination."""
    fw = flit_width(n_routers)
    b = ModuleBuilder(name or f"Converter_d{dest_id}_n{n_routers}")
    tile_in = b.rv_input("tile_in", PAYLOAD)     # from tile (to network)
    net_out = b.rv_output("net_out", fw)         # to router local_in
    net_in = b.rv_input("net_in", fw)            # from router local_out
    tile_out = b.rv_output("tile_out", PAYLOAD)  # to tile

    b.connect(net_out.valid, tile_in.valid)
    b.connect(net_out.bits,
              b.lit(dest_id, dest_bits(n_routers)).cat(
                  tile_in.bits.read()))
    b.connect(tile_in.ready, net_out.ready)

    b.connect(tile_out.valid, net_in.valid)
    b.connect(tile_out.bits, net_in.bits.read().bits(PAYLOAD - 1, 0))
    b.connect(net_in.ready, tile_out.ready)
    return b.build()
