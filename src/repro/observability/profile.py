"""Profile rendering and ambient profile sessions.

``SimulationResult.detail`` always carries the per-partition FMR
breakdown (``fmr_breakdown``) and per-link stats (``links``) — the
harness accounts them as it prices each action, traced or not.  This
module turns those into reports:

* :func:`format_profile` — the ``repro profile`` CLI table: FMR
  breakdown per partition, link utilization, in-flight histograms, and
  the dominant bottleneck,
* :func:`dominant_component` — which non-compute FMR component costs
  the most host time across partitions,
* :class:`ProfileSession` / :func:`profile_session` — an ambient
  collector: while a session is active, every
  ``PartitionedSimulation.result()`` reports into it, so wrappers like
  ``python -m repro.experiments --profile`` can summarize where host
  time went inside experiments they did not build themselves.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .fmr import FMR_COMPONENTS

#: the active ambient session, if any (single-threaded by design)
_ACTIVE: Optional["ProfileSession"] = None


class ProfileSession:
    """Collects every ``SimulationResult`` produced while active."""

    def __init__(self):
        self.results: List[object] = []

    def record(self, result) -> None:
        self.results.append(result)

    # -- aggregation ------------------------------------------------------

    def component_totals(self) -> Dict[str, float]:
        """Host-time-weighted FMR component totals across all recorded
        partitioned runs (host cycles, so partitions are comparable)."""
        totals = {name: 0.0 for name in FMR_COMPONENTS}
        for result in self.results:
            breakdown = result.detail.get("fmr_breakdown") or {}
            cycles = result.per_partition_cycles
            for part, components in breakdown.items():
                weight = cycles.get(part, result.target_cycles)
                for name in FMR_COMPONENTS:
                    totals[name] += components.get(name, 0.0) * weight
        return totals

    def summary(self) -> str:
        runs = len(self.results)
        if not runs:
            return "[profile] no partitioned runs observed"
        totals = self.component_totals()
        grand = sum(totals.values()) or 1.0
        parts = "  ".join(
            f"{name} {totals[name] / grand * 100.0:.1f}%"
            for name in FMR_COMPONENTS)
        name, _ = _dominant(totals)
        return (f"[profile] {runs} partitioned run(s); host time: "
                f"{parts}; bottleneck: {name}")


@contextmanager
def profile_session() -> Iterator[ProfileSession]:
    """Activate an ambient :class:`ProfileSession` for the block."""
    global _ACTIVE
    previous = _ACTIVE
    session = ProfileSession()
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous


def record_result(result) -> None:
    """Report a finished run into the active session (no-op otherwise);
    called by ``PartitionedSimulation.result()``."""
    if _ACTIVE is not None:
        _ACTIVE.record(result)


def _dominant(totals: Dict[str, float]) -> Tuple[str, float]:
    """Largest non-compute component (compute is the useful work)."""
    candidates = {name: value for name, value in totals.items()
                  if name != "compute"}
    name = max(candidates, key=candidates.get)
    return name, candidates[name]


def dominant_component(result) -> str:
    """Which overhead component dominates ``result`` across partitions."""
    breakdown = result.detail.get("fmr_breakdown") or {}
    totals = {name: 0.0 for name in FMR_COMPONENTS}
    for part, components in breakdown.items():
        weight = result.per_partition_cycles.get(
            part, result.target_cycles)
        for name in FMR_COMPONENTS:
            totals[name] += components.get(name, 0.0) * weight
    if not breakdown or not any(totals.values()):
        return "none"
    name, _ = _dominant(totals)
    return name


def format_profile(result) -> str:
    """Render the profile report for one ``SimulationResult``."""
    lines = [
        f"simulated {result.target_cycles} target cycles in "
        f"{result.wall_ns / 1e3:.1f} us of host time "
        f"({result.rate_hz / 1e3:.1f} kHz)",
        "",
        "FMR breakdown (host cycles per target cycle):",
        (f"{'partition':>12}{'FMR':>9}"
         + "".join(f"{name:>14}" for name in FMR_COMPONENTS)),
    ]
    fmr = result.detail.get("fmr", {})
    breakdown = result.detail.get("fmr_breakdown", {})
    for part in sorted(breakdown):
        components = breakdown[part]
        lines.append(
            f"{part:>12}{fmr.get(part, 0.0):>9.2f}"
            + "".join(f"{components.get(name, 0.0):>14.3f}"
                      for name in FMR_COMPONENTS))
    links = result.detail.get("links", {})
    if links:
        lines.append("")
        lines.append("links:")
        for key in sorted(links):
            stats = links[key]
            hist = stats.get("in_flight_hist", {})
            hist_text = " ".join(
                f"{depth}:{count}" for depth, count in sorted(hist.items()))
            lines.append(
                f"  {key}: {stats['tokens']} tokens, "
                f"{stats['utilization'] * 100.0:.1f}% occupied"
                + (f", depth histogram {{{hist_text}}}" if hist else ""))
    lines.append("")
    lines.append(f"bottleneck: {dominant_component(result)}")
    return "\n".join(lines)
