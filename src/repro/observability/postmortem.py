"""Deadlock postmortem: what every channel looked like when tokens
stopped moving, plus the trailing event history.

Raised LI-BDN deadlocks (the paper's Fig. 2a failure mode) carry one of
these on ``DeadlockError.postmortem``.  The channel snapshot is always
present; the event ring holds whatever the run's tracer retained — a
:class:`~repro.observability.tracer.RecordingTracer` (bounded or not)
gives the last-N history, the default null tracer gives an empty ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .tracer import TraceEvent


@dataclass
class DeadlockPostmortem:
    """Structured state of a deadlocked partitioned simulation.

    Attributes:
        host_passes: harness passes completed when progress stopped.
        frontier_cycle: the stuck simulation frontier (min target cycle).
        channels: ``partition -> unit -> channel state`` as captured by
            :meth:`~repro.libdn.wrapper.LIBDNHost.channel_state`: per
            input channel the pending-token depth, per output channel
            the fired flag and the input channels it still waits on.
        events: trailing ring of trace events (most recent last).
    """

    host_passes: int
    frontier_cycle: int
    channels: Dict[str, Dict[str, dict]] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)

    def stuck_channels(self) -> List[str]:
        """``part/unit/channel`` names of every starving input."""
        out: List[str] = []
        for part, units in sorted(self.channels.items()):
            for unit, state in sorted(units.items()):
                for chan, info in sorted(state["inputs"].items()):
                    if info["pending"] == 0:
                        out.append(f"{part}/{unit}/{chan}")
        return out

    def to_text(self) -> str:
        """Human-readable report (the CLI prints this on deadlock)."""
        lines = [
            f"deadlock postmortem: frontier stuck at target cycle "
            f"{self.frontier_cycle} after {self.host_passes} host "
            f"pass(es)",
        ]
        for part, units in sorted(self.channels.items()):
            for unit, state in sorted(units.items()):
                lines.append(f"  {part}/{unit} @ target cycle "
                             f"{state['target_cycle']}:")
                for chan, info in sorted(state["inputs"].items()):
                    lines.append(
                        f"    in  {chan}: {info['pending']} pending "
                        f"token(s)")
                for chan, info in sorted(state["outputs"].items()):
                    status = ("fired" if info["fired"] else
                              f"waits on {info['waiting_on']}")
                    lines.append(f"    out {chan}: {status}")
        if self.events:
            lines.append(f"  last {len(self.events)} event(s):")
            for event in self.events:
                lines.append(
                    f"    [{event.ts_ns:12.1f} ns] {event.kind} "
                    f"{event.part}/{event.scope} {event.args}")
        else:
            lines.append("  (no event history: run with a recording "
                         "tracer to capture one)")
        return "\n".join(lines)
