"""Per-partition FMR breakdown accounting.

FMR (FPGA-cycle-to-Model-cycle Ratio) is FireSim/FireAxe's efficiency
metric: host cycles spent per simulated target cycle.  The partitioned
harness advances each partition's ``busy_until`` cursor through exactly
four kinds of work plus one kind of configured slack, and it attributes
every nanosecond of that cursor to one :class:`FMRSpans` bucket:

* ``compute_ns`` — the one host cycle per LI-BDN unit advance (the work
  a monolithic FireSim simulation would also do),
* ``serdes_ns`` — transmit-side token (de)serialization,
* ``link_wait_ns`` — waiting for dependent input tokens to arrive
  (wire latency, receive-side deserialization, and upstream slowness all
  surface here),
* ``credit_stall_ns`` — waiting for channel credit when the receiver
  has not yet consumed earlier tokens (``channel_capacity``),
* ``sync_ns`` — the configured per-advance token-exchange slack
  (``advance_overhead_ns``, Fig. 13's ring-size term).

The buckets partition the cursor exactly, so
``sum(components) == busy_until`` and the per-component FMR values in
``SimulationResult.detail["fmr_breakdown"]`` sum to the partition's
reported FMR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: component order used everywhere the breakdown is rendered
FMR_COMPONENTS: Tuple[str, ...] = (
    "compute", "serdes", "link_wait", "credit_stall", "sync",
)


@dataclass
class FMRSpans:
    """Accumulated host-time (ns) per FMR component for one partition."""

    compute_ns: float = 0.0
    serdes_ns: float = 0.0
    link_wait_ns: float = 0.0
    credit_stall_ns: float = 0.0
    sync_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return (self.compute_ns + self.serdes_ns + self.link_wait_ns
                + self.credit_stall_ns + self.sync_ns)

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute_ns,
            "serdes": self.serdes_ns,
            "link_wait": self.link_wait_ns,
            "credit_stall": self.credit_stall_ns,
            "sync": self.sync_ns,
        }

    def breakdown(self, host_cycle_ns: float,
                  target_cycles: int) -> Dict[str, float]:
        """Per-component FMR: host cycles per target cycle, summing to
        the partition's overall FMR."""
        if target_cycles <= 0:
            return {name: 0.0 for name in FMR_COMPONENTS}
        scale = 1.0 / (host_cycle_ns * target_cycles)
        return {name: ns * scale
                for name, ns in self.as_dict().items()}

    def reset(self) -> None:
        self.compute_ns = 0.0
        self.serdes_ns = 0.0
        self.link_wait_ns = 0.0
        self.credit_stall_ns = 0.0
        self.sync_ns = 0.0
