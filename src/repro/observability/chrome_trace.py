"""Chrome trace-event (Perfetto-loadable) export.

Converts a stream of :class:`~repro.observability.tracer.TraceEvent`
records into the Chrome ``traceEvents`` JSON format, which
https://ui.perfetto.dev (and chrome://tracing) open directly:

* every partition becomes a *process* (named via ``process_name``
  metadata), every unit/link/channel scope within it a *thread*,
* span events (``dur_ns > 0``) become complete events (``"ph": "X"``),
  instant events become ``"ph": "i"``,
* ``token_rx`` events carrying a ``depth`` argument also emit a counter
  track (``"ph": "C"``) showing the receiver-side in-flight token depth
  per destination channel.

Timestamps are the timing overlay's modelled host time, exported in
microseconds as the format requires.

Two writers share one record generator: :func:`export_chrome_trace`
builds the whole document in memory (small traces, tests), while
:func:`stream_chrome_trace` writes record-by-record — the document is
never materialized, so a multi-million-event trace exports in constant
memory — and optionally gzip-compresses on the way out (Perfetto opens
``.json.gz`` directly).
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from .tracer import TraceEvent


def _stable_id(*names: str) -> int:
    """Deterministic 31-bit track id from a name tuple (never 0 —
    tid 0 is reserved for metadata/counter records)."""
    digest = hashlib.blake2b("\x1f".join(names).encode(),
                             digest_size=4).digest()
    return (int.from_bytes(digest, "big") & 0x7FFFFFFF) or 1


def iter_chrome_records(events: Iterable[TraceEvent],
                        hash_track_ids: bool = False
                        ) -> Iterator[dict]:
    """Yield Chrome trace records one at a time, interleaving the
    process/thread metadata records exactly where a buffered export
    would have placed them (first use).

    With ``hash_track_ids`` the pid/tid of each track derive from a
    stable hash of its full name (collisions resolved by deterministic
    linear probing) instead of first-use counters.  Counters restart
    at 1 for every export, so concatenating two exported streams — a
    stitched multi-job or multi-host trace — would land *different*
    partitions on the *same* track id; hashed ids keep every
    ``(job, host, partition)`` namespace distinct no matter how many
    streams merge.
    """
    pid_of: Dict[str, int] = {}
    tid_of: Dict[Tuple[str, str], int] = {}
    pending: List[dict] = []
    taken_pids: Dict[int, str] = {}
    taken_tids: Dict[Tuple[int, int], Tuple[str, str]] = {}

    def pid(part: str) -> int:
        name = part or "global"
        if name not in pid_of:
            if hash_track_ids:
                candidate = _stable_id(name)
                while taken_pids.get(candidate, name) != name:
                    candidate = (candidate % 0x7FFFFFFF) + 1
                taken_pids[candidate] = name
                pid_of[name] = candidate
            else:
                pid_of[name] = len(pid_of) + 1
            pending.append({"ph": "M", "name": "process_name",
                            "pid": pid_of[name], "tid": 0,
                            "args": {"name": name}})
        return pid_of[name]

    def tid(part: str, scope: str) -> int:
        key = (part or "global", scope or "events")
        if key not in tid_of:
            if hash_track_ids:
                process = pid(part)
                candidate = _stable_id(key[0], key[1])
                while taken_tids.get((process, candidate),
                                     key) != key:
                    candidate = (candidate % 0x7FFFFFFF) + 1
                taken_tids[(process, candidate)] = key
                tid_of[key] = candidate
            else:
                tid_of[key] = len(tid_of) + 1
            pending.append({"ph": "M", "name": "thread_name",
                            "pid": pid(part), "tid": tid_of[key],
                            "args": {"name": key[1]}})
        return tid_of[key]

    for event in events:
        record = {
            "name": event.kind,
            "cat": event.kind,
            "ts": event.ts_ns / 1e3,
            "pid": pid(event.part),
            "tid": tid(event.part, event.scope),
            "args": dict(event.args),
        }
        if event.dur_ns > 0:
            record["ph"] = "X"
            record["dur"] = event.dur_ns / 1e3
        else:
            record["ph"] = "i"
            record["s"] = "t"
        yield from pending
        pending.clear()
        yield record
        if event.kind == "token_rx" and "depth" in event.args:
            yield {
                "ph": "C",
                "name": f"in-flight {event.scope}",
                "ts": event.ts_ns / 1e3,
                "pid": pid(event.part),
                "tid": 0,
                "args": {"tokens": event.args["depth"]},
            }


def to_chrome_trace(events: Iterable[TraceEvent],
                    hash_track_ids: bool = False) -> dict:
    """Build the Chrome trace dict for ``events``."""
    return {"traceEvents": list(iter_chrome_records(
                events, hash_track_ids=hash_track_ids)),
            "displayTimeUnit": "ns"}


def export_chrome_trace(events: Iterable[TraceEvent],
                        path: Union[str, Path],
                        hash_track_ids: bool = False) -> Path:
    """Write ``events`` to ``path`` as Chrome trace JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(
        events, hash_track_ids=hash_track_ids)))
    return path


def stream_chrome_trace(events: Iterable[TraceEvent],
                        path: Union[str, Path],
                        compress: bool = False,
                        hash_track_ids: bool = False) -> Path:
    """Stream ``events`` to ``path`` without buffering the document.

    With ``compress`` the output is gzipped (a ``.gz`` suffix is
    appended unless the path already carries one).  The produced JSON
    parses to exactly what :func:`export_chrome_trace` writes.
    """
    path = Path(path)
    if compress and not path.name.endswith(".gz"):
        path = path.with_name(path.name + ".gz")
    path.parent.mkdir(parents=True, exist_ok=True)
    opener = (lambda p: gzip.open(p, "wt", encoding="utf-8")) \
        if compress else (lambda p: open(p, "w", encoding="utf-8"))
    with opener(path) as fh:
        fh.write('{"traceEvents": [')
        first = True
        for record in iter_chrome_records(
                events, hash_track_ids=hash_track_ids):
            if not first:
                fh.write(", ")
            fh.write(json.dumps(record))
            first = False
        fh.write('], "displayTimeUnit": "ns"}')
    return path
