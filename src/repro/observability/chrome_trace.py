"""Chrome trace-event (Perfetto-loadable) export.

Converts a stream of :class:`~repro.observability.tracer.TraceEvent`
records into the Chrome ``traceEvents`` JSON format, which
https://ui.perfetto.dev (and chrome://tracing) open directly:

* every partition becomes a *process* (named via ``process_name``
  metadata), every unit/link/channel scope within it a *thread*,
* span events (``dur_ns > 0``) become complete events (``"ph": "X"``),
  instant events become ``"ph": "i"``,
* ``token_rx`` events carrying a ``depth`` argument also emit a counter
  track (``"ph": "C"``) showing the receiver-side in-flight token depth
  per destination channel.

Timestamps are the timing overlay's modelled host time, exported in
microseconds as the format requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .tracer import TraceEvent


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the Chrome trace dict for ``events``."""
    pid_of: Dict[str, int] = {}
    tid_of: Dict[Tuple[str, str], int] = {}
    out: List[dict] = []

    def pid(part: str) -> int:
        name = part or "global"
        if name not in pid_of:
            pid_of[name] = len(pid_of) + 1
            out.append({"ph": "M", "name": "process_name",
                        "pid": pid_of[name], "tid": 0,
                        "args": {"name": name}})
        return pid_of[name]

    def tid(part: str, scope: str) -> int:
        key = (part or "global", scope or "events")
        if key not in tid_of:
            tid_of[key] = len(tid_of) + 1
            out.append({"ph": "M", "name": "thread_name",
                        "pid": pid(part), "tid": tid_of[key],
                        "args": {"name": key[1]}})
        return tid_of[key]

    for event in events:
        record = {
            "name": event.kind,
            "cat": event.kind,
            "ts": event.ts_ns / 1e3,
            "pid": pid(event.part),
            "tid": tid(event.part, event.scope),
            "args": dict(event.args),
        }
        if event.dur_ns > 0:
            record["ph"] = "X"
            record["dur"] = event.dur_ns / 1e3
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
        if event.kind == "token_rx" and "depth" in event.args:
            out.append({
                "ph": "C",
                "name": f"in-flight {event.scope}",
                "ts": event.ts_ns / 1e3,
                "pid": pid(event.part),
                "tid": 0,
                "args": {"tokens": event.args["depth"]},
            })
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def export_chrome_trace(events: Iterable[TraceEvent],
                        path: Union[str, Path]) -> Path:
    """Write ``events`` to ``path`` as Chrome trace JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(events)))
    return path
