"""Structured trace events and tracer sinks.

The partitioned harness, the LI-BDN hosts, the reliable link layer and
the run supervisor all emit :class:`TraceEvent` records through a
:class:`Tracer`.  The default sink is :data:`NULL_TRACER`, whose
``enabled`` flag is ``False``; every emit site guards on that flag, so
an untraced run does not even construct the event objects — tracing is
strictly pay-as-you-go (the ``bench_observability`` check pins the
null-tracer overhead under 5%).

Event kinds (see DESIGN.md for the full schema):

======================  =====================================================
kind                    meaning
======================  =====================================================
``channel_fire``        an LI-BDN output channel fired (from the wrapper)
``advance``             an LI-BDN unit consumed its inputs (from the wrapper)
``token_tx``            a token was serialized onto a link (span: serdes)
``token_rx``            a token arrived at a destination channel
``credit_stall``        a sender waited for channel credit (span)
``target_cycle``        a unit's timed advance (span: compute + sync)
``bridge_output``       a token left through an external bridge tap
``link_retry``          the reliable layer waited out a fault (span)
``heartbeat``           supervisor progress snapshot
``checkpoint``          supervisor captured run state
``rollback``            supervisor restored the last checkpoint
``deadlock``            token exchange halted (terminal)
======================  =====================================================

All timestamps are in nanoseconds of *modelled host time* (the timing
overlay's clock, not python wall time).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """One structured trace record.

    Attributes:
        kind: event kind (see module docstring).
        ts_ns: modelled host time at which the event starts.
        dur_ns: span duration (0 for instant events).
        part: partition the event belongs to ("" for global events).
        scope: finer-grained origin — a unit, channel, or link key.
        args: kind-specific payload (widths, spans, cycles, reasons).
    """

    kind: str
    ts_ns: float
    dur_ns: float = 0.0
    part: str = ""
    scope: str = ""
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Sink protocol for trace events.

    Emit sites check :attr:`enabled` before building an event, so a
    disabled tracer costs one attribute read per *potential* event.
    """

    #: emit sites skip event construction entirely when False
    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def recent(self, n: int) -> List[TraceEvent]:
        """Last ``n`` events this tracer retained (empty by default)."""
        return []


class NullTracer(Tracer):
    """The default no-op sink: nothing is recorded, nothing is paid."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        pass


#: shared default sink — attach sites use this instead of None checks
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Keeps events in memory, optionally as a bounded ring buffer.

    Args:
        capacity: maximum events retained (oldest dropped first);
            ``None`` keeps everything.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.total_emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def recent(self, n: int) -> List[TraceEvent]:
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Retained event count per kind."""
        return dict(Counter(e.kind for e in self._events))

    def clear(self) -> None:
        self._events.clear()
        self.total_emitted = 0


class TeeTracer(Tracer):
    """Fans every event out to several sinks (e.g. ring + full log)."""

    def __init__(self, sinks: Iterable[Tracer]):
        self.sinks = [s for s in sinks if s.enabled]
        self.enabled = bool(self.sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def recent(self, n: int) -> List[TraceEvent]:
        for sink in self.sinks:
            events = sink.recent(n)
            if events:
                return events
        return []
