"""Observability layer: structured trace, FMR breakdown, postmortems.

FireAxe's performance story (Sec. VI-A, Figs. 11-14) is entirely about
*where host time goes* — (de)serialization, wire latency, credit
stalls, token-exchange slack.  This package is the instrumentation that
makes those visible in the reproduction:

* :mod:`~repro.observability.tracer` — a low-overhead structured event
  protocol (null by default) threaded through the harness, the LI-BDN
  hosts, the reliable link layer and the run supervisor,
* :mod:`~repro.observability.fmr` — per-partition FMR breakdown
  accounting (compute / serdes / link-wait / credit-stall / sync) that
  sums exactly to each partition's reported FMR,
* :mod:`~repro.observability.chrome_trace` — Chrome trace-event JSON
  export, loadable in https://ui.perfetto.dev,
* :mod:`~repro.observability.postmortem` — deadlock postmortems: full
  channel state plus the trailing event ring on ``DeadlockError``,
* :mod:`~repro.observability.profile` — profile reports and the
  ambient session behind ``python -m repro.experiments --profile``.
"""

from .chrome_trace import (
    export_chrome_trace,
    iter_chrome_records,
    stream_chrome_trace,
    to_chrome_trace,
)
from .fmr import FMR_COMPONENTS, FMRSpans
from .postmortem import DeadlockPostmortem
from .profile import (
    ProfileSession,
    dominant_component,
    format_profile,
    profile_session,
    record_result,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TeeTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "TeeTracer",
    "TraceEvent",
    "FMRSpans",
    "FMR_COMPONENTS",
    "DeadlockPostmortem",
    "to_chrome_trace",
    "export_chrome_trace",
    "stream_chrome_trace",
    "iter_chrome_records",
    "ProfileSession",
    "profile_session",
    "record_result",
    "format_profile",
    "dominant_component",
]
