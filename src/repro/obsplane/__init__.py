"""The end-to-end observability plane.

PR 2/4 made a *single simulation* observable (tracer, FMR breakdown,
telemetry sampler); this package makes the *system around it*
observable — the multi-tenant service, the four execution backends and
the run farm — with one join key:

* :mod:`~repro.obsplane.corr` — request-scoped correlation IDs, minted
  at ``service.submit`` and propagated through coordinators into every
  worker/agent subprocess via the ``REPRO_CORR_ID`` environment
  variable (each worker echoes it back in its result fragment),
* :mod:`~repro.obsplane.events` — the structured JSONL lifecycle event
  log (null by default, like the tracer), written by the scheduler,
  the coordinators and the farm agents,
* :mod:`~repro.obsplane.metrics` — wall-clock service metrics (queue
  depth, per-tenant latency histograms, cache/admission counters) with
  a Prometheus text rendering behind ``GET /metrics``,
* :mod:`~repro.obsplane.stitch` — cross-process trace stitching: the
  scheduler's job spans, the event log's fabric events and the
  workers' modelled-time partition spans merged into one Perfetto
  trace per job (``repro trace --job``),
* :mod:`~repro.obsplane.log` — stderr :mod:`logging` wiring
  (``REPRO_LOG_LEVEL``) emitting the same structured records as the
  event log.

Everything is bit-identity-safe: the plane rides existing frames and
fragments, and nothing it records enters simulation state or the cache
fingerprint.
"""

from .corr import (
    CORR_ENV,
    current_corr_id,
    mint_corr_id,
    propagate_corr_id,
)
from .events import (
    EVENT_KINDS,
    EV_ADMITTED,
    EV_CACHE_HIT,
    EV_CANCELLED,
    EV_COALESCED,
    EV_DONE,
    EV_EXECUTING,
    EV_FAILED,
    EV_HOST_DEATH,
    EV_HOST_DEPLOY,
    EV_HOST_REPLACE,
    EV_QUEUED,
    EV_REJECTED,
    EV_SUBMITTED,
    EV_WORKER_EXIT,
    EV_WORKER_SPAWN,
    EventLog,
    NULL_EVENT_LOG,
    NullEventLog,
    follow_events,
    format_event,
    open_event_log,
    read_events,
)
from .log import LOG_LEVEL_ENV, get_logger, log_record
from .metrics import (
    COUNTER_METRICS,
    LATENCY_BUCKETS,
    LatencyHistogram,
    NULL_SERVICE_METRICS,
    NullServiceMetrics,
    PHASES,
    ServiceMetrics,
)
from .stitch import (
    SERVICE_TRACK,
    dict_to_event,
    event_to_dict,
    export_job_trace,
    stitch_job_trace,
)

__all__ = [
    "CORR_ENV",
    "mint_corr_id",
    "current_corr_id",
    "propagate_corr_id",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "open_event_log",
    "read_events",
    "follow_events",
    "format_event",
    "EVENT_KINDS",
    "EV_SUBMITTED",
    "EV_CACHE_HIT",
    "EV_COALESCED",
    "EV_REJECTED",
    "EV_ADMITTED",
    "EV_QUEUED",
    "EV_EXECUTING",
    "EV_DONE",
    "EV_FAILED",
    "EV_CANCELLED",
    "EV_WORKER_SPAWN",
    "EV_WORKER_EXIT",
    "EV_HOST_DEPLOY",
    "EV_HOST_DEATH",
    "EV_HOST_REPLACE",
    "ServiceMetrics",
    "NullServiceMetrics",
    "NULL_SERVICE_METRICS",
    "LatencyHistogram",
    "LATENCY_BUCKETS",
    "COUNTER_METRICS",
    "PHASES",
    "get_logger",
    "log_record",
    "LOG_LEVEL_ENV",
    "SERVICE_TRACK",
    "event_to_dict",
    "dict_to_event",
    "stitch_job_trace",
    "export_job_trace",
]
