"""Service-level metrics: counters, gauges and latency histograms with
a Prometheus text rendering.

Distinct from :mod:`repro.telemetry.metrics` (deterministic
*modelled-time* per-partition instruments merged into run records),
these are *wall-clock service* metrics: how long jobs queue, how often
the cache hits, how many requests each tenant pushes.  They live on
the service scheduler, cost a few dict operations per job event, and
are scraped through ``GET /metrics`` in the Prometheus exposition
format (text/plain; version 0.0.4) or as a JSON snapshot in
``/stats`` (what ``repro top`` renders).

Latency is split into the three phases a job spends time in::

    queue_wait    submit -> worker pickup
    cache_lookup  the fingerprint probe at submit
    execution     worker pickup -> terminal

each a per-tenant histogram over log-spaced buckets; p50/p95/p99 are
estimated by linear interpolation within the landing bucket — exact
enough for an operator display, cheap enough to compute per scrape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: log-spaced latency buckets in seconds (le= labels); +Inf implied
LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.5, 10.0, 60.0)

#: the three per-tenant latency phases
PHASES = ("queue_wait", "cache_lookup", "execution")

#: counter short-name -> rendered metric name
COUNTER_METRICS = {
    "submitted": "repro_service_jobs_submitted_total",
    "rejected": "repro_service_admission_rejected_total",
    "cache_hits": "repro_service_cache_hits_total",
    "coalesced": "repro_service_coalesced_total",
    "completed": "repro_service_jobs_completed_total",
    "failed": "repro_service_jobs_failed_total",
    "cancelled": "repro_service_jobs_cancelled_total",
    "executions": "repro_service_executions_total",
}


class LatencyHistogram:
    """One fixed-bucket histogram (counts are cumulative only at
    render time, kept per-bucket internally)."""

    __slots__ = ("buckets", "counts", "inf_count", "total", "sum")

    def __init__(self, buckets: Tuple[float, ...] = LATENCY_BUCKETS):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.inf_count = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum += seconds
        for i, edge in enumerate(self.buckets):
            if seconds <= edge:
                self.counts[i] += 1
                return
        self.inf_count += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1) by interpolating within the
        landing bucket; 0.0 when empty."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0.0
        lower = 0.0
        for i, edge in enumerate(self.buckets):
            if seen + self.counts[i] >= rank:
                inside = self.counts[i]
                frac = (rank - seen) / inside if inside else 0.0
                return lower + (edge - lower) * frac
            seen += self.counts[i]
            lower = edge
        # landed past the last finite edge: report that edge (the
        # honest answer is "at least this much")
        return self.buckets[-1]

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class ServiceMetrics:
    """The service's always-on metric surface.

    Counters and histograms are keyed by tenant; gauges (queue depth,
    active jobs) are read from the scheduler at scrape time via the
    ``gauges`` argument of :meth:`render`/:meth:`snapshot`, so the
    per-job hot path never maintains them.
    """

    enabled: bool = True

    def __init__(self,
                 buckets: Tuple[float, ...] = LATENCY_BUCKETS):
        self.buckets = buckets
        #: counter short-name -> {tenant: count}
        self.counters: Dict[str, Dict[str, int]] = {
            name: {} for name in COUNTER_METRICS}
        #: (phase, tenant) -> histogram
        self.latency: Dict[Tuple[str, str], LatencyHistogram] = {}

    # -- the hot path -----------------------------------------------------

    def inc(self, name: str, tenant: str, n: int = 1) -> None:
        per_tenant = self.counters[name]
        per_tenant[tenant] = per_tenant.get(tenant, 0) + n

    def observe(self, phase: str, tenant: str,
                seconds: float) -> None:
        key = (phase, tenant)
        hist = self.latency.get(key)
        if hist is None:
            hist = self.latency[key] = LatencyHistogram(self.buckets)
        hist.observe(seconds)

    # -- scrape surfaces --------------------------------------------------

    def snapshot(self, gauges: Optional[dict] = None) -> dict:
        """JSON view for ``/stats`` and ``repro top``."""
        tenants = sorted({t for per in self.counters.values()
                          for t in per}
                         | {t for _, t in self.latency})
        latency: Dict[str, Dict[str, dict]] = {}
        for (phase, tenant), hist in sorted(self.latency.items()):
            latency.setdefault(phase, {})[tenant] = hist.snapshot()
        out = {
            "tenants": tenants,
            "counters": {name: dict(sorted(per.items()))
                         for name, per in self.counters.items()},
            "latency": latency,
        }
        if gauges:
            out["gauges"] = gauges
        return out

    def render(self, gauges: Optional[dict] = None) -> str:
        """The Prometheus text exposition (``GET /metrics``).

        ``gauges`` carries scrape-time values:
        ``{"queue_depth": {tenant: n}, "active_jobs": n,
        "workers": n}`` — whatever keys are present are rendered.
        """
        lines: List[str] = []

        def counter(name: str, metric: str) -> None:
            per = self.counters[name]
            lines.append(f"# TYPE {metric} counter")
            if not per:
                lines.append(f"{metric} 0")
                return
            for tenant in sorted(per):
                lines.append(f'{metric}{{tenant="{tenant}"}} '
                             f"{per[tenant]}")

        gauges = gauges or {}
        depth = gauges.get("queue_depth")
        if depth is not None:
            lines.append("# TYPE repro_service_queue_depth gauge")
            if isinstance(depth, dict):
                if not depth:
                    lines.append("repro_service_queue_depth 0")
                for tenant in sorted(depth):
                    lines.append(
                        f'repro_service_queue_depth'
                        f'{{tenant="{tenant}"}} {depth[tenant]}')
            else:
                lines.append(f"repro_service_queue_depth {depth}")
        for key in ("active_jobs", "workers"):
            if key in gauges:
                lines.append(f"# TYPE repro_service_{key} gauge")
                lines.append(f"repro_service_{key} {gauges[key]}")
        for name, metric in COUNTER_METRICS.items():
            counter(name, metric)
        metric = "repro_service_latency_seconds"
        lines.append(f"# TYPE {metric} histogram")
        for (phase, tenant), hist in sorted(self.latency.items()):
            base = f'phase="{phase}",tenant="{tenant}"'
            cumulative = 0
            for i, edge in enumerate(hist.buckets):
                cumulative += hist.counts[i]
                lines.append(f'{metric}_bucket{{{base},le="{edge:g}"}}'
                             f" {cumulative}")
            cumulative += hist.inf_count
            lines.append(f'{metric}_bucket{{{base},le="+Inf"}} '
                         f"{cumulative}")
            lines.append(f"{metric}_sum{{{base}}} {hist.sum:.9g}")
            lines.append(f"{metric}_count{{{base}}} {hist.total}")
        return "\n".join(lines) + "\n"


class NullServiceMetrics:
    """Disabled metric surface (benchmark baseline); same API,
    no state."""

    enabled: bool = False

    def inc(self, name: str, tenant: str,
            n: int = 1) -> None:  # pragma: no cover
        pass

    def observe(self, phase: str, tenant: str,
                seconds: float) -> None:  # pragma: no cover
        pass

    def snapshot(self, gauges: Optional[dict] = None) -> dict:
        return {}

    def render(self, gauges: Optional[dict] = None) -> str:
        return ""


NULL_SERVICE_METRICS = NullServiceMetrics()
