"""Structured JSONL lifecycle-event log (null by default).

The observability plane's durable record: one JSON object per line,
append-only, written by whichever process observed the event — the
service scheduler, a backend coordinator, a farm host agent.  Like the
:class:`~repro.observability.tracer.Tracer`, the log is strictly
pay-as-you-go: the default sink is :data:`NULL_EVENT_LOG` whose
``enabled`` flag is False, and every emit site guards on that flag, so
an unlogged run never formats an entry.

Event kinds (the job lifecycle, then the execution fabric):

======================  =====================================================
kind                    meaning
======================  =====================================================
``submitted``           a request entered ``service.submit``
``cache_hit``           the fingerprint matched an archived run
``coalesced``           the request attached to an in-flight leader
``rejected``            admission refused the request (quota)
``admitted``            admission accepted the request
``queued``              the job entered the priority queue
``executing``           a worker slot picked the job up
``done``                the job completed (any source)
``failed``              execution raised; the error rides along
``cancelled``           the job was cancelled (queued or running)
``worker_spawn``        a backend coordinator forked a partition worker
``worker_exit``         a partition worker was reaped
``host_deploy``         the farm manager forked a host agent
``host_death``          a host died (agent exit or heartbeat timeout)
``host_replace``        the run re-placed onto the surviving hosts
======================  =====================================================

Every entry is stamped with a per-process sequence number, a
``time.monotonic_ns`` timestamp (``ts_ns``), the wall-clock time
(``wall``), and the writing ``pid``; the identity fields (``corr``,
``tenant``, ``fingerprint``, ``job``, ``part``, ``host``) appear when
non-empty.  Entries are single ``write()`` calls on an ``O_APPEND``
stream, so concurrent writers (coordinator + forked agents) interleave
whole lines, never bytes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

# -- lifecycle kinds --------------------------------------------------------

EV_SUBMITTED = "submitted"
EV_CACHE_HIT = "cache_hit"
EV_COALESCED = "coalesced"
EV_REJECTED = "rejected"
EV_ADMITTED = "admitted"
EV_QUEUED = "queued"
EV_EXECUTING = "executing"
EV_DONE = "done"
EV_FAILED = "failed"
EV_CANCELLED = "cancelled"
EV_WORKER_SPAWN = "worker_spawn"
EV_WORKER_EXIT = "worker_exit"
EV_HOST_DEPLOY = "host_deploy"
EV_HOST_DEATH = "host_death"
EV_HOST_REPLACE = "host_replace"

#: every kind the plane emits, in rough lifecycle order
EVENT_KINDS = (
    EV_SUBMITTED, EV_CACHE_HIT, EV_COALESCED, EV_REJECTED,
    EV_ADMITTED, EV_QUEUED, EV_EXECUTING, EV_DONE, EV_FAILED,
    EV_CANCELLED, EV_WORKER_SPAWN, EV_WORKER_EXIT, EV_HOST_DEPLOY,
    EV_HOST_DEATH, EV_HOST_REPLACE,
)

#: identity fields serialized only when non-empty
_IDENTITY = ("corr", "tenant", "fingerprint", "job", "part", "host")


class EventLog:
    """Append-only JSONL sink for lifecycle events.

    The file handle is opened lazily *per process*: a forked child
    (worker, agent) inheriting the object reopens its own ``O_APPEND``
    stream on first emit instead of sharing the parent's buffered
    handle — appends from any number of processes interleave whole
    lines.
    """

    #: emit sites skip entry construction entirely when False
    enabled: bool = True

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self._pid: Optional[int] = None
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, corr: str = "", tenant: str = "",
             fingerprint: str = "", job: str = "", part: str = "",
             host: str = "", **fields) -> None:
        """Append one event; identity keys appear only when set."""
        entry: Dict[str, object] = {
            "kind": kind,
            "ts_ns": time.monotonic_ns(),
            "wall": time.time(),
        }
        for key, value in zip(_IDENTITY, (corr, tenant, fingerprint,
                                          job, part, host)):
            if value:
                entry[key] = value
        entry.update(fields)
        line = json.dumps(entry, sort_keys=False)
        with self._lock:
            fh = self._ensure_open()
            self._seq += 1
            entry_head = (f'{{"seq": {self._seq}, '
                          f'"pid": {os.getpid()}, ')
            fh.write(entry_head + line[1:] + "\n")
            fh.flush()

    def _ensure_open(self):
        pid = os.getpid()
        if self._fh is None or self._pid != pid:
            # a forked child inherits the object but must not share
            # the parent's buffered stream
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._pid = pid
            self._seq = 0
        return self._fh

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._pid == os.getpid():
                self._fh.close()
            self._fh = None


class NullEventLog:
    """The free default: ``enabled`` is False and ``emit`` is a
    no-op.  Emit sites guard on the flag, so the null plane costs one
    attribute read per potential event."""

    enabled: bool = False

    def emit(self, kind: str, **fields) -> None:  # pragma: no cover
        pass

    def close(self) -> None:  # pragma: no cover
        pass


#: the shared do-nothing sink
NULL_EVENT_LOG = NullEventLog()


def open_event_log(path: Optional[Union[str, Path]]):
    """An :class:`EventLog` at ``path``, or :data:`NULL_EVENT_LOG`
    when ``path`` is falsy — the one-liner for optional wiring."""
    return EventLog(path) if path else NULL_EVENT_LOG


# -- reading ----------------------------------------------------------------

def read_events(path: Union[str, Path],
                corr: Optional[str] = None,
                tenant: Optional[str] = None,
                kinds: Optional[Iterable[str]] = None
                ) -> Iterator[dict]:
    """Iterate the event log's entries, optionally filtered.

    Unparseable lines (a torn tail from a crashed writer) are
    skipped, never raised — the log is diagnostics, not a ledger.
    """
    wanted = set(kinds) if kinds else None
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if corr is not None and entry.get("corr") != corr:
                continue
            if tenant is not None and entry.get("tenant") != tenant:
                continue
            if wanted is not None and entry.get("kind") not in wanted:
                continue
            yield entry


def follow_events(path: Union[str, Path],
                  corr: Optional[str] = None,
                  tenant: Optional[str] = None,
                  kinds: Optional[Iterable[str]] = None,
                  poll: float = 0.25,
                  timeout: Optional[float] = None
                  ) -> Iterator[dict]:
    """``tail -f`` the event log: yield matching entries as they are
    appended, until ``timeout`` seconds pass without the file growing
    (``None`` follows forever)."""
    wanted = set(kinds) if kinds else None
    offset = 0
    deadline = (time.monotonic() + timeout) if timeout else None
    buffer = ""
    while True:
        grew = False
        try:
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        except OSError:
            chunk = ""
        if chunk:
            grew = True
            buffer += chunk
            *lines, buffer = buffer.split("\n")
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if corr is not None and entry.get("corr") != corr:
                    continue
                if tenant is not None \
                        and entry.get("tenant") != tenant:
                    continue
                if wanted is not None \
                        and entry.get("kind") not in wanted:
                    continue
                yield entry
        if grew:
            if deadline is not None:
                deadline = time.monotonic() + timeout
            continue
        if deadline is not None and time.monotonic() > deadline:
            return
        time.sleep(poll)


def format_event(entry: dict) -> str:
    """One human-readable line per entry — what ``repro tail``
    prints."""
    wall = entry.get("wall")
    stamp = time.strftime("%H:%M:%S", time.localtime(wall)) \
        if wall else "--:--:--"
    parts = [stamp, f"{entry.get('kind', '?'):12s}"]
    for key in _IDENTITY:
        if entry.get(key):
            parts.append(f"{key}={entry[key]}")
    skip = set(_IDENTITY) | {"kind", "ts_ns", "wall", "seq", "pid"}
    for key in sorted(entry):
        if key not in skip:
            parts.append(f"{key}={entry[key]}")
    return " ".join(parts)
