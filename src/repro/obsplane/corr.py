"""Request-scoped correlation IDs.

One simulation request fans out across many artifacts — a service job
record, an archived run, a live-status file, trace events, and (under
the distributed backends) one OS process per partition plus one agent
per farm host.  The correlation ID is the single join key across all
of them: minted once at ``service.submit`` (or by any caller that
wants joinable artifacts), carried on the simulation object
(``sim.corr_id``), copied into every worker's option dict by the
backend coordinators, and exported into each child process's
environment as :data:`CORR_ENV` — which the child echoes back in its
result fragment, so the coordinator can *prove* the ID survived the
fork/exec boundary end-to-end.

IDs are opaque ``corr-<12 hex>`` strings; nothing parses them.
"""

from __future__ import annotations

import os
import uuid

#: environment variable carrying the correlation ID into worker and
#: agent subprocesses (exec'd tooling under a worker inherits it too)
CORR_ENV = "REPRO_CORR_ID"


def mint_corr_id() -> str:
    """A fresh correlation ID (``corr-`` + 12 hex chars)."""
    return f"corr-{uuid.uuid4().hex[:12]}"


def current_corr_id() -> str:
    """The correlation ID of the enclosing request, if any.

    Inside a worker/agent subprocess this is whatever the coordinator
    exported via :data:`CORR_ENV`; empty when no request scope is
    active.
    """
    return os.environ.get(CORR_ENV, "")


def propagate_corr_id(corr_id: str) -> None:
    """Export ``corr_id`` into this process's environment so child
    processes (and :func:`current_corr_id` callers) see it."""
    if corr_id:
        os.environ[CORR_ENV] = corr_id
