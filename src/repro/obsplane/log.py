"""Process logging for the service and farm paths.

Thin wiring over stdlib :mod:`logging`: one stderr handler configured
lazily on first use, level from the ``REPRO_LOG_LEVEL`` environment
variable (default ``WARNING`` — the library stays silent unless asked).
:func:`log_record` emits the same structured shape as the JSONL event
log (``kind key=value ...``), so an operator grepping stderr and one
tailing the event log see the same vocabulary.
"""

from __future__ import annotations

import logging
import os
import sys

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    _configured = True
    root = logging.getLogger("repro")
    if root.handlers:
        return  # the application configured logging itself
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)s %(name)s: %(message)s",
        datefmt="%H:%M:%S"))
    root.addHandler(handler)
    level_name = os.environ.get(LOG_LEVEL_ENV, "").strip().upper()
    level = getattr(logging, level_name, None) \
        if level_name else logging.WARNING
    if not isinstance(level, int):
        level = logging.WARNING
    root.setLevel(level)
    root.propagate = False


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy with the stderr handler
    and ``REPRO_LOG_LEVEL`` applied (idempotent)."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_record(logger: logging.Logger, kind: str,
               level: int = logging.INFO,
               corr: str = "", **fields) -> None:
    """Log one structured record: ``kind corr=... key=value ...`` —
    the stderr twin of an event-log entry."""
    if not logger.isEnabledFor(level):
        return
    parts = [kind]
    if corr:
        parts.append(f"corr={corr}")
    parts.extend(f"{key}={value}" for key, value in fields.items()
                 if value not in ("", None))
    logger.log(level, " ".join(parts))
