"""Cross-process trace stitching: one Perfetto trace per service job.

A service-submitted run produces observability in three places with
three different clocks:

* the **scheduler** knows wall-clock phase timings (queue wait, cache
  lookup, execution span) recorded on the job,
* the **event log** holds wall-stamped fabric events (worker spawns,
  host deploys/deaths, re-placements) written by whichever process saw
  them,
* the **workers** collect per-partition simulation spans in *modelled*
  host time, shipped home in result fragments and archived in the run
  record's ``obs`` extra.

Stitching puts all three on one µs timeline anchored at the job's
submit time: wall-stamped records are offset from ``submitted``;
modelled-time partition spans are shifted so their first event lands at
the start of the job's execution span (the modelled clock advances much
faster than the wall clock — the shift preserves *ordering and
structure*, which is what a human reads in the merged view).

Track identity: partitions are renamed ``<job>/<host>/<part>`` and the
export uses hash-namespaced pid/tids
(:func:`~repro.observability.chrome_trace.iter_chrome_records` with
``hash_track_ids=True``), so two jobs — or two hosts running a
partition of the same name — can never collide on a track.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..observability.chrome_trace import stream_chrome_trace
from ..observability.tracer import TraceEvent

#: track (Chrome "process") that carries the scheduler-side job spans
SERVICE_TRACK = "service"


# -- (de)serializing trace events -------------------------------------------

def event_to_dict(event: TraceEvent) -> dict:
    """JSON-able form of one trace event (the ``obs`` archive
    shape)."""
    return {"kind": event.kind, "ts_ns": event.ts_ns,
            "dur_ns": event.dur_ns, "part": event.part,
            "scope": event.scope, "args": dict(event.args)}


def dict_to_event(payload: dict) -> TraceEvent:
    return TraceEvent(
        kind=payload.get("kind", "?"),
        ts_ns=float(payload.get("ts_ns", 0.0)),
        dur_ns=float(payload.get("dur_ns", 0.0)),
        part=payload.get("part", ""),
        scope=payload.get("scope", ""),
        args=dict(payload.get("args", {})))


# -- the three sources ------------------------------------------------------

def service_spans(job_record: dict) -> List[TraceEvent]:
    """Scheduler-side spans of one job, on the µs-from-submit
    timeline: cache lookup, queue wait, execution."""
    submitted = job_record.get("submitted")
    if submitted is None:
        return []
    job_id = job_record.get("job_id", "?")
    corr = job_record.get("corr_id", "")
    events: List[TraceEvent] = []

    def span(kind: str, start_s: float, dur_s: Optional[float],
             scope: str) -> None:
        if dur_s is None:
            return
        events.append(TraceEvent(
            kind=kind, ts_ns=start_s * 1e9,
            dur_ns=max(dur_s, 0.0) * 1e9,
            part=SERVICE_TRACK, scope=scope,
            args={"job": job_id, "corr": corr,
                  "tenant": job_record.get("tenant", "")}))

    span("cache_lookup", 0.0, job_record.get("cache_lookup_s"),
         "cache")
    span("queue_wait", 0.0, job_record.get("queue_wait_s"),
         "scheduler")
    started = job_record.get("started")
    finished = job_record.get("finished")
    if started is not None:
        dur = job_record.get("execution_s")
        if dur is None and finished is not None:
            dur = finished - started
        span("execution", started - submitted, dur, "scheduler")
    return events


def fabric_events(job_record: dict,
                  entries: Iterable[dict]) -> List[TraceEvent]:
    """Event-log entries as instants on per-host / per-worker tracks
    (and the job lifecycle on the service track)."""
    submitted = job_record.get("submitted") or 0.0
    job_id = job_record.get("job_id", "?")
    events: List[TraceEvent] = []
    for entry in entries:
        wall = entry.get("wall")
        if wall is None:
            continue
        kind = entry.get("kind", "?")
        host = entry.get("host", "")
        part = entry.get("part", "")
        if host:
            track, scope = f"host:{host}", part or "agent"
        elif part:
            track, scope = f"{job_id}/workers", part
        else:
            track, scope = SERVICE_TRACK, "lifecycle"
        args = {k: v for k, v in entry.items()
                if k not in ("wall", "ts_ns", "seq", "pid", "kind")}
        events.append(TraceEvent(
            kind=kind, ts_ns=max(wall - submitted, 0.0) * 1e9,
            part=track, scope=scope, args=args))
    return events


def _part_hosts(run_record: Optional[dict]) -> Dict[str, str]:
    """partition -> host from the run record's farm placement (the
    last placement wins — it is the one that completed)."""
    if not run_record:
        return {}
    farm = run_record.get("farm") or {}
    placements = farm.get("placements") or []
    if not placements:
        return {}
    return dict(placements[-1].get("assignment", {}))


def partition_events(job_record: dict,
                     run_record: Optional[dict]) -> List[TraceEvent]:
    """Archived per-partition simulation spans, renamed onto
    ``<job>/<host>/<part>`` tracks and shifted onto the job
    timeline."""
    if not run_record:
        return []
    obs = run_record.get("obs") or {}
    payloads = obs.get("trace_events") or []
    if not payloads:
        return []
    job_id = job_record.get("job_id", "?")
    submitted = job_record.get("submitted")
    started = job_record.get("started")
    exec_start_ns = ((started - submitted) * 1e9
                     if submitted is not None and started is not None
                     else 0.0)
    raw = [dict_to_event(p) for p in payloads]
    shift = exec_start_ns - min(e.ts_ns for e in raw)
    hosts = _part_hosts(run_record)
    events = []
    for event in raw:
        part = event.part or "global"
        host = hosts.get(part, "local")
        events.append(TraceEvent(
            kind=event.kind, ts_ns=event.ts_ns + shift,
            dur_ns=event.dur_ns,
            part=f"{job_id}/{host}/{part}",
            scope=event.scope, args=event.args))
    return events


# -- the merge --------------------------------------------------------------

def stitch_job_trace(job_record: dict,
                     run_record: Optional[dict] = None,
                     entries: Iterable[dict] = ()
                     ) -> List[TraceEvent]:
    """Merge the three sources into one ordered event stream."""
    events = service_spans(job_record)
    events.extend(fabric_events(job_record, entries))
    events.extend(partition_events(job_record, run_record))
    events.sort(key=lambda e: (e.ts_ns, e.part, e.scope, e.kind))
    return events


def export_job_trace(path, job_record: dict,
                     run_record: Optional[dict] = None,
                     entries: Iterable[dict] = (),
                     compress: bool = False):
    """Stitch and stream-export one job's Perfetto trace; returns
    (written path, event count)."""
    events = stitch_job_trace(job_record, run_record, entries)
    written = stream_chrome_trace(events, path, compress=compress,
                                  hash_track_ids=True)
    return written, len(events)
