"""Switched-Ethernet transport and arbitrary FPGA topologies
(Sec. VIII-C future work).

The paper's on-prem topologies are limited by the U250's two QSFP cages
(rings or binary trees of direct-attach cables); it proposes Ethernet
through a central switch to route tokens between *any* pair of FPGAs.
This module models that: per-link cost like any transport, plus a shared
:class:`SwitchFabric` whose backplane all links contend on.

Trade-off reproduced: the switch adds store-and-forward latency (so a
2-FPGA simulation is slower than over a direct cable) but removes the
cabling constraint, letting topologies the ring cannot express (stars,
fully-connected token exchanges) run at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TransportError
from .transport import TransportModel


@dataclass
class SwitchFabric:
    """A shared Ethernet switch: every traversing token occupies the
    backplane for its serialization time."""

    name: str = "ethernet_switch"
    backplane_gbps: float = 100.0
    port_overhead_ns: float = 120.0  # per-hop MAC/PHY + buffering
    next_free: float = 0.0
    tokens: int = 0

    def traverse(self, depart_ns: float, width_bits: int) -> float:
        """Token enters the switch at ``depart_ns``; returns exit time."""
        service = width_bits / self.backplane_gbps \
            + self.port_overhead_ns
        start = max(depart_ns, self.next_free)
        self.next_free = start + service
        self.tokens += 1
        return start + service


@dataclass(frozen=True)
class SwitchedEthernetTransport(TransportModel):
    """Ethernet NIC-to-switch-to-NIC path.

    The per-link constants cover the two cable runs and the FPGA-side
    MAC; the shared switch contention is accounted by the harness when a
    :class:`SwitchFabric` is attached to the link.
    """

    switch: Optional[SwitchFabric] = None

    def with_switch(self, switch: SwitchFabric
                    ) -> "SwitchedEthernetTransport":
        return SwitchedEthernetTransport(
            name=self.name, latency_ns=self.latency_ns,
            bandwidth_gbps=self.bandwidth_gbps,
            per_token_overhead_ns=self.per_token_overhead_ns,
            flit_bits=self.flit_bits, rate_cap_hz=self.rate_cap_hz,
            switch=switch)


#: 100G Ethernet through a cut-through datacenter switch.  Slower than a
#: direct QSFP cable (two cable runs + switch hop) but topology-free.
ETHERNET_100G = SwitchedEthernetTransport(
    name="ethernet_100g_switched",
    latency_ns=950.0,          # two cable runs + MACs
    bandwidth_gbps=100.0,
    per_token_overhead_ns=90.0,
    flit_bits=128,
)


def make_switched_links(link_plans, switch: Optional[SwitchFabric] = None,
                        transport: SwitchedEthernetTransport
                        = ETHERNET_100G):
    """Build harness links that all share one switch fabric.

    Args:
        link_plans: iterable of
            :class:`~repro.fireripper.boundary.LinkPlan`.
        switch: shared fabric (a fresh one by default).
        transport: per-link Ethernet model.
    """
    from ..harness.partitioned import Link

    fabric = switch or SwitchFabric()
    shared = transport.with_switch(fabric)
    return [Link(lp.src, lp.dst, shared) for lp in link_plans], fabric
