"""Resource estimation from the RTL-level IR and from core parameters.

Two estimators:

* :func:`estimate_circuit_resources` walks the IR and prices each primitive
  with standard FPGA mapping heuristics (an adder is ~1 LUT/bit, small
  memories map to LUTRAM, big ones to BRAM36, wide multiplies to DSPs).
  FAME-5 threading shares combinational logic across threads while
  replicating sequential state, which is exactly how the estimate treats a
  ``fame5_threads`` multiplicity.

* :func:`estimate_core_area_mm2` prices an out-of-order core *parameter
  set* (Table I) with an analytic area model calibrated to the paper's
  16nm synthesis results (Large BOOM 0.79mm², GC40 BOOM 1.56mm²); the
  companion :func:`core_area_to_luts` converts to FPGA LUTs so the GC40
  case study can reproduce the fits-or-congests decisions of Sec. V-B.

This is also the "rough per-FPGA resource consumption estimate" feature
the paper lists under future work (Sec. VIII-B): FireRipper uses it to
give users quick feedback about whether a partition will fit.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..firrtl.ast import (
    Connect,
    DefMemory,
    DefNode,
    DefRegister,
    Expr,
    MemReadPort,
    MemWritePort,
    PrimOp,
)
from ..firrtl.circuit import Circuit, Module
from ..firrtl.passes.moduledag import instance_counts
from .resources import FPGAResources

#: LUTs per output bit for each primitive op class
_LUT_COST = {
    "add": 1.0, "sub": 1.0,
    "and": 0.5, "or": 0.5, "xor": 0.5, "not": 0.15,
    "eq": 0.5, "neq": 0.5, "lt": 0.6, "leq": 0.6, "gt": 0.6, "geq": 0.6,
    "mux": 0.5,
    "andr": 0.25, "orr": 0.25, "xorr": 0.35,
    "dshl": 1.5, "dshr": 1.5,
    # pure wiring
    "cat": 0.0, "bits": 0.0, "pad": 0.0, "shl": 0.0, "shr": 0.0,
}

#: a DSP48 absorbs roughly an 18x27 multiply
_DSP_MUL_BITS = 18 * 27
#: BRAM36 capacity in bits
_BRAM36_BITS = 36 * 1024
#: memories at or below this bit count map to LUTRAM
_LUTRAM_LIMIT = 4096


def _expr_resources(expr: Expr) -> FPGAResources:
    total = FPGAResources()
    if isinstance(expr, PrimOp):
        if expr.op == "mul":
            dsps = math.ceil(
                (expr.args[0].width * expr.args[1].width) / _DSP_MUL_BITS)
            total = total + FPGAResources(dsps=dsps)
        elif expr.op in ("div", "rem"):
            w = expr.args[0].width
            total = total + FPGAResources(luts=3.0 * w * w)
        else:
            per_bit = _LUT_COST.get(expr.op, 1.0)
            total = total + FPGAResources(luts=per_bit * expr.width)
        for a in expr.args:
            total = total + _expr_resources(a)
    return total


def estimate_module_resources(module: Module) -> Dict[str, FPGAResources]:
    """Per-definition resources for one module, split into ``comb`` and
    ``seq`` so FAME-5 sharing can be applied."""
    comb = FPGAResources()
    seq = FPGAResources()
    for s in module.stmts:
        if isinstance(s, DefNode):
            comb = comb + _expr_resources(s.expr)
        elif isinstance(s, Connect):
            comb = comb + _expr_resources(s.expr)
        elif isinstance(s, DefRegister):
            seq = seq + FPGAResources(ffs=s.width)
        elif isinstance(s, DefMemory):
            bits = s.depth * s.width
            if bits <= _LUTRAM_LIMIT:
                seq = seq + FPGAResources(luts=bits / 64.0)
            else:
                seq = seq + FPGAResources(
                    bram36=math.ceil(bits / _BRAM36_BITS))
        elif isinstance(s, MemReadPort):
            comb = comb + _expr_resources(s.addr)
        elif isinstance(s, MemWritePort):
            comb = comb + (_expr_resources(s.addr)
                           + _expr_resources(s.data)
                           + _expr_resources(s.en))
    return {"comb": comb, "seq": seq}


def estimate_circuit_resources(
        circuit: Circuit,
        fame5_threads: Optional[Dict[str, int]] = None) -> FPGAResources:
    """Estimate the elaborated circuit's FPGA footprint.

    Args:
        circuit: circuit to price.
        fame5_threads: module name -> thread count.  N instances of a
            FAME-5 threaded module cost one copy of combinational logic
            (plus ~5% scheduler overhead) and N copies of state.
    """
    fame5_threads = fame5_threads or {}
    counts = instance_counts(circuit)
    per_module = {name: estimate_module_resources(m)
                  for name, m in circuit.modules.items()}
    total = FPGAResources()
    for name, n in counts.items():
        if n == 0:
            continue
        parts = per_module[name]
        threads = fame5_threads.get(name, 0)
        if threads and n >= 1:
            # comb shared across all threaded instances
            shared_groups = math.ceil(n / threads)
            total = total + parts["comb"].scale(shared_groups * 1.05)
            total = total + parts["seq"].scale(n)
        else:
            total = total + parts["comb"].scale(n)
            total = total + parts["seq"].scale(n)
    return total


# -- analytic OoO core area model (calibrated to Table I / Sec. V-B) --------

#: mm^2 coefficients in a commercial 16nm process
_AREA_COEFF = {
    "base": 0.05,
    "issue": 0.012,         # per issue-width^2 (wakeup/select scales hard)
    "rob": 0.0012,          # per ROB entry
    "phys_regs": 0.00045,   # per physical register x sqrt(issue) (ports)
    "lsq": 0.0016,          # per load/store queue entry
    "fetch": 0.0008,        # per fetch-buffer entry
    "l1_kib": 0.0045,       # per KiB of L1 (I+D)
}


def estimate_core_area_mm2(issue_width: int, rob_entries: int,
                           int_phys_regs: int, fp_phys_regs: int,
                           ld_entries: int, st_entries: int,
                           fetch_buffer: int, l1i_kib: int,
                           l1d_kib: int) -> float:
    """Synthesized core + L1 area in mm^2 (16nm), analytic model.

    Calibration anchors (paper Sec. V-B): Large BOOM 0.79mm^2 (model gives
    0.81), GC40 BOOM 1.56mm^2 (model gives 1.54).  The Golden Cove Xeon
    lands far below its published 9.13mm^2 because the real design has
    many structures the model does not price, so the Xeon keeps its
    published number as data and the model is only used for BOOM variants.
    """
    c = _AREA_COEFF
    return (c["base"]
            + c["issue"] * (issue_width ** 2)
            + c["rob"] * rob_entries
            + c["phys_regs"] * (int_phys_regs + fp_phys_regs)
            * math.sqrt(issue_width)
            + c["lsq"] * (ld_entries + st_entries)
            + c["fetch"] * fetch_buffer
            + c["l1_kib"] * (l1i_kib + l1d_kib))


#: LUTs per mm^2 of 16nm core area when mapped through FireSim; calibrated
#: so GC40 BOOM occupies ~81% of a U250 (63% backend + 18% frontend).
LUTS_PER_MM2 = 810_000.0


def core_area_to_luts(area_mm2: float) -> float:
    """Convert 16nm core area to estimated FPGA LUTs."""
    return area_mm2 * LUTS_PER_MM2
