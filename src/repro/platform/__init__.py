"""Host platform models: FPGA boards, resource estimation, transports.

These are the simulated stand-ins for the paper's hardware substrate
(Xilinx Alveo U250 clusters, AWS EC2 F1 VU9Ps, QSFP/Aurora cables, PCIe).
Latency/bandwidth constants are calibrated to the end-to-end simulation
rates the paper reports: ~1.6 MHz over QSFP, ~1 MHz over peer-to-peer
PCIe, and the 26.4 kHz host-managed PCIe ceiling.
"""

from .resources import (
    AWS_VU9P,
    FPGAResources,
    FPGAProfile,
    XILINX_U250,
)
from .estimate import estimate_circuit_resources, estimate_core_area_mm2
from .transport import (
    HOST_PCIE,
    PCIE_P2P,
    QSFP_AURORA,
    TransportModel,
)
from .ethernet import (
    ETHERNET_100G,
    SwitchFabric,
    SwitchedEthernetTransport,
    make_switched_links,
)
from .hybrid import Campaign, format_plan, plan_hybrid

__all__ = [
    "FPGAResources",
    "FPGAProfile",
    "XILINX_U250",
    "AWS_VU9P",
    "TransportModel",
    "QSFP_AURORA",
    "PCIE_P2P",
    "HOST_PCIE",
    "estimate_circuit_resources",
    "estimate_core_area_mm2",
    "ETHERNET_100G",
    "SwitchFabric",
    "SwitchedEthernetTransport",
    "make_switched_links",
    "Campaign",
    "plan_hybrid",
    "format_plan",
]
