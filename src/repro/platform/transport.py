"""FPGA-to-FPGA transport models (Sec. IV of the paper).

Three transports, calibrated so the end-to-end partitioned-simulation
rates land where the paper measured them:

* :data:`QSFP_AURORA` — on-premises direct-attach QSFP cables through the
  Aurora protocol IP; lowest latency, enables ~1.6 MHz target frequency.
* :data:`PCIE_P2P` — AWS EC2 F1 peer-to-peer PCIe between FPGAs on the
  same instance; ~1 MHz.
* :data:`HOST_PCIE` — host-managed PCIe DMA through the C++ driver and a
  shared-memory bounce; works anywhere but caps at 26.4 kHz.

The cost model has three pieces per token transfer:

* ``latency_ns`` — one-way link/protocol latency,
* wire time — ``width / bandwidth`` plus a fixed per-token framing
  overhead,
* host-side (de)serialization — ``ceil(width / flit_bits)`` *host clock
  cycles* on each side, so its wall-clock cost shrinks as the bitstream
  frequency rises (the paper's fourth performance knob).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TransportModel:
    """Latency/bandwidth/overhead model of one FPGA-to-FPGA link type."""

    name: str
    latency_ns: float
    bandwidth_gbps: float
    per_token_overhead_ns: float
    flit_bits: int
    rate_cap_hz: Optional[float] = None

    def wire_ns(self, width_bits: int) -> float:
        """Time on the wire for one token of ``width_bits`` (excluding the
        host-side (de)serialization, which depends on the host clock)."""
        bits_per_ns = self.bandwidth_gbps  # 1 Gbps == 1 bit/ns
        return (self.latency_ns + self.per_token_overhead_ns
                + width_bits / bits_per_ns)

    def serdes_cycles(self, width_bits: int) -> int:
        """Host cycles to (de)serialize one token on one side."""
        return max(1, math.ceil(width_bits / self.flit_bits))

    def token_transfer_ns(self, width_bits: int,
                          host_freq_mhz: float) -> float:
        """End-to-end ns for one token: serialize, fly, deserialize."""
        host_cycle_ns = 1e3 / host_freq_mhz
        serdes = 2 * self.serdes_cycles(width_bits) * host_cycle_ns
        return self.wire_ns(width_bits) + serdes

    def apply_rate_cap(self, rate_hz: float) -> float:
        """Clamp an achieved simulation rate to the transport's ceiling."""
        if self.rate_cap_hz is None:
            return rate_hz
        return min(rate_hz, self.rate_cap_hz)


#: On-prem QSFP direct-attach cables (~$25) + Aurora 64b/66b IP.
QSFP_AURORA = TransportModel(
    name="qsfp_aurora",
    latency_ns=480.0,
    bandwidth_gbps=64.0,
    per_token_overhead_ns=50.0,
    flit_bits=128,
)

#: AWS EC2 F1 peer-to-peer PCIe (AXI4 between FPGAs, no host hop).
PCIE_P2P = TransportModel(
    name="pcie_peer_to_peer",
    latency_ns=850.0,
    bandwidth_gbps=32.0,
    per_token_overhead_ns=80.0,
    flit_bits=128,
)

#: Host-managed PCIe: FPGA -> driver -> shared memory -> driver -> FPGA.
HOST_PCIE = TransportModel(
    name="host_managed_pcie",
    latency_ns=36_000.0,
    bandwidth_gbps=8.0,
    per_token_overhead_ns=1_500.0,
    flit_bits=512,
    rate_cap_hz=26_400.0,
)
