"""FPGA resource vectors and board profiles.

Capacities follow the public datasheets; the *usable* fractions reflect
the paper's observation that shell/fixed IP eats into them — notably that
an on-premises Alveo U250 offers ~50% more usable LUTs than the cloud
VU9P (Sec. VIII-A).  The ``congestion_threshold`` models the paper's
experience that a monolithic GC40 BOOM bitstream build *fails due to
congestion* well before 100% LUT utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ResourceError


@dataclass(frozen=True)
class FPGAResources:
    """A vector of FPGA resources."""

    luts: float = 0.0
    ffs: float = 0.0
    bram36: float = 0.0
    dsps: float = 0.0

    def __add__(self, other: "FPGAResources") -> "FPGAResources":
        return FPGAResources(self.luts + other.luts, self.ffs + other.ffs,
                             self.bram36 + other.bram36,
                             self.dsps + other.dsps)

    def scale(self, k: float) -> "FPGAResources":
        return FPGAResources(self.luts * k, self.ffs * k,
                             self.bram36 * k, self.dsps * k)

    def utilization(self, capacity: "FPGAResources") -> Dict[str, float]:
        """Fractional utilization against a capacity vector."""
        out: Dict[str, float] = {}
        for field in ("luts", "ffs", "bram36", "dsps"):
            cap = getattr(capacity, field)
            out[field] = (getattr(self, field) / cap) if cap else 0.0
        return out


@dataclass(frozen=True)
class FPGAProfile:
    """One FPGA board model available to the simulation platform."""

    name: str
    capacity: FPGAResources
    usable_fraction: float  # after shell / fixed IP
    congestion_threshold: float  # routable fraction of usable LUTs
    qsfp_cages: int
    default_host_freq_mhz: float

    @property
    def usable(self) -> FPGAResources:
        return self.capacity.scale(self.usable_fraction)

    def check_fit(self, required: FPGAResources,
                  label: str = "partition") -> Dict[str, float]:
        """Validate a resource requirement; returns the utilization map.

        Raises :class:`ResourceError` when any resource exceeds the usable
        capacity, or when LUT utilization crosses the congestion threshold
        (bitstream builds fail to route past that point, as the paper saw
        with the monolithic GC40 BOOM).
        """
        util = required.utilization(self.usable)
        over = {k: v for k, v in util.items() if v > 1.0}
        if over:
            raise ResourceError(
                f"{label} does not fit {self.name}: "
                + ", ".join(f"{k}={v:.0%}" for k, v in over.items()),
                utilization=util,
            )
        if util["luts"] > self.congestion_threshold:
            raise ResourceError(
                f"{label} fails routing congestion on {self.name}: "
                f"luts={util['luts']:.0%} > "
                f"threshold {self.congestion_threshold:.0%}",
                utilization=util,
            )
        return util


#: On-premises Xilinx Alveo U250 (local cluster in the paper).
XILINX_U250 = FPGAProfile(
    name="xilinx_alveo_u250",
    capacity=FPGAResources(luts=1_728_000, ffs=3_456_000,
                           bram36=2_688, dsps=12_288),
    usable_fraction=0.90,
    congestion_threshold=0.75,
    qsfp_cages=2,
    default_host_freq_mhz=30.0,
)

#: AWS EC2 F1 VU9P; heavy fixed shell IP leaves ~50% fewer usable LUTs
#: than the on-prem U250 (Sec. VIII-A).
AWS_VU9P = FPGAProfile(
    name="aws_f1_vu9p",
    capacity=FPGAResources(luts=1_182_240, ffs=2_364_480,
                           bram36=2_160, dsps=6_840),
    usable_fraction=0.88,
    congestion_threshold=0.75,
    qsfp_cages=0,
    default_host_freq_mhz=30.0,
)
