"""Hybrid cloud/on-prem usage-model advisor (Sec. VIII-A).

The paper weighs three factors when choosing between cloud and
on-premises FPGAs: cost structure (hourly vs. upfront), FPGA capacity
(the U250 offers ~50% more usable LUTs than the shell-burdened VU9P),
and simulation performance (QSFP beats peer-to-peer PCIe).  It advocates
a hybrid model: develop on-prem for low latency and agility, then burst
benchmark campaigns to the cloud.

This module turns that discussion into a planner: given a development
phase (interactive debugging sessions) and a benchmarking campaign
(many independent simulations), it prices the pure-cloud, pure-on-prem,
and hybrid strategies and recommends one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .resources import AWS_VU9P, FPGAProfile, XILINX_U250
from .transport import PCIE_P2P, QSFP_AURORA, TransportModel

#: AWS f1.16xlarge (8 FPGAs) on-demand, per FPGA-hour
CLOUD_FPGA_HOUR_USD = 13.2 / 8
#: Alveo U250 street price + host share, amortized purchase
ONPREM_FPGA_USD = 9_000.0
#: QSFP direct-attach cable (the paper's "~$25")
QSFP_CABLE_USD = 25.0
#: power + hosting per on-prem FPGA-hour
ONPREM_OPEX_HOUR_USD = 0.12


@dataclass(frozen=True)
class Campaign:
    """A simulation workload to be priced.

    Args:
        fpgas_per_sim: FPGAs one partitioned simulation occupies.
        dev_hours: interactive development/debug FPGA-occupancy hours.
        bench_sim_hours: total simulation hours of the benchmark sweep
            at the *on-prem* rate (cloud runs take proportionally longer
            because peer-to-peer PCIe is slower than QSFP).
        bench_parallelism: simultaneous simulations the sweep needs to
            finish on schedule — the elasticity the cloud provides and
            on-prem must buy.
        dev_idle_factor: interactive sessions keep instances allocated
            while the user thinks; cloud dev hours are billed inflated
            by this factor (owned hardware idles for free).
        horizon_months: amortization horizon for purchased hardware.
    """

    fpgas_per_sim: int
    dev_hours: float
    bench_sim_hours: float
    bench_parallelism: int = 4
    dev_idle_factor: float = 2.5
    horizon_months: int = 24


@dataclass
class StrategyCost:
    """Priced strategy."""

    name: str
    usd: float
    dev_rate_mhz: float
    bench_rate_mhz: float
    detail: str


def _rate(transport: TransportModel, host_mhz: float = 30.0) -> float:
    from ..harness.analytic import analytic_rate_hz

    return analytic_rate_hz("fast", 512, transport, host_mhz) / 1e6


def plan_hybrid(campaign: Campaign) -> Tuple[StrategyCost,
                                             List[StrategyCost]]:
    """Price all three strategies; returns (recommended, all)."""
    onprem_rate = _rate(QSFP_AURORA)
    cloud_rate = _rate(PCIE_P2P)
    slowdown = onprem_rate / cloud_rate

    n = campaign.fpgas_per_sim
    amortize = campaign.horizon_months / 24.0

    # pure cloud: everything on F1; interactive hours billed inflated
    cloud_hours = (campaign.dev_hours * campaign.dev_idle_factor
                   + campaign.bench_sim_hours * slowdown) * n
    cloud = StrategyCost(
        "pure cloud", cloud_hours * CLOUD_FPGA_HOUR_USD,
        cloud_rate, cloud_rate,
        f"{cloud_hours:.0f} FPGA-hours at ${CLOUD_FPGA_HOUR_USD:.2f}/h; "
        f"benchmarks {slowdown:.2f}x slower than QSFP; interactive "
        f"sessions billed {campaign.dev_idle_factor:.1f}x for idle time")

    # pure on-prem: buy enough FPGAs to run the sweep in parallel
    dev_capex = n * (ONPREM_FPGA_USD + QSFP_CABLE_USD) * amortize
    sweep_capex = dev_capex * campaign.bench_parallelism
    onprem_hours = (campaign.dev_hours + campaign.bench_sim_hours) * n
    onprem = StrategyCost(
        "pure on-prem", sweep_capex + onprem_hours * ONPREM_OPEX_HOUR_USD,
        onprem_rate, onprem_rate,
        f"{n * campaign.bench_parallelism} U250s to sustain "
        f"{campaign.bench_parallelism} parallel sweeps "
        f"(amortized {campaign.horizon_months} months) "
        f"+ {onprem_hours:.0f} FPGA-hours of opex")

    # hybrid: buy one dev setup, burst the sweep to the cloud
    hybrid_cloud_hours = campaign.bench_sim_hours * slowdown * n
    hybrid = StrategyCost(
        "hybrid (develop on-prem, benchmark in cloud)",
        dev_capex + campaign.dev_hours * n * ONPREM_OPEX_HOUR_USD
        + hybrid_cloud_hours * CLOUD_FPGA_HOUR_USD,
        onprem_rate, cloud_rate,
        "the paper's recommended model: low-latency iteration locally, "
        "elastic sweep capacity in the cloud")

    strategies = [cloud, onprem, hybrid]
    recommended = min(strategies, key=lambda s: s.usd)
    return recommended, strategies


def format_plan(campaign: Campaign) -> str:
    recommended, strategies = plan_hybrid(campaign)
    lines = [
        f"campaign: {campaign.fpgas_per_sim} FPGAs/simulation, "
        f"{campaign.dev_hours:.0f}h development, "
        f"{campaign.bench_sim_hours:.0f}h of benchmarks",
        f"usable LUT advantage of on-prem U250 over cloud VU9P: "
        f"{XILINX_U250.usable.luts / AWS_VU9P.usable.luts - 1:.0%}",
        "",
    ]
    for s in strategies:
        marker = "-> " if s is recommended else "   "
        lines.append(f"{marker}{s.name}: ${s.usd:,.0f} "
                     f"(dev {s.dev_rate_mhz:.2f} MHz / "
                     f"bench {s.bench_rate_mhz:.2f} MHz)")
        lines.append(f"     {s.detail}")
    return "\n".join(lines)
