"""Seeded random target generator — the scenario mill's front half.

A :class:`Scenario` is the unit of fuzzing: one (circuit,
partition-spec, input-program, seed) tuple, fully determined by
``(seed, index, shape, params, cycles)`` and JSON round-trippable, so a
failing scenario can be committed to a corpus and replayed bit-exactly
years later.

Determinism contract (enforced by tests/fuzz/test_generator.py):

* ``generate_scenario(seed, index)`` draws every choice from
  ``random.Random(f"{seed}/{index}")`` — no global RNG, no ambient
  state,
* ``build_scenario_circuit(scenario)`` uses **no RNG at all**: the
  circuit is a pure function of ``shape`` + ``params``, so shrinking a
  scenario only requires editing ``params``,
* ``derive_spec(scenario)`` re-derives the partition spec from
  ``random.Random(f"{seed}/{index}/spec")`` clamped to the current
  ``params`` — a shrunk scenario (fewer lanes, fewer tiles) always has
  a valid spec without storing one,
* identical scenarios produce byte-identical circuits across processes
  and ``PYTHONHASHSEED`` values
  (:func:`~repro.firrtl.fingerprint.circuit_fingerprint` pins this).

Shapes compose the existing target builders: ready-valid pipelines and
fan-out forks from ``targets/primitives.py``, ring/torus NoC SoCs and
the star/rocket multi-tile SoCs from ``targets/soc.py``, and the
width-parametric boundary pair of the Fig. 11/12 sweeps.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..fireripper import (
    EXACT,
    FAST,
    FireRipper,
    NoCPartitionSpec,
    PartitionGroup,
    PartitionSpec,
)
from ..firrtl import ModuleBuilder, make_circuit
from ..firrtl.circuit import Circuit, Module
from ..platform import PCIE_P2P, QSFP_AURORA
from ..targets.primitives import (
    make_queue,
    make_rv_consumer,
    make_rv_producer,
)
from ..targets.soc import (
    make_ring_noc_soc,
    make_rocket_like_soc,
    make_star_soc,
    make_torus_noc_soc,
    make_wide_pair,
)

SCENARIO_FORMAT = "fireaxe-repro-fuzz-scenario"
SCENARIO_VERSION = 1

#: transports a scenario may price its links through (functional
#: results are transport-independent; the timing overlay is not)
TRANSPORTS = {"qsfp": QSFP_AURORA, "pcie": PCIE_P2P}

ALL_SHAPES = ("pipeline", "ring", "torus", "star", "widepair", "rocket")


@dataclass(frozen=True)
class GeneratorKnobs:
    """User-facing bounds on what the mill generates."""

    shapes: Tuple[str, ...] = ALL_SHAPES
    max_lanes: int = 3
    max_stages: int = 3
    max_width: int = 32
    max_queue_depth: int = 4
    max_tiles: int = 4
    max_messages: int = 4
    min_cycles: int = 48
    max_cycles: int = 200
    #: upper bound on extracted partition groups per scenario
    max_groups: int = 3

    def __post_init__(self):
        unknown = set(self.shapes) - set(ALL_SHAPES)
        if unknown:
            raise ReproError(
                f"unknown fuzz shapes {sorted(unknown)}; "
                f"pick from {list(ALL_SHAPES)}")
        if not self.shapes:
            raise ReproError("at least one fuzz shape is required")


@dataclass
class Scenario:
    """One fully-determined fuzz scenario."""

    seed: int
    index: int
    shape: str
    params: Dict[str, object]
    cycles: int

    def to_dict(self) -> dict:
        return {
            "format": SCENARIO_FORMAT,
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "index": self.index,
            "shape": self.shape,
            "params": self.params,
            "cycles": self.cycles,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Scenario":
        if payload.get("format") != SCENARIO_FORMAT:
            raise ReproError(
                f"not a fuzz scenario (format={payload.get('format')!r})")
        if payload.get("version") != SCENARIO_VERSION:
            raise ReproError(
                f"fuzz scenario version {payload.get('version')} "
                f"unsupported (this build reads {SCENARIO_VERSION})")
        return Scenario(seed=payload["seed"], index=payload["index"],
                        shape=payload["shape"],
                        params=dict(payload["params"]),
                        cycles=payload["cycles"])

    @property
    def fingerprint(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def clone(self, **param_updates) -> "Scenario":
        params = json.loads(json.dumps(self.params))
        params.update(param_updates)
        return Scenario(self.seed, self.index, self.shape, params,
                        self.cycles)


# --------------------------------------------------------------------------
# parameter sampling
# --------------------------------------------------------------------------


def _sample_lane(rng: random.Random, knobs: GeneratorKnobs) -> dict:
    width = rng.choice([4, 8, 12, 16, 24, knobs.max_width])
    width = min(width, knobs.max_width)
    n_stages = rng.randint(1, knobs.max_stages)
    depths = [rng.randint(1, knobs.max_queue_depth)
              for _ in range(n_stages)]
    return {
        "width": width,
        "depths": depths,
        "count": rng.randint(2, 10),
        "stall_mask": rng.choice([0, 0, 1, 3]),
    }


def _sample_pipeline(rng: random.Random, knobs: GeneratorKnobs) -> dict:
    lanes = rng.randint(1, knobs.max_lanes)
    uniform = lanes > 1 and rng.random() < 0.5
    if uniform:
        proto = _sample_lane(rng, knobs)
        lane_params = [dict(proto) for _ in range(lanes)]
    else:
        lane_params = [_sample_lane(rng, knobs) for _ in range(lanes)]
    # fan-out (one producer broadcast to every lane) needs equal widths
    fanout = uniform and rng.random() < 0.5
    return {
        "lanes": lane_params,
        "uniform": uniform,
        "fanout": fanout,
        "block": rng.random() < 0.5,
        "transport": rng.choice(sorted(TRANSPORTS)),
        "fault": _sample_fault(rng),
    }


def _sample_fault(rng: random.Random) -> dict:
    """Small, recoverable fault rates for the survivability oracle."""
    return {
        "drop_rate": rng.choice([0.0, 0.01, 0.03]),
        "corrupt_rate": rng.choice([0.0, 0.01, 0.02]),
        "spike_rate": rng.choice([0.0, 0.02]),
    }


def _sample_noc(rng: random.Random, knobs: GeneratorKnobs) -> dict:
    return {
        "n_tiles": rng.randint(2, knobs.max_tiles),
        "messages": rng.randint(1, knobs.max_messages),
        "transport": rng.choice(sorted(TRANSPORTS)),
        "fault": _sample_fault(rng),
    }


def _sample_widepair(rng: random.Random, knobs: GeneratorKnobs) -> dict:
    return {
        "width": rng.choice([8, 16, 24, 32, 48, 64]),
        "comb": rng.random() < 0.4,
        "transport": rng.choice(sorted(TRANSPORTS)),
        "fault": _sample_fault(rng),
    }


def _sample_rocket(rng: random.Random, knobs: GeneratorKnobs) -> dict:
    return {
        "boot_loops": rng.randint(3, 20),
        "messages": rng.randint(2, 8),
        "transport": rng.choice(sorted(TRANSPORTS)),
        "fault": _sample_fault(rng),
    }


_SAMPLERS = {
    "pipeline": _sample_pipeline,
    "ring": _sample_noc,
    "torus": _sample_noc,
    "star": _sample_noc,
    "widepair": _sample_widepair,
    "rocket": _sample_rocket,
}


def generate_scenario(seed: int, index: int,
                      knobs: Optional[GeneratorKnobs] = None) -> Scenario:
    """Draw one scenario from the mill; pure function of its inputs."""
    knobs = knobs or GeneratorKnobs()
    rng = random.Random(f"{seed}/{index}")
    shape = rng.choice(sorted(knobs.shapes))
    params = _SAMPLERS[shape](rng, knobs)
    params["max_groups"] = knobs.max_groups
    cycles = rng.randint(knobs.min_cycles, knobs.max_cycles)
    return Scenario(seed=seed, index=index, shape=shape, params=params,
                    cycles=cycles)


# --------------------------------------------------------------------------
# circuit construction (no RNG below this line)
# --------------------------------------------------------------------------


def _make_stage_block(width: int, depths: Sequence[int],
                      name: str) -> Tuple[Module, List[Module]]:
    """A hierarchy wrapper: ``depths`` chained queues behind one
    ready-valid ``in``/``out`` pair, so partition paths can reach
    *inside* a lane (``l0blk.q1``)."""
    b = ModuleBuilder(name)
    inp = b.rv_input("in", width)
    outp = b.rv_output("out", width)
    lib: List[Module] = []
    handles = []
    for j, depth in enumerate(depths):
        q = make_queue(width, depth=depth)
        lib.append(q)
        handles.append(b.inst(f"q{j}", q))
    first = handles[0]
    b.connect(first["enq_valid"], inp.valid)
    b.connect(first["enq_bits"], inp.bits)
    b.connect(inp.ready, first["enq_ready"])
    for j in range(1, len(handles)):
        up, down = handles[j - 1], handles[j]
        b.connect(down["enq_valid"], up["deq_valid"])
        b.connect(down["enq_bits"], up["deq_bits"])
        b.connect(up["deq_ready"], down["enq_ready"])
    last = handles[-1]
    b.connect(outp.valid, last["deq_valid"])
    b.connect(outp.bits, last["deq_bits"])
    b.connect(last["deq_ready"], outp.ready)
    return b.build(), lib


def _build_pipeline(params: dict) -> Circuit:
    lanes: List[dict] = params["lanes"]
    fanout = params["fanout"]
    block = params["block"]
    b = ModuleBuilder("FuzzPipelineTop")
    done = b.output("done", 1)
    library: List[Module] = []

    shared_src = None
    if fanout:
        width = lanes[0]["width"]
        count = lanes[0]["count"]
        pmod = make_rv_producer(width, count)
        library.append(pmod)
        shared_src = b.inst("src", pmod)

    lane_done = []
    lane_in_ready = []
    lane_in = []  # (valid_target, bits_target) of each lane's head
    for i, lane in enumerate(lanes):
        width, count = lane["width"], lane["count"]
        if block:
            bmod, blib = _make_stage_block(
                width, lane["depths"],
                f"FuzzBlock_w{width}_" +
                "d".join(str(d) for d in lane["depths"]))
            library.append(bmod)
            library.extend(blib)
            stage_handles = [b.inst(f"l{i}blk", bmod)]
            head = (stage_handles[0], "in_valid", "in_bits", "in_ready")
            tail = (stage_handles[0], "out_valid", "out_bits",
                    "out_ready")
        else:
            stage_handles = []
            for j, depth in enumerate(lane["depths"]):
                q = make_queue(width, depth=depth)
                library.append(q)
                stage_handles.append(b.inst(f"l{i}q{j}", q))
            for j in range(1, len(stage_handles)):
                up, down = stage_handles[j - 1], stage_handles[j]
                b.connect(down["enq_valid"], up["deq_valid"])
                b.connect(down["enq_bits"], up["deq_bits"])
                b.connect(up["deq_ready"], down["enq_ready"])
            head = (stage_handles[0], "enq_valid", "enq_bits",
                    "enq_ready")
            tail = (stage_handles[-1], "deq_valid", "deq_bits",
                    "deq_ready")

        cmod = make_rv_consumer(width, stall_mask=lane["stall_mask"])
        library.append(cmod)
        sink = b.inst(f"l{i}sink", cmod)
        th, tv, tb, tr = tail[0], tail[1], tail[2], tail[3]
        b.connect(sink["in_valid"], th[tv])
        b.connect(sink["in_bits"], th[tb])
        b.connect(th[tr], sink["in_ready"])
        b.connect(b.output(f"sum{i}", 32), sink["sum"])
        lane_done.append(sink["received"].read().eq(count))

        hh, hv, hb, hr = head[0], head[1], head[2], head[3]
        if fanout:
            lane_in_ready.append(hh[hr].read())
            lane_in.append((hh, hv, hb))
        else:
            pmod = make_rv_producer(width, count)
            library.append(pmod)
            src = b.inst(f"l{i}src", pmod)
            b.connect(hh[hv], src["out_valid"])
            b.connect(hh[hb], src["out_bits"])
            b.connect(src["out_ready"], hh[hr])

    if fanout:
        all_ready = lane_in_ready[0]
        for r in lane_in_ready[1:]:
            all_ready = all_ready & r
        b.connect(shared_src["out_ready"], all_ready)
        for hh, hv, hb in lane_in:
            b.connect(hh[hv],
                      shared_src["out_valid"].read() & all_ready)
            b.connect(hh[hb], shared_src["out_bits"])

    done_sig = lane_done[0]
    for term in lane_done[1:]:
        done_sig = done_sig & term
    b.connect(done, done_sig)
    return make_circuit(b.build(), library)


def build_scenario_circuit(scenario: Scenario) -> Circuit:
    """The scenario's target RTL; a pure function of shape + params."""
    params = scenario.params
    if scenario.shape == "pipeline":
        return _build_pipeline(params)
    if scenario.shape == "ring":
        return make_ring_noc_soc(params["n_tiles"],
                                 messages_per_tile=params["messages"])
    if scenario.shape == "torus":
        return make_torus_noc_soc(params["n_tiles"],
                                  messages_per_tile=params["messages"])
    if scenario.shape == "star":
        return make_star_soc(params["n_tiles"],
                             messages_per_tile=params["messages"])
    if scenario.shape == "widepair":
        return make_wide_pair(params["width"],
                              comb_boundary=params["comb"])
    if scenario.shape == "rocket":
        return make_rocket_like_soc(boot_loops=params["boot_loops"],
                                    messages=params["messages"])
    raise ReproError(f"unknown fuzz shape {scenario.shape!r}")


# --------------------------------------------------------------------------
# partition-spec derivation
# --------------------------------------------------------------------------


def _pipeline_units(params: dict) -> List[List[str]]:
    """Per-lane candidate instance paths, source to sink."""
    units = []
    for i, lane in enumerate(params["lanes"]):
        row = []
        if not params["fanout"]:
            row.append(f"l{i}src")
        if params["block"]:
            row.append(f"l{i}blk")
        else:
            row.extend(f"l{i}q{j}" for j in range(len(lane["depths"])))
        row.append(f"l{i}sink")
        units.append(row)
    return units


def _derive_pipeline_spec(rng: random.Random, params: dict) -> dict:
    lanes = _pipeline_units(params)
    max_groups = min(params.get("max_groups", 3), len(lanes) * 2)
    n_groups = rng.randint(1, max(1, max_groups))
    groups: List[List[str]] = []
    used: set = set()
    whole_lane_groups = []
    for gi in range(n_groups):
        free_lanes = [i for i in range(len(lanes))
                      if not any(p in used for p in lanes[i])]
        if not free_lanes:
            break
        li = rng.choice(free_lanes)
        row = lanes[li]
        style = rng.choice(["lane", "tail", "stage"])
        if style == "lane" and len(row) <= 4:
            paths = list(row)
            whole_lane_groups.append((gi, li))
        elif style == "tail":
            cut = rng.randint(1, len(row) - 1)
            paths = row[cut:]
        else:
            paths = [rng.choice(row)]
        used.update(paths)
        groups.append(paths)
    spec: Dict[str, object] = {
        "mode": rng.choice([EXACT, EXACT, FAST]),
        "groups": groups,
    }
    # FAME-5 merge: only whole-lane groups of identical lanes qualify
    if (params["uniform"] and not params["fanout"]
            and len(whole_lane_groups) >= 2 and rng.random() < 0.5
            and spec["mode"] == EXACT):
        spec["fame5"] = {
            "merged": [f"g{gi}" for gi, _ in whole_lane_groups]}
    return spec


def _derive_noc_spec(rng: random.Random, params: dict) -> dict:
    """Contiguous, disjoint router-index groups (hub router stays in
    the base partition)."""
    n_tiles = params["n_tiles"]
    n_groups = rng.randint(1, min(2, params.get("max_groups", 3),
                                  n_tiles))
    indices = list(range(n_tiles))
    groups = []
    cursor = 0
    for _ in range(n_groups):
        if cursor >= n_tiles:
            break
        size = rng.randint(1, min(2, n_tiles - cursor))
        start = rng.randint(cursor, n_tiles - size)
        groups.append(indices[start:start + size])
        cursor = start + size
    return {"mode": rng.choice([EXACT, FAST]), "noc": groups}


def _derive_star_spec(rng: random.Random, params: dict) -> dict:
    n_tiles = params["n_tiles"]
    max_groups = min(params.get("max_groups", 3), n_tiles)
    n_groups = rng.randint(1, max_groups)
    tiles = sorted(rng.sample(range(n_tiles), n_groups))
    spec: Dict[str, object] = {
        "mode": EXACT,
        "groups": [[f"tile{i}"] for i in tiles],
    }
    if n_groups >= 2 and rng.random() < 0.5:
        spec["fame5"] = {"merged": [f"g{gi}"
                                    for gi in range(n_groups)]}
    return spec


def _derive_widepair_spec(rng: random.Random, params: dict) -> dict:
    mode = EXACT if params["comb"] else rng.choice([EXACT, FAST])
    return {"mode": mode, "groups": [["right"]]}


def _derive_rocket_spec(rng: random.Random, params: dict) -> dict:
    return {"mode": rng.choice([EXACT, FAST]),
            "groups": [["rockettile"]]}


_SPEC_DERIVERS = {
    "pipeline": _derive_pipeline_spec,
    "ring": _derive_noc_spec,
    "torus": _derive_noc_spec,
    "star": _derive_star_spec,
    "widepair": _derive_widepair_spec,
    "rocket": _derive_rocket_spec,
}


def derive_spec(scenario: Scenario) -> dict:
    """The scenario's partition spec as a JSON-able description.

    Deterministic: drawn from ``Random(f"{seed}/{index}/spec")`` and
    clamped to the current params, so shrinking params keeps the spec
    valid without persisting it.
    """
    rng = random.Random(f"{scenario.seed}/{scenario.index}/spec")
    return _SPEC_DERIVERS[scenario.shape](rng, scenario.params)


def partition_spec(scenario: Scenario) -> PartitionSpec:
    desc = derive_spec(scenario)
    if "noc" in desc:
        return PartitionSpec(mode=desc["mode"],
                             noc=NoCPartitionSpec.make(desc["noc"]))
    groups = [PartitionGroup.make(f"g{i}", paths)
              for i, paths in enumerate(desc["groups"])]
    return PartitionSpec(mode=desc["mode"], groups=groups)


def num_partitions(scenario: Scenario) -> int:
    """Extracted groups plus the base partition (before FAME-5
    merging) — the "tile count" the shrinker minimizes."""
    desc = derive_spec(scenario)
    n = len(desc.get("noc", ()) or desc.get("groups", ()))
    return n + 1


def make_design(scenario: Scenario, mode: Optional[str] = None):
    """FireRipper-compile the scenario (optionally forcing a mode)."""
    spec = partition_spec(scenario)
    if mode is not None and mode != spec.mode:
        if spec.noc is not None:
            spec = PartitionSpec(mode=mode, noc=spec.noc)
        else:
            spec = PartitionSpec(mode=mode, groups=spec.groups)
    return FireRipper(spec).compile(build_scenario_circuit(scenario))


def make_sim(scenario: Scenario, mode: Optional[str] = None,
             telemetry=None):
    """A ready-to-run PartitionedSimulation for the scenario."""
    design = make_design(scenario, mode=mode)
    desc = derive_spec(scenario)
    fame5 = None
    merged = desc.get("fame5", {}).get("merged")
    if merged and (mode is None or mode == desc["mode"]):
        fame5 = {"m0": list(merged)}
    transport = TRANSPORTS[scenario.params.get("transport", "qsfp")]
    return design.build_simulation(
        transport, record_outputs=True, fame5_merge=fame5,
        telemetry=telemetry)


def has_done_output(scenario: Scenario) -> bool:
    """Whether the target raises a ``done`` top-level output (the
    exact-vs-fast oracle needs one)."""
    return scenario.shape != "widepair"


def has_fame5(scenario: Scenario) -> bool:
    return bool(derive_spec(scenario).get("fame5"))


# --------------------------------------------------------------------------
# shrinking candidates (used by fuzz.shrink)
# --------------------------------------------------------------------------


def _shrunk_lane(lane: dict) -> Iterator[dict]:
    if len(lane["depths"]) > 1:
        yield {**lane, "depths": lane["depths"][:-1]}
    if lane["width"] > 4:
        yield {**lane, "width": max(4, lane["width"] // 2)}
    if lane["count"] > 1:
        yield {**lane, "count": max(1, lane["count"] // 2)}
    if lane["stall_mask"]:
        yield {**lane, "stall_mask": 0}


def shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Strictly-smaller variants of ``scenario``, most aggressive
    first.  Every candidate is itself a valid scenario."""
    params = scenario.params
    if params.get("max_groups", 1) > 1:
        yield scenario.clone(max_groups=1)
    if scenario.shape == "pipeline":
        lanes = params["lanes"]
        if len(lanes) > 1:
            yield scenario.clone(lanes=lanes[:-1],
                                 fanout=False)
        for i, lane in enumerate(lanes):
            for smaller in _shrunk_lane(lane):
                new_lanes = list(lanes)
                new_lanes[i] = smaller
                yield scenario.clone(lanes=new_lanes, uniform=False,
                                     fanout=False)
        if params["fanout"]:
            yield scenario.clone(fanout=False)
        if params["block"]:
            yield scenario.clone(block=False)
    elif scenario.shape in ("ring", "torus", "star"):
        if params["n_tiles"] > 2:
            yield scenario.clone(n_tiles=params["n_tiles"] - 1)
        if params["messages"] > 1:
            yield scenario.clone(messages=params["messages"] // 2 or 1)
    elif scenario.shape == "widepair":
        if params["width"] > 8:
            yield scenario.clone(width=max(8, params["width"] // 2))
        if params["comb"]:
            yield scenario.clone(comb=False)
    elif scenario.shape == "rocket":
        if params["boot_loops"] > 1:
            yield scenario.clone(
                boot_loops=max(1, params["boot_loops"] // 2))
        if params["messages"] > 2:
            yield scenario.clone(
                messages=max(2, params["messages"] // 2))
    if scenario.cycles > 24:
        shorter = scenario.clone()
        shorter.cycles = max(24, scenario.cycles // 2)
        yield shorter
