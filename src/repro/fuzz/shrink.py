"""Scenario minimization: reduce a failing scenario to its smallest
still-failing form.

Greedy descent over :func:`~repro.fuzz.generator.shrink_candidates`:
each candidate drops a tile/lane, narrows a width, shortens the input
program, or simplifies structure; a candidate is accepted as the new
current scenario iff it still trips an oracle.  Candidates that fail to
*build* (an over-shrunk spec, an illegal boundary) are skipped, not
counted as reproductions.

The shrinker is deterministic: candidates are enumerated in a fixed
order and the first still-failing one wins each round, so the same
failure always minimizes to the same repro.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import FuzzFailure, ReproError
from . import generator
from .generator import Scenario

#: a checker runs the oracles on one scenario and raises FuzzFailure on
#: disagreement (e.g. ``lambda sc: run_oracles(sc, oracles=["identity"])``)
Checker = Callable[[Scenario], object]


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    scenario: Scenario
    failure: FuzzFailure
    rounds: int = 0
    attempts: int = 0
    #: (fingerprint, num_partitions) trail, original first
    trail: List[str] = field(default_factory=list)


def probe(check: Checker, scenario: Scenario) -> Optional[FuzzFailure]:
    """Run ``check`` on ``scenario``; the failure it raises, or None.

    Non-fuzz library errors (the candidate cannot even build or run)
    also return None — an over-shrunk scenario that crashes outright is
    not a reproduction of the original disagreement.
    """
    try:
        check(scenario)
    except FuzzFailure as exc:
        return exc
    except ReproError:
        return None
    return None


def shrink(scenario: Scenario, check: Checker,
           failure: Optional[FuzzFailure] = None,
           max_attempts: int = 128) -> ShrinkResult:
    """Minimize ``scenario`` under ``check``.

    Args:
        scenario: the original failing scenario.
        check: oracle runner; must raise :class:`FuzzFailure` on the
            scenario for the result to be meaningful.
        failure: the original failure, if already in hand (saves one
            probe).
        max_attempts: total candidate evaluations across all rounds —
            each is a full oracle run, so this bounds shrink cost.
    """
    if failure is None:
        failure = probe(check, scenario)
        if failure is None:
            raise ReproError(
                "shrink() needs a failing scenario; the checker passed "
                f"on {scenario.fingerprint}")
    current, current_failure = scenario, failure
    trail = [f"{scenario.fingerprint}:{generator.num_partitions(scenario)}p"]
    rounds = attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        rounds += 1
        for candidate in generator.shrink_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            exc = probe(check, candidate)
            if exc is not None:
                current, current_failure = candidate, exc
                trail.append(f"{candidate.fingerprint}:"
                             f"{generator.num_partitions(candidate)}p")
                improved = True
                break
    return ShrinkResult(scenario=current, failure=current_failure,
                        rounds=rounds, attempts=attempts, trail=trail)
