"""Differential oracles — the scenario mill's back half.

Each oracle takes one :class:`~repro.fuzz.generator.Scenario`, runs it
through one or more execution configurations, and raises
:class:`~repro.errors.FuzzFailure` when the configurations disagree:

* :func:`check_identity` — the same compiled design run on every
  execution backend (``inproc``, ``process``, ``process-shm``,
  ``process-socket``) must produce bit-identical functional results:
  same external output tokens, same per-partition cycle counts, same
  token counts, same ``SimulationResult.detail``.
* :func:`check_fastmode` — the Table II relationship: exact-mode
  partitioned matches the monolithic done-cycle exactly, fast-mode
  never undershoots it, and both deliver the same final payload.
* :func:`check_checkpoint` — a mid-run capture, JSON round-trip,
  restore onto a freshly built simulation, and continuation must land
  on the same functional result as an uninterrupted run.
* :func:`check_faults` — a run over fault-injected links hardened by
  the reliable link layer must survive (no give-up, no deadlock) and
  deliver the same functional result as the clean run, never faster.

Backends that cannot run on the host (no ``fork``, no sockets) or
cannot take the topology are *skipped*, not failed — the oracles
measure agreement among the configurations that can run.

Oracles re-build the simulation for every configuration rather than
reusing one (a run mutates simulator state); determinism of the
generator makes the rebuilds equivalent.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    BackendUnavailableError,
    FuzzFailure,
    ReproError,
    UnsupportedTopologyError,
)
from ..harness import MonolithicSimulation
from ..reliability import FaultSpec, capture_state, harden_links, restore_state
from . import generator
from .generator import Scenario

#: every execution backend the differential harness covers
BACKENDS = ("inproc", "process", "process-shm", "process-socket")

#: all oracles, in the order a campaign runs them
ORACLES = ("identity", "fastmode", "checkpoint", "faults")

#: ceiling for done-cycle searches (generated targets finish in a few
#: hundred cycles; hitting this means the design hung)
MAX_DONE_CYCLES = 4000

#: a perturbation hook: (backend, sim, result) -> None, mutating the
#: result in place — used to prove the harness catches injected bugs
Perturbation = Callable[[str, object, object], None]


def functional_digest(sim, result) -> dict:
    """Everything about a run that must be backend-independent.

    Timing fields (``wall_ns``, ``rate_hz``) are deliberately excluded
    from the *cross-oracle* comparisons that allow timing to differ;
    the identity oracle compares ``detail`` too, which carries the
    timing breakdown — the four backends share the timing overlay, so
    even that must match bit-for-bit.
    """
    outputs = {
        f"{part}/{chan}": [dict(t) for t in tokens]
        for (part, chan), tokens in sorted(sim.output_log.items())
    }
    return {
        "target_cycles": result.target_cycles,
        "tokens": result.tokens_transferred,
        "per_partition_cycles": dict(
            sorted(result.per_partition_cycles.items())),
        "detail": result.detail,
        "outputs": outputs,
    }


def _first_diff(ref: dict, got: dict, prefix: str = "") -> str:
    """Human-readable pointer at the first difference between two
    digests (both are plain JSON-able dicts)."""
    for key in ref:
        path = f"{prefix}{key}"
        if key not in got:
            return f"{path} missing"
        a, b = ref[key], got[key]
        if isinstance(a, dict) and isinstance(b, dict):
            if a != b:
                return _first_diff(a, b, prefix=f"{path}.")
            continue
        if a != b:
            sa, sb = repr(a), repr(b)
            if len(sa) > 80:
                sa = sa[:77] + "..."
            if len(sb) > 80:
                sb = sb[:77] + "..."
            return f"{path}: reference {sa} != {sb}"
    extra = set(got) - set(ref)
    if extra:
        return f"{prefix}{sorted(extra)[0]} unexpected"
    return "digests differ (no leaf diff found)"


# --------------------------------------------------------------------------
# identity: four-way backend agreement
# --------------------------------------------------------------------------


def check_identity(scenario: Scenario,
                   backends: Sequence[str] = BACKENDS,
                   perturb: Optional[Perturbation] = None) -> dict:
    """Run the scenario on every backend; all must agree bit-for-bit
    with the in-process reference."""
    digests: Dict[str, dict] = {}
    skipped: Dict[str, str] = {}
    for backend in backends:
        sim = generator.make_sim(scenario)
        try:
            result = sim.run(scenario.cycles, backend=backend)
        except (BackendUnavailableError,
                UnsupportedTopologyError) as exc:
            skipped[backend] = str(exc)
            continue
        if perturb is not None:
            perturb(backend, sim, result)
        digests[backend] = functional_digest(sim, result)
    if "inproc" not in digests:
        raise FuzzFailure(
            "identity", "inproc",
            f"in-process reference could not run: "
            f"{skipped.get('inproc', 'unknown')}",
            scenario=scenario.to_dict())
    reference = digests["inproc"]
    for backend, digest in digests.items():
        if digest != reference:
            raise FuzzFailure(
                "identity", backend, _first_diff(reference, digest),
                scenario=scenario.to_dict())
    return {"compared": sorted(digests), "skipped": skipped,
            "tokens": reference["tokens"]}


# --------------------------------------------------------------------------
# fastmode: exact == monolithic, fast >= exact
# --------------------------------------------------------------------------


def _done_log(sim):
    return sim.output_log.get(("base", "io_out"), [])


def _partitioned_done(scenario: Scenario, mode: str) -> Tuple[int, dict]:
    """(done cycle, done token) of the partitioned run in ``mode``."""
    sim = generator.make_sim(scenario, mode=mode)

    def stop(s) -> bool:
        log = _done_log(s)
        return bool(log) and log[-1]["done"] == 1

    sim.run(MAX_DONE_CYCLES, stop=stop)
    for cycle, token in enumerate(_done_log(sim)):
        if token["done"]:
            return cycle, dict(token)
    raise FuzzFailure(
        "fastmode", "",
        f"done never observed within {MAX_DONE_CYCLES} cycles in "
        f"{mode}-mode partitioned run", scenario=scenario.to_dict())


def check_fastmode(scenario: Scenario) -> dict:
    """Exact-mode must match monolithic cycle-for-cycle; fast-mode may
    run the target ahead but never finishes *earlier* than exact, and
    both must deliver the same final payload."""
    if not generator.has_done_output(scenario):
        return {"status": "skipped", "reason": "target has no done output"}
    from ..errors import CompileError
    mono = MonolithicSimulation(
        generator.build_scenario_circuit(scenario))
    mono_cycles = mono.run_until(
        "done", 1, max_cycles=MAX_DONE_CYCLES).target_cycles

    exact_cycles, exact_token = _partitioned_done(scenario, mode="exact")
    if exact_cycles != mono_cycles:
        raise FuzzFailure(
            "fastmode", "",
            f"exact-mode done cycle {exact_cycles} != monolithic "
            f"{mono_cycles}", scenario=scenario.to_dict())
    try:
        fast_cycles, fast_token = _partitioned_done(scenario, mode="fast")
    except CompileError as exc:
        # some boundaries are exact-only (combinational chains); that is
        # a property of the target, not a disagreement
        return {"status": "skipped", "reason": f"fast-mode: {exc}",
                "mono_cycles": mono_cycles}
    if fast_cycles < exact_cycles:
        raise FuzzFailure(
            "fastmode", "",
            f"fast-mode finished at cycle {fast_cycles}, undershooting "
            f"exact-mode at {exact_cycles} — fast-mode must never be "
            f"early", scenario=scenario.to_dict())
    if fast_token != exact_token:
        raise FuzzFailure(
            "fastmode", "",
            "fast-mode final payload differs from exact-mode: "
            + _first_diff(exact_token, fast_token),
            scenario=scenario.to_dict())
    return {"status": "ok", "mono_cycles": mono_cycles,
            "exact_cycles": exact_cycles, "fast_cycles": fast_cycles}


# --------------------------------------------------------------------------
# checkpoint: capture/restore round-trip equivalence
# --------------------------------------------------------------------------


def check_checkpoint(scenario: Scenario,
                     perturb_state: Optional[Callable[[dict], dict]] = None
                     ) -> dict:
    """Capture at the midpoint, JSON-round-trip, restore onto a fresh
    build, continue — must land where the uninterrupted run lands.

    The comparison is the *functional* contract: output tokens, target
    and per-partition cycle counts, and total token traffic.  The
    timing overlay's span attribution is excluded on purpose: a run
    split across two ``run()`` calls can book the same idle nanoseconds
    to a different stall bucket at the seam (the pass scheduler's
    interleaving restarts there), and that holds for a plain segmented
    run with no checkpoint involved — the mill found exactly this on
    multi-lane pipelines.  FAME-5 restore is likewise only functionally
    exact (threads re-interleave).
    """
    mid = max(1, scenario.cycles // 2)

    straight_sim = generator.make_sim(scenario)
    straight = functional_digest(straight_sim,
                                 straight_sim.run(scenario.cycles))

    first = generator.make_sim(scenario)
    first.run(mid)
    state = json.loads(json.dumps(capture_state(first)))
    if perturb_state is not None:
        state = perturb_state(state)

    resumed_sim = generator.make_sim(scenario)
    restore_state(resumed_sim, state)
    resumed = functional_digest(resumed_sim,
                                resumed_sim.run(scenario.cycles))

    keys = ("target_cycles", "tokens", "per_partition_cycles",
            "outputs")
    a = {k: straight[k] for k in keys}
    b = {k: resumed[k] for k in keys}
    if a != b:
        raise FuzzFailure(
            "checkpoint", "",
            f"resumed run diverged from straight run (capture at cycle "
            f"{mid}): " + _first_diff(a, b),
            scenario=scenario.to_dict())
    return {"status": "ok", "capture_cycle": mid,
            "fame5": generator.has_fame5(scenario)}


# --------------------------------------------------------------------------
# faults: reliable links under a seeded fault schedule
# --------------------------------------------------------------------------


def check_faults(scenario: Scenario) -> dict:
    """Harden every link, inject the scenario's seeded fault schedule,
    and require the run to survive with clean-run functional results.

    The timing overlay may only get *slower* (retries burn link time);
    payloads, cycle counts and token ordering must be untouched."""
    fault = dict(scenario.params.get("fault") or {})
    spec = FaultSpec(
        seed=scenario.seed * 1_000_003 + scenario.index,
        drop_rate=float(fault.get("drop_rate", 0.0)),
        corrupt_rate=float(fault.get("corrupt_rate", 0.0)),
        spike_rate=float(fault.get("spike_rate", 0.0)))
    if spec.fault_rate == 0.0:
        return {"status": "skipped", "reason": "fault-free schedule"}

    clean_sim = generator.make_sim(scenario)
    clean_result = clean_sim.run(scenario.cycles)
    clean = functional_digest(clean_sim, clean_result)

    hard_sim = generator.make_sim(scenario)
    harden_links(hard_sim, spec)
    try:
        hard_result = hard_sim.run(scenario.cycles)
    except ReproError as exc:
        raise FuzzFailure(
            "faults", "",
            f"hardened run did not survive the fault schedule: "
            f"{type(exc).__name__}: {exc}", scenario=scenario.to_dict())
    hard = functional_digest(hard_sim, hard_result)
    # the timing breakdown legitimately differs (retries); compare the
    # payload-carrying fields
    keys = ("target_cycles", "per_partition_cycles", "outputs")
    a = {k: clean[k] for k in keys}
    b = {k: hard[k] for k in keys}
    if a != b:
        raise FuzzFailure(
            "faults", "",
            "hardened run's functional results differ from the clean "
            "run: " + _first_diff(a, b), scenario=scenario.to_dict())
    if hard_result.wall_ns < clean_result.wall_ns:
        raise FuzzFailure(
            "faults", "",
            f"hardened run was faster than the clean run "
            f"({hard_result.wall_ns} < {clean_result.wall_ns} ns) — "
            f"retries cannot reduce link time",
            scenario=scenario.to_dict())
    return {"status": "ok", "fault_rate": spec.fault_rate,
            "retries": hard_result.detail.get("reliability", {})}


# --------------------------------------------------------------------------
# dispatch
# --------------------------------------------------------------------------

_ORACLE_FNS = {
    "identity": check_identity,
    "fastmode": check_fastmode,
    "checkpoint": check_checkpoint,
    "faults": check_faults,
}


def run_oracles(scenario: Scenario,
                oracles: Sequence[str] = ORACLES,
                backends: Sequence[str] = BACKENDS,
                perturb: Optional[Perturbation] = None) -> Dict[str, dict]:
    """Run the selected oracles in order; raises FuzzFailure on the
    first disagreement, returns per-oracle notes otherwise."""
    unknown = set(oracles) - set(_ORACLE_FNS)
    if unknown:
        raise ReproError(
            f"unknown fuzz oracles {sorted(unknown)}; "
            f"pick from {list(ORACLES)}")
    notes: Dict[str, dict] = {}
    for name in oracles:
        if name == "identity":
            notes[name] = check_identity(scenario, backends=backends,
                                         perturb=perturb)
        else:
            notes[name] = _ORACLE_FNS[name](scenario)
    return notes
