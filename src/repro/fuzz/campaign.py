"""Fuzz campaigns: drive the mill, minimize what breaks, keep repros.

A campaign walks scenario indices ``start_index .. start_index +
budget - 1`` for one seed, runs the configured oracles on each, and on
disagreement shrinks the scenario and writes a replayable JSON repro
into the corpus directory.  Repro files are self-contained: the
scenario, the derived partition spec (for human eyes — replay
re-derives it), the failure, and the shrink trail.

``replay`` loads a repro and runs the same oracles on the exact same
(circuit, partition-spec, input-program, seed) tuple — a fixed repro
replays clean, an open one raises the original :class:`FuzzFailure`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import FuzzFailure, ReproError
from ..harness.metrics import SimulationResult
from . import generator
from .generator import GeneratorKnobs, Scenario
from .oracle import BACKENDS, ORACLES, Perturbation, run_oracles
from .shrink import ShrinkResult, probe, shrink

REPRO_FORMAT = "fireaxe-repro-fuzz-repro"
REPRO_VERSION = 1


@dataclass
class FuzzConfig:
    """Knobs of one campaign."""

    seed: int = 0
    budget: int = 50
    start_index: int = 0
    oracles: Tuple[str, ...] = ORACLES
    backends: Tuple[str, ...] = BACKENDS
    corpus_dir: Union[str, Path] = "results/fuzz-corpus"
    shrink: bool = True
    max_shrink_attempts: int = 128
    #: stop the campaign after this many distinct failures
    max_failures: int = 3
    knobs: GeneratorKnobs = field(default_factory=GeneratorKnobs)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "start_index": self.start_index,
            "oracles": list(self.oracles),
            "backends": list(self.backends),
            "shrink": self.shrink,
            "shapes": list(self.knobs.shapes),
        }


@dataclass
class ScenarioOutcome:
    """What happened to one scenario."""

    index: int
    shape: str
    fingerprint: str
    status: str  # ok | failed | error
    notes: Dict[str, dict] = field(default_factory=dict)
    message: str = ""
    repro_path: Optional[str] = None


@dataclass
class CampaignReport:
    """Everything a campaign did."""

    config: FuzzConfig
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0
    stopped_early: bool = False

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def errors(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    def summary(self) -> dict:
        shapes: Dict[str, int] = {}
        for o in self.outcomes:
            shapes[o.shape] = shapes.get(o.shape, 0) + 1
        return {
            "scenarios": len(self.outcomes),
            "failed": len(self.failures),
            "errors": len(self.errors),
            "shapes": shapes,
            "elapsed_s": round(self.elapsed_s, 3),
            "stopped_early": self.stopped_early,
            "repros": [o.repro_path for o in self.failures
                       if o.repro_path],
        }


# --------------------------------------------------------------------------
# repro files
# --------------------------------------------------------------------------


def save_repro(corpus_dir: Union[str, Path], scenario: Scenario,
               failure: FuzzFailure,
               original: Optional[Scenario] = None,
               shrink_result: Optional[ShrinkResult] = None) -> Path:
    """Write one replayable repro; returns its path."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": REPRO_FORMAT,
        "version": REPRO_VERSION,
        "scenario": scenario.to_dict(),
        "spec": generator.derive_spec(scenario),
        "num_partitions": generator.num_partitions(scenario),
        "failure": {
            "oracle": failure.oracle,
            "backend": failure.backend,
            "message": str(failure),
        },
    }
    if original is not None and original.to_dict() != scenario.to_dict():
        payload["original_scenario"] = original.to_dict()
    if shrink_result is not None:
        payload["shrink"] = {
            "rounds": shrink_result.rounds,
            "attempts": shrink_result.attempts,
            "trail": shrink_result.trail,
        }
    path = corpus / (f"{failure.oracle}-s{scenario.seed}-"
                     f"i{scenario.index}-{scenario.fingerprint}.json")
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def load_repro(path: Union[str, Path]) -> Tuple[Scenario, dict]:
    """Read a repro file; returns (scenario, full payload)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read fuzz repro {path}: {exc}")
    if not isinstance(payload, dict) \
            or payload.get("format") != REPRO_FORMAT:
        raise ReproError(f"{path} is not a fuzz repro file")
    if payload.get("version") != REPRO_VERSION:
        raise ReproError(
            f"fuzz repro version {payload.get('version')} unsupported "
            f"(this build reads {REPRO_VERSION})")
    return Scenario.from_dict(payload["scenario"]), payload


def list_corpus(corpus_dir: Union[str, Path]) -> List[dict]:
    """Summaries of every repro in ``corpus_dir``, sorted by name."""
    corpus = Path(corpus_dir)
    entries = []
    if not corpus.is_dir():
        return entries
    for path in sorted(corpus.glob("*.json")):
        scenario, payload = load_repro(path)
        entries.append({
            "path": str(path),
            "oracle": payload["failure"]["oracle"],
            "backend": payload["failure"]["backend"],
            "shape": scenario.shape,
            "seed": scenario.seed,
            "index": scenario.index,
            "num_partitions": payload.get(
                "num_partitions", generator.num_partitions(scenario)),
            "cycles": scenario.cycles,
        })
    return entries


def replay(path: Union[str, Path],
           oracles: Optional[Sequence[str]] = None,
           backends: Sequence[str] = BACKENDS) -> Dict[str, dict]:
    """Re-run a repro through its oracle (or an explicit oracle list).

    Raises the scenario's :class:`FuzzFailure` if it still reproduces.
    """
    scenario, payload = load_repro(path)
    if oracles is None:
        oracles = (payload["failure"]["oracle"],)
    return run_oracles(scenario, oracles=oracles, backends=backends)


# --------------------------------------------------------------------------
# the campaign loop
# --------------------------------------------------------------------------


def run_campaign(config: FuzzConfig,
                 perturb: Optional[Perturbation] = None,
                 registry=None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignReport:
    """Run one campaign.

    Args:
        config: campaign knobs.
        perturb: optional result perturbation injected into the
            identity oracle — the self-test hook proving the harness
            catches planted backend bugs.
        registry: optional
            :class:`~repro.telemetry.RunRegistry`; the campaign summary
            is archived there as one run record.
        progress: optional line sink (e.g. ``print``) for live status.
    """
    report = CampaignReport(config=config)
    say = progress or (lambda line: None)
    t0 = time.monotonic()

    def check(sc: Scenario):
        return run_oracles(sc, oracles=config.oracles,
                           backends=config.backends, perturb=perturb)

    for index in range(config.start_index,
                       config.start_index + config.budget):
        scenario = generator.generate_scenario(config.seed, index,
                                               config.knobs)
        outcome = ScenarioOutcome(index=index, shape=scenario.shape,
                                  fingerprint=scenario.fingerprint,
                                  status="ok")
        try:
            outcome.notes = check(scenario)
        except FuzzFailure as failure:
            outcome.status = "failed"
            minimized, shrink_result = scenario, None
            if config.shrink:
                say(f"[{index}] {scenario.shape}: FAILED "
                    f"({failure.oracle}) — shrinking")
                shrink_result = shrink(
                    scenario, check, failure=failure,
                    max_attempts=config.max_shrink_attempts)
                minimized = shrink_result.scenario
                failure = shrink_result.failure
            path = save_repro(config.corpus_dir, minimized, failure,
                              original=scenario,
                              shrink_result=shrink_result)
            outcome.repro_path = str(path)
            outcome.message = str(failure)
            say(f"[{index}] repro written: {path}")
        except ReproError as exc:
            # the scenario crashed outright (generator or harness bug
            # rather than a backend disagreement) — record, keep going
            outcome.status = "error"
            outcome.message = f"{type(exc).__name__}: {exc}"
            say(f"[{index}] {scenario.shape}: ERROR {outcome.message}")
        else:
            say(f"[{index}] {scenario.shape}: ok")
        report.outcomes.append(outcome)
        if len(report.failures) >= config.max_failures:
            report.stopped_early = True
            say(f"stopping early: {config.max_failures} failures")
            break

    report.elapsed_s = time.monotonic() - t0
    if registry is not None:
        registry.archive(_summary_result(report), name="fuzz",
                         backend="+".join(config.backends),
                         config=config.as_dict(),
                         extra={"fuzz": report.summary()})
    return report


def _summary_result(report: CampaignReport) -> SimulationResult:
    """Aggregate the campaign into one archivable result record."""
    total_cycles = 0
    total_tokens = 0
    for o in report.outcomes:
        identity = o.notes.get("identity") or {}
        total_tokens += int(identity.get("tokens") or 0)
        sc = generator.generate_scenario(report.config.seed, o.index,
                                         report.config.knobs)
        total_cycles += sc.cycles
    return SimulationResult(
        target_cycles=total_cycles, wall_ns=report.elapsed_s * 1e9,
        rate_hz=(total_cycles / report.elapsed_s
                 if report.elapsed_s > 0 else 0.0),
        tokens_transferred=total_tokens,
        detail={"fuzz": report.summary()})
