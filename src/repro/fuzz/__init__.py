"""The scenario mill: seeded random targets + differential fuzzing.

Closes the loop the paper's validation section opens: instead of a
handful of hand-written targets, a seeded generator emits arbitrary
valid partitioned designs (pipelines, NoC SoCs, FAME-5 star SoCs,
width-parametric pairs), and differential oracles require every
execution backend, partitioning mode, checkpoint round-trip, and
hardened faulty link to agree on the result.  Failures are shrunk to
minimal replayable JSON repros and kept in a corpus.
"""

from .generator import (
    ALL_SHAPES,
    GeneratorKnobs,
    Scenario,
    build_scenario_circuit,
    derive_spec,
    generate_scenario,
    make_design,
    make_sim,
    num_partitions,
    partition_spec,
    shrink_candidates,
)
from .oracle import (
    BACKENDS,
    ORACLES,
    check_checkpoint,
    check_fastmode,
    check_faults,
    check_identity,
    functional_digest,
    run_oracles,
)
from .shrink import ShrinkResult, probe, shrink
from .campaign import (
    CampaignReport,
    FuzzConfig,
    ScenarioOutcome,
    list_corpus,
    load_repro,
    replay,
    run_campaign,
    save_repro,
)

__all__ = [
    "ALL_SHAPES",
    "GeneratorKnobs",
    "Scenario",
    "generate_scenario",
    "build_scenario_circuit",
    "derive_spec",
    "partition_spec",
    "num_partitions",
    "make_design",
    "make_sim",
    "shrink_candidates",
    "BACKENDS",
    "ORACLES",
    "run_oracles",
    "check_identity",
    "check_fastmode",
    "check_checkpoint",
    "check_faults",
    "functional_digest",
    "shrink",
    "probe",
    "ShrinkResult",
    "FuzzConfig",
    "CampaignReport",
    "ScenarioOutcome",
    "run_campaign",
    "replay",
    "save_repro",
    "load_repro",
    "list_corpus",
]
