"""Transaction-level interconnect fabrics: crossbar vs ring.

The two bus topologies compared in Fig. 9:

* :class:`XbarFabric` — a monolithic crossbar in front of a single-ported
  LLC: minimal per-transaction latency, but every agent serializes on the
  one LLC port, and the arbiter slows slightly as its fan-in grows.
* :class:`RingFabric` — a bidirectional torus of router stops with the
  LLC banked across several stops: several cycles of hop latency per
  transaction (higher cost under low load), but requests distribute over
  banks and links, so it saturates much later (scales better under load).

Both expose ``traverse(src, now, addr) -> (arrival_ns, bank_id)``: the
time the request reaches the LLC port/bank, including fabric queueing.
The response path is modelled symmetrically with half the contention (a
dedicated response network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


class Fabric:
    """Interface shared by both fabrics."""

    n_banks: int = 1

    def traverse(self, src: int, now: float, addr: int
                 ) -> Tuple[float, int]:
        raise NotImplementedError

    def respond(self, bank: int, now: float, dst: int) -> float:
        raise NotImplementedError


@dataclass
class XbarFabric(Fabric):
    """Crossbar with one LLC port.

    ``arb_ns`` grows with fan-in: wide arbiters take longer to decide
    (the per-transaction price stays small, but it is one shared queue).
    """

    n_ports: int
    base_ns: float = 3.0
    arb_per_port_ns: float = 0.2
    port_service_ns: float = 4.4
    port_next_free: float = 0.0
    n_banks: int = 1

    def traverse(self, src: int, now: float, addr: int
                 ) -> Tuple[float, int]:
        arb = self.base_ns + self.arb_per_port_ns * self.n_ports
        request_at = now + arb
        start = max(request_at, self.port_next_free)
        self.port_next_free = start + self.port_service_ns
        return start + self.port_service_ns, 0

    def respond(self, bank: int, now: float, dst: int) -> float:
        return now + self.base_ns + self.arb_per_port_ns * self.n_ports


@dataclass
class RingFabric(Fabric):
    """Bidirectional torus with shortest-path routing and banked LLC.

    ``n_stops`` router stops; agents and ``n_banks`` LLC banks are spread
    around the ring.  Each link forwards one flit per ``link_service_ns``;
    shortest-path distance sets the hop count.
    """

    n_stops: int
    n_banks: int = 8
    hop_ns: float = 12.0
    link_service_ns: float = 1.0
    bank_service_ns: float = 4.0
    link_next_free: List[float] = field(default_factory=list)
    bank_next_free: List[float] = field(default_factory=list)

    def __post_init__(self):
        if not self.link_next_free:
            self.link_next_free = [0.0] * self.n_stops
        if not self.bank_next_free:
            self.bank_next_free = [0.0] * self.n_banks

    def _bank_stop(self, bank: int) -> int:
        return (bank * self.n_stops) // self.n_banks

    def _hops(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.n_stops - d)

    def traverse(self, src: int, now: float, addr: int
                 ) -> Tuple[float, int]:
        bank = (addr // 64) % self.n_banks
        src_stop = src % self.n_stops
        dst_stop = self._bank_stop(bank)
        hops = self._hops(src_stop, dst_stop)
        t = now
        # traverse the links along the shortest path, queueing per stop
        step = 1 if (dst_stop - src_stop) % self.n_stops \
            <= self.n_stops // 2 else -1
        stop = src_stop
        for _ in range(hops):
            start = max(t, self.link_next_free[stop])
            self.link_next_free[stop] = start + self.link_service_ns
            t = start + self.hop_ns
            stop = (stop + step) % self.n_stops
        start = max(t, self.bank_next_free[bank])
        self.bank_next_free[bank] = start + self.bank_service_ns
        return start + self.bank_service_ns, bank

    def respond(self, bank: int, now: float, dst: int) -> float:
        hops = self._hops(self._bank_stop(bank), dst % self.n_stops)
        # the response network is dedicated; only hop latency applies
        return now + hops * self.hop_ns
