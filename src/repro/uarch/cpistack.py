"""TIP-style CPI stacks (the profiler integrated into FireAxe, Fig. 8).

The paper integrates TIP (Time-Proportional Instruction Profiling) into
FireAxe to attribute core cycles to causes.  Our pipeline model records
the binding constraint of every commit gap, which is the same
time-proportional attribution: each elapsed cycle is charged to exactly
one cause, so the per-category stack sums to the measured CPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .ooo import CATEGORIES, OoOCoreModel, PipelineResult
from .params import CoreParams
from .workloads import Workload


@dataclass
class CPIStack:
    """One bar of Fig. 8: a per-cause CPI breakdown."""

    core: str
    workload: str
    components: Dict[str, float]

    @property
    def total_cpi(self) -> float:
        return sum(self.components.values())

    def normalized(self) -> Dict[str, float]:
        total = self.total_cpi or 1.0
        return {k: v / total for k, v in self.components.items()}

    @staticmethod
    def from_result(result: PipelineResult) -> "CPIStack":
        return CPIStack(core=result.core, workload=result.workload,
                        components=result.cpi_stack())


def cpi_stacks(cores: Sequence[CoreParams], workloads: Sequence[Workload],
               n_instr: int = 60_000, seed: int = 7) -> List[CPIStack]:
    """Compute CPI stacks for every (core, workload) pair."""
    out: List[CPIStack] = []
    for wl in workloads:
        for core in cores:
            result = OoOCoreModel(core).run(wl, n_instr=n_instr, seed=seed)
            out.append(CPIStack.from_result(result))
    return out


def render_stacks(stacks: Sequence[CPIStack]) -> str:
    """ASCII rendering of CPI stacks (one row per core x workload)."""
    lines = []
    header = f"{'workload':<16}{'core':<12}" + "".join(
        f"{c:>11}" for c in CATEGORIES) + f"{'CPI':>8}"
    lines.append(header)
    for s in stacks:
        row = f"{s.workload:<16}{s.core:<12}"
        for c in CATEGORIES:
            row += f"{s.components.get(c, 0.0):>11.3f}"
        row += f"{s.total_cpi:>8.3f}"
        lines.append(row)
    return "\n".join(lines)
