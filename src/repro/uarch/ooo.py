"""Trace-driven out-of-order pipeline performance model.

A constraint-propagation superscalar model: each instruction's fetch,
dispatch, execute and commit times are the max of its structural and data
constraints (fetch bandwidth and buffer, frontend depth, branch-redirect
barriers, dispatch width, ROB/LQ/SQ occupancy, operand readiness,
functional-unit throughput, memory latency, commit width).  One forward
pass computes all times in O(n); the binding constraint at each stage is
recorded, giving a TIP-style attribution of every commit-gap cycle to a
cause — the CPI stacks of Fig. 8.

This is a *performance model*, not RTL: it stands in for the BOOM cores
the paper simulates on FPGAs, parameterized by the same Table I numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .params import CoreParams
from .workloads import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_MUL,
    KIND_STORE,
    Workload,
)

#: CPI-stack categories
CAT_BASE = "base"
CAT_FRONTEND = "frontend"
CAT_BRANCH = "branch"
CAT_EXEC = "execution"
CAT_MEMORY = "memory"
CAT_WINDOW = "window"
CATEGORIES = (CAT_BASE, CAT_FRONTEND, CAT_BRANCH, CAT_EXEC,
              CAT_MEMORY, CAT_WINDOW)


@dataclass
class PipelineResult:
    """Outcome of one modelled run."""

    core: str
    workload: str
    instructions: int
    cycles: int
    stack_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / max(self.cycles, 1)

    @property
    def cpi(self) -> float:
        return self.cycles / max(self.instructions, 1)

    def cpi_stack(self) -> Dict[str, float]:
        """Per-category CPI contributions (sums to ~CPI)."""
        return {cat: cyc / max(self.instructions, 1)
                for cat, cyc in self.stack_cycles.items()}

    def runtime_seconds(self, total_instructions: int,
                        clock_ghz: float) -> float:
        """Extrapolate wall time for the full benchmark at a clock."""
        return total_instructions * self.cpi / (clock_ghz * 1e9)


class OoOCoreModel:
    """Pipeline model for one :class:`CoreParams` configuration."""

    def __init__(self, params: CoreParams):
        self.params = params

    def run(self, workload: Workload, n_instr: int = 60_000,
            seed: int = 7) -> PipelineResult:
        """Model ``n_instr`` instructions of ``workload``."""
        p = self.params
        t = workload.trace(n_instr, seed)
        kind = t["kind"]
        dep1 = t["dep1"]
        dep2 = t["dep2"]
        mispredict = t["mispredict"]
        if p.bpred_factor < 1.0:
            # a better predictor converts a fraction of mispredicts into
            # correct predictions (deterministically by index)
            keep = np.arange(n_instr) % 100 < p.bpred_factor * 100
            mispredict = mispredict & keep
        l1_miss = t["l1_miss"]
        l2_miss = t["l2_miss"]
        icache_miss = t["icache_miss"]

        n = n_instr
        fetch_t = [0] * n
        fetch_cause = [CAT_FRONTEND] * n
        dispatch_t = [0] * n
        complete_t = [0] * n
        complete_cause = [CAT_BASE] * n
        commit_t = [0] * n

        fw = p.fetch_width
        iw = p.issue_width
        cw = p.commit_width
        rob = p.rob_entries
        fbuf = p.fetch_buffer
        fdepth = p.frontend_depth

        alu_ring = deque(maxlen=p.alu_units)
        mul_ring = deque(maxlen=p.mul_units)
        mem_ring = deque(maxlen=p.mem_ports)
        load_commits = deque(maxlen=p.ld_queue)
        store_commits = deque(maxlen=p.st_queue)

        fetch_next = 0
        redirect = 0
        redirect_active = False
        group_time = 0
        group_cause = CAT_FRONTEND

        mul_lat = 4
        l1_lat = p.l1_hit_cycles
        l2_lat = p.l2_hit_cycles
        dram_lat = p.dram_cycles

        stacks = {cat: 0.0 for cat in CATEGORIES}
        prev_commit = 0

        for i in range(n):
            # ---- fetch (per group of fetch_width) ----
            if i % fw == 0:
                gt = fetch_next
                cause = CAT_FRONTEND
                if redirect_active and redirect + 1 > gt:
                    gt = redirect + 1
                    cause = CAT_BRANCH
                    redirect_active = False
                elif redirect_active:
                    redirect_active = False
                if i >= fbuf and dispatch_t[i - fbuf] + 1 > gt:
                    gt = dispatch_t[i - fbuf] + 1
                    cause = CAT_BASE  # backpressure: blame downstream
                if icache_miss[i]:
                    gt += l2_lat
                    cause = CAT_FRONTEND
                group_time = gt
                group_cause = cause
                fetch_next = gt + 1
            fetch_t[i] = group_time
            fetch_cause[i] = group_cause

            # ---- dispatch ----
            dt = fetch_t[i] + fdepth
            dcause = fetch_cause[i]
            if i >= iw and dispatch_t[i - iw] + 1 > dt:
                dt = dispatch_t[i - iw] + 1
                dcause = CAT_BASE
            if i >= rob and commit_t[i - rob] + 1 > dt:
                dt = commit_t[i - rob] + 1
                dcause = CAT_WINDOW
            k = kind[i]
            if k == KIND_LOAD and len(load_commits) == p.ld_queue \
                    and load_commits[0] + 1 > dt:
                dt = load_commits[0] + 1
                dcause = CAT_WINDOW
            if k == KIND_STORE and len(store_commits) == p.st_queue \
                    and store_commits[0] + 1 > dt:
                dt = store_commits[0] + 1
                dcause = CAT_WINDOW
            dispatch_t[i] = dt

            # ---- execute ----
            ready = dt + 1
            ecause = dcause
            d1 = dep1[i]
            if d1 and complete_t[i - d1] > ready:
                ready = complete_t[i - d1]
                ecause = CAT_EXEC
            d2 = dep2[i]
            if d2 and complete_t[i - d2] > ready:
                ready = complete_t[i - d2]
                ecause = CAT_EXEC
            if k == KIND_MUL:
                ring = mul_ring
            elif k in (KIND_LOAD, KIND_STORE):
                ring = mem_ring
            else:
                ring = alu_ring
            start = ready
            if len(ring) == ring.maxlen and ring[0] + 1 > start:
                start = ring[0] + 1
                ecause = CAT_EXEC
            ring.append(start)

            if k == KIND_MUL:
                lat = mul_lat
                if lat > 1 and ecause == dcause:
                    ecause = CAT_EXEC
            elif k == KIND_LOAD:
                if l2_miss[i]:
                    lat = dram_lat
                elif l1_miss[i]:
                    lat = l2_lat
                else:
                    lat = l1_lat
                if l1_miss[i]:
                    ecause = CAT_MEMORY
            else:
                lat = 1
            complete_t[i] = start + lat
            complete_cause[i] = ecause

            # mispredicted branch: the frontend refetches after resolve
            if k == KIND_BRANCH and mispredict[i]:
                if complete_t[i] > redirect:
                    redirect = complete_t[i]
                redirect_active = True

            # ---- commit (in order) ----
            ct = complete_t[i]
            ccause = complete_cause[i]
            if i >= 1 and commit_t[i - 1] > ct:
                ct = commit_t[i - 1]
                ccause = CAT_BASE
            if i >= cw and commit_t[i - cw] + 1 > ct:
                ct = commit_t[i - cw] + 1
                ccause = CAT_BASE
            commit_t[i] = ct
            if k == KIND_LOAD:
                load_commits.append(ct)
            elif k == KIND_STORE:
                store_commits.append(ct)

            gap = ct - prev_commit
            if gap > 0:
                stacks[ccause] += gap
            else:
                stacks[CAT_BASE] += 0.0
            prev_commit = ct

        return PipelineResult(
            core=p.name, workload=workload.name, instructions=n,
            cycles=commit_t[-1], stack_cycles=stacks)
