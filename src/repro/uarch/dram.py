"""DRAM model: fixed access latency plus a bandwidth-limited channel.

A single channel serves one cache line per ``service_ns``; requests queue
when the channel is busy.  This is where leaky-DMA traffic lands once the
DDIO ways thrash, so its queueing is what amplifies the latency curves in
Fig. 9 at high core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DRAMModel:
    """Cursor-based DRAM channel."""

    latency_ns: float = 120.0
    service_ns: float = 3.0
    next_free: float = 0.0
    accesses: int = 0
    busy_ns: float = 0.0

    def access(self, now: float) -> float:
        """Issue one line access at ``now``; returns completion time."""
        start = max(now, self.next_free)
        self.next_free = start + self.service_ns
        self.accesses += 1
        self.busy_ns += self.service_ns
        return start + self.latency_ns

    def utilization(self, horizon_ns: float) -> float:
        return self.busy_ns / horizon_ns if horizon_ns > 0 else 0.0
