"""Set-associative cache model with DDIO way partitioning.

Data Direct I/O dedicates a configurable number of LLC ways to I/O
devices: NIC DMA *writes* allocate only into those ways, while CPU
accesses may use the full associativity.  NIC DMA *reads* that miss go to
DRAM without allocating (they are consuming data on its way out).  When
the I/O working set outgrows the DDIO ways, arriving packets evict
not-yet-processed packets — the leaky-DMA behaviour of Farshin et al.
that Fig. 9 reproduces at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

LINE_BYTES = 64


@dataclass
class _Way:
    tag: int = -1
    last_used: float = -1.0
    valid: bool = False


class CacheModel:
    """LRU set-associative cache with a DDIO way window.

    Args:
        size_kib: total capacity.
        ways: associativity.
        ddio_ways: ways (indices ``0..ddio_ways-1``) I/O writes may use.
        line_bytes: cache-line size.
    """

    def __init__(self, size_kib: int, ways: int, ddio_ways: int,
                 line_bytes: int = LINE_BYTES):
        if ddio_ways > ways:
            raise ValueError("ddio_ways cannot exceed associativity")
        self.line_bytes = line_bytes
        self.ways = ways
        self.ddio_ways = ddio_ways
        self.n_sets = (size_kib * 1024) // (line_bytes * ways)
        if self.n_sets == 0:
            raise ValueError("cache too small for its associativity")
        self.sets: List[List[_Way]] = [
            [_Way() for _ in range(ways)] for _ in range(self.n_sets)
        ]
        self.stats: Dict[str, int] = {
            "cpu_hits": 0, "cpu_misses": 0,
            "io_write_hits": 0, "io_write_misses": 0,
            "io_read_hits": 0, "io_read_misses": 0,
            "evictions": 0, "io_evictions_of_unread": 0,
        }

    def _set_and_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def _lookup(self, idx: int, tag: int) -> Optional[_Way]:
        for way in self.sets[idx]:
            if way.valid and way.tag == tag:
                return way
        return None

    def _victim(self, idx: int, limit_ways: Optional[int]) -> _Way:
        candidates = self.sets[idx][:limit_ways] if limit_ways \
            else self.sets[idx]
        empty = next((w for w in candidates if not w.valid), None)
        if empty is not None:
            return empty
        victim = min(candidates, key=lambda w: w.last_used)
        self.stats["evictions"] += 1
        return victim

    # -- access paths ------------------------------------------------------------

    def cpu_access(self, addr: int, now: float, write: bool = False) -> bool:
        """CPU load/store; allocates on miss using full associativity.
        Returns hit?"""
        idx, tag = self._set_and_tag(addr)
        way = self._lookup(idx, tag)
        if way is not None:
            way.last_used = now
            self.stats["cpu_hits"] += 1
            return True
        self.stats["cpu_misses"] += 1
        victim = self._victim(idx, None)
        victim.tag, victim.valid, victim.last_used = tag, True, now
        return False

    def io_write(self, addr: int, now: float) -> bool:
        """NIC DMA write (RX packet into the LLC).  Allocates only within
        the DDIO ways; evicting a valid line there is the leak."""
        idx, tag = self._set_and_tag(addr)
        way = self._lookup(idx, tag)
        if way is not None:
            way.last_used = now
            self.stats["io_write_hits"] += 1
            return True
        self.stats["io_write_misses"] += 1
        victim = self._victim(idx, self.ddio_ways)
        if victim.valid:
            self.stats["io_evictions_of_unread"] += 1
        victim.tag, victim.valid, victim.last_used = tag, True, now
        return False

    def io_read(self, addr: int, now: float) -> bool:
        """NIC DMA read (TX packet out of the LLC).  No allocation on
        miss — the data is leaving the chip."""
        idx, tag = self._set_and_tag(addr)
        way = self._lookup(idx, tag)
        if way is not None:
            way.last_used = now
            self.stats["io_read_hits"] += 1
            return True
        self.stats["io_read_misses"] += 1
        return False

    def hit_rate(self, prefix: str) -> float:
        hits = self.stats[f"{prefix}_hits"]
        misses = self.stats[f"{prefix}_misses"]
        total = hits + misses
        return hits / total if total else 0.0
