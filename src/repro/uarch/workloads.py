"""Embench-like synthetic workloads.

Each :class:`Workload` describes a benchmark's execution character —
instruction mix, instruction-level parallelism, branch predictability,
cache behaviour — and can synthesize a deterministic instruction trace
for the pipeline model.  Parameters are chosen so the cross-benchmark
*shape* of Figs. 7-8 reproduces: ``nettle-aes`` is fetch-bandwidth bound
(the 2x-wider GC40 frontend buys ~56%), ``nbody`` is execution-unit bound
(window/width barely help), ``crc32`` is a serial dependency chain, and
``nsichneu`` thrashes the L1-I.

Trace arrays (all ``numpy``):

* ``kind`` — 0 alu, 1 mul/fp, 2 load, 3 store, 4 branch
* ``dep1``/``dep2`` — source-operand producer offsets (0 = none)
* ``mispredict`` — branch mispredicted
* ``l1_miss``/``l2_miss`` — load misses at each level
* ``icache_miss`` — instruction-fetch miss at this instruction
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

KIND_ALU = 0
KIND_MUL = 1
KIND_LOAD = 2
KIND_STORE = 3
KIND_BRANCH = 4


@dataclass(frozen=True)
class Workload:
    """Synthetic benchmark descriptor.

    Args:
        name: Embench benchmark name.
        instructions: dynamic instruction count for Fig. 7 runtimes
            (scaled down from the real benchmarks; relative sizes kept).
        frac_mul: fraction of multiply/FP ops.
        frac_load: fraction of loads.
        frac_store: fraction of stores.
        frac_branch: fraction of branches.
        ilp_distance: mean producer-consumer distance; higher = more ILP.
        serial_frac: fraction of instructions chained at distance 1
            (crc-style serial reductions).
        branch_mpki: mispredictions per 1000 instructions.
        l1d_miss: per-load L1D miss probability.
        l2_miss: per-L1-miss L2 miss probability (DRAM access).
        l1i_mpki: instruction-cache misses per 1000 instructions.
    """

    name: str
    instructions: int
    frac_mul: float
    frac_load: float
    frac_store: float
    frac_branch: float
    ilp_distance: float
    serial_frac: float
    branch_mpki: float
    l1d_miss: float
    l2_miss: float
    l1i_mpki: float

    @property
    def frac_alu(self) -> float:
        return 1.0 - (self.frac_mul + self.frac_load
                      + self.frac_store + self.frac_branch)

    def trace(self, n: int, seed: int = 7) -> Dict[str, np.ndarray]:
        """Synthesize an ``n``-instruction trace (deterministic per
        (workload, seed))."""
        rng = np.random.default_rng(
            seed * 1_000_003 + abs(hash(self.name)) % 65_521)
        probs = np.array([self.frac_alu, self.frac_mul, self.frac_load,
                          self.frac_store, self.frac_branch])
        probs = probs / probs.sum()
        kind = rng.choice(5, size=n, p=probs).astype(np.int64)

        # dependency distances: a serial_frac slice chains at distance 1,
        # the rest draws geometric distances around ilp_distance
        geo = rng.geometric(min(1.0, 1.0 / self.ilp_distance), size=n)
        serial = rng.random(n) < self.serial_frac
        dep1 = np.where(serial, 1, geo).astype(np.int64)
        dep1 = np.minimum(dep1, np.arange(n))  # no deps before instr 0
        has2 = rng.random(n) < 0.35
        geo2 = rng.geometric(min(1.0, 1.0 / (self.ilp_distance * 2)),
                             size=n)
        dep2 = np.where(has2, geo2, 0).astype(np.int64)
        dep2 = np.minimum(dep2, np.arange(n))

        is_branch = kind == KIND_BRANCH
        n_br = int(is_branch.sum())
        br_rate = (self.branch_mpki / 1000.0) / max(self.frac_branch, 1e-6)
        mispredict = np.zeros(n, dtype=bool)
        if n_br:
            mispredict[is_branch] = rng.random(n_br) < min(br_rate, 1.0)

        is_load = kind == KIND_LOAD
        n_ld = int(is_load.sum())
        l1_miss = np.zeros(n, dtype=bool)
        l2_miss = np.zeros(n, dtype=bool)
        if n_ld:
            m1 = rng.random(n_ld) < self.l1d_miss
            l1_miss[is_load] = m1
            m2 = np.zeros(n_ld, dtype=bool)
            m2[m1] = rng.random(int(m1.sum())) < self.l2_miss
            l2_miss[is_load] = m2

        icache_miss = rng.random(n) < (self.l1i_mpki / 1000.0)
        return {
            "kind": kind, "dep1": dep1, "dep2": dep2,
            "mispredict": mispredict, "l1_miss": l1_miss,
            "l2_miss": l2_miss, "icache_miss": icache_miss,
        }


def _w(name, instr_m, mul, load, store, branch, ilp, serial, mpki,
       l1d, l2, l1i) -> Workload:
    return Workload(name, int(instr_m * 1e6), mul, load, store, branch,
                    ilp, serial, mpki, l1d, l2, l1i)


#: the Embench subset of Figs. 7-8 (instruction counts in millions,
#: scaled to keep relative runtimes plausible)
EMBENCH: List[Workload] = [
    #     name            Minstr mul   load  store branch ilp  serial mpki  l1d    l2    l1i
    _w("aha-mont64",      4.0, 0.30, 0.15, 0.05, 0.08, 4.0, 0.14, 1.5, 0.010, 0.10, 0.1),
    _w("crc32",           3.0, 0.02, 0.20, 0.02, 0.12, 1.6, 0.55, 0.8, 0.005, 0.05, 0.1),
    _w("cubic",           5.0, 0.35, 0.18, 0.08, 0.06, 3.5, 0.18, 1.0, 0.012, 0.10, 0.2),
    _w("edn",             3.5, 0.25, 0.30, 0.10, 0.05, 6.0, 0.08, 0.7, 0.030, 0.15, 0.1),
    _w("huffbench",       3.0, 0.03, 0.28, 0.08, 0.18, 3.0, 0.20, 14.0, 0.030, 0.10, 0.5),
    _w("matmult-int",     4.5, 0.28, 0.32, 0.08, 0.04, 6.0, 0.10, 0.5, 0.040, 0.20, 0.1),
    _w("minver",          2.5, 0.30, 0.25, 0.10, 0.07, 4.0, 0.15, 2.0, 0.015, 0.10, 0.3),
    _w("nbody",           6.0, 0.50, 0.20, 0.08, 0.04, 1.8, 0.55, 0.6, 0.010, 0.10, 0.1),
    _w("nettle-aes",      4.0, 0.06, 0.28, 0.10, 0.04, 12.0, 0.02, 0.4, 0.008, 0.05, 0.2),
    _w("nettle-sha256",   3.5, 0.08, 0.22, 0.10, 0.05, 3.5, 0.30, 0.5, 0.006, 0.05, 0.1),
    _w("nsichneu",        2.0, 0.01, 0.30, 0.12, 0.22, 4.0, 0.10, 16.0, 0.020, 0.10, 30.0),
    _w("st",              3.0, 0.30, 0.22, 0.10, 0.06, 4.0, 0.16, 1.2, 0.015, 0.10, 0.1),
    _w("md5sum",          2.5, 0.05, 0.24, 0.08, 0.06, 3.8, 0.28, 0.6, 0.008, 0.05, 0.1),
    _w("picojpeg",        4.0, 0.18, 0.26, 0.10, 0.12, 3.5, 0.15, 6.0, 0.020, 0.10, 2.0),
    _w("primecount",      2.0, 0.10, 0.12, 0.02, 0.16, 2.8, 0.30, 2.5, 0.004, 0.05, 0.1),
    _w("qrduino",         3.0, 0.08, 0.25, 0.12, 0.10, 3.2, 0.18, 4.0, 0.015, 0.08, 0.8),
    _w("sglib-combined",  3.5, 0.04, 0.30, 0.10, 0.14, 3.0, 0.20, 8.0, 0.035, 0.12, 1.5),
    _w("slre",            2.5, 0.02, 0.28, 0.06, 0.20, 3.0, 0.22, 11.0, 0.018, 0.08, 1.0),
    _w("statemate",       2.0, 0.01, 0.26, 0.14, 0.24, 4.5, 0.08, 7.0, 0.012, 0.06, 5.0),
    _w("tarfind",         2.0, 0.03, 0.32, 0.10, 0.15, 3.4, 0.16, 5.0, 0.040, 0.15, 0.6),
    _w("ud",              2.5, 0.26, 0.24, 0.10, 0.08, 3.8, 0.18, 1.8, 0.014, 0.08, 0.2),
    _w("wikisort",        4.5, 0.06, 0.30, 0.14, 0.12, 4.2, 0.14, 5.5, 0.045, 0.18, 0.4),
]

EMBENCH_BY_NAME: Dict[str, Workload] = {w.name: w for w in EMBENCH}
