"""Go runtime model: goroutines, GOMAXPROCS, and garbage collection.

Reproduces the benchmark of Sec. V-D (golang/go issue #18534): a main
goroutine is woken by a periodic 10 us tick and allocates heap objects,
stressing the collector.  We measure the delay between the scheduled tick
and the completion of its handler, and report tail percentiles across a
GOMAXPROCS x CPU-affinity grid (Fig. 10).

The mechanisms modelled:

* **GOMAXPROCS = 1** — every goroutine, including the GC worker, shares
  one logical processor.  GC mark work runs in chunks that (in the Go
  version of the issue) are not preemptible, so ticks landing inside a
  chunk wait it out: the famous multi-millisecond spikes.
* **GOMAXPROCS > 1, threads spread over cores** — the GC worker runs on
  another core, so ticks only wait for the stop-the-world phases; but
  every wakeup crosses cores, the GC's heap marking steals cache
  ownership (coherence inflation on a weak memory subsystem), and the
  load balancer occasionally migrates the main thread.
* **GOMAXPROCS > 1, pinned to one core** — the OS timeslices both
  threads on one core; wakeup preemption is fast and caches stay warm,
  so despite losing parallelism the tail is *lower* — the paper's
  surprising result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .sched import AffinityCostModel, CoreSet


@dataclass(frozen=True)
class GoGCConfig:
    """Benchmark configuration (times in microseconds)."""

    gomaxprocs: int = 1
    affinity_cores: int = 1
    tick_period_us: float = 10.0
    tick_work_us: float = 2.0
    duration_ms: float = 400.0
    #: allocation-driven GC cadence and cost
    gc_period_us: float = 30_000.0
    gc_cpu_us: float = 18_000.0
    gc_chunk_us: float = 9_000.0   # non-preemptible mark chunk
    stw_us: float = 900.0          # each of the two stop-the-world phases
    #: GC assist work the allocating goroutine must do per tick while a
    #: cycle is active (GOMAXPROCS > 1 only; at 1 the worker owns the P)
    assist_us: float = 2.0
    seed: int = 11

    @property
    def label(self) -> str:
        return (f"GOMAXPROCS={self.gomaxprocs}, "
                f"{self.affinity_cores} core"
                f"{'s' if self.affinity_cores > 1 else ''}")


@dataclass
class GoGCResult:
    """Tail-latency summary for one configuration (values in ms)."""

    config: GoGCConfig
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    samples: int

    def as_row(self) -> Tuple[str, float, float]:
        return (self.config.label, self.p95_ms, self.p99_ms)


def run_benchmark(config: GoGCConfig,
                  costs: AffinityCostModel = AffinityCostModel()
                  ) -> GoGCResult:
    """Simulate the ticker benchmark; returns tail percentiles."""
    rng = np.random.default_rng(config.seed)
    cores = CoreSet(min(config.affinity_cores, config.gomaxprocs)
                    if config.gomaxprocs == 1 else config.affinity_cores)
    single_core = cores.single or config.gomaxprocs == 1

    # GC cycle schedule: [start, start+stw] STW1, mark phase, STW2.
    # With GOMAXPROCS=1 the mark phase occupies the only P in
    # non-preemptible chunks; otherwise it runs on a sibling thread.
    duration_us = config.duration_ms * 1e3
    gc_starts = np.arange(config.gc_period_us, duration_us,
                          config.gc_period_us)

    latencies: List[float] = []
    t = config.tick_period_us
    tick_index = 0

    def gc_phase(at: float) -> Tuple[str, float]:
        """Phase of the GC cycle at time ``at``: returns (phase, t_end).

        Cycles begin at k * gc_period for k >= 1: STW, mark, STW, idle.
        """
        i = int(at // config.gc_period_us)
        if i == 0:
            return "idle", config.gc_period_us
        start = i * config.gc_period_us
        rel = at - start
        mark_wall = config.gc_cpu_us
        if rel < config.stw_us:
            return "stw", start + config.stw_us
        if rel < config.stw_us + mark_wall:
            return "mark", start + config.stw_us + mark_wall
        if rel < 2 * config.stw_us + mark_wall:
            return "stw", start + 2 * config.stw_us + mark_wall
        return "idle", start + config.gc_period_us

    # the handler's own work (a few us) never exceeds the tick period,
    # so ticks are independent samples: latency(t) = blocking + wakeup
    # + (cache-affected) work
    migration_period = max(
        20, costs.migration_period_ticks
        // max(1, config.affinity_cores - 1))
    while t < duration_us:
        tick_index += 1
        phase, phase_end = gc_phase(t)

        start = t
        if phase == "stw":
            # nothing runs during stop-the-world
            start = phase_end
        elif phase == "mark" and config.gomaxprocs == 1:
            # the non-preemptible mark chunk owns the only P; the tick
            # handler runs at the next chunk boundary
            chunk_pos = start % config.gc_chunk_us
            start = min(start + (config.gc_chunk_us - chunk_pos),
                        phase_end)

        start += costs.wakeup_latency(single_core)

        data_remote = (not single_core) and phase == "mark"
        migrated = (not single_core) and (
            tick_index % migration_period == 0)
        work = costs.work_us(config.tick_work_us, data_remote, migrated)
        if phase == "mark" and config.gomaxprocs > 1:
            work += config.assist_us * (costs.coherence_inflation
                                        if data_remote else 1.0)
        if migrated:
            work += costs.migration_window_us
        # small scheduler noise so percentiles are well-defined
        work += float(rng.exponential(2.0))

        latencies.append(start + work - t)
        t += config.tick_period_us

    arr = np.array(latencies) / 1e3  # -> ms
    return GoGCResult(
        config=config,
        p50_ms=float(np.percentile(arr, 50)),
        p95_ms=float(np.percentile(arr, 95)),
        p99_ms=float(np.percentile(arr, 99)),
        max_ms=float(arr.max()),
        samples=len(arr),
    )


def fig10_grid(duration_ms: float = 400.0) -> List[GoGCResult]:
    """The Fig. 10 configuration grid."""
    grid = [
        GoGCConfig(gomaxprocs=1, affinity_cores=1,
                   duration_ms=duration_ms),
        GoGCConfig(gomaxprocs=2, affinity_cores=1,
                   duration_ms=duration_ms),
        GoGCConfig(gomaxprocs=2, affinity_cores=2,
                   duration_ms=duration_ms),
        GoGCConfig(gomaxprocs=4, affinity_cores=1,
                   duration_ms=duration_ms),
        GoGCConfig(gomaxprocs=4, affinity_cores=4,
                   duration_ms=duration_ms),
    ]
    return [run_benchmark(cfg) for cfg in grid]
