"""Microarchitectural performance models for the paper's case studies.

The RTL tier (:mod:`repro.targets`) exercises FireRipper with real cycle
counts; this tier reproduces the *system-level effects* of Sec. V that in
the paper come from simulating BOOM SoCs on FPGAs:

* :mod:`~repro.uarch.params` / :mod:`~repro.uarch.ooo` — Table I core
  configurations and a trace-driven out-of-order pipeline model with
  TIP-style CPI-stack attribution (Figs. 7-8),
* :mod:`~repro.uarch.cache` / :mod:`~repro.uarch.nic` /
  :mod:`~repro.uarch.interconnect` / :mod:`~repro.uarch.ddio` — the
  DDIO/leaky-DMA study (Fig. 9),
* :mod:`~repro.uarch.golang` / :mod:`~repro.uarch.sched` — the Go
  garbage-collection tail-latency study (Fig. 10).
"""

from .params import CoreParams, GC40_BOOM, GC_XEON, LARGE_BOOM
from .workloads import EMBENCH, Workload
from .ooo import OoOCoreModel, PipelineResult
from .cpistack import CPIStack

__all__ = [
    "CoreParams",
    "LARGE_BOOM",
    "GC40_BOOM",
    "GC_XEON",
    "Workload",
    "EMBENCH",
    "OoOCoreModel",
    "PipelineResult",
    "CPIStack",
]
